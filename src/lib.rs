//! Root package of the SEVeriFast reproduction workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`;
//! the library surface lives in the [`severifast`] crate, re-exported here
//! verbatim. See README.md for the tour and DESIGN.md for the architecture.

#![forbid(unsafe_code)]

pub use severifast::*;
