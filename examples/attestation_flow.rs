//! Attestation flow: the three host attacks of §2.6, demonstrated live.
//!
//! ```text
//! cargo run --release --example attestation_flow
//! ```
//!
//! 1. An honest boot attests and receives the tenant's secret.
//! 2. The host swaps the staged kernel → the boot verifier refuses to boot.
//! 3. The host pre-encrypts hashes of a *different* initrd → boot succeeds,
//!    but the guest owner rejects the launch digest.
//! 4. The host substitutes a check-skipping "verifier" → the digest covers
//!    the verifier binary too, so the owner rejects that as well.

use severifast::prelude::*;
use severifast::vmm::VmmError as E;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::new(99);
    // A small kernel keeps this demo snappy.
    let config = VmConfig::test_tiny(BootPolicy::Severifast);

    // ---------------------------------------------------------------- 1
    println!("1) honest boot");
    let vm = MicroVm::new(config.clone())?;
    vm.register_expected(&mut machine)?;
    let report = vm.boot(&mut machine)?;
    println!(
        "   attested and provisioned {:?} in {}\n",
        String::from_utf8_lossy(report.provisioned_secret.as_deref().unwrap_or(b"?")),
        report.total_time()
    );

    // ---------------------------------------------------------------- 2
    println!("2) host swaps the kernel after hashes are registered");
    // The hashes of the honest kernel are pre-encrypted; the host then
    // stages a different image. The boot verifier re-hashes what was
    // actually staged and refuses.
    demonstrate_kernel_swap(&mut machine)?;
    println!();

    // ---------------------------------------------------------------- 3
    println!("3) host pre-encrypts hashes of malicious components");
    // The host boots its own (malicious) configuration; hashes match, the
    // guest comes up — but the launch digest differs from the one the
    // tenant computed, so attestation fails.
    let evil_config = VmConfig {
        kernel: KernelConfig {
            name: "evil-but-selfconsistent".into(),
            ..KernelConfig::test_tiny()
        },
        ..config.clone()
    };
    let evil_vm = MicroVm::new(evil_config)?;
    // NOT registered with the owner: the tenant never blessed this digest.
    match evil_vm.boot(&mut machine) {
        Err(E::Attest(e)) => println!("   guest owner rejected the report: {e}"),
        other => println!("   UNEXPECTED: {other:?}"),
    }
    println!();

    // ---------------------------------------------------------------- 4
    println!("4) host loads a verifier that skips hash checks");
    // A different verifier binary (here: the vmlinux-loader build standing
    // in for any modified verifier) produces a different launch digest.
    let mut tampered = config.clone();
    tampered.policy = BootPolicy::SeverifastVmlinux;
    tampered.kernel_codec = Codec::None;
    let tampered_vm = MicroVm::new(tampered)?;
    let honest_digest = vm.expected_measurement()?;
    let tampered_digest = tampered_vm.expected_measurement()?;
    assert_ne!(honest_digest, tampered_digest);
    println!(
        "   launch digest changes when the verifier changes:\n     honest   {}…\n     tampered {}…",
        severifast::crypto::hex::to_hex(&honest_digest[..8]),
        severifast::crypto::hex::to_hex(&tampered_digest[..8]),
    );
    match tampered_vm.boot(&mut machine) {
        Err(E::Attest(e)) => println!("   guest owner rejected the report: {e}"),
        other => println!("   UNEXPECTED: {other:?}"),
    }

    Ok(())
}

/// Boots a guest whose staged kernel was swapped after the hash page was
/// registered, by driving the lower-level pieces directly.
fn demonstrate_kernel_swap(machine: &mut Machine) -> Result<(), Box<dyn std::error::Error>> {
    use severifast::image::{initrd, kernel::KernelConfig};
    use severifast::mem::GuestMemory;
    use severifast::verifier::binary::{VerifierBinary, VerifierFeatures};
    use severifast::verifier::hashes::{HashPage, KernelHashes};
    use severifast::verifier::layout::{GuestLayout, HASH_PAGE_ADDR, VERIFIER_ADDR};
    use severifast::verifier::verify::{self, VerifierConfig};

    let good = KernelConfig::test_tiny().build();
    let good_bz = good.bzimage(Codec::Lz4);
    let rd = initrd::build_initrd(64 * 1024);
    let start = machine.psp.launch_start(SevGeneration::SevSnp)?;
    let mut mem = GuestMemory::new_sev(64 << 20, start.memory_key, SevGeneration::SevSnp);
    let layout = GuestLayout::plan(64 << 20, good_bz.len() as u64, rd.len() as u64)
        .map_err(|e| format!("layout: {e}"))?;

    // Hashes of the GOOD kernel are pre-encrypted...
    let hash_page = HashPage {
        kernel: KernelHashes::WholeImage(severifast::crypto::sha256(&good_bz)),
        initrd: severifast::crypto::sha256(&rd),
    };
    mem.host_write(HASH_PAGE_ADDR, &hash_page.to_page())?;
    let verifier = VerifierBinary::build(VerifierFeatures::severifast());
    mem.host_write(VERIFIER_ADDR, verifier.bytes())?;
    machine
        .psp
        .launch_update_data(start.guest, &mut mem, HASH_PAGE_ADDR, 4096)?;
    machine
        .psp
        .launch_update_data(start.guest, &mut mem, VERIFIER_ADDR, verifier.size())?;
    machine.psp.launch_finish(start.guest)?;

    // ...but the host stages an EVIL kernel of the same size.
    let evil = KernelConfig {
        name: "evil".into(),
        ..KernelConfig::test_tiny()
    }
    .build();
    let mut evil_bz = (*evil.bzimage(Codec::Lz4)).clone();
    evil_bz.resize(good_bz.len(), 0);
    mem.host_write(layout.kernel_staging, &evil_bz)?;
    mem.host_write(layout.initrd_staging, &rd)?;
    for (base, len) in layout.private_ranges() {
        mem.rmp_assign(base, len)?;
    }

    let cost = machine.cost.clone();
    match verify::run(&mut mem, &layout, &cost, VerifierConfig::severifast()) {
        Err(e) => println!("   boot verifier refused: {e}"),
        Ok(_) => println!("   UNEXPECTED: verifier accepted a swapped kernel"),
    }
    Ok(())
}
