//! Trace-driven autoscaling: one flash crowd, three provisioning arms.
//!
//! ```text
//! cargo run --release --example autoscale_drill            # paper-scale sweep
//! cargo run --release --example autoscale_drill -- --quick
//! cargo run --release --example autoscale_drill -- --quick --json
//! cargo run --release --example autoscale_drill -- --quick --bench
//! ```
//!
//! Every arm serves the *same* flash-crowd arrival trace — a quiet base
//! rate, a fast ramp to many times base, an exponential decay back down —
//! and differs only in who pays for capacity. The **static** arm keeps
//! `max_hosts` up for the whole run: the tail holds trivially and the
//! host-seconds bill is the worst possible. The **reactive** arm starts at
//! `min_hosts` and scales out on PSP backlog: by the time the queue hurts,
//! the ramp has already arrived, and the crowd eats the scale-out latency
//! as tail. The **predictive** arm forecasts the windowed rate trend,
//! pre-provisions spares ahead of the ramp, and warms their pools before
//! they take traffic: the tail holds at a fraction of static's cost.
//!
//! `--json` prints the full result as deterministic JSON: two runs with
//! the same flags emit byte-identical output (the CI replay gate diffs
//! them). `--bench` instead prints wall-clock throughput JSON, which is
//! machine-dependent and deliberately excluded from the replay gate.

use sevf_bench::BenchSnapshot;
use sevf_cluster::scalesweep::{scale_sweep, ScaleSweepConfig, ScaleSweepReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench = args.iter().any(|a| a == "--bench");
    let cfg = if quick {
        ScaleSweepConfig::quick()
    } else {
        ScaleSweepConfig::paper_scale()
    };

    if bench {
        let started = std::time::Instant::now();
        let report = scale_sweep(&cfg).expect("autoscale sweep");
        let elapsed = started.elapsed().as_secs_f64();
        let completed: usize = report.rows.iter().map(|r| r.completed).sum();
        let ticks: u64 = report.rows.iter().map(|r| r.ticks).sum();
        let snap = BenchSnapshot::new("autoscale", cfg.seed)
            .count("arms", report.rows.len() as u64)
            .count("requests_completed", completed as u64)
            .count("control_ticks", ticks)
            .wall(elapsed)
            .rate(
                "wall_us_per_request",
                1e6 * elapsed / completed.max(1) as f64,
            )
            .rate("requests_per_sec", completed as f64 / elapsed.max(1e-9));
        println!("{}", snap.render());
        return;
    }

    let report = scale_sweep(&cfg).expect("autoscale sweep");
    for r in &report.rows {
        assert!(
            r.conserved,
            "cluster conservation broke in the {} arm",
            r.arm
        );
    }

    if json {
        println!("{}", render_json(&report));
        return;
    }

    println!("one flash crowd, three provisioning arms\n");
    println!(
        "workload (seed {:#x}): base {:.0} req/s, crowd to {:.0} req/s at",
        cfg.seed, cfg.crowd.base, cfg.crowd.peak
    );
    println!(
        "{:.1} s over a {:.0} ms ramp (decay {:.0} ms); elastic arms run",
        cfg.crowd.at.as_secs_f64(),
        cfg.crowd.ramp.as_millis_f64(),
        cfg.crowd.decay.as_millis_f64()
    );
    println!(
        "{}..{} hosts against a {:.0} ms p99 target, static pins {}.\n",
        cfg.min_hosts, cfg.max_hosts, cfg.slo_ms, cfg.max_hosts
    );
    println!(
        "{:<12} {:>6} {:>6} {:>5} {:>8} {:>9} {:>8} {:>7} {:>6} {:>5} {:>5}",
        "arm",
        "issued",
        "done",
        "lost",
        "p50(ms)",
        "p99(ms)",
        "host-s",
        "out/in",
        "warm",
        "live",
        "slo"
    );
    for r in &report.rows {
        println!(
            "{:<12} {:>6} {:>6} {:>5} {:>8.2} {:>9.2} {:>8.1} {:>7} {:>6} {:>5} {:>5}",
            r.arm,
            r.issued,
            r.completed,
            r.lost,
            r.p50_ms,
            r.p99_ms,
            r.host_seconds,
            format!("{}/{}", r.scale_outs, r.scale_ins),
            r.prewarms,
            format!("{}-{}", r.min_live, r.max_live),
            if r.slo_met { "ok" } else { "MISS" }
        );
    }

    println!();
    println!("takeaway: the static ceiling holds the tail by paying for every host");
    println!("all run long; reactive scales only after the backlog already hurts,");
    println!("so the crowd eats the join latency as p99; predictive reads the ramp's");
    println!("slope, joins warmed spares before the peak, and holds the SLO at a");
    println!("fraction of static's host-seconds — every arm conserves every request.");
}

/// Hand-rolled JSON (the root package deliberately has no serialization
/// dependency). Field order is fixed and floats print with full precision,
/// so equal reports render byte-identically.
fn render_json(report: &ScaleSweepReport) -> String {
    let mut out = String::from("{\n  \"arms\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"hosts_start\": {}, \"issued\": {}, \
             \"completed\": {}, \"lost\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"goodput_rps\": {}, \"host_seconds\": {}, \"ticks\": {}, \
             \"scale_outs\": {}, \"scale_ins\": {}, \"prewarms\": {}, \
             \"min_live\": {}, \"max_live\": {}, \"slo_ms\": {}, \
             \"slo_met\": {}, \"conserved\": {}}}{}\n",
            r.arm,
            r.hosts_start,
            r.issued,
            r.completed,
            r.lost,
            r.p50_ms,
            r.p99_ms,
            r.goodput_rps,
            r.host_seconds,
            r.ticks,
            r.scale_outs,
            r.scale_ins,
            r.prewarms,
            r.min_live,
            r.max_live,
            r.slo_ms,
            r.slo_met,
            r.conserved,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}
