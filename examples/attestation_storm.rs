//! Attestation storm: the fleet-scale attestation control plane under
//! load, a TCB rollout, and a key-compromise revocation drill.
//!
//! ```text
//! cargo run --release --example attestation_storm            # paper-scale sweep
//! cargo run --release --example attestation_storm -- --quick
//! cargo run --release --example attestation_storm -- --quick --json
//! cargo run --release --example attestation_storm -- --quick --bench
//! ```
//!
//! Three arms over one measured catalog. **Load**: the same cluster and
//! request stream under naive per-launch verification (full KDS
//! cert-chain fetch + context setup + signature check every time),
//! cached verification (VCEK chains cached per chip id + TCB version),
//! and cached + batched verification (concurrent launches share one
//! setup per batch window). The verifier is one shared service on the
//! cluster clock: naive's ceiling sits far below the serving capacity,
//! so past it the verify queue stretches every launch and p99 collapses.
//! **Storm**: a staggered TCB/firmware rollout re-measures every host
//! mid-stream — the cache key includes the TCB version, so the whole
//! fleet re-fetches and re-attests at once. **Drill**: one host's chip
//! key is distrusted mid-stream; its templates die with the key (§6.2),
//! and its queued and in-flight guests fail over, re-launch, and
//! re-attest on the surviving hosts with conservation holding.
//!
//! `--json` prints the full result as deterministic JSON: two runs with
//! the same flags emit byte-identical output (the CI replay gate diffs
//! them). `--bench` instead prints wall-clock throughput JSON, which is
//! machine-dependent and deliberately excluded from the replay gate.

use sevf_bench::BenchSnapshot;
use sevf_cluster::attsweep::{att_sweep, AttSweepConfig, AttSweepReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench = args.iter().any(|a| a == "--bench");
    let cfg = if quick {
        AttSweepConfig::quick()
    } else {
        AttSweepConfig::paper_attestation()
    };

    if bench {
        let started = std::time::Instant::now();
        let report = att_sweep(&cfg).expect("attestation sweep");
        let elapsed = started.elapsed().as_secs_f64();
        let requests: usize = report.rows.iter().map(|r| r.completed).sum();
        let verifications: u64 = report.rows.iter().map(|r| r.verifications).sum();
        let snap = BenchSnapshot::new("attplane", cfg.seed)
            .count("hosts", cfg.hosts as u64)
            .count("requests_completed", requests as u64)
            .count("verifications", verifications)
            .wall(elapsed)
            .rate(
                "wall_us_per_request",
                1e6 * elapsed / requests.max(1) as f64,
            )
            .rate(
                "verifications_per_sec",
                verifications as f64 / elapsed.max(1e-9),
            );
        println!("{}", snap.render());
        return;
    }

    let report = att_sweep(&cfg).expect("attestation sweep");
    for row in &report.rows {
        assert!(
            row.conserved,
            "conservation broke in {}/{}",
            row.arm, row.mode
        );
    }

    if json {
        println!("{}", render_json(&report));
        return;
    }

    println!("verifying a cluster's launch stream through one attestation plane\n");
    println!(
        "verifier model (seed {:#x}): cert fetch {:.1} ms, batch setup {:.1} ms,",
        cfg.seed,
        cfg.verifier.cert_fetch.as_millis_f64(),
        cfg.verifier.batch_setup.as_millis_f64()
    );
    println!(
        "signature check {:.1} ms, batch window {:.1} ms, cache TTL {:.0} s — so the",
        cfg.verifier.sig_check.as_millis_f64(),
        cfg.verifier.batch_window.as_millis_f64(),
        cfg.verifier.cache_ttl.as_millis_f64() / 1000.0
    );
    let naive_ms = (cfg.verifier.cert_fetch + cfg.verifier.batch_setup + cfg.verifier.sig_check)
        .as_millis_f64();
    println!(
        "naive verifier ceiling is ≈{:.0} req/s cluster-wide.\n",
        1000.0 / naive_ms
    );
    println!(
        "{:<7} {:<15} {:>6} {:>5} {:>5} {:>8} {:>8} {:>5} {:>6} {:>9} {:>9} {:>9}",
        "arm",
        "mode",
        "req/s",
        "done",
        "lost",
        "failover",
        "verify",
        "hit",
        "joins",
        "q-wait",
        "p50(ms)",
        "p99(ms)"
    );
    let mut last_arm = "";
    for row in &report.rows {
        if !last_arm.is_empty() && last_arm != row.arm {
            println!();
        }
        last_arm = row.arm;
        println!(
            "{:<7} {:<15} {:>6.0} {:>5} {:>5} {:>8} {:>8} {:>4.0}% {:>6} {:>9.2} {:>9.1} {:>9.1}",
            row.arm,
            row.mode,
            row.offered_rps,
            row.completed,
            row.shed + row.timeouts + row.failed,
            row.failovers,
            row.verifications,
            row.hit_rate * 100.0,
            row.batch_joins,
            row.queue_wait_ms,
            row.p50_ms,
            row.p99_ms
        );
    }

    println!();
    println!("takeaway: per-launch verification is a second shared bottleneck next");
    println!("to the PSP — naive checks re-pay the KDS round trip every launch and");
    println!("queue without bound past their ceiling, while the VCEK cache removes");
    println!("the fetch from the steady state and batching amortizes the setup, so");
    println!("the cached+batched plane tracks the offered load. The TCB rollout");
    println!("re-keys every cache at once and the plane re-fetches exactly once per");
    println!("host; when a chip key is revoked its templates die with it and the");
    println!("survivors re-attest every re-launched guest, conservation intact.");
}

/// Hand-rolled JSON (the root package deliberately has no serialization
/// dependency). Field order is fixed and floats print with full precision,
/// so equal reports render byte-identically.
fn render_json(report: &AttSweepReport) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"mode\": \"{}\", \"offered_rps\": {}, \
             \"completed\": {}, \"shed\": {}, \"timeouts\": {}, \"failed\": {}, \
             \"failovers\": {}, \"retries\": {}, \"verifications\": {}, \
             \"cert_fetches\": {}, \"cert_hits\": {}, \"hit_rate\": {}, \
             \"batch_joins\": {}, \"revoked\": {}, \"queue_wait_ms\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"conserved\": {}}}{}\n",
            r.arm,
            r.mode,
            r.offered_rps,
            r.completed,
            r.shed,
            r.timeouts,
            r.failed,
            r.failovers,
            r.retries,
            r.verifications,
            r.cert_fetches,
            r.cert_hits,
            r.hit_rate,
            r.batch_joins,
            r.revoked,
            r.queue_wait_ms,
            r.p50_ms,
            r.p99_ms,
            r.conserved,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}
