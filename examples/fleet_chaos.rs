//! Fleet chaos: fault injection, retries, and graceful degradation.
//!
//! ```text
//! cargo run --release --example fleet_chaos            # paper-scale sweep
//! cargo run --release --example fleet_chaos -- --quick
//! cargo run --release --example fleet_chaos -- --quick --json
//! ```
//!
//! Serves the same seeded launch stream three times per offered load: once
//! fault-free, then twice under an identical seeded fault storm — PSP
//! firmware resets (which kill every in-flight launch *and* the shared-key
//! template cache, forcing each class to re-measure, §6.2's trust caveat
//! under failure), transient launch-command failures, warm-guest crashes,
//! and attestation round trips that hang or error. The **naive** arm has no
//! recovery: every fault permanently fails its request and dispatches keep
//! feeding the dead PSP through outages. The **resilient** arm retries with
//! seeded exponential backoff, sheds on deadline, degrades tripped classes
//! down the tier ladder (warm → template → cold), and quiesces PSP work
//! across reset outages.
//!
//! `--json` prints the full result as deterministic JSON: two runs with the
//! same flags emit byte-identical output (the CI replay gate diffs them).
//! `--bench` instead prints wall-clock throughput JSON, which is
//! machine-dependent and deliberately excluded from the replay gate.

use sevf_bench::BenchSnapshot;
use sevf_fleet::chaos::{chaos_sweep, ChaosConfig, ChaosReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench = args.iter().any(|a| a == "--bench");
    let cfg = if quick {
        ChaosConfig::quick()
    } else {
        ChaosConfig::paper_chaos()
    };

    if bench {
        let started = std::time::Instant::now();
        let report = chaos_sweep(&cfg).expect("chaos sweep");
        let elapsed = started.elapsed().as_secs_f64();
        let requests: u64 = report.rows.iter().map(|r| r.completed as u64).sum();
        let faults: u64 = report.rows.iter().map(|r| r.faults).sum();
        let retries: u64 = report.rows.iter().map(|r| r.retries).sum();
        let snap = BenchSnapshot::new("chaos", cfg.seed)
            .count("requests_completed", requests)
            .count("faults", faults)
            .count("retries", retries)
            .wall(elapsed)
            .rate(
                "wall_us_per_request",
                1e6 * elapsed / requests.max(1) as f64,
            );
        println!("{}", snap.render());
        return;
    }

    let report = chaos_sweep(&cfg).expect("chaos sweep");

    if json {
        println!("{}", render_json(&report));
        return;
    }

    println!("serving a launch stream while the substrate misbehaves\n");
    println!(
        "storm (seed {:#x}): {} PSP firmware resets and {} warm-guest crashes",
        cfg.seed, report.planned_resets, report.planned_crashes
    );
    println!("planned over the longest run, plus per-command transient and");
    println!("attestation faults. Both faulted arms replay the exact same plan.\n");
    println!(
        "{:<11} {:>7} {:>6} {:>6} {:>6} {:>6} {:>7} {:>8} {:>9} {:>9}",
        "arm", "req/s", "done", "fail", "t/o", "shed", "retry", "goodput", "p50(ms)", "p99(ms)"
    );
    let mut last_load = None;
    for row in &report.rows {
        if last_load.is_some() && last_load != Some(row.offered_rps) {
            println!();
        }
        last_load = Some(row.offered_rps);
        println!(
            "{:<11} {:>7.0} {:>6} {:>6} {:>6} {:>6} {:>7} {:>8.1} {:>9.1} {:>9.1}",
            row.arm.name(),
            row.offered_rps,
            row.completed,
            row.failed,
            row.timeouts,
            row.shed + row.breaker_sheds,
            row.retries,
            row.goodput_rps,
            row.p50_ms,
            row.p99_ms
        );
    }

    println!();
    println!("takeaway: with no recovery, every PSP reset burns the in-flight");
    println!("launches and the template cache, and every transient is a dead");
    println!("request — goodput collapses. Bounded retries with backoff, deadline");
    println!("sheds, breaker-driven tier degradation, and quiescing the PSP across");
    println!("outages hold goodput through the same storm; the bill is the p99,");
    println!("which absorbs the backoff and re-measurement work.");
}

/// Hand-rolled JSON (the root package deliberately has no serialization
/// dependency). Field order is fixed and floats print with full precision,
/// so equal reports render byte-identically.
fn render_json(report: &ChaosReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"planned_resets\": {},\n  \"planned_crashes\": {},\n  \"rows\": [\n",
        report.planned_resets, report.planned_crashes
    ));
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"offered_rps\": {}, \"completed\": {}, \
             \"goodput_rps\": {}, \"shed\": {}, \"breaker_sheds\": {}, \
             \"timeouts\": {}, \"failed\": {}, \"retries\": {}, \"faults\": {}, \
             \"degraded_dispatches\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"time_degraded_ms\": {}}}{}\n",
            r.arm.name(),
            r.offered_rps,
            r.completed,
            r.goodput_rps,
            r.shed,
            r.breaker_sheds,
            r.timeouts,
            r.failed,
            r.retries,
            r.faults,
            r.degraded_dispatches,
            r.p50_ms,
            r.p99_ms,
            r.time_degraded_ms,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}
