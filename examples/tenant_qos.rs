//! Multi-tenant QoS: one mixed workload, three policy arms.
//!
//! ```text
//! cargo run --release --example tenant_qos            # paper-scale sweep
//! cargo run --release --example tenant_qos -- --quick
//! cargo run --release --example tenant_qos -- --quick --json
//! cargo run --release --example tenant_qos -- --quick --bench
//! ```
//!
//! Three tenants share one cluster: **premium** (latency-sensitive
//! trickle, WFQ weight 8), **batch** (a flood of heavyweight SNP-skewed
//! classes, weight 1, quota-capped), and **strict** (refuses any host
//! below the patched TCB floor) — while a staggered firmware rollout
//! sweeps the fleet mid-run. The **fifo** arm tags tenants but enforces
//! nothing: the flood queues ahead of the trickle and premium's p99 blows
//! past its deadline target. The **wfq** arm switches each PSP's queue to
//! virtual-finish-time weighted-fair queueing plus token-bucket quotas:
//! premium's p99 holds while batch keeps its throughput. The
//! **wfq+posture** arm adds posture-aware placement: the strict tenant is
//! only ever placed on hosts at or above its TCB floor, and the posture
//! violation counter must read zero.
//!
//! `--json` prints the full result as deterministic JSON: two runs with
//! the same flags emit byte-identical output (the CI replay gate diffs
//! them). `--bench` instead prints wall-clock throughput JSON, which is
//! machine-dependent and deliberately excluded from the replay gate.

use sevf_bench::BenchSnapshot;
use sevf_cluster::policysweep::{policy_sweep, PolicySweepConfig, PolicySweepReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench = args.iter().any(|a| a == "--bench");
    let cfg = if quick {
        PolicySweepConfig::quick()
    } else {
        PolicySweepConfig::paper_policy()
    };

    if bench {
        let started = std::time::Instant::now();
        let report = policy_sweep(&cfg).expect("policy sweep");
        let elapsed = started.elapsed().as_secs_f64();
        let completed: usize = report.arms.iter().map(|a| a.completed).sum();
        let decisions: usize = report.tenants.iter().map(|t| t.issued).sum();
        let snap = BenchSnapshot::new("policy", cfg.seed)
            .count("hosts", cfg.hosts as u64)
            .count("arms", report.arms.len() as u64)
            .count("requests_completed", completed as u64)
            .count("policy_decisions", decisions as u64)
            .wall(elapsed)
            .rate(
                "wall_us_per_request",
                1e6 * elapsed / completed.max(1) as f64,
            )
            .rate("decisions_per_sec", decisions as f64 / elapsed.max(1e-9));
        println!("{}", snap.render());
        return;
    }

    let report = policy_sweep(&cfg).expect("policy sweep");
    for arm in &report.arms {
        assert!(arm.conserved, "cluster conservation broke in {}", arm.arm);
        if arm.posture {
            assert_eq!(
                arm.posture_violations, 0,
                "a strict launch landed below its TCB floor"
            );
        }
    }
    for t in &report.tenants {
        assert!(
            t.conserved,
            "per-tenant conservation broke for {}/{}",
            t.arm, t.tenant
        );
    }

    if json {
        println!("{}", render_json(&report));
        return;
    }

    println!("three tenants, one cluster, three policy arms\n");
    println!(
        "workload (seed {:#x}): {} req/s over {} hosts — premium trickle",
        cfg.seed, cfg.rps, cfg.hosts
    );
    println!(
        "(LS, weight 8, p99 target {} ms), batch flood (weight 1, quota",
        cfg.premium_deadline_ms
    );
    println!(
        "{:.0} req/s, sheds first), strict (TCB >= 1 hosts only, rollout",
        cfg.batch_quota.rate_per_sec
    );
    println!(
        "starts at {:.0} ms, {:.0} ms stagger).\n",
        cfg.rollout.start.as_millis_f64(),
        cfg.rollout.stagger.as_millis_f64()
    );
    println!(
        "{:<12} {:<8} {:>6} {:>6} {:>5} {:>5} {:>5} {:>9} {:>9} {:>9} {:>5}",
        "arm",
        "tenant",
        "issued",
        "done",
        "shed",
        "rej",
        "t/o",
        "p50(ms)",
        "p99(ms)",
        "gput",
        "slo"
    );
    let mut last_arm = "";
    for t in &report.tenants {
        if !last_arm.is_empty() && last_arm != t.arm {
            println!();
        }
        last_arm = t.arm;
        println!(
            "{:<12} {:<8} {:>6} {:>6} {:>5} {:>5} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>5}",
            t.arm,
            t.tenant,
            t.issued,
            t.completed,
            t.shed + t.failed,
            t.rejected,
            t.timeouts,
            t.p50_ms,
            t.p99_ms,
            t.goodput_rps,
            if t.slo_met { "ok" } else { "MISS" }
        );
    }
    println!();
    for arm in &report.arms {
        println!(
            "{:<12} posture checks {:>5}, redirects {:>3}, violations {:>3}",
            arm.arm, arm.posture_checks, arm.posture_redirects, arm.posture_violations
        );
    }

    println!();
    println!("takeaway: with one FIFO line per PSP the batch flood queues ahead of");
    println!("the premium trickle and its tail collapses; weighted-fair queueing");
    println!("gives premium a protected share of every PSP without starving batch");
    println!("(quota rejects replace queue sheds at saturation), and posture-aware");
    println!("placement keeps the strict tenant off unpatched firmware through the");
    println!("whole rollout — zero posture violations, every tenant conserved.");
}

/// Hand-rolled JSON (the root package deliberately has no serialization
/// dependency). Field order is fixed and floats print with full precision,
/// so equal reports render byte-identically.
fn render_json(report: &PolicySweepReport) -> String {
    let mut out = String::from("{\n  \"arms\": [\n");
    for (i, a) in report.arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"scheduler\": \"{}\", \"quotas\": {}, \
             \"posture\": {}, \"completed\": {}, \"lost\": {}, \"rejected\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"posture_checks\": {}, \
             \"posture_redirects\": {}, \"posture_violations\": {}, \
             \"conserved\": {}}}{}\n",
            a.arm,
            a.scheduler,
            a.quotas,
            a.posture,
            a.completed,
            a.lost,
            a.rejected,
            a.p50_ms,
            a.p99_ms,
            a.posture_checks,
            a.posture_redirects,
            a.posture_violations,
            a.conserved,
            if i + 1 < report.arms.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"tenants\": [\n");
    for (i, t) in report.tenants.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"tenant\": \"{}\", \"issued\": {}, \
             \"completed\": {}, \"shed\": {}, \"timeouts\": {}, \"failed\": {}, \
             \"rejected\": {}, \"degraded\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"deadline_ms\": {}, \"slo_met\": {}, \"goodput_rps\": {}, \
             \"conserved\": {}}}{}\n",
            t.arm,
            t.tenant,
            t.issued,
            t.completed,
            t.shed,
            t.timeouts,
            t.failed,
            t.rejected,
            t.degraded,
            t.p50_ms,
            t.p99_ms,
            t.deadline_ms,
            t.slo_met,
            t.goodput_rps,
            t.conserved,
            if i + 1 < report.tenants.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}");
    out
}
