//! Trace explorer: per-request critical paths from the traced control planes.
//!
//! ```text
//! cargo run --release --example trace_explorer             # paper-scale
//! cargo run --release --example trace_explorer -- --quick
//! cargo run --release --example trace_explorer -- --quick --json
//! cargo run --release --example trace_explorer -- --chrome /tmp/trace.json
//! ```
//!
//! Re-runs three exemplar scenarios with span recording on — a cold launch
//! under PSP contention, a §6.2 template hit, and a request that failed
//! over off a dead host mid-outage — and prints each exemplar request's
//! per-phase critical path: admission, queue wait, the PSP and CPU boot
//! phases, retry backoff, and attestation, summing exactly to the latency
//! the metrics report for that request.
//!
//! `--json` prints the result as deterministic JSON (two runs emit
//! byte-identical output; the CI replay gate diffs them). `--chrome FILE`
//! additionally writes the failover scenario's full span set as a Chrome
//! `trace_event` file — load it in `chrome://tracing` or Perfetto.

use sevf_cluster::tracedemo::{scenarios, TraceScenarios, TracedRun};
use sevf_obs::{chrome_trace_json, prometheus_text};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let chrome = args
        .iter()
        .position(|a| a == "--chrome")
        .and_then(|i| args.get(i + 1).cloned());
    let s = scenarios(quick).expect("trace scenarios");

    if let Some(path) = &chrome {
        std::fs::write(path, chrome_trace_json(&s.failover.log)).expect("write chrome trace");
        eprintln!("wrote Chrome trace_event file to {path}");
    }

    if json {
        println!("{}", render_json(&s));
        return;
    }

    println!("per-request critical paths from the traced control planes\n");
    for run in [&s.cold, &s.template, &s.failover] {
        print_run(run);
    }
    println!("takeaway: the span trees tile — every nanosecond of a request's");
    println!("latency is attributed to exactly one phase, so the queue-wait");
    println!("share of the PSP bottleneck, the pre-encryption a template hit");
    println!("avoids, and the backoff a failover costs are all read directly");
    println!("off the same clock the metrics use. Re-run with --chrome FILE");
    println!("to open the failover run in chrome://tracing.");
}

fn print_run(run: &TracedRun) {
    let e = &run.exemplar;
    println!(
        "=== {} ===  (request {} of {} completed; {} span(s), {} marker(s))",
        run.scenario,
        e.request,
        run.completed,
        run.log.spans.len(),
        run.log.markers.len()
    );
    println!(
        "latency {:.3} ms over {} attempt(s), {} failover hop(s)",
        e.latency.as_millis_f64(),
        e.attempts,
        e.failover_hops
    );
    let total = e.latency.as_millis_f64();
    for (phase, d) in &e.phases {
        let ms = d.as_millis_f64();
        println!("  {phase:<22} {ms:>10.3} ms  {:>5.1}%", 100.0 * ms / total);
    }
    let sum: f64 = e.phases.iter().map(|(_, d)| d.as_millis_f64()).sum();
    println!("  {:<22} {sum:>10.3} ms  100.0%", "total");
    // One unified-registry line as a teaser; the full dump is one call away.
    let text = prometheus_text(&run.registry);
    if let Some(line) = text
        .lines()
        .find(|l| l.contains("completed_total") && !l.starts_with('#'))
    {
        println!(
            "  registry: {line} (+ {} more lines)",
            text.lines().count() - 1
        );
    }
    println!();
}

fn render_json(s: &TraceScenarios) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    let runs = [&s.cold, &s.template, &s.failover];
    for (i, run) in runs.iter().enumerate() {
        let e = &run.exemplar;
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"completed\": {}, \"spans\": {}, \
             \"markers\": {}, \"request\": {}, \"latency_ms\": {}, \
             \"attempts\": {}, \"failover_hops\": {}, \"phases\": [",
            run.scenario,
            run.completed,
            run.log.spans.len(),
            run.log.markers.len(),
            e.request,
            e.latency.as_millis_f64(),
            e.attempts,
            e.failover_hops,
        ));
        for (j, (phase, d)) in e.phases.iter().enumerate() {
            out.push_str(&format!(
                "{{\"phase\": \"{}\", \"ms\": {}}}{}",
                sevf_obs::json_escape(phase),
                d.as_millis_f64(),
                if j + 1 < e.phases.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}
