//! Fleet serving: cold vs template vs warm-pool launch tiers under load.
//!
//! ```text
//! cargo run --release --example fleet_serving          # paper-scale sweep
//! cargo run --release --example fleet_serving -- --quick
//! ```
//!
//! Serves the same seeded open-loop request stream — a mix of kernel
//! configs and SEV generations — at increasing offered loads under three
//! serving tiers. Cold serving serializes every launch's SEV commands on
//! the machine's single PSP core, so it saturates at `1000 / psp_ms` req/s
//! (Fig. 12's slope turned into a throughput ceiling). Shared-key templates
//! (§6.2) cut per-request PSP work to the activation command, and warm
//! pools (§7.1) skip the PSP entirely on hits, so each reuse tier sustains
//! strictly higher load before its p99 blows up and the admission queue
//! starts shedding.

use sevf_fleet::experiment::{serving_sweep, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::paper_serving()
    };
    let report = serving_sweep(&cfg).expect("fleet sweep");

    println!("serving a mixed launch stream against one PSP core\n");
    println!(
        "cold launches serialize {:.1} ms/VM of PSP work for this mix, so the",
        report.cold_psp_ms
    );
    println!(
        "cold tier cannot sustain more than ~{:.0} req/s no matter how many",
        report.cold_capacity_rps
    );
    println!("host cores are free.\n");
    println!(
        "{:<10} {:>7} {:>6} {:>6} {:>9} {:>9} {:>6} {:>6} {:>6}",
        "tier", "req/s", "done", "shed", "p50(ms)", "p99(ms)", "psp", "cpu", "maxq"
    );
    let mut last_tier = None;
    for row in &report.rows {
        if last_tier.is_some() && last_tier != Some(row.tier) {
            println!();
        }
        last_tier = Some(row.tier);
        println!(
            "{:<10} {:>7.0} {:>6} {:>6} {:>9.1} {:>9.1} {:>6.2} {:>6.2} {:>6}",
            row.tier.name(),
            row.offered_rps,
            row.completed,
            row.shed,
            row.p50_ms,
            row.p99_ms,
            row.psp_utilization,
            row.cpu_utilization,
            row.max_queue_depth
        );
    }

    println!();
    println!("takeaway: the PSP — not CPU — caps cold SEV serving. Templates");
    println!("raise the ceiling by sharing one measured launch per class; warm");
    println!("pools remove it on hits, at the cost of resident encrypted memory");
    println!("that cannot be deduplicated across guests.");
}
