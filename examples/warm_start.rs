//! Warm start (§7.1) and the shared-key future work (§6.2/§8), live.
//!
//! ```text
//! cargo run --release --example warm_start
//! ```
//!
//! Shows the three regimes the paper discusses:
//!
//! 1. **Cold boot** — the full SEVeriFast pipeline (what the paper makes
//!    86–93 % faster, but still ~4× a plain microVM).
//! 2. **Keep-alive warm invocation** — microseconds, but each kept-alive VM
//!    holds its working set and, under SEV, *none of it deduplicates*.
//! 3. **Shared-key template launch** — the paper's sketched PSP-bottleneck
//!    mitigation: near-cold security posture (same measured state), most of
//!    the cold-boot path, but almost zero serialized PSP time.

use severifast::prelude::*;
use severifast::vmm::config::LaunchMode;
use severifast::vmm::warm::dedupable_fraction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::new(31);

    // ---------------------------------------------------------------- 1
    let config = VmConfig::paper_default(BootPolicy::Severifast, KernelConfig::aws());
    let vm = MicroVm::new(config.clone())?;
    vm.register_expected(&mut machine)?;
    let (cold, mut alive_a) = vm.boot_keep_alive(&mut machine)?;
    println!(
        "cold boot:             {:>12}   (PSP busy {})",
        cold.boot_time(),
        cold.psp_busy
    );

    // ---------------------------------------------------------------- 2
    let warm = alive_a.invoke(&machine.cost);
    println!(
        "warm invocation:       {:>12}   (kept-alive guest)",
        warm.latency
    );
    let (_, alive_b) = vm.boot_keep_alive(&mut machine)?;
    let rent = alive_a.resident_bytes() as f64 / (1024.0 * 1024.0);
    let dedup = dedupable_fraction(&[&alive_a, &alive_b])?;
    println!(
        "keep-alive rent:       {rent:>9.1} MiB resident per VM, {:.1}% dedupable (§7.1)",
        dedup * 100.0
    );

    // For contrast: plain-text keep-alives dedup well.
    let plain = MicroVm::new(VmConfig::paper_default(
        BootPolicy::StockFirecracker,
        KernelConfig::aws(),
    ))?;
    let (_, plain_a) = plain.boot_keep_alive(&mut machine)?;
    let (_, plain_b) = plain.boot_keep_alive(&mut machine)?;
    println!(
        "  (non-SEV contrast:   {:.1}% dedupable)",
        dedupable_fraction(&[&plain_a, &plain_b])? * 100.0
    );

    // ---------------------------------------------------------------- 3
    let mut shared_config = config;
    shared_config.launch_mode = LaunchMode::SharedKeyTemplate;
    let shared_vm = MicroVm::new(shared_config)?;
    shared_vm.register_expected(&mut machine)?;
    let template = shared_vm.boot(&mut machine)?; // cold: caches the template
    let shared = shared_vm.boot(&mut machine)?; // warm: shared-key fast path
    println!(
        "\nshared-key launch:     {:>12}   (PSP busy {} vs {} cold — §6.2 future work)",
        shared.boot_time(),
        shared.psp_busy,
        template.psp_busy
    );
    println!(
        "  attestation still succeeds: {:?} (same launch measurement)",
        shared.outcome
    );
    println!("  caveat (§8): VMs sharing a key can deduplicate against each other —");
    println!("  isolation between them is weaker; only same-owner fleets should share.");

    Ok(())
}
