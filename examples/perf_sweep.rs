//! Perf sweep: how fast is the harness itself?
//!
//! ```text
//! cargo run --release --example perf_sweep            # full-scale sweep
//! cargo run --release --example perf_sweep -- --quick
//! cargo run --release --example perf_sweep -- --quick --json
//! cargo run --release --example perf_sweep -- --quick --bench
//! ```
//!
//! Two microbenchmarks over one seeded workload. **DES**: a fleet-shaped
//! job mix runs through the calendar-queue engine and through the heap
//! reference engine it replaced; the outcomes must be identical, and the
//! wall-clock ratio is the engine-swap speedup. **Hashing**: one page
//! image is measured three ways — full SHA-384 chain, incremental
//! re-measure after dirtying a small suffix (the §6.2 template-hit
//! shape), and the two-level paged scheme against a warm content cache —
//! all three agreeing on the digest.
//!
//! `--json` prints only the deterministic facts (job counts, the outcome
//! checksum, the launch digest, the agreement booleans): two runs with
//! the same flags emit byte-identical output, so the CI replay gate can
//! diff them. `--bench` prints the wall-clock `BENCH_perf.json` snapshot
//! that ci.sh appends to the trajectory and gates against the committed
//! baseline.

use sevf_bench::perf::{run_sweep, PerfConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench = args.iter().any(|a| a == "--bench");
    let cfg = if quick {
        PerfConfig::quick()
    } else {
        PerfConfig::full()
    };

    let sweep = run_sweep(cfg);
    assert!(
        sweep.des.engines_agree,
        "calendar and heap engines diverged on the same workload"
    );
    assert!(
        sweep.hash.incremental_matches_full,
        "incremental measurement diverged from the full re-hash"
    );

    if bench {
        println!("{}", sweep.snapshot().render());
        return;
    }

    if json {
        // Deterministic facts only — no wall-clock — so the replay gate
        // can byte-diff two runs.
        let d = &sweep.des;
        let h = &sweep.hash;
        println!(
            "{{\n  \"des_jobs\": {},\n  \"des_events\": {},\n  \
             \"outcome_checksum\": \"{:#018x}\",\n  \"engines_agree\": {},\n  \
             \"pages\": {},\n  \"dirty_pages\": {},\n  \
             \"full_digest\": \"{}\",\n  \"incremental_matches_full\": {},\n  \
             \"paged_cache_hits\": {}\n}}",
            d.jobs,
            d.events,
            d.outcome_checksum,
            d.engines_agree,
            h.pages,
            h.dirty,
            h.full_digest_hex,
            h.incremental_matches_full,
            h.paged_cache_hits
        );
        return;
    }

    let d = &sweep.des;
    let h = &sweep.hash;
    println!("harness raw speed, one seeded workload through every path\n");
    println!(
        "DES: {} jobs / {} events, identical outcomes from both engines",
        d.jobs, d.events
    );
    println!(
        "  heap (reference)  {:>9.3} us/request  {:>12.0} events/s",
        d.us_per_request_heap(),
        d.events as f64 / d.heap_secs
    );
    println!(
        "  calendar          {:>9.3} us/request  {:>12.0} events/s  ({:.2}x)",
        d.us_per_request(),
        d.events_per_sec(),
        d.speedup()
    );
    println!();
    println!(
        "hashing: {} pages ({} KiB), {} dirtied before re-measure, one digest",
        h.pages,
        h.bytes / 1024,
        h.dirty
    );
    println!("  full chain        {:>9.1} MB/s", h.full_mb_per_sec());
    println!(
        "  incremental       {:>9.1} MB/s effective (clean prefix reused)",
        h.incremental_mb_per_sec()
    );
    println!(
        "  paged, warm cache {:>9.1} MB/s effective ({} cache hits)",
        h.paged_warm_mb_per_sec(),
        h.paged_cache_hits
    );
    println!();
    println!("takeaway: the simulator's answer never depends on which engine or");
    println!("measurement path ran — only the wall-clock does. The calendar queue");
    println!("turns the event heap's O(log n) pops into O(1) bucket scans, and the");
    println!("incremental/paged measurement paths re-hash only what a template hit");
    println!("actually dirties, which is what makes the paper-scale sweeps cheap");
    println!("enough to replay byte-for-byte in CI.");
}
