//! Boot-policy comparison: every policy × every kernel config.
//!
//! ```text
//! cargo run --release --example boot_policy_comparison
//! cargo run --release --example boot_policy_comparison -- --quick
//! ```
//!
//! Reproduces the relationships behind Figs. 9–11 in one table: stock
//! Firecracker is fastest, SEVeriFast adds a bounded SEV tax (~4× on the
//! AWS kernel), the bzImage build edges out the uncompressed-vmlinux build,
//! and the QEMU/OVMF baseline is an order of magnitude slower than all of
//! them.

use severifast::experiments::ExperimentScale;
use severifast::prelude::*;

fn main() -> Result<(), VmmError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    let mut machine = Machine::new(5);

    println!(
        "{:<20} {:<12} {:>12} {:>12} {:>14}",
        "policy", "kernel", "boot(ms)", "e2e(ms)", "vs stock"
    );
    for kernel in scale.kernels() {
        let mut stock_ms = None;
        for policy in [
            BootPolicy::StockFirecracker,
            BootPolicy::Severifast,
            BootPolicy::SeverifastVmlinux,
            BootPolicy::QemuOvmf,
        ] {
            let report = scale.boot(&mut machine, policy, kernel.clone())?;
            let boot = report.boot_time().as_millis_f64();
            let total = report.total_time().as_millis_f64();
            let vs = match stock_ms {
                None => {
                    stock_ms = Some(boot);
                    "1.0x".to_string()
                }
                Some(stock) => format!("{:.1}x", boot / stock),
            };
            println!(
                "{:<20} {:<12} {:>12.1} {:>12.1} {:>14}",
                policy.name(),
                kernel.name,
                boot,
                total,
                vs
            );
        }
        println!();
    }

    println!("notes:");
    println!("  - boot(ms) is VMM exec → guest init (§6.1); e2e adds attestation");
    println!("  - the lupine config has no networking, so it never attests");
    println!("  - run with --quick for 16x-scaled images (fast debug runs)");
    Ok(())
}
