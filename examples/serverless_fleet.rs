//! Serverless fleet: concurrent cold boots and the PSP bottleneck.
//!
//! ```text
//! cargo run --release --example serverless_fleet
//! ```
//!
//! Models a serverless platform cold-starting a burst of function
//! instances. With SEV, every launch serializes through the machine's
//! single PSP core, so average boot time grows linearly with the burst size
//! (Fig. 12); without SEV, the 32-core host absorbs the burst almost flat.

use severifast::prelude::*;
use severifast::vmm::concurrent;

fn main() -> Result<(), VmmError> {
    let mut machine = Machine::new(7);

    println!("cold-starting bursts of AWS-kernel microVMs (256 MB, 1 vCPU)\n");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>12}",
        "policy", "burst", "mean(ms)", "p99-ish(ms)", "queued PSP"
    );

    for policy in [BootPolicy::Severifast, BootPolicy::StockFirecracker] {
        // One functional boot gives the per-VM work profile...
        let config = VmConfig::paper_default(policy, KernelConfig::aws());
        let vm = MicroVm::new(config)?;
        if policy.is_sev() {
            vm.register_expected(&mut machine)?;
        }
        let mut report = vm.boot(&mut machine)?;
        // Fig. 12 measures boot time (to init), not attestation.
        report.timeline = report.timeline.filtered(|p| p.counts_as_boot());

        // ...which the discrete-event engine replays at each burst size.
        for burst in [1usize, 10, 25, 50] {
            let point = concurrent::run_concurrent(&report, burst);
            println!(
                "{:<14} {:>6} {:>12.1} {:>12.1} {:>12}",
                policy.name(),
                burst,
                point.summary.mean,
                point.summary.p99,
                format!("{}", report.psp_busy.scale(burst as u64 - 1))
            );
        }
        println!();
    }

    println!("takeaway: the PSP is the serverless bottleneck — at 50 concurrent");
    println!("launches an SEV cold start averages seconds, while the same burst");
    println!("without SEV is flat. (The paper flags fixing this as future work.)");
    Ok(())
}
