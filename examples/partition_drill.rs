//! Partition drill: the cluster control plane under deterministic link
//! faults, a minority island, and a verifier blackout.
//!
//! ```text
//! cargo run --release --example partition_drill            # paper-scale sweep
//! cargo run --release --example partition_drill -- --quick
//! cargo run --release --example partition_drill -- --quick --json
//! cargo run --release --example partition_drill -- --quick --bench
//! ```
//!
//! Three arms over one measured catalog, each run twice over the *same*
//! seeded link schedule — identical latency draws, loss draws, and
//! partition windows — so the two rows of an arm differ only in the
//! control plane. **Partition**: one host's router↔host pair is cut
//! mid-stream and heals; the naive policy keeps dispatching into the
//! hole while the resilient one suspects the host via phi-accrual
//! heartbeats, routes around it, parks it behind an expired lease, and
//! sweeps its stranded work to the survivors once the lease bound makes
//! that safe. **Island**: two hosts form a minority island that keeps
//! serving work it cannot report back — epoch fencing discards its late
//! completions after the failover sweep, so every request is counted
//! exactly once. **Blackout**: the router↔verifier link goes dark during
//! a staggered TCB rollout; fail-closed refuses every launch until the
//! heal, fail-open serves stale cached verdicts within a bounded budget
//! and re-verifies afterwards.
//!
//! `--json` prints the full result as deterministic JSON: two runs with
//! the same flags emit byte-identical output (the CI replay gate diffs
//! them). `--bench` instead prints wall-clock throughput JSON, which is
//! machine-dependent and deliberately excluded from the replay gate.

use sevf_bench::BenchSnapshot;
use sevf_cluster::netsweep::{net_sweep, NetSweepConfig, NetSweepReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench = args.iter().any(|a| a == "--bench");
    let cfg = if quick {
        NetSweepConfig::quick()
    } else {
        NetSweepConfig::paper_partition()
    };

    if bench {
        let started = std::time::Instant::now();
        let report = net_sweep(&cfg).expect("partition sweep");
        let elapsed = started.elapsed().as_secs_f64();
        let requests: usize = report.rows.iter().map(|r| r.completed).sum();
        let messages: u64 = report
            .rows
            .iter()
            .map(|r| r.net_lost + r.net_nacks + r.stale_completions)
            .sum();
        let snap = BenchSnapshot::new("net", cfg.seed)
            .count("hosts", cfg.hosts as u64)
            .count("requests_completed", requests as u64)
            .count("net_events", messages)
            .wall(elapsed)
            .rate(
                "wall_us_per_request",
                1e6 * elapsed / requests.max(1) as f64,
            );
        println!("{}", snap.render());
        return;
    }

    let report = net_sweep(&cfg).expect("partition sweep");
    for row in &report.rows {
        assert!(
            row.conserved,
            "conservation broke in {}/{}",
            row.arm, row.policy
        );
    }
    for arm in ["partition", "island", "blackout"] {
        let get = |policy| {
            report
                .rows
                .iter()
                .find(|r| r.arm == arm && r.policy == policy)
                .expect("both policies present")
        };
        assert!(
            get("resilient").completed > get("naive").completed,
            "{arm}: the resilient policy must beat the naive one"
        );
    }

    if json {
        println!("{}", render_json(&report));
        return;
    }

    println!("serving a launch stream across a faulty network, twice per arm\n");
    println!(
        "link model (seed {:#x}): {:.0} µs latency + [0, {:.0}) µs jitter, {:.2}% loss;",
        cfg.seed,
        cfg.link.latency.as_millis_f64() * 1000.0,
        cfg.link.jitter.as_millis_f64() * 1000.0,
        cfg.link.loss * 100.0
    );
    println!(
        "every arm cuts its links from {:.1} s to {:.1} s; dispatch timeout {:.0} ms,",
        cfg.cut_start.as_secs_f64(),
        cfg.cut_end.as_secs_f64(),
        cfg.dispatch_timeout.as_millis_f64()
    );
    println!(
        "heartbeats every {:.0} ms, leases {:.0} ms renewed every {:.0} ms.\n",
        cfg.heartbeat_every.as_millis_f64(),
        cfg.lease.duration.as_millis_f64(),
        cfg.lease.renew_every.as_millis_f64()
    );
    println!(
        "{:<9} {:<9} {:>5} {:>5} {:>8} {:>8} {:>5} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "arm",
        "policy",
        "done",
        "lost",
        "failover",
        "msg-lost",
        "nacks",
        "suspect",
        "parked",
        "fenced",
        "stale-ok",
        "p50(ms)",
        "p99(ms)"
    );
    let mut last_arm = "";
    for row in &report.rows {
        if !last_arm.is_empty() && last_arm != row.arm {
            println!();
        }
        last_arm = row.arm;
        println!(
            "{:<9} {:<9} {:>5} {:>5} {:>8} {:>8} {:>5} {:>7} {:>6} {:>6} {:>8} {:>8.1} {:>8.1}",
            row.arm,
            row.policy,
            row.completed,
            row.shed + row.timeouts + row.failed,
            row.failovers,
            row.net_lost,
            row.net_nacks,
            row.suspicions,
            row.lease_expiries,
            row.stale_completions,
            row.stale_serves,
            row.p50_ms,
            row.p99_ms
        );
    }

    println!();
    println!("takeaway: a partition is not an outage — the cut host keeps serving");
    println!("work it can no longer report, so the naive policy both wastes its");
    println!("retry budget dispatching into the hole and risks double-serving on");
    println!("the heal. The resilient plane suspects the silence, fences the island");
    println!("behind expired leases, fails stranded work over exactly once under");
    println!("epoch fencing, and keeps the conservation ledger exact through the");
    println!("split-brain. When the verifier itself goes dark, failing open within");
    println!("a bounded staleness budget keeps launches flowing where fail-closed");
    println!("refuses them, and every stale verdict is re-verified on the heal.");
}

/// Hand-rolled JSON (the root package deliberately has no serialization
/// dependency). Field order is fixed and floats print with full precision,
/// so equal reports render byte-identically.
fn render_json(report: &NetSweepReport) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"policy\": \"{}\", \"completed\": {}, \
             \"shed\": {}, \"timeouts\": {}, \"failed\": {}, \"failovers\": {}, \
             \"retries\": {}, \"suspicions\": {}, \"suspicions_cleared\": {}, \
             \"false_suspicions\": {}, \"lease_expiries\": {}, \"net_lost\": {}, \
             \"net_timeouts\": {}, \"net_nacks\": {}, \"stale_completions\": {}, \
             \"double_completion_attempts\": {}, \"stale_serves\": {}, \
             \"unavailable_refusals\": {}, \"reverifies\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"conserved\": {}}}{}\n",
            r.arm,
            r.policy,
            r.completed,
            r.shed,
            r.timeouts,
            r.failed,
            r.failovers,
            r.retries,
            r.suspicions,
            r.suspicions_cleared,
            r.false_suspicions,
            r.lease_expiries,
            r.net_lost,
            r.net_timeouts,
            r.net_nacks,
            r.stale_completions,
            r.double_completion_attempts,
            r.stale_serves,
            r.unavailable_refusals,
            r.reverifies,
            r.p50_ms,
            r.p99_ms,
            r.conserved,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}
