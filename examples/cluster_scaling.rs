//! Cluster scaling: sharded multi-host serving with PSP-aware placement.
//!
//! ```text
//! cargo run --release --example cluster_scaling            # paper-scale sweep
//! cargo run --release --example cluster_scaling -- --quick
//! cargo run --release --example cluster_scaling -- --quick --json
//! ```
//!
//! Three arms over one measured catalog. **Scaling**: offered load grows
//! linearly with the host count for each serving tier — template and
//! warm-pool serving scale out near-linearly, while cold SEV serving stays
//! pinned at each host's PSP ceiling (Fig. 12 is a per-machine law; adding
//! hosts shards the bottleneck but never lifts the per-host number).
//! **Placement**: the same cluster and stream under three routers —
//! round-robin, join-shortest-PSP-backlog (power-of-two-choices), and
//! template-affinity over a seeded consistent-hash ring, which measures
//! each class's §6.2 template on one owner host instead of every host.
//! **Outage**: a whole host dies mid-stream under affinity placement; the
//! naive cluster permanently fails what the host was holding, the
//! resilient cluster fails queued and in-flight work over to survivors
//! (which re-measure the dead host's templates — §6.2 across machines),
//! rebalances the warm budget, and holds goodput.
//!
//! `--json` prints the full result as deterministic JSON: two runs with the
//! same flags emit byte-identical output (the CI replay gate diffs them).
//! `--bench` instead prints wall-clock throughput JSON, which is
//! machine-dependent and deliberately excluded from the replay gate.

use sevf_bench::BenchSnapshot;
use sevf_cluster::experiment::{cluster_sweep, ClusterSweepConfig, ClusterSweepReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench = args.iter().any(|a| a == "--bench");
    let cfg = if quick {
        ClusterSweepConfig::quick()
    } else {
        ClusterSweepConfig::paper_cluster()
    };

    if bench {
        let started = std::time::Instant::now();
        let report = cluster_sweep(&cfg).expect("cluster sweep");
        let elapsed = started.elapsed().as_secs_f64();
        let requests: u64 = report.rows.iter().map(|r| r.completed as u64).sum();
        let failovers: u64 = report.rows.iter().map(|r| r.failovers).sum();
        let hosts: u64 = report
            .rows
            .iter()
            .map(|r| r.hosts as u64)
            .max()
            .unwrap_or(0);
        let snap = BenchSnapshot::new("cluster", cfg.seed)
            .count("hosts", hosts)
            .count("requests_completed", requests)
            .count("failovers", failovers)
            .wall(elapsed)
            .rate(
                "wall_us_per_request",
                1e6 * elapsed / requests.max(1) as f64,
            );
        println!("{}", snap.render());
        return;
    }

    let report = cluster_sweep(&cfg).expect("cluster sweep");
    for row in &report.rows {
        assert!(
            row.conserved,
            "conservation broke in {}/{}",
            row.arm, row.label
        );
    }

    if json {
        println!("{}", render_json(&report));
        return;
    }

    println!("serving one launch stream across a cluster of PSP-bound hosts\n");
    println!(
        "per-host cold SEV ceiling ≈{:.0} req/s (seed {:#x}); every request",
        report.cold_ceiling_rps, cfg.seed
    );
    println!("stream, placement probe, and fault domain below replays from that seed.\n");
    println!(
        "{:<10} {:<15} {:>5} {:>6} {:>5} {:>8} {:>9} {:>5} {:>9} {:>9} {:>9}",
        "arm",
        "cell",
        "hosts",
        "req/s",
        "done",
        "goodput",
        "per-host",
        "hit",
        "failover",
        "p50(ms)",
        "p99(ms)"
    );
    let mut last_arm = "";
    for row in &report.rows {
        if !last_arm.is_empty() && last_arm != row.arm {
            println!();
        }
        last_arm = row.arm;
        println!(
            "{:<10} {:<15} {:>5} {:>6.0} {:>5} {:>8.1} {:>9.1} {:>4.0}% {:>9} {:>9.1} {:>9.1}",
            row.arm,
            row.label,
            row.hosts,
            row.offered_rps,
            row.completed,
            row.goodput_rps,
            row.per_host_goodput,
            row.cache_hit_rate * 100.0,
            row.failovers,
            row.p50_ms,
            row.p99_ms
        );
    }

    println!();
    println!("takeaway: the PSP bottleneck shards but never pools — cold per-host");
    println!("goodput is flat no matter how many hosts join, while template and");
    println!("warm tiers track the offered load. Affinity placement measures each");
    println!("template once cluster-wide instead of once per host, and when a host");
    println!("dies mid-stream the resilient cluster re-routes its work, re-measures");
    println!("its templates on the survivors, and rebalances the warm budget; the");
    println!("naive cluster just loses everything the dead host was holding.");
}

/// Hand-rolled JSON (the root package deliberately has no serialization
/// dependency). Field order is fixed and floats print with full precision,
/// so equal reports render byte-identically.
fn render_json(report: &ClusterSweepReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"cold_ceiling_rps\": {},\n  \"rows\": [\n",
        report.cold_ceiling_rps
    ));
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"label\": \"{}\", \"hosts\": {}, \
             \"tier\": \"{}\", \"placement\": \"{}\", \"offered_rps\": {}, \
             \"completed\": {}, \"goodput_rps\": {}, \"per_host_goodput\": {}, \
             \"shed\": {}, \"unroutable\": {}, \"breaker_sheds\": {}, \
             \"timeouts\": {}, \"failed\": {}, \"retries\": {}, \
             \"failovers\": {}, \"rebalances\": {}, \"faults\": {}, \
             \"cache_hit_rate\": {}, \"cache_misses\": {}, \"psp_skew\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"conserved\": {}}}{}\n",
            r.arm,
            r.label,
            r.hosts,
            r.tier.name(),
            r.placement.name(),
            r.offered_rps,
            r.completed,
            r.goodput_rps,
            r.per_host_goodput,
            r.shed,
            r.unroutable,
            r.breaker_sheds,
            r.timeouts,
            r.failed,
            r.retries,
            r.failovers,
            r.rebalances,
            r.faults,
            r.cache_hit_rate,
            r.cache_misses,
            r.psp_skew,
            r.p50_ms,
            r.p99_ms,
            r.conserved,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}
