//! Quickstart: boot one SEV-SNP microVM with SEVeriFast, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full paper pipeline on the AWS kernel config: the tenant
//! computes the expected launch measurement out of band, the VMM runs the
//! SEV launch flow and enters the boot verifier, the bzImage's bootstrap
//! loader decompresses the kernel, Linux boots to `init`, and remote
//! attestation provisions a secret. Prints the full instrumented timeline.

use severifast::prelude::*;

fn main() -> Result<(), VmmError> {
    // One physical host: single PSP, 32 cores, and a guest owner that
    // trusts this machine's chip.
    let mut machine = Machine::new(2024);

    // The paper's flagship configuration: SEVeriFast boot of the AWS
    // microVM kernel (43 MB vmlinux → 7.1 MB LZ4 bzImage), 1 vCPU, 256 MB.
    let config = VmConfig::paper_default(BootPolicy::Severifast, KernelConfig::aws());
    let vm = MicroVm::new(config)?;

    // Out-of-band (§4.2): compute the expected launch digest from the boot
    // verifier binary, the generated boot structures, and the component
    // hashes, and hand it to the guest owner.
    let expected = vm.expected_measurement()?;
    vm.register_expected(&mut machine)?;
    println!(
        "expected launch digest: {}…",
        severifast::crypto::hex::to_hex(&expected[..8])
    );

    // Boot.
    let report = vm.boot(&mut machine)?;

    println!("\n--- timeline ---");
    print!("{}", report.timeline.render());

    println!("\n--- summary ---");
    println!("outcome:           {:?}", report.outcome);
    println!(
        "boot time:         {} (to init, §6.1 definition)",
        report.boot_time()
    );
    println!(
        "end-to-end:        {} (incl. attestation)",
        report.total_time()
    );
    println!("pre-encryption:    {}", report.pre_encryption());
    println!(
        "PSP busy:          {} (the serialized Fig. 12 portion)",
        report.psp_busy
    );
    if let Some(secret) = &report.provisioned_secret {
        println!("provisioned:       {:?}", String::from_utf8_lossy(secret));
    }

    println!("\n--- instrumentation events (§6.1 debug-port/GHCB channel) ---");
    for event in report.timeline.events() {
        println!(
            "  {:>12}  {:?}  {}",
            format!("{}", event.at),
            event.channel,
            event.tag
        );
    }
    Ok(())
}
