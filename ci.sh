#!/usr/bin/env bash
# Repo CI gate. Run from the repo root:
#
#   ./ci.sh          # full gate: build, tests, fmt, clippy
#   ./ci.sh quick    # skip the release build (fast inner loop)
#
# Everything must pass offline — the workspace has no external
# dependencies by design (see DESIGN.md §2, "External crates").
set -euo pipefail
cd "$(dirname "$0")"

quick=${1:-}

if [[ "$quick" != quick ]]; then
  echo "==> cargo build --release --workspace"
  cargo build --release --workspace
fi

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> deterministic replay: fleet_chaos --quick --json twice, byte-diffed"
cargo run --release --quiet --example fleet_chaos -- --quick --json > /tmp/ci_chaos_a.json
cargo run --release --quiet --example fleet_chaos -- --quick --json > /tmp/ci_chaos_b.json
diff /tmp/ci_chaos_a.json /tmp/ci_chaos_b.json
rm -f /tmp/ci_chaos_a.json /tmp/ci_chaos_b.json

echo "==> deterministic replay: cluster_scaling --quick --json twice, byte-diffed"
cargo run --release --quiet --example cluster_scaling -- --quick --json > /tmp/ci_cluster_a.json
cargo run --release --quiet --example cluster_scaling -- --quick --json > /tmp/ci_cluster_b.json
diff /tmp/ci_cluster_a.json /tmp/ci_cluster_b.json
rm -f /tmp/ci_cluster_a.json /tmp/ci_cluster_b.json

echo "==> deterministic replay: trace_explorer --quick --json twice, byte-diffed"
cargo run --release --quiet --example trace_explorer -- --quick --json > /tmp/ci_trace_a.json
cargo run --release --quiet --example trace_explorer -- --quick --json > /tmp/ci_trace_b.json
diff /tmp/ci_trace_a.json /tmp/ci_trace_b.json
rm -f /tmp/ci_trace_a.json /tmp/ci_trace_b.json

echo "==> deterministic replay: attestation_storm --quick --json twice, byte-diffed"
cargo run --release --quiet --example attestation_storm -- --quick --json > /tmp/ci_att_a.json
cargo run --release --quiet --example attestation_storm -- --quick --json > /tmp/ci_att_b.json
diff /tmp/ci_att_a.json /tmp/ci_att_b.json
rm -f /tmp/ci_att_a.json /tmp/ci_att_b.json

echo "==> deterministic replay: partition_drill --quick --json twice, byte-diffed"
cargo run --release --quiet --example partition_drill -- --quick --json > /tmp/ci_net_a.json
cargo run --release --quiet --example partition_drill -- --quick --json > /tmp/ci_net_b.json
diff /tmp/ci_net_a.json /tmp/ci_net_b.json
rm -f /tmp/ci_net_a.json /tmp/ci_net_b.json

echo "==> bench snapshot: partition_drill --quick --bench (wall-clock; not diffed)"
cargo run --release --quiet --example partition_drill -- --quick --bench > BENCH_net.json
cat BENCH_net.json

echo "==> bench snapshot: attestation_storm --quick --bench (wall-clock; not diffed)"
cargo run --release --quiet --example attestation_storm -- --quick --bench > BENCH_attplane.json
cat BENCH_attplane.json

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
