#!/usr/bin/env bash
# Repo CI gate. Run from the repo root:
#
#   ./ci.sh          # full gate: build, tests, replay, bench, perf gate, lints
#   ./ci.sh quick    # fast inner loop: debug tests + one debug smoke replay
#
# Everything must pass offline — the workspace has no external
# dependencies by design (see DESIGN.md §2, "External crates").
#
# Perf gate knobs:
#   CI_PERF_TOLERANCE=25        allowed ± drift (percent) of
#                               wall_us_per_simulated_request vs the
#                               committed BENCH_baseline.json
#   CI_PERF_BASELINE=accept     re-seed BENCH_baseline.json from this
#                               run instead of gating (use after a real
#                               perf change or a hardware move, then
#                               commit the new baseline)
set -euo pipefail
cd "$(dirname "$0")"

mode=${1:-full}

# replay_gate <example> [debug] — run the example twice with
# `--quick --json` and byte-diff the outputs. The JSON arms emit only
# seed-derived facts (no wall-clock), so any diff is a determinism bug.
replay_gate() {
  local ex=$1
  local flag=--release
  [[ "${2:-}" == debug ]] && flag=""
  echo "==> deterministic replay: $ex --quick --json twice, byte-diffed"
  cargo run $flag --quiet --example "$ex" -- --quick --json > "/tmp/ci_${ex}_a.json"
  cargo run $flag --quiet --example "$ex" -- --quick --json > "/tmp/ci_${ex}_b.json"
  diff "/tmp/ci_${ex}_a.json" "/tmp/ci_${ex}_b.json"
  rm -f "/tmp/ci_${ex}_a.json" "/tmp/ci_${ex}_b.json"
}

# bench_snapshot <example> <outfile> [extra args...] — capture the
# example's `--bench` snapshot (wall-clock; machine-dependent, so it is
# recorded, not diffed).
bench_snapshot() {
  local ex=$1 out=$2
  shift 2
  echo "==> bench snapshot: $ex --bench -> $out (wall-clock; not diffed)"
  cargo run --release --quiet --example "$ex" -- --bench "$@" > "$out"
  cat "$out"
}

# json_field <file> <key> — pull one numeric field out of a
# BenchSnapshot JSON file (pretty-printed, one field per line; no jq in
# the base image, so plain awk).
json_field() {
  awk -v k="\"$2\":" '$1 == k { gsub(/,/, "", $2); print $2; exit }' "$1"
}

if [[ "$mode" == quick ]]; then
  echo "==> cargo test -q (tier-1: root package, debug)"
  cargo test -q

  echo "==> cargo test -q --workspace (debug)"
  cargo test -q --workspace

  replay_gate fleet_chaos debug

  echo "CI OK (quick)"
  exit 0
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

for ex in fleet_chaos cluster_scaling trace_explorer attestation_storm \
          partition_drill perf_sweep tenant_qos autoscale_drill; do
  replay_gate "$ex"
done

# Policy-off byte-identity gate: with `policy: None` (and, since the
# autoscaler landed, `autoscaler: None` and `workload: None`) the fleet
# and cluster services must replay the committed pre-policy outputs byte
# for byte (data/golden/ holds the `--quick --json` outputs captured
# before the policy layer landed). Any diff means a disabled layer
# perturbed the RNG streams or the dispatch order.
echo "==> policy-off golden replay: fleet_chaos + cluster_scaling vs data/golden/"
cargo run --release --quiet --example fleet_chaos -- --quick --json > /tmp/ci_golden_fleet.json
diff /tmp/ci_golden_fleet.json data/golden/fleet_chaos_quick.json
cargo run --release --quiet --example cluster_scaling -- --quick --json > /tmp/ci_golden_cluster.json
diff /tmp/ci_golden_cluster.json data/golden/cluster_scaling_quick.json
rm -f /tmp/ci_golden_fleet.json /tmp/ci_golden_cluster.json

bench_snapshot partition_drill   BENCH_net.json      --quick
bench_snapshot attestation_storm BENCH_attplane.json --quick
bench_snapshot fleet_chaos       BENCH_chaos.json    --quick
bench_snapshot cluster_scaling   BENCH_cluster.json  --quick
bench_snapshot tenant_qos        BENCH_policy.json   --quick
bench_snapshot autoscale_drill   BENCH_autoscale.json --quick
# Full scale on purpose: the perf gate needs the 12M-job workload where
# the calendar/heap gap is meaningful; quick scale fits in cache and
# under-reports it.
bench_snapshot perf_sweep BENCH_perf.json

echo "==> appending BENCH_perf.json to BENCH_trajectory.jsonl"
tr -d '\n' < BENCH_perf.json | tr -s ' ' >> BENCH_trajectory.jsonl
echo >> BENCH_trajectory.jsonl

tol=${CI_PERF_TOLERANCE:-25}
cur=$(json_field BENCH_perf.json wall_us_per_simulated_request)
if [[ "${CI_PERF_BASELINE:-}" == accept ]]; then
  echo "==> perf gate: CI_PERF_BASELINE=accept — re-seeding BENCH_baseline.json"
  cp BENCH_perf.json BENCH_baseline.json
elif [[ ! -f BENCH_baseline.json ]]; then
  echo "==> perf gate: no BENCH_baseline.json — seeding it from this run"
  cp BENCH_perf.json BENCH_baseline.json
else
  base=$(json_field BENCH_baseline.json wall_us_per_simulated_request)
  echo "==> perf gate: wall_us_per_simulated_request $cur vs baseline $base (±${tol}%)"
  if ! awk -v cur="$cur" -v base="$base" -v tol="$tol" \
      'BEGIN { exit !(cur <= base * (1 + tol / 100) &&
                      cur >= base * (1 - tol / 100)) }'; then
    echo "PERF GATE FAILED: wall_us_per_simulated_request drifted more than"
    echo "${tol}% from the committed baseline. If the change is intentional"
    echo "(real perf work, new hardware), rerun with CI_PERF_BASELINE=accept"
    echo "and commit the refreshed BENCH_baseline.json; otherwise bisect the"
    echo "regression before merging. CI_PERF_TOLERANCE widens the band."
    exit 1
  fi
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
