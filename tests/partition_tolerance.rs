//! Partition-tolerance acceptance tests: the three-arm drill, the exact
//! conservation ledger through a split-brain, and the full error surface
//! of the network-aware control plane.

use std::error::Error;

use sevf_cluster::netsweep::{net_sweep, NetSweepConfig};
use sevf_cluster::prelude::*;
use sevf_cluster::ClusterError;
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::workload::RequestMix;
use sevf_fleet::FleetError;
use sevf_net::{
    DetectorConfig, DetectorError, LeaseConfig, LeaseError, LinkSpec, NetConfig, NetError,
    Partition, PartitionScope,
};
use sevf_sim::Nanos;

#[test]
fn resilient_policy_beats_naive_in_every_arm_and_conserves() {
    let report = net_sweep(&NetSweepConfig::quick()).expect("partition sweep");
    assert_eq!(report.rows.len(), 6, "three arms, two policies each");
    for row in &report.rows {
        assert!(
            row.conserved,
            "conservation broke in {}/{}",
            row.arm, row.policy
        );
    }
    for arm in ["partition", "island", "blackout"] {
        let get = |policy| {
            report
                .rows
                .iter()
                .find(|r| r.arm == arm && r.policy == policy)
                .expect("both policies present")
        };
        let naive = get("naive");
        let resilient = get("resilient");
        assert!(
            resilient.completed > naive.completed,
            "{arm}: resilient completed {} must strictly beat naive {}",
            resilient.completed,
            naive.completed
        );
        // The naive policy has no detector and no leases, so the
        // resilient machinery must be provably off in its rows.
        assert_eq!(naive.suspicions, 0);
        assert_eq!(naive.lease_expiries, 0);
    }
    // The blackout arm is the degradation story: fail-closed refuses,
    // fail-open serves stale within budget and re-verifies on heal.
    let closed = report
        .rows
        .iter()
        .find(|r| r.arm == "blackout" && r.policy == "naive")
        .unwrap();
    let open = report
        .rows
        .iter()
        .find(|r| r.arm == "blackout" && r.policy == "resilient")
        .unwrap();
    assert!(closed.unavailable_refusals > 0);
    assert!(open.stale_serves > 0);
    assert!(open.reverifies > 0, "stale verdicts re-verify on heal");
}

#[test]
fn split_brain_ledger_is_exact_with_zero_double_counted_completions() {
    // A minority island of two hosts keeps serving work it cannot report
    // while the router fails that same work over to the survivor. At the
    // heal the island's late completions arrive under a stale dispatch
    // epoch and must be discarded — the five terminal states partition
    // the issued stream with no remainder and no double counting.
    let cut = |host| Partition {
        scope: PartitionScope::Host(host),
        start: Nanos::from_millis(400),
        end: Nanos::from_millis(1400),
    };
    let config = ClusterConfig {
        mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
        placement: PlacementPolicy::JsqPsp,
        recovery: RecoveryConfig::resilient(0x4E37),
        net: Some(NetConfig {
            link: LinkSpec::datacenter(),
            partitions: vec![cut(1), cut(2)],
            horizon: Nanos::from_secs(20),
            dispatch_timeout: Nanos::from_millis(50),
            heartbeat_every: Nanos::from_millis(50),
            detector: Some(DetectorConfig::default()),
            lease: Some(LeaseConfig {
                duration: Nanos::from_millis(300),
                renew_every: Nanos::from_millis(100),
            }),
        }),
        ..ClusterConfig::open_loop(3, ServingTier::Template, 120.0, 240)
    };
    let catalog = Catalog::build(0x4E37, &ClassSpec::quick_test_classes()).unwrap();
    let report = ClusterService::new(catalog, config).unwrap().run();
    let m = &report.metrics;
    assert_eq!(
        m.completed as u64 + m.shed + m.breaker_sheds + m.timeouts + m.failed,
        m.issued as u64,
        "split-brain broke the conservation ledger"
    );
    assert!(m.suspicions > 0, "the island must be suspected");
    assert!(m.lease_expiries > 0, "island hosts must park");
    assert!(m.net_lost > 0, "the cut must lose messages");
    assert!(m.completed > 0, "the survivor must keep serving");
    // Whatever duplicates the island produced were attempts the epoch
    // fence suppressed, never extra completions in the ledger above.
    assert!(m.completed <= m.issued);
}

/// Walks a chained error: every hop must render a non-empty Display and
/// the chain must terminate.
fn walk(err: &(dyn Error + 'static)) -> Vec<String> {
    let mut hops = Vec::new();
    let mut cur: Option<&(dyn Error + 'static)> = Some(err);
    while let Some(e) = cur {
        let text = e.to_string();
        assert!(!text.is_empty(), "an error variant rendered empty");
        hops.push(text);
        cur = e.source();
        assert!(hops.len() < 8, "error chain did not terminate");
    }
    hops
}

#[test]
fn every_error_variant_displays_and_chains_to_its_root() {
    // NetError: every variant, with sources where they exist.
    let net_cases: Vec<(NetError, bool, &str)> = vec![
        (NetError::Config("horizon must be positive"), false, "net"),
        (NetError::from(DetectorError::WindowZero), true, "detector"),
        (
            NetError::from(DetectorError::ThresholdTooLow),
            true,
            "detector",
        ),
        (NetError::from(LeaseError::DurationZero), true, "lease"),
        (NetError::from(LeaseError::RenewTooSlow), true, "lease"),
    ];
    for (err, has_source, what) in &net_cases {
        let hops = walk(err);
        assert_eq!(
            err.source().is_some(),
            *has_source,
            "{what}: unexpected source for {err}"
        );
        assert!(hops.len() == if *has_source { 2 } else { 1 });
    }

    // FleetError: every variant.
    let fleet_cases: Vec<(FleetError, bool)> = vec![
        (
            FleetError::Boot(sevf_vmm::VmmError::Config("no kernel")),
            true,
        ),
        (FleetError::NoClasses, false),
        (FleetError::FaultPlan("period must be positive"), false),
        (
            FleetError::Recovery("max_attempts must be at least 1"),
            false,
        ),
        (
            FleetError::AttPlane(sevf_attplane::AttPlaneError::Config(
                "sig_check must be positive",
            )),
            true,
        ),
        (
            FleetError::Net(NetError::from(LeaseError::DurationZero)),
            true,
        ),
        (
            FleetError::Policy(sevf_policy::PolicyError::Config(
                "tenant weight must be > 0",
            )),
            true,
        ),
    ];
    for (err, has_source) in &fleet_cases {
        walk(err);
        assert_eq!(err.source().is_some(), *has_source, "fleet: {err}");
    }

    // AttPlaneError: every variant.
    let att_cases: Vec<sevf_attplane::AttPlaneError> = vec![
        sevf_attplane::AttPlaneError::Config("cache_ttl must be positive"),
        sevf_attplane::AttPlaneError::UnknownHost { host: 9, hosts: 4 },
    ];
    for err in &att_cases {
        walk(err);
        assert!(err.source().is_none());
    }

    // ClusterError: every variant; the net variant chains two deep
    // (ClusterError -> NetError -> DetectorError).
    let cluster_cases: Vec<(ClusterError, usize)> = vec![
        (ClusterError::Config("at least one host"), 1),
        (ClusterError::FaultPlan("period must be positive"), 1),
        (ClusterError::Recovery("deadline must be positive"), 1),
        (ClusterError::from(FleetError::NoClasses), 2),
        (
            ClusterError::from(sevf_attplane::AttPlaneError::UnknownHost { host: 1, hosts: 1 }),
            2,
        ),
        (
            ClusterError::from(NetError::from(DetectorError::WindowZero)),
            3,
        ),
        (
            ClusterError::from(sevf_policy::PolicyError::Config("tenant registry is empty")),
            2,
        ),
        (
            ClusterError::from(FleetError::Policy(
                sevf_policy::PolicyError::UnknownTenant {
                    tenant: 7,
                    tenants: 2,
                },
            )),
            3,
        ),
        // The autoscaler chains one deep for config knobs and two deep
        // when a workload curve is the root cause
        // (ClusterError -> ScaleError -> CurveError).
        (
            ClusterError::from(sevf_scale::ScaleError::Config(
                "max_hosts must be >= min_hosts",
            )),
            2,
        ),
        (
            ClusterError::from(sevf_scale::ScaleError::Workload(
                sevf_scale::CurveError::PeakBelowBase,
            )),
            3,
        ),
    ];
    for (err, depth) in &cluster_cases {
        let hops = walk(err);
        assert_eq!(hops.len(), *depth, "cluster chain depth for: {err}");
    }

    // PolicyError: a chain leaf — depth 1 on its own, depth 2 behind the
    // fleet wrapper (walked above behind the cluster wrapper at depth 3).
    let policy_cases: Vec<sevf_policy::PolicyError> = vec![
        sevf_policy::PolicyError::Config("quota needs rate > 0 and burst >= 1"),
        sevf_policy::PolicyError::UnknownTenant {
            tenant: 3,
            tenants: 1,
        },
    ];
    for err in &policy_cases {
        let hops = walk(err);
        assert_eq!(hops.len(), 1, "policy errors are leaves: {err}");
        assert_eq!(
            walk(&FleetError::Policy(err.clone())).len(),
            2,
            "fleet wrapper adds exactly one hop"
        );
    }
}
