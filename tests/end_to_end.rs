//! Workspace integration tests: full boots across policies, kernels, and
//! SEV generations, exercising every crate together.

use severifast::prelude::*;

fn machine() -> Machine {
    Machine::new(0xE2E)
}

#[test]
fn all_policies_boot_all_kernels() {
    let mut m = machine();
    for policy in [
        BootPolicy::StockFirecracker,
        BootPolicy::Severifast,
        BootPolicy::SeverifastVmlinux,
        BootPolicy::QemuOvmf,
    ] {
        let mut config = VmConfig::test_tiny(policy);
        if policy == BootPolicy::SeverifastVmlinux {
            config.kernel_codec = Codec::None;
        }
        let vm = MicroVm::new(config).unwrap();
        if policy.is_sev() {
            vm.register_expected(&mut m).unwrap();
        }
        let report = vm.boot(&mut m).unwrap();
        assert!(
            matches!(
                report.outcome,
                BootOutcome::Running | BootOutcome::RunningUnattested
            ),
            "{policy}"
        );
    }
}

#[test]
fn every_bzimage_codec_boots() {
    let mut m = machine();
    for codec in [Codec::Lz4, Codec::Deflate, Codec::Zstd] {
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.kernel_codec = codec;
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();
        let report = vm.boot(&mut m).unwrap();
        assert_eq!(report.outcome, BootOutcome::Running, "codec {codec}");
    }
}

#[test]
fn compressed_initrd_boots_but_costs_more() {
    let mut m = machine();
    let mut raw = VmConfig::test_tiny(BootPolicy::Severifast);
    raw.initrd_size = 512 * 1024;
    let mut lz4 = raw.clone();
    lz4.initrd_codec = Codec::Lz4;

    let vm_raw = MicroVm::new(raw).unwrap();
    vm_raw.register_expected(&mut m).unwrap();
    let report_raw = vm_raw.boot(&mut m).unwrap();

    let vm_lz4 = MicroVm::new(lz4).unwrap();
    vm_lz4.register_expected(&mut m).unwrap();
    let report_lz4 = vm_lz4.boot(&mut m).unwrap();

    assert_eq!(report_lz4.outcome, BootOutcome::Running);
    // §3.3: our initrd content barely compresses, so the compressed boot
    // pays decompression without saving much copy+hash — it must not win.
    let raw_ms = report_raw.boot_time().as_millis_f64();
    let lz4_ms = report_lz4.boot_time().as_millis_f64();
    assert!(
        lz4_ms > raw_ms * 0.98,
        "compressed initrd should not win: raw {raw_ms:.2} vs lz4 {lz4_ms:.2}"
    );
}

#[test]
fn measurement_is_deterministic_across_machines() {
    // The expected digest depends only on the VM configuration, never on
    // the machine (chip keys must not leak into the measurement).
    let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
    let digest_a = vm.expected_measurement().unwrap();

    let mut m1 = Machine::new(1);
    let mut m2 = Machine::new(2);
    vm.register_expected(&mut m1).unwrap();
    vm.register_expected(&mut m2).unwrap();
    let r1 = vm.boot(&mut m1).unwrap();
    let r2 = vm.boot(&mut m2).unwrap();
    assert_eq!(r1.measurement.unwrap(), digest_a);
    assert_eq!(r2.measurement.unwrap(), digest_a);
}

#[test]
fn any_config_change_changes_the_measurement() {
    let base = VmConfig::test_tiny(BootPolicy::Severifast);
    let digest = |config: VmConfig| {
        MicroVm::new(config)
            .unwrap()
            .expected_measurement()
            .unwrap()
    };
    let base_digest = digest(base.clone());

    // Different kernel content.
    let mut other_kernel = base.clone();
    other_kernel.kernel = KernelConfig {
        name: "different".into(),
        ..KernelConfig::test_tiny()
    };
    assert_ne!(digest(other_kernel), base_digest);

    // Different codec (different bzImage bytes → different hash page).
    let mut other_codec = base.clone();
    other_codec.kernel_codec = Codec::Deflate;
    assert_ne!(digest(other_codec), base_digest);

    // Different vCPU count (different mptable and VMSA count).
    let mut more_cpus = base.clone();
    more_cpus.vcpus = 2;
    assert_ne!(digest(more_cpus), base_digest);

    // Different initrd (different hash page).
    let mut bigger_initrd = base.clone();
    bigger_initrd.initrd_size = 128 * 1024;
    assert_ne!(digest(bigger_initrd), base_digest);
}

#[test]
fn sev_generations_boot_with_matching_owner_policy() {
    for generation in [
        SevGeneration::Sev,
        SevGeneration::SevEs,
        SevGeneration::SevSnp,
    ] {
        let mut m = machine();
        m.owner.set_required_generation(generation);
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.generation = generation;
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();
        let report = vm.boot(&mut m).unwrap();
        assert_eq!(
            report.outcome,
            BootOutcome::Running,
            "{}",
            generation.name()
        );
    }
}

#[test]
fn snp_boot_is_slowest_generation() {
    let mut times = Vec::new();
    for generation in [
        SevGeneration::Sev,
        SevGeneration::SevEs,
        SevGeneration::SevSnp,
    ] {
        let mut m = machine();
        m.owner.set_required_generation(generation);
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.generation = generation;
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();
        times.push(vm.boot(&mut m).unwrap().boot_time());
    }
    assert!(times[0] < times[2], "SEV should boot faster than SNP");
    assert!(times[1] < times[2], "SEV-ES should boot faster than SNP");
}

#[test]
fn psp_accumulates_across_boots_on_one_machine() {
    let mut m = machine();
    let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
    vm.register_expected(&mut m).unwrap();
    vm.boot(&mut m).unwrap();
    let after_one = m.psp.total_busy;
    vm.boot(&mut m).unwrap();
    assert!(m.psp.total_busy > after_one.scale(2).saturating_sub(Nanos::from_millis(1)));
}

#[test]
fn stock_boot_has_no_sev_artifacts() {
    let mut m = machine();
    let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::StockFirecracker)).unwrap();
    let report = vm.boot(&mut m).unwrap();
    assert_eq!(report.measurement, None);
    assert_eq!(report.psp_busy, Nanos::ZERO);
    assert_eq!(report.pre_encryption(), Nanos::ZERO);
    assert!(vm.expected_measurement().is_err());
}

#[test]
fn multi_vcpu_guests_boot() {
    let mut m = machine();
    for vcpus in [2u64, 4, 8] {
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.vcpus = vcpus;
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();
        let report = vm.boot(&mut m).unwrap();
        assert_eq!(report.outcome, BootOutcome::Running, "{vcpus} vcpus");
    }
}
