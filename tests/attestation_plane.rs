//! Storm-consistency: the attestation steps `run_traced` records must
//! agree — exactly, label by label — with the counters the attestation
//! plane reports, through a TCB rollout and a key-compromise drill.
//!
//! Mirrors `tests/observability.rs`: every span-side count equals its
//! metrics counter, the structural battery still holds with attestation
//! steps spliced into the launch blueprints, and tracing never changes
//! the report.

use sevf_attplane::{
    AttPlaneConfig, VerifyMode, STEP_BATCH_JOIN, STEP_BATCH_SETUP, STEP_CERT_FETCH, STEP_CERT_HIT,
    STEP_QUEUE_WAIT, STEP_REVOKED, STEP_VERIFY,
};
use sevf_cluster::{ClusterConfig, ClusterService, PlacementPolicy, RevocationDrill, TcbRollout};
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::service::ServingTier;
use sevf_fleet::workload::RequestMix;
use sevf_obs::{invariants, MarkerKind, Outcome, TraceLog};
use sevf_sim::Nanos;

fn catalog() -> Catalog {
    Catalog::build(17, &ClassSpec::quick_test_classes()).unwrap()
}

fn storm_config(mode: VerifyMode) -> ClusterConfig {
    ClusterConfig {
        mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
        placement: PlacementPolicy::JsqPsp,
        seed: 0x5EF0,
        recovery: RecoveryConfig::resilient(0x5EF0),
        attestation: Some(AttPlaneConfig::verifier(mode)),
        tcb_rollout: Some(TcbRollout {
            start: Nanos::from_millis(500),
            stagger: Nanos::from_millis(150),
        }),
        ..ClusterConfig::open_loop(3, ServingTier::Template, 120.0, 240)
    }
}

/// Every attestation step label in the trace, counted, against the
/// plane's counter for the same event.
fn assert_steps_match_counters(log: &TraceLog, att: &sevf_attplane::AttPlaneMetrics) {
    assert_eq!(
        log.count_step_label(STEP_QUEUE_WAIT) as u64,
        att.queue_waits
    );
    assert_eq!(
        log.count_step_label(STEP_CERT_FETCH) as u64,
        att.cert_fetches
    );
    assert_eq!(log.count_step_label(STEP_CERT_HIT) as u64, att.cert_hits);
    assert_eq!(
        log.count_step_label(STEP_BATCH_SETUP) as u64,
        att.batch_setups
    );
    assert_eq!(
        log.count_step_label(STEP_BATCH_JOIN) as u64,
        att.batch_joins
    );
    assert_eq!(log.count_step_label(STEP_VERIFY) as u64, att.verifications);
    assert_eq!(
        log.count_step_label(STEP_REVOKED) as u64,
        att.revoked_verdicts
    );
}

#[test]
fn storm_spans_match_plane_counters_exactly() {
    for mode in [
        VerifyMode::Naive,
        VerifyMode::Cached,
        VerifyMode::CachedBatched,
    ] {
        let (report, log) = ClusterService::new(catalog(), storm_config(mode))
            .unwrap()
            .run_traced();
        let m = &report.metrics;
        assert!(m.completed > 0, "{mode:?} completed nothing");
        assert!(m.conserved(), "{mode:?} broke conservation");
        let att = report.attestation.expect("attestation plane was on");
        assert!(att.verifications > 0);
        assert_steps_match_counters(&log, &att);

        // The rollout re-measured every host exactly once, and the plane
        // counted every bump.
        assert_eq!(log.count_marker(MarkerKind::TcbRollout), 3);
        assert_eq!(att.tcb_bumps, 3);
        assert_eq!(log.count_marker(MarkerKind::Revocation), 0);

        // The structural battery still holds with attestation steps
        // spliced into the launch blueprints: spans nest, children tile,
        // and every completed root's leaves sum to its duration.
        invariants::spans_nest(&log).unwrap();
        invariants::children_tile(&log).unwrap();
        invariants::capacity1_serialized(&log, "psp").unwrap();
        for request in log.requests_with_outcome(Outcome::Completed) {
            invariants::single_request_root(&log, request).unwrap();
            let root = log.request_root(request).unwrap();
            assert_eq!(
                invariants::leaf_duration_sum(&log, request),
                root.duration()
            );
        }
    }
}

#[test]
fn revocation_drill_spans_and_counters_agree() {
    let config = ClusterConfig {
        tcb_rollout: None,
        revocation: Some(RevocationDrill {
            host: 1,
            at: Nanos::from_millis(500),
        }),
        ..storm_config(VerifyMode::CachedBatched)
    };
    let (report, log) = ClusterService::new(catalog(), config).unwrap().run_traced();
    let m = &report.metrics;
    assert!(m.conserved(), "conservation broke through the drill");
    assert!(m.failovers > 0, "the revoked host's guests must fail over");
    let att = report.attestation.expect("attestation plane was on");
    assert_eq!(att.revocations, 1);
    assert_eq!(log.count_marker(MarkerKind::Revocation), 1);
    assert_eq!(log.count_marker(MarkerKind::TcbRollout), 0);
    assert_steps_match_counters(&log, &att);
    assert_eq!(log.failovers() as u64, m.failovers);
    invariants::spans_nest(&log).unwrap();
    invariants::children_tile(&log).unwrap();
}

#[test]
fn traced_storm_replays_byte_for_byte() {
    let run = || {
        ClusterService::new(catalog(), storm_config(VerifyMode::CachedBatched))
            .unwrap()
            .run_traced()
    };
    let (a, log_a) = run();
    let (b, log_b) = run();
    assert_eq!(a.metrics.completed, b.metrics.completed);
    assert_eq!(a.metrics.latencies_ms, b.metrics.latencies_ms);
    assert_eq!(a.attestation, b.attestation);
    assert_eq!(log_a.spans.len(), log_b.spans.len());
    assert_eq!(log_a.outcomes.len(), log_b.outcomes.len());
}

#[test]
fn tracing_never_changes_an_attested_report() {
    let plain = ClusterService::new(catalog(), storm_config(VerifyMode::Cached))
        .unwrap()
        .run();
    let (traced, _) = ClusterService::new(catalog(), storm_config(VerifyMode::Cached))
        .unwrap()
        .run_traced();
    assert_eq!(plain.metrics.completed, traced.metrics.completed);
    assert_eq!(plain.metrics.latencies_ms, traced.metrics.latencies_ms);
    assert_eq!(plain.attestation, traced.attestation);
}
