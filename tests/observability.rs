//! Cross-layer observability invariants: the span trees `run_traced`
//! assembles must agree — exactly, on the shared virtual clock — with the
//! metrics the fleet and cluster control planes report.
//!
//! The battery ([`sevf_obs::invariants`]) checks, per completed request:
//! one root span, children nested and tiling their parents, PSP spans on
//! capacity-1 resources never overlapping (Fig. 12 structurally), and the
//! root/leaf-sum durations equal to the latency the metrics recorded. The
//! chaos tests replay the seeded fault storm and require every span-side
//! count (retries, sheds, faults, failovers) to match its counter.

use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::chaos::ChaosConfig;
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::service::{FleetConfig, FleetService, ServingTier};
use sevf_fleet::workload::RequestMix;
use sevf_obs::{invariants, Histogram, MarkerKind, Outcome, TraceLog};
use sevf_sim::fault::{FaultConfig, FaultKind, FaultPlan};
use sevf_sim::rng::XorShift64;
use sevf_sim::{stats, Nanos};

fn catalog() -> Catalog {
    Catalog::build(17, &ClassSpec::quick_test_classes()).unwrap()
}

/// Completed requests paired with their metrics latencies. Fleet latencies
/// are recorded in completion order, which is exactly the order terminal
/// outcomes were recorded in, so the zip is positional and exact.
fn completed_pairs(log: &TraceLog, latencies: &[Nanos]) -> Vec<(usize, Nanos)> {
    let requests = log.requests_with_outcome(Outcome::Completed);
    assert_eq!(requests.len(), latencies.len());
    requests
        .into_iter()
        .zip(latencies.iter().copied())
        .collect()
}

#[test]
fn fleet_fault_free_spans_obey_the_battery() {
    let config = FleetConfig {
        mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
        ..FleetConfig::open_loop(ServingTier::Cold, 40.0, 60)
    };
    let (report, log) = FleetService::new(catalog(), config).run_traced();
    assert!(report.metrics.completed > 0);
    let pairs = completed_pairs(&log, &report.metrics.latencies);
    invariants::check_completed(&log, &pairs).unwrap();
    // Fault-free run: no fault markers, no retries, no backoff spans.
    assert_eq!(log.total_faults(), 0);
    assert_eq!(log.retry_waits(), 0);
}

#[test]
fn fleet_template_and_warm_tiers_also_pass_the_battery() {
    for tier in [ServingTier::Template, ServingTier::WarmPool] {
        let config = FleetConfig {
            warm_target: 8,
            ..FleetConfig::open_loop(tier, 60.0, 80)
        };
        let (report, log) = FleetService::new(catalog(), config).run_traced();
        assert!(report.metrics.completed > 0, "{tier:?} completed nothing");
        let pairs = completed_pairs(&log, &report.metrics.latencies);
        invariants::check_completed(&log, &pairs).unwrap();
    }
}

/// The PR-2 fault storm, replayed traced: every span-side count must equal
/// its metrics counter, and the conservation law must hold on both sides.
#[test]
fn fleet_chaos_spans_match_fault_counters_exactly() {
    let chaos = ChaosConfig::quick();
    let requests = 200;
    let load = 60.0;
    let horizon = Nanos::from_nanos((requests as f64 / load * 2.0 * 1e9) as u64);
    let plan = FaultPlan::generate(chaos.seed, chaos.fault.clone(), horizon).unwrap();
    let config = FleetConfig {
        mix: chaos.mix.clone(),
        admission: chaos.admission,
        warm_target: chaos.warm_target,
        fault: Some(plan),
        recovery: chaos.recovery,
        ..FleetConfig::open_loop(chaos.tier, load, requests)
    };
    let (report, log) = FleetService::new(catalog(), config).run_traced();
    let m = &report.metrics;
    assert!(m.faults.total() > 0, "storm injected nothing");

    // Terminal outcomes, one per issued request (conservation in span form).
    assert_eq!(log.outcomes.len(), requests);
    assert_eq!(log.count_outcome(Outcome::Completed), m.completed);
    assert_eq!(log.count_outcome(Outcome::Shed) as u64, m.shed);
    assert_eq!(
        log.count_outcome(Outcome::BreakerShed) as u64,
        m.breaker_sheds
    );
    assert_eq!(log.count_outcome(Outcome::Timeout) as u64, m.timeouts);
    assert_eq!(log.count_outcome(Outcome::Failed) as u64, m.failed);
    assert_eq!(m.completed + m.lost() as usize, requests);

    // Retries and faults, span-side == counter-side, per kind.
    assert_eq!(log.retry_waits() as u64, m.retries);
    assert_eq!(log.total_faults() as u64, m.faults.total());
    assert_eq!(
        log.count_fault(FaultKind::PspTransient) as u64,
        m.faults.psp_transient
    );
    assert_eq!(
        log.count_fault(FaultKind::PspReset) as u64,
        m.faults.psp_reset
    );
    assert_eq!(
        log.count_fault(FaultKind::WarmCrash) as u64,
        m.faults.warm_crash
    );
    assert_eq!(
        log.count_fault(FaultKind::AttestTimeout) as u64,
        m.faults.attest_timeout
    );
    assert_eq!(
        log.count_fault(FaultKind::AttestError) as u64,
        m.faults.attest_error
    );

    // Structure still holds under the storm.
    let pairs = completed_pairs(&log, &m.latencies);
    invariants::check_completed(&log, &pairs).unwrap();
}

#[test]
fn cluster_spans_obey_the_battery_and_match_the_rollup() {
    use sevf_cluster::{ClusterConfig, ClusterService, PlacementPolicy};

    let config = ClusterConfig {
        mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
        placement: PlacementPolicy::TemplateAffinity,
        seed: 0x5EF0,
        fault: Some(FaultConfig::storm()),
        fault_horizon: Nanos::from_secs(8),
        recovery: RecoveryConfig::resilient(0x5EF0),
        ..ClusterConfig::open_loop(3, ServingTier::Template, 120.0, 240)
    };
    let (report, log) = ClusterService::new(catalog(), config).unwrap().run_traced();
    let m = &report.metrics;
    assert!(m.completed > 0);
    assert!(m.conserved());

    // Structural battery over every host's trees at once; the "psp" prefix
    // covers psp0..pspN, each serialized independently.
    invariants::spans_nest(&log).unwrap();
    invariants::children_tile(&log).unwrap();
    invariants::capacity1_serialized(&log, "psp").unwrap();
    for request in log.requests_with_outcome(Outcome::Completed) {
        invariants::single_request_root(&log, request).unwrap();
        let root = log.request_root(request).unwrap();
        assert_eq!(
            invariants::leaf_duration_sum(&log, request),
            root.duration()
        );
    }

    // Cluster latencies merge per host (not in completion order), so match
    // them as sorted multisets against the span-side root durations.
    let mut span_ms: Vec<f64> = log
        .requests_with_outcome(Outcome::Completed)
        .into_iter()
        .map(|r| log.request_root(r).unwrap().duration().as_millis_f64())
        .collect();
    let mut metric_ms = m.latencies_ms.clone();
    span_ms.sort_by(f64::total_cmp);
    metric_ms.sort_by(f64::total_cmp);
    assert_eq!(span_ms, metric_ms);

    // Terminal and marker counts equal the rollup's counters.
    assert_eq!(log.outcomes.len(), m.issued);
    assert_eq!(log.count_outcome(Outcome::Completed), m.completed);
    assert_eq!(log.count_outcome(Outcome::Shed) as u64, m.shed);
    assert_eq!(
        log.count_outcome(Outcome::BreakerShed) as u64,
        m.breaker_sheds
    );
    assert_eq!(log.count_outcome(Outcome::Timeout) as u64, m.timeouts);
    assert_eq!(log.count_outcome(Outcome::Failed) as u64, m.failed);
    assert_eq!(log.retry_waits() as u64, m.retries);
    assert_eq!(log.failovers() as u64, m.failovers);
    assert_eq!(log.count_marker(MarkerKind::Rebalance) as u64, m.rebalances);
    assert_eq!(log.total_faults() as u64, m.faults);
}

#[test]
fn tracing_never_changes_the_report() {
    let make = || {
        FleetService::new(
            catalog(),
            FleetConfig {
                fault: Some(
                    FaultPlan::generate(7, FaultConfig::storm(), Nanos::from_secs(6)).unwrap(),
                ),
                recovery: RecoveryConfig::resilient(7),
                ..FleetConfig::open_loop(ServingTier::Template, 80.0, 120)
            },
        )
    };
    let plain = make().run();
    let (traced, _) = make().run_traced();
    assert_eq!(plain.metrics.completed, traced.metrics.completed);
    assert_eq!(plain.metrics.latencies, traced.metrics.latencies);
    assert_eq!(plain.metrics.retries, traced.metrics.retries);
    assert_eq!(plain.metrics.faults.total(), traced.metrics.faults.total());
    assert_eq!(plain.metrics.shed, traced.metrics.shed);
}

#[test]
fn autoscale_markers_match_the_decision_counters_exactly() {
    use sevf_cluster::scalesweep::ScaleSweepConfig;
    use sevf_cluster::{ClusterConfig, ClusterService, PlacementPolicy};
    use sevf_fleet::blueprint::Catalog;
    use sevf_scale::{ScalePolicy, Workload};

    let sweep = ScaleSweepConfig::quick();
    let catalog = Catalog::build(sweep.seed, &sweep.classes).unwrap();
    let workload = Workload::FlashCrowd(sweep.crowd);
    let config = ClusterConfig {
        seed: sweep.seed,
        admission: sweep.admission,
        recovery: sweep.recovery,
        warm_target: sweep.warm_budget.div_ceil(sweep.min_hosts),
        placement: PlacementPolicy::WarmReady,
        workload: Some(workload),
        autoscaler: Some(sweep.scaler(ScalePolicy::Predictive {
            window: sweep.window,
            lead: sweep.lead,
        })),
        ..ClusterConfig::open_loop(
            sweep.min_hosts,
            ServingTier::WarmPool,
            sweep.crowd.peak,
            sweep.requests,
        )
    };
    let (report, log) = ClusterService::new(catalog, config).unwrap().run_traced();
    let auto = report
        .autoscale
        .expect("autoscaled run must carry a rollup");

    // One marker per emitted decision, never per affected host: the span
    // log and the control plane must agree to the exact count.
    assert!(
        auto.scale_outs > 0,
        "the crowd must force at least one join"
    );
    assert_eq!(
        log.count_marker(MarkerKind::ScaleOut) as u64,
        auto.scale_outs
    );
    assert_eq!(log.count_marker(MarkerKind::ScaleIn) as u64, auto.scale_ins);
    assert_eq!(log.count_marker(MarkerKind::PreWarm) as u64, auto.prewarms);
    assert!(report.metrics.conserved());
}

#[test]
fn autoscaled_tracing_never_changes_the_report() {
    use sevf_cluster::scalesweep::ScaleSweepConfig;
    use sevf_cluster::{ClusterConfig, ClusterService, PlacementPolicy};
    use sevf_fleet::blueprint::Catalog;
    use sevf_scale::{ScalePolicy, Workload};

    let sweep = ScaleSweepConfig::quick();
    let catalog = Catalog::build(sweep.seed, &sweep.classes).unwrap();
    let make = || {
        let config = ClusterConfig {
            seed: sweep.seed,
            admission: sweep.admission,
            recovery: sweep.recovery,
            warm_target: sweep.warm_budget.div_ceil(sweep.min_hosts),
            placement: PlacementPolicy::WarmReady,
            workload: Some(Workload::FlashCrowd(sweep.crowd)),
            autoscaler: Some(sweep.scaler(ScalePolicy::Reactive)),
            ..ClusterConfig::open_loop(
                sweep.min_hosts,
                ServingTier::WarmPool,
                sweep.crowd.peak,
                sweep.requests,
            )
        };
        ClusterService::new(catalog.clone(), config).unwrap()
    };
    let plain = make().run();
    let (traced, _) = make().run_traced();
    assert_eq!(plain.metrics.issued, traced.metrics.issued);
    assert_eq!(plain.metrics.completed, traced.metrics.completed);
    assert_eq!(plain.metrics.latencies_ms, traced.metrics.latencies_ms);
    assert_eq!(plain.metrics.host_seconds, traced.metrics.host_seconds);
    let (pa, ta) = (plain.autoscale.unwrap(), traced.autoscale.unwrap());
    assert_eq!(pa.events, ta.events);
    assert_eq!(
        (pa.ticks, pa.scale_outs, pa.scale_ins, pa.prewarms),
        (ta.ticks, ta.scale_outs, ta.scale_ins, ta.prewarms)
    );
}

// ---- histogram properties on seeded samples --------------------------------

fn seeded_samples(seed: u64, n: usize, scale: f64) -> Vec<f64> {
    let mut rng = XorShift64::new(seed);
    (0..n).map(|_| rng.next_f64() * scale).collect()
}

#[test]
fn histogram_percentiles_track_exact_percentiles_within_one_bucket() {
    let width = 5.0;
    for seed in [3, 11, 42] {
        let samples = seeded_samples(seed, 1000, 500.0);
        let mut hist = Histogram::new(width);
        for &v in &samples {
            hist.record(v);
        }
        for pct in [10.0, 25.0, 50.0, 90.0, 99.0] {
            let exact = stats::percentile(&samples, pct);
            let approx = hist.percentile(pct);
            assert!(
                (exact - approx).abs() <= width,
                "seed {seed} p{pct}: exact {exact} vs histogram {approx}"
            );
        }
    }
}

#[test]
fn histogram_merge_is_associative_commutative_and_lossless() {
    let make = |seed: u64| {
        let mut h = Histogram::new(2.5);
        for v in seeded_samples(seed, 400, 200.0) {
            h.record(v);
        }
        h
    };
    let (a, b, c) = (make(1), make(2), make(3));
    let ab_c = a.merged(&b).merged(&c);
    let a_bc = a.merged(&b.merged(&c));
    let cba = c.merged(&b).merged(&a);
    assert_eq!(ab_c.counts(), a_bc.counts());
    assert_eq!(ab_c.counts(), cba.counts());
    assert_eq!(ab_c.count(), a.count() + b.count() + c.count());

    // Splitting a stream across shards and merging loses nothing.
    let samples = seeded_samples(9, 600, 300.0);
    let mut whole = Histogram::new(2.5);
    let mut left = Histogram::new(2.5);
    let mut right = Histogram::new(2.5);
    for (i, &v) in samples.iter().enumerate() {
        whole.record(v);
        if i % 2 == 0 {
            left.record(v);
        } else {
            right.record(v);
        }
    }
    assert_eq!(left.merged(&right).counts(), whole.counts());
}

#[test]
fn histogram_cumulative_counts_are_monotone() {
    let mut hist = Histogram::new(10.0);
    for v in seeded_samples(5, 500, 1000.0) {
        hist.record(v);
    }
    let mut cumulative = 0u64;
    let mut last = 0u64;
    for &count in hist.counts() {
        cumulative += count;
        assert!(cumulative >= last);
        last = cumulative;
    }
    assert_eq!(cumulative, hist.count());
}

// ---- collapsed-accumulator edge cases --------------------------------------

#[test]
fn shared_stats_helpers_handle_empty_input() {
    assert_eq!(sevf_obs::percentile_or_zero(&[], 99.0), 0.0);
    assert_eq!(sevf_obs::time_weighted_mean(&[]), 0.0);
    assert!(Histogram::new(1.0).upper_edge_rows().is_empty());
    assert_eq!(Histogram::new(1.0).percentile(50.0), 0.0);
}

#[test]
fn registry_absorb_merges_counters_gauges_and_histograms() {
    let mut a = sevf_obs::Registry::new();
    let mut b = sevf_obs::Registry::new();
    a.inc("requests_total", 3);
    b.inc("requests_total", 4);
    b.set_gauge("depth", 2.0);
    a.observe("latency_ms", 10.0, 12.0);
    b.observe("latency_ms", 10.0, 57.0);
    a.absorb(&b);
    assert_eq!(a.counter("requests_total"), 7);
    assert_eq!(a.gauge("depth"), Some(2.0));
    let hist = a.histogram("latency_ms").unwrap();
    assert_eq!(hist.count(), 2);
    assert_eq!(hist.counts()[1], 1);
    assert_eq!(hist.counts()[5], 1);
}
