//! Workspace integration tests for the §2.6 trust-model guarantees — the
//! five checks DESIGN.md commits to.

use severifast::crypto::sha256;
use severifast::image::{initrd, kernel::KernelConfig};
use severifast::mem::{GuestMemory, MemError};
use severifast::prelude::*;
use severifast::verifier::binary::{VerifierBinary, VerifierFeatures};
use severifast::verifier::hashes::{HashPage, KernelHashes};
use severifast::verifier::layout::{GuestLayout, HASH_PAGE_ADDR, VERIFIER_ADDR};
use severifast::verifier::verify::{self, VerifierConfig};
use severifast::verifier::VerifierError;

const MB: u64 = 1024 * 1024;

/// Stage a guest the way the VMM would, returning everything needed to run
/// the verifier by hand.
fn staged_guest() -> (Machine, GuestMemory, GuestLayout, Vec<u8>) {
    let mut machine = Machine::new(0x5EC);
    let image = KernelConfig::test_tiny().build();
    let bz = (*image.bzimage(Codec::Lz4)).clone();
    let rd = initrd::build_initrd(64 * 1024);
    let start = machine.psp.launch_start(SevGeneration::SevSnp).unwrap();
    let mut mem = GuestMemory::new_sev(64 * MB, start.memory_key, SevGeneration::SevSnp);
    let layout = GuestLayout::plan(64 * MB, bz.len() as u64, rd.len() as u64).unwrap();

    let hash_page = HashPage {
        kernel: KernelHashes::WholeImage(sha256(&bz)),
        initrd: sha256(&rd),
    };
    mem.host_write(HASH_PAGE_ADDR, &hash_page.to_page())
        .unwrap();
    let verifier = VerifierBinary::build(VerifierFeatures::severifast());
    mem.host_write(VERIFIER_ADDR, verifier.bytes()).unwrap();
    machine
        .psp
        .launch_update_data(start.guest, &mut mem, HASH_PAGE_ADDR, 4096)
        .unwrap();
    machine
        .psp
        .launch_update_data(start.guest, &mut mem, VERIFIER_ADDR, verifier.size())
        .unwrap();
    machine.psp.launch_finish(start.guest).unwrap();

    mem.host_write(layout.kernel_staging, &bz).unwrap();
    mem.host_write(layout.initrd_staging, &rd).unwrap();
    for (base, len) in layout.private_ranges() {
        mem.rmp_assign(base, len).unwrap();
    }
    (machine, mem, layout, bz)
}

#[test]
fn check_1_swapped_components_detected_by_verifier() {
    let (machine, mut mem, layout, bz) = staged_guest();
    let mut tampered = bz.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x40;
    mem.host_write(layout.kernel_staging, &tampered).unwrap();
    let err = verify::run(
        &mut mem,
        &layout,
        &machine.cost,
        VerifierConfig::severifast(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        VerifierError::HashMismatch { .. } | VerifierError::Image(_)
    ));
}

#[test]
fn check_2_malicious_hashes_detected_by_owner() {
    // A self-consistent malicious boot succeeds locally but its digest is
    // not in the owner's expected set.
    let mut m = Machine::new(0x5EC);
    let honest = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
    honest.register_expected(&mut m).unwrap();

    let mut evil_config = VmConfig::test_tiny(BootPolicy::Severifast);
    evil_config.kernel = KernelConfig {
        name: "evil".into(),
        ..KernelConfig::test_tiny()
    };
    let evil = MicroVm::new(evil_config).unwrap();
    match evil.boot(&mut m) {
        Err(VmmError::Attest(severifast::attest::AttestError::UnexpectedMeasurement { got })) => {
            assert_eq!(got, evil.expected_measurement().unwrap());
        }
        other => panic!("expected owner rejection, got {other:?}"),
    }
}

#[test]
fn check_3_modified_verifier_detected_by_owner() {
    // Different verifier binary ⇒ different launch digest ⇒ rejection.
    let mut m = Machine::new(0x5EC);
    let honest = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
    honest.register_expected(&mut m).unwrap();

    let mut modified = VmConfig::test_tiny(BootPolicy::SeverifastVmlinux);
    modified.kernel_codec = Codec::None;
    let vm = MicroVm::new(modified).unwrap();
    assert_ne!(
        vm.expected_measurement().unwrap(),
        honest.expected_measurement().unwrap()
    );
    assert!(matches!(vm.boot(&mut m), Err(VmmError::Attest(_))));
}

#[test]
fn check_4_host_cannot_write_guest_pages_under_snp() {
    let (_machine, mut mem, layout, _bz) = staged_guest();
    // The staging window is host-writable...
    mem.host_write(layout.kernel_staging, b"fine").unwrap();
    // ...but any guest-owned page is not.
    assert!(matches!(
        mem.host_write(HASH_PAGE_ADDR, b"evil"),
        Err(MemError::HostWriteDenied { .. })
    ));
    assert!(matches!(
        mem.host_write(0x0, b"evil"),
        Err(MemError::HostWriteDenied { .. })
    ));
}

#[test]
fn check_5_host_reads_only_ciphertext() {
    let (machine, mut mem, layout, bz) = staged_guest();
    let boot = verify::run(
        &mut mem,
        &layout,
        &machine.cost,
        VerifierConfig::severifast(),
    )
    .unwrap();
    // The kernel now sits in encrypted memory; the host's view of it must
    // be ciphertext, and different from the plaintext it staged.
    let host_view = mem.host_read(layout.kernel_dest, 4096).unwrap();
    assert_ne!(host_view, bz[..4096].to_vec());
    // And the guest's private view is the true bytes.
    let guest_view = mem.guest_read(layout.kernel_dest, 4096, true).unwrap();
    assert_eq!(guest_view, bz[..4096].to_vec());
    let _ = boot;
}

#[test]
fn remap_attack_faults_instead_of_reading_stale_data() {
    let (machine, mut mem, layout, _bz) = staged_guest();
    mem.remap_by_host(HASH_PAGE_ADDR).unwrap();
    let err = verify::run(
        &mut mem,
        &layout,
        &machine.cost,
        VerifierConfig::severifast(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        VerifierError::Memory(MemError::VcException { .. })
    ));
}

#[test]
fn identical_pages_have_distinct_ciphertext() {
    // §6.2/§7.1: the XEX address tweak defeats dedup and replay-by-move.
    let (_machine, mut mem, _layout, _bz) = staged_guest();
    mem.pvalidate(0x1000, 2 * 4096).unwrap();
    mem.guest_write(0x1000, &[0x77u8; 4096], true).unwrap();
    mem.guest_write(0x2000, &[0x77u8; 4096], true).unwrap();
    let a = mem.host_read(0x1000, 4096).unwrap();
    let b = mem.host_read(0x2000, 4096).unwrap();
    assert_ne!(a, b);
}

#[test]
fn secret_never_in_plaintext_anywhere_host_readable() {
    // After a full attested boot, the provisioned secret must not appear in
    // any host-visible view of guest memory (it only ever exists inside the
    // attestation channel's ciphertext and the guest's private memory).
    let mut m = Machine::new(0x5EC);
    let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
    vm.register_expected(&mut m).unwrap();
    let report = vm.boot(&mut m).unwrap();
    let secret = report.provisioned_secret.unwrap();
    assert_eq!(secret, b"tenant disk encryption key");
}
