//! The autoscaling invariant battery: replay the sweep's audit log and
//! hold every scaling invariant against it.
//!
//! The sweep ([`sevf_cluster::scalesweep`]) records every applied
//! membership and warm-pool change as a [`ScaleEvent`]; these tests replay
//! that log instead of peeking at live state, so the invariants constrain
//! what the control plane *actually did*:
//!
//! * scale-in only ever drains idle victims (no in-flight launches, no
//!   queued requests on the host being removed);
//! * the warm-budget overshoot of raise-only prescriptions stays bounded
//!   by one extra budget;
//! * live-host counts never leave `[min_hosts, max_hosts]`;
//! * membership changes respect the cooldown;
//! * every arm conserves every request;
//! * and the curve machinery is invisible when unused — a cluster given
//!   `Workload::none(rate)` reproduces the `workload: None` run byte for
//!   byte, arrival instants included.

use sevf_cluster::scalesweep::{scale_sweep, ScaleSweepConfig};
use sevf_cluster::service::{ClusterConfig, ClusterReport, ClusterService, ScaleEvent};
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::service::ServingTier;
use sevf_fleet::workload::open_arrivals;
use sevf_scale::{curve_arrivals, Workload};
use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

fn quick_sweep() -> (ScaleSweepConfig, sevf_cluster::scalesweep::ScaleSweepReport) {
    let cfg = ScaleSweepConfig::quick();
    let report = scale_sweep(&cfg).expect("quick sweep");
    (cfg, report)
}

#[test]
fn scale_in_never_drains_a_busy_victim() {
    let (_, report) = quick_sweep();
    for arm in &report.reports {
        let Some(auto) = arm.autoscale.as_ref() else {
            continue;
        };
        for e in &auto.events {
            if let ScaleEvent::In {
                at,
                removed,
                victims_inflight,
                victims_queued,
                ..
            } = *e
            {
                assert_eq!(
                    victims_inflight, 0,
                    "{}: drained {removed} hosts at {at:?} with launches in flight",
                    auto.policy
                );
                assert_eq!(
                    victims_queued, 0,
                    "{}: drained {removed} hosts at {at:?} with queued requests",
                    auto.policy
                );
            }
        }
    }
}

/// Prescriptions are raise-only while a ramp is in progress (shrinking a
/// serving host's pool mid-crowd would evict exactly the warm capacity
/// the ramp needs), so the per-class warm-target sum may transiently
/// exceed the budget — but never by more than one extra budget, and the
/// `div_ceil` spread adds at most one slot per live host on top.
#[test]
fn warm_budget_overshoot_stays_bounded() {
    let (cfg, report) = quick_sweep();
    for arm in &report.reports {
        let Some(auto) = arm.autoscale.as_ref() else {
            continue;
        };
        let bound = 2 * cfg.warm_budget + cfg.max_hosts;
        for e in &auto.events {
            let (at, warm_sum) = match *e {
                ScaleEvent::Out { at, warm_sum, .. } => (at, warm_sum),
                ScaleEvent::In { at, warm_sum, .. } => (at, warm_sum),
                ScaleEvent::PreWarm { at, warm_sum, .. } => (at, warm_sum),
            };
            assert!(
                warm_sum <= bound,
                "{}: warm-target sum {warm_sum} exceeded {bound} at {at:?}",
                auto.policy
            );
        }
    }
}

#[test]
fn live_host_count_stays_in_bounds() {
    let (cfg, report) = quick_sweep();
    for (row, arm) in report.rows.iter().zip(&report.reports) {
        let Some(auto) = arm.autoscale.as_ref() else {
            // The static arm holds its fixed fleet by construction.
            assert_eq!(row.min_live, cfg.max_hosts);
            assert_eq!(row.max_live, cfg.max_hosts);
            continue;
        };
        assert!(
            auto.min_live >= cfg.min_hosts,
            "{}: dipped to {} hosts below the floor {}",
            auto.policy,
            auto.min_live,
            cfg.min_hosts
        );
        assert!(
            auto.max_live <= cfg.max_hosts,
            "{}: grew to {} hosts past the ceiling {}",
            auto.policy,
            auto.max_live,
            cfg.max_hosts
        );
        for e in &auto.events {
            let live = match *e {
                ScaleEvent::Out { live, .. } => live,
                ScaleEvent::In { live, .. } => live,
                ScaleEvent::PreWarm { live, .. } => live,
            };
            assert!(
                live <= cfg.max_hosts,
                "{}: an applied change left {live} hosts live",
                auto.policy
            );
        }
    }
}

#[test]
fn membership_changes_respect_the_cooldown() {
    let (cfg, report) = quick_sweep();
    for arm in &report.reports {
        let Some(auto) = arm.autoscale.as_ref() else {
            continue;
        };
        // Only membership changes (join/drain) are cooldown-gated;
        // prewarm prescriptions ride along freely.
        let changes: Vec<Nanos> = auto
            .events
            .iter()
            .filter_map(|e| match *e {
                ScaleEvent::Out { at, added, .. } if added > 0 => Some(at),
                ScaleEvent::In { at, removed, .. } if removed > 0 => Some(at),
                _ => None,
            })
            .collect();
        for pair in changes.windows(2) {
            assert!(
                pair[1] - pair[0] >= cfg.cooldown,
                "{}: membership changed at {:?} then {:?}, inside the {:?} cooldown",
                auto.policy,
                pair[0],
                pair[1],
                cfg.cooldown
            );
        }
    }
}

#[test]
fn every_arm_conserves_and_the_frontier_holds() {
    let (_, report) = quick_sweep();
    for row in &report.rows {
        assert!(row.conserved, "{} broke conservation", row.arm);
        assert_eq!(
            row.completed as u64 + row.lost,
            row.issued as u64,
            "{}: terminal states do not sum to issued",
            row.arm
        );
    }
    let stat = report.arm("static").unwrap();
    let pred = report.arm("predictive").unwrap();
    assert!(stat.slo_met, "static-max must hold the SLO trivially");
    assert!(
        pred.slo_met,
        "predictive must hold the SLO through the ramp"
    );
    assert!(
        pred.host_seconds < stat.host_seconds,
        "predictive ({:.1} host-s) must undercut static ({:.1} host-s)",
        pred.host_seconds,
        stat.host_seconds
    );
}

/// `Workload::none(rate)` must be indistinguishable from no workload at
/// all — first at the generator (the exact arrival instants), then end to
/// end (an identical cluster run, latencies included).
#[test]
fn none_reproduces_the_fleet_generator_byte_for_byte() {
    for seed in [3u64, 0x5CA1E, 97] {
        for rate in [25.0, 160.0, 900.0] {
            let old = open_arrivals(rate, 512, &mut XorShift64::new(seed));
            let new = curve_arrivals(&Workload::none(rate), 512, &mut XorShift64::new(seed));
            assert_eq!(old, new, "arrivals diverged at seed {seed} rate {rate}");
        }
    }
}

fn digest(report: &ClusterReport) -> (usize, usize, u64, Vec<u64>, Nanos) {
    let m = &report.metrics;
    (
        m.issued,
        m.completed,
        m.lost(),
        m.latencies_ms.iter().map(|l| l.to_bits()).collect(),
        m.makespan,
    )
}

#[test]
fn fixed_workload_run_matches_no_workload_run_exactly() {
    let catalog = Catalog::build(0x51, &ClassSpec::quick_test_classes()).unwrap();
    let rate = 140.0;
    let run = |workload: Option<Workload>| {
        let config = ClusterConfig {
            seed: 0x51,
            workload,
            ..ClusterConfig::open_loop(3, ServingTier::WarmPool, rate, 300)
        };
        ClusterService::new(catalog.clone(), config).unwrap().run()
    };
    let plain = run(None);
    let fixed = run(Some(Workload::none(rate)));
    assert_eq!(
        digest(&plain),
        digest(&fixed),
        "a flat curve perturbed the run it must be invisible in"
    );
}
