//! VCEK cert-chain + verified-report cache.
//!
//! Keyed by *(chip id, TCB version)*: a TCB/firmware rollout bumps the
//! version, so every entry minted under the old firmware silently stops
//! matching — the storm is a wave of misses, not an explicit flush.
//! Revocation is explicit and absolute: once a chip key is distrusted, a
//! probe answers [`CacheLookup::Revoked`] no matter what was cached.

use std::collections::{HashMap, HashSet};

use sevf_sim::Nanos;

/// Cache key: which chip signed, under which TCB version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The signing chip's public identifier.
    pub chip_id: [u8; 32],
    /// The TCB/firmware version the evidence was produced under.
    pub tcb: u32,
}

/// Outcome of one cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// A live entry: skip the KDS fetch.
    Hit,
    /// No entry for this key.
    Miss,
    /// An entry existed but its TTL had lapsed; it was evicted.
    Expired,
    /// The chip key is revoked; nothing cached under it may be used.
    Revoked,
}

/// The cache itself. TTL runs on the virtual clock, so expiry is
/// deterministic and monotone: once a key has expired at time `t`, it
/// stays expired at every `t' >= t` until re-inserted.
#[derive(Debug, Default)]
pub struct CertCache {
    entries: HashMap<CacheKey, Nanos>,
    revoked: HashSet<[u8; 32]>,
    ttl: Nanos,
}

impl CertCache {
    /// An empty cache with the given TTL.
    pub fn new(ttl: Nanos) -> Self {
        CertCache {
            entries: HashMap::new(),
            revoked: HashSet::new(),
            ttl,
        }
    }

    /// Probes for a key at `now`. Revocation wins over any cached entry;
    /// an expired entry is evicted as a side effect.
    pub fn probe(&mut self, key: CacheKey, now: Nanos) -> CacheLookup {
        if self.revoked.contains(&key.chip_id) {
            self.entries.retain(|k, _| k.chip_id != key.chip_id);
            return CacheLookup::Revoked;
        }
        match self.entries.get(&key) {
            Some(&inserted) if now.saturating_sub(inserted) < self.ttl => CacheLookup::Hit,
            Some(_) => {
                self.entries.remove(&key);
                CacheLookup::Expired
            }
            None => CacheLookup::Miss,
        }
    }

    /// Records a fetched cert chain / verified report. Ignored for
    /// revoked chips: distrusted evidence must never re-enter the cache.
    pub fn insert(&mut self, key: CacheKey, now: Nanos) {
        if !self.revoked.contains(&key.chip_id) {
            self.entries.insert(key, now);
        }
    }

    /// Distrusts a chip key and purges everything cached under it, at
    /// every TCB version.
    pub fn revoke(&mut self, chip_id: &[u8; 32]) {
        self.revoked.insert(*chip_id);
        self.entries.retain(|k, _| k.chip_id != *chip_id);
    }

    /// Whether a chip key has been revoked.
    pub fn is_revoked(&self, chip_id: &[u8; 32]) -> bool {
        self.revoked.contains(chip_id)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(chip: u8, tcb: u32) -> CacheKey {
        CacheKey {
            chip_id: [chip; 32],
            tcb,
        }
    }

    #[test]
    fn ttl_expiry_is_monotone_in_virtual_time() {
        // Property: for an entry inserted at t0 with TTL d, a probe at t
        // hits iff t - t0 < d, and once a probe has expired the entry no
        // later probe can resurrect it without a fresh insert.
        let ttl = Nanos::from_millis(10);
        let mut cache = CertCache::new(ttl);
        let k = key(1, 0);
        let t0 = Nanos::from_millis(100);
        cache.insert(k, t0);
        let mut expired_seen = false;
        for step in 0..40u64 {
            let now = t0 + Nanos::from_micros(500 * step);
            let lookup = cache.probe(k, now);
            let within = now.saturating_sub(t0) < ttl;
            if expired_seen {
                assert_eq!(
                    lookup,
                    CacheLookup::Miss,
                    "expiry must be sticky at {now:?}"
                );
            } else if within {
                assert_eq!(lookup, CacheLookup::Hit, "live entry must hit at {now:?}");
            } else {
                assert_eq!(
                    lookup,
                    CacheLookup::Expired,
                    "first lapsed probe at {now:?}"
                );
                expired_seen = true;
            }
        }
        assert!(expired_seen);
    }

    #[test]
    fn revocation_always_wins_over_cached_hit() {
        let mut cache = CertCache::new(Nanos::from_secs(60));
        let k = key(2, 3);
        let now = Nanos::from_millis(5);
        cache.insert(k, now);
        assert_eq!(cache.probe(k, now), CacheLookup::Hit);
        cache.revoke(&k.chip_id);
        // The hit the entry would have produced is overridden, at every
        // TCB version, and re-insertion is refused.
        assert_eq!(cache.probe(k, now), CacheLookup::Revoked);
        assert_eq!(cache.probe(key(2, 9), now), CacheLookup::Revoked);
        cache.insert(k, now);
        assert!(cache.is_empty());
        assert_eq!(cache.probe(k, now), CacheLookup::Revoked);
        // Other chips are untouched.
        cache.insert(key(3, 0), now);
        assert_eq!(cache.probe(key(3, 0), now), CacheLookup::Hit);
    }

    #[test]
    fn tcb_bump_changes_the_key() {
        let mut cache = CertCache::new(Nanos::from_secs(60));
        let now = Nanos::from_millis(1);
        cache.insert(key(4, 0), now);
        assert_eq!(cache.probe(key(4, 0), now), CacheLookup::Hit);
        assert_eq!(cache.probe(key(4, 1), now), CacheLookup::Miss);
    }
}
