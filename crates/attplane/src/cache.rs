//! VCEK cert-chain + verified-report cache.
//!
//! Keyed by *(chip id, TCB version)*: a TCB/firmware rollout bumps the
//! version, so every entry minted under the old firmware silently stops
//! matching — the storm is a wave of misses, not an explicit flush.
//! Revocation is explicit and absolute: once a chip key is distrusted, a
//! probe answers [`CacheLookup::Revoked`] no matter what was cached.

use std::collections::{HashMap, HashSet};

use sevf_sim::Nanos;

/// Cache key: which chip signed, under which TCB version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The signing chip's public identifier.
    pub chip_id: [u8; 32],
    /// The TCB/firmware version the evidence was produced under.
    pub tcb: u32,
}

/// Outcome of one cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// A live entry: skip the KDS fetch.
    Hit,
    /// No entry for this key.
    Miss,
    /// An entry existed but its TTL had lapsed; it was evicted.
    Expired,
    /// The chip key is revoked; nothing cached under it may be used.
    Revoked,
}

/// Outcome of a staleness-tolerant probe ([`CertCache::probe_stale`]),
/// used while the verifier is unreachable under a fail-open policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleLookup {
    /// A live entry, within TTL: as good as a fresh verification.
    Fresh,
    /// An entry past its TTL but within the staleness budget — usable
    /// under fail-open, must be re-verified once the verifier heals.
    Stale,
    /// Nothing usable even with the staleness allowance.
    Miss,
    /// The chip key is revoked; staleness never overrides revocation.
    Revoked,
}

/// The cache itself. TTL runs on the virtual clock, so expiry is
/// deterministic and monotone: once a key has expired at time `t`, it
/// stays expired at every `t' >= t` until re-inserted.
#[derive(Debug, Default)]
pub struct CertCache {
    entries: HashMap<CacheKey, Nanos>,
    revoked: HashSet<[u8; 32]>,
    ttl: Nanos,
}

impl CertCache {
    /// An empty cache with the given TTL.
    pub fn new(ttl: Nanos) -> Self {
        CertCache {
            entries: HashMap::new(),
            revoked: HashSet::new(),
            ttl,
        }
    }

    /// Probes for a key at `now`. Revocation wins over any cached entry;
    /// an expired entry is evicted as a side effect.
    pub fn probe(&mut self, key: CacheKey, now: Nanos) -> CacheLookup {
        if self.revoked.contains(&key.chip_id) {
            self.entries.retain(|k, _| k.chip_id != key.chip_id);
            return CacheLookup::Revoked;
        }
        match self.entries.get(&key) {
            Some(&inserted) if now.saturating_sub(inserted) < self.ttl => CacheLookup::Hit,
            Some(_) => {
                self.entries.remove(&key);
                CacheLookup::Expired
            }
            None => CacheLookup::Miss,
        }
    }

    /// Probes with a staleness allowance, for fail-open service during a
    /// verifier blackout. Unlike [`CertCache::probe`] this never evicts:
    /// the blackout ends and the normal probe path resumes TTL policing.
    ///
    /// The exact key is consulted first; failing that, any entry for the
    /// *same chip* under another TCB version counts as stale evidence
    /// (the chip's VCEK chain was trusted recently — a TCB rollout during
    /// the blackout must not turn the whole fleet into misses). Age
    /// boundaries are exact: `age < ttl` is `Fresh`, `ttl <= age <
    /// ttl + budget` is `Stale`, and anything older is `Miss`.
    pub fn probe_stale(&self, key: CacheKey, now: Nanos, budget: Nanos) -> StaleLookup {
        if self.revoked.contains(&key.chip_id) {
            return StaleLookup::Revoked;
        }
        let horizon = self.ttl + budget;
        if let Some(&inserted) = self.entries.get(&key) {
            let age = now.saturating_sub(inserted);
            if age < self.ttl {
                return StaleLookup::Fresh;
            }
            if age < horizon {
                return StaleLookup::Stale;
            }
        }
        let same_chip_usable = self
            .entries
            .iter()
            .filter(|(k, _)| k.chip_id == key.chip_id)
            .any(|(_, &inserted)| now.saturating_sub(inserted) < horizon);
        if same_chip_usable {
            StaleLookup::Stale
        } else {
            StaleLookup::Miss
        }
    }

    /// Records a fetched cert chain / verified report. Ignored for
    /// revoked chips: distrusted evidence must never re-enter the cache.
    pub fn insert(&mut self, key: CacheKey, now: Nanos) {
        if !self.revoked.contains(&key.chip_id) {
            self.entries.insert(key, now);
        }
    }

    /// Distrusts a chip key and purges everything cached under it, at
    /// every TCB version.
    pub fn revoke(&mut self, chip_id: &[u8; 32]) {
        self.revoked.insert(*chip_id);
        self.entries.retain(|k, _| k.chip_id != *chip_id);
    }

    /// Whether a chip key has been revoked.
    pub fn is_revoked(&self, chip_id: &[u8; 32]) -> bool {
        self.revoked.contains(chip_id)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(chip: u8, tcb: u32) -> CacheKey {
        CacheKey {
            chip_id: [chip; 32],
            tcb,
        }
    }

    #[test]
    fn ttl_expiry_is_monotone_in_virtual_time() {
        // Property: for an entry inserted at t0 with TTL d, a probe at t
        // hits iff t - t0 < d, and once a probe has expired the entry no
        // later probe can resurrect it without a fresh insert.
        let ttl = Nanos::from_millis(10);
        let mut cache = CertCache::new(ttl);
        let k = key(1, 0);
        let t0 = Nanos::from_millis(100);
        cache.insert(k, t0);
        let mut expired_seen = false;
        for step in 0..40u64 {
            let now = t0 + Nanos::from_micros(500 * step);
            let lookup = cache.probe(k, now);
            let within = now.saturating_sub(t0) < ttl;
            if expired_seen {
                assert_eq!(
                    lookup,
                    CacheLookup::Miss,
                    "expiry must be sticky at {now:?}"
                );
            } else if within {
                assert_eq!(lookup, CacheLookup::Hit, "live entry must hit at {now:?}");
            } else {
                assert_eq!(
                    lookup,
                    CacheLookup::Expired,
                    "first lapsed probe at {now:?}"
                );
                expired_seen = true;
            }
        }
        assert!(expired_seen);
    }

    #[test]
    fn revocation_always_wins_over_cached_hit() {
        let mut cache = CertCache::new(Nanos::from_secs(60));
        let k = key(2, 3);
        let now = Nanos::from_millis(5);
        cache.insert(k, now);
        assert_eq!(cache.probe(k, now), CacheLookup::Hit);
        cache.revoke(&k.chip_id);
        // The hit the entry would have produced is overridden, at every
        // TCB version, and re-insertion is refused.
        assert_eq!(cache.probe(k, now), CacheLookup::Revoked);
        assert_eq!(cache.probe(key(2, 9), now), CacheLookup::Revoked);
        cache.insert(k, now);
        assert!(cache.is_empty());
        assert_eq!(cache.probe(k, now), CacheLookup::Revoked);
        // Other chips are untouched.
        cache.insert(key(3, 0), now);
        assert_eq!(cache.probe(key(3, 0), now), CacheLookup::Hit);
    }

    #[test]
    fn entry_expiring_exactly_on_the_lookup_tick() {
        // Edge case: a probe landing exactly at inserted + ttl. The strict
        // `age < ttl` rule makes that tick Expired for the normal probe
        // and Stale (not Fresh) for the fail-open probe — the two paths
        // must agree on where freshness ends.
        let ttl = Nanos::from_millis(10);
        let budget = Nanos::from_millis(4);
        let t0 = Nanos::from_millis(100);
        let k = key(7, 0);
        let boundary = t0 + ttl;
        let make = || {
            let mut c = CertCache::new(ttl);
            c.insert(k, t0);
            c
        };
        // One tick before the boundary: fresh on both paths.
        let just_before = boundary.saturating_sub(Nanos::from_nanos(1));
        assert_eq!(
            make().probe_stale(k, just_before, budget),
            StaleLookup::Fresh
        );
        assert_eq!(make().probe(k, just_before), CacheLookup::Hit);
        // Exactly on the boundary tick.
        let cache = make();
        assert_eq!(cache.probe_stale(k, boundary, budget), StaleLookup::Stale);
        let mut cache = make();
        assert_eq!(cache.probe(k, boundary), CacheLookup::Expired);
        // And the staleness budget has its own exact boundary.
        let cache = make();
        let stale_end = boundary + budget;
        assert_eq!(
            cache.probe_stale(k, stale_end.saturating_sub(Nanos::from_nanos(1)), budget),
            StaleLookup::Stale
        );
        assert_eq!(cache.probe_stale(k, stale_end, budget), StaleLookup::Miss);
    }

    #[test]
    fn revocation_arriving_mid_stale_serve_wins() {
        // Fail-open is serving chip 8 from a stale entry when the
        // revocation lands: the very next probe — stale or normal — must
        // answer Revoked, at every TCB version, with no staleness escape.
        let ttl = Nanos::from_millis(10);
        let budget = Nanos::from_millis(50);
        let mut cache = CertCache::new(ttl);
        let k = key(8, 0);
        cache.insert(k, Nanos::ZERO);
        let mid_blackout = Nanos::from_millis(20);
        assert_eq!(
            cache.probe_stale(k, mid_blackout, budget),
            StaleLookup::Stale
        );
        cache.revoke(&k.chip_id);
        assert_eq!(
            cache.probe_stale(k, mid_blackout, budget),
            StaleLookup::Revoked
        );
        assert_eq!(
            cache.probe_stale(key(8, 3), mid_blackout, budget),
            StaleLookup::Revoked
        );
        assert_eq!(cache.probe(k, mid_blackout), CacheLookup::Revoked);
        // Other chips keep their stale allowance.
        cache.insert(key(9, 0), Nanos::ZERO);
        assert_eq!(
            cache.probe_stale(key(9, 0), mid_blackout, budget),
            StaleLookup::Stale
        );
    }

    #[test]
    fn stale_probe_falls_back_to_same_chip_other_tcb() {
        // A TCB rollout during the blackout bumps the key; the chip's
        // old-TCB entry still vouches for it within the allowance.
        let ttl = Nanos::from_millis(10);
        let budget = Nanos::from_millis(10);
        let mut cache = CertCache::new(ttl);
        cache.insert(key(5, 0), Nanos::ZERO);
        let now = Nanos::from_millis(5);
        assert_eq!(
            cache.probe_stale(key(5, 1), now, budget),
            StaleLookup::Stale
        );
        // Past ttl + budget even the fallback refuses.
        let late = Nanos::from_millis(25);
        assert_eq!(
            cache.probe_stale(key(5, 1), late, budget),
            StaleLookup::Miss
        );
        // A different chip never benefits.
        assert_eq!(cache.probe_stale(key(6, 0), now, budget), StaleLookup::Miss);
    }

    #[test]
    fn tcb_bump_changes_the_key() {
        let mut cache = CertCache::new(Nanos::from_secs(60));
        let now = Nanos::from_millis(1);
        cache.insert(key(4, 0), now);
        assert_eq!(cache.probe(key(4, 0), now), CacheLookup::Hit);
        assert_eq!(cache.probe(key(4, 1), now), CacheLookup::Miss);
    }
}
