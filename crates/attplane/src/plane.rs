//! The verifier service: a deterministic single-server queue on the
//! virtual clock.
//!
//! The plane is consulted once per dispatch, in dispatch order (which the
//! DES makes deterministic), and answers with a [`Verification`]: the
//! verdict plus the network-class work steps the launch must append to
//! its blueprint. Because the steps are pure delays, they splice into the
//! launch's span tree without touching PSP or CPU occupancy — the
//! verifier's queue is modeled here (`free_at`), not as a DES resource,
//! exactly like a remote service whose latency the client observes.

use sevf_attest::GuestOwner;
use sevf_obs::WorkStep;
use sevf_psp::{AmdRootRegistry, AttestationReport, ChipIdentity};
use sevf_sim::{Nanos, PhaseKind, ResourceClass};

use crate::cache::{CacheKey, CacheLookup, CertCache, StaleLookup};
use crate::config::{AttPlaneConfig, FailMode, VerifyMode};
use crate::AttPlaneError;

/// Step label: time spent queued behind other verifications.
pub const STEP_QUEUE_WAIT: &str = "att-queue-wait";
/// Step label: VCEK cert-chain fetch from the KDS (cache miss).
pub const STEP_CERT_FETCH: &str = "att-cert-fetch";
/// Step label: cert chain served from cache (zero-duration marker).
pub const STEP_CERT_HIT: &str = "att-cert-hit";
/// Step label: this report opened a batch window and paid the setup.
pub const STEP_BATCH_SETUP: &str = "att-batch-setup";
/// Step label: this report joined an open batch window (zero-duration).
pub const STEP_BATCH_JOIN: &str = "att-batch-join";
/// Step label: the per-report signature check.
pub const STEP_VERIFY: &str = "att-verify";
/// Step label: verdict refused because the chip key is revoked.
pub const STEP_REVOKED: &str = "att-revoked";
/// Step label: served from a stale cache entry while the verifier was
/// unreachable (fail-open; zero-duration marker).
pub const STEP_STALE_HIT: &str = "att-stale-hit";
/// Step label: refused because the verifier was unreachable and no
/// usable cached verdict existed (zero-duration marker).
pub const STEP_UNAVAILABLE: &str = "att-unavailable";
/// Step label: network round trip to a remote verifier (fleet wiring).
pub const STEP_RTT: &str = "att-rtt";

/// The plane's answer for one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Evidence verified; the launch may serve.
    Ok,
    /// The signing chip's key is distrusted; the launch must not serve.
    Revoked,
    /// The verifier was unreachable and the degradation policy refused to
    /// vouch for the launch (fail-closed, or fail-open past the budget).
    Unavailable,
}

impl Verdict {
    /// Whether the launch may proceed.
    pub fn is_ok(self) -> bool {
        self == Verdict::Ok
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Revoked => "revoked",
            Verdict::Unavailable => "unavailable",
        }
    }
}

/// One verification: verdict, spliceable work steps, and the total
/// latency those steps add to the launch.
#[derive(Debug, Clone)]
pub struct Verification {
    /// Whether the launch may serve.
    pub verdict: Verdict,
    /// Network-class steps (queue wait → cert fetch/hit → batch window →
    /// signature check) to append to the launch blueprint.
    pub steps: Vec<WorkStep>,
    /// Sum of the step durations.
    pub added: Nanos,
}

/// Counters the plane keeps; each maps 1:1 to a step label, so trace
/// span counts can be pinned against these exactly.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AttPlaneMetrics {
    /// Completed signature checks (`att-verify` steps).
    pub verifications: u64,
    /// Verifications that waited behind the single verifier server.
    pub queue_waits: u64,
    /// Total virtual time spent queued.
    pub queue_wait_total: Nanos,
    /// KDS cert-chain fetches (cache misses, including TTL expiries).
    pub cert_fetches: u64,
    /// Cert chains served from cache.
    pub cert_hits: u64,
    /// Entries that had expired when probed (subset of `cert_fetches`).
    pub expired: u64,
    /// Batch windows opened (setup paid), batched mode only.
    pub batch_setups: u64,
    /// Reports that shared an open batch window, batched mode only.
    pub batch_joins: u64,
    /// Dispatches refused because the chip key was revoked.
    pub revoked_verdicts: u64,
    /// Chip keys revoked.
    pub revocations: u64,
    /// TCB versions bumped by rollouts.
    pub tcb_bumps: u64,
    /// Launches served from cache while the verifier was unreachable
    /// (`att-stale-hit` steps, fail-open only).
    pub stale_serves: u64,
    /// Launches refused because the verifier was unreachable
    /// (`att-unavailable` steps).
    pub unavailable_refusals: u64,
    /// Full verifications forced on heal for hosts that were served
    /// stale during a blackout.
    pub reverifies: u64,
}

impl AttPlaneMetrics {
    /// Cert-cache hit rate over all cache-consulting verifications.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.cert_hits + self.cert_fetches;
        if probes == 0 {
            0.0
        } else {
            self.cert_hits as f64 / probes as f64
        }
    }

    /// Mean queue wait per verification, in milliseconds.
    pub fn mean_queue_wait_ms(&self) -> f64 {
        let total = self.verifications + self.revoked_verdicts;
        if total == 0 {
            0.0
        } else {
            self.queue_wait_total.as_millis_f64() / total as f64
        }
    }
}

/// The attestation control plane for a set of hosts.
#[derive(Debug)]
pub struct AttPlane {
    config: AttPlaneConfig,
    registry: AmdRootRegistry,
    chips: Vec<[u8; 32]>,
    tcb: Vec<u32>,
    cache: CertCache,
    free_at: Nanos,
    batch_epoch: Option<u64>,
    metrics: AttPlaneMetrics,
    /// Whether the remote verifier is reachable (blackout drills flip it).
    reachable: bool,
    /// Hosts served stale during a blackout, owed a full re-verification
    /// once the verifier heals. `BTreeSet` for deterministic iteration.
    needs_reverify: std::collections::BTreeSet<usize>,
}

impl AttPlane {
    /// A plane for `hosts` hosts, deriving each host's chip identity from
    /// the config seed (the manufacturing-fuse model) and registering it
    /// with the plane's root-of-trust registry.
    pub fn new(config: AttPlaneConfig, hosts: usize) -> Result<Self, AttPlaneError> {
        let chips = (0..hosts)
            .map(|h| {
                let mut seed = config.seed.to_le_bytes().to_vec();
                seed.extend_from_slice(&(h as u64).to_le_bytes());
                ChipIdentity::from_seed(&seed)
            })
            .collect();
        Self::with_chips(config, chips)
    }

    /// A plane over explicit chip identities (for wiring real PSPs in).
    pub fn with_chips(
        config: AttPlaneConfig,
        chips: Vec<ChipIdentity>,
    ) -> Result<Self, AttPlaneError> {
        config.validate()?;
        if chips.is_empty() {
            return Err(AttPlaneError::Config("plane needs at least one host"));
        }
        let mut registry = AmdRootRegistry::new();
        let ids: Vec<[u8; 32]> = chips.iter().map(|c| c.chip_id).collect();
        for chip in chips {
            registry.register(chip);
        }
        let hosts = ids.len();
        Ok(AttPlane {
            cache: CertCache::new(config.cache_ttl),
            config,
            registry,
            chips: ids,
            tcb: vec![0; hosts],
            free_at: Nanos::ZERO,
            batch_epoch: None,
            metrics: AttPlaneMetrics::default(),
            reachable: true,
            needs_reverify: std::collections::BTreeSet::new(),
        })
    }

    /// How many hosts the plane covers.
    pub fn hosts(&self) -> usize {
        self.chips.len()
    }

    /// The plane's verification mode.
    pub fn mode(&self) -> VerifyMode {
        self.config.mode
    }

    /// A host's chip id.
    pub fn chip_id(&self, host: usize) -> Result<&[u8; 32], AttPlaneError> {
        self.check_host(host)?;
        Ok(&self.chips[host])
    }

    /// A host's current TCB version.
    pub fn tcb_version(&self, host: usize) -> Result<u32, AttPlaneError> {
        self.check_host(host)?;
        Ok(self.tcb[host])
    }

    /// The plane's root-of-trust view.
    pub fn registry(&self) -> &AmdRootRegistry {
        &self.registry
    }

    /// Checks a real attestation report against the plane's registry —
    /// the cryptographic ground truth the latency model stands in for.
    pub fn check_report(&self, report: &AttestationReport) -> bool {
        self.registry.verify(report)
    }

    /// A guest owner holding this plane's current trust view (§2.4): it
    /// will refuse reports from any chip the plane has revoked.
    pub fn owner(&self, secret: Vec<u8>, owner_seed: &[u8]) -> GuestOwner {
        GuestOwner::new(self.registry.clone(), secret, owner_seed)
    }

    /// Counters so far.
    pub fn metrics(&self) -> &AttPlaneMetrics {
        &self.metrics
    }

    /// Flips verifier reachability (partition drills). While unreachable,
    /// [`AttPlane::verify_launch`] answers from the degradation policy
    /// instead of the verifier queue.
    pub fn set_reachable(&mut self, reachable: bool) {
        self.reachable = reachable;
    }

    /// Whether the remote verifier is currently reachable.
    pub fn is_reachable(&self) -> bool {
        self.reachable
    }

    /// A TCB/firmware rollout re-measures a host: bump its version so
    /// every cached entry minted under the old firmware stops matching.
    /// Returns the new version.
    pub fn bump_tcb(&mut self, host: usize) -> Result<u32, AttPlaneError> {
        self.check_host(host)?;
        self.tcb[host] += 1;
        self.metrics.tcb_bumps += 1;
        Ok(self.tcb[host])
    }

    /// Key-compromise drill: distrust a host's chip at the root and purge
    /// everything cached under it. Reports it signed stop verifying.
    pub fn revoke_host(&mut self, host: usize) -> Result<(), AttPlaneError> {
        self.check_host(host)?;
        let chip = self.chips[host];
        self.registry.revoke(&chip);
        self.cache.revoke(&chip);
        self.metrics.revocations += 1;
        Ok(())
    }

    /// Whether a host's chip key has been revoked.
    pub fn is_revoked(&self, host: usize) -> Result<bool, AttPlaneError> {
        self.check_host(host)?;
        Ok(self.cache.is_revoked(&self.chips[host]))
    }

    /// Verifies one dispatch from `host` at virtual time `now`.
    ///
    /// Deterministic: the result depends only on the plane's state and
    /// the (order, time) of calls, both fixed by the DES. The single
    /// verifier server is modeled by `free_at`: a verification arriving
    /// while the server is busy queues, and the wait surfaces as an
    /// `att-queue-wait` step in the launch's critical path.
    pub fn verify_launch(
        &mut self,
        host: usize,
        now: Nanos,
    ) -> Result<Verification, AttPlaneError> {
        self.check_host(host)?;
        let chip = self.chips[host];
        let key = CacheKey {
            chip_id: chip,
            tcb: self.tcb[host],
        };
        if !self.reachable {
            return Ok(self.verify_degraded(host, &chip, key, now));
        }
        let mut steps = Vec::new();
        let wait = self.free_at.saturating_sub(now);
        if wait > Nanos::ZERO {
            steps.push(self.step(STEP_QUEUE_WAIT, wait));
            self.metrics.queue_waits += 1;
            self.metrics.queue_wait_total += wait;
        }
        let start = now + wait;

        // Revocation wins over everything, including a cached hit, and
        // costs no verifier service time: the refusal is a registry look.
        // A host owed a re-verification (served stale during a blackout)
        // is forced down the full fetch path even if its entry is live.
        let lookup = if self.config.mode == VerifyMode::Naive || self.needs_reverify.contains(&host)
        {
            if self.cache.is_revoked(&chip) {
                CacheLookup::Revoked
            } else {
                CacheLookup::Miss
            }
        } else {
            self.cache.probe(key, start)
        };
        if lookup == CacheLookup::Revoked {
            self.needs_reverify.remove(&host);
            steps.push(self.step(STEP_REVOKED, Nanos::ZERO));
            self.metrics.revoked_verdicts += 1;
            return Ok(Verification {
                verdict: Verdict::Revoked,
                added: wait,
                steps,
            });
        }
        if self.needs_reverify.remove(&host) {
            self.metrics.reverifies += 1;
        }

        let mut service = Nanos::ZERO;
        match lookup {
            CacheLookup::Hit => {
                self.metrics.cert_hits += 1;
                steps.push(self.step(STEP_CERT_HIT, Nanos::ZERO));
            }
            CacheLookup::Miss | CacheLookup::Expired => {
                if lookup == CacheLookup::Expired {
                    self.metrics.expired += 1;
                }
                self.metrics.cert_fetches += 1;
                steps.push(self.step(STEP_CERT_FETCH, self.config.cert_fetch));
                service += self.config.cert_fetch;
                if self.config.mode != VerifyMode::Naive {
                    self.cache.insert(key, start);
                }
            }
            CacheLookup::Revoked => unreachable!("handled above"),
        }

        if self.config.mode == VerifyMode::CachedBatched {
            let epoch = start.as_nanos() / self.config.batch_window.as_nanos();
            if self.batch_epoch == Some(epoch) {
                self.metrics.batch_joins += 1;
                steps.push(self.step(STEP_BATCH_JOIN, Nanos::ZERO));
            } else {
                self.batch_epoch = Some(epoch);
                self.metrics.batch_setups += 1;
                steps.push(self.step(STEP_BATCH_SETUP, self.config.batch_setup));
                service += self.config.batch_setup;
            }
            steps.push(self.step(STEP_VERIFY, self.config.sig_check));
            service += self.config.sig_check;
        } else {
            // Unbatched: every report pays its own context setup, folded
            // into the verify step.
            let check = self.config.batch_setup + self.config.sig_check;
            steps.push(self.step(STEP_VERIFY, check));
            service += check;
        }
        self.metrics.verifications += 1;
        self.free_at = start + service;
        Ok(Verification {
            verdict: Verdict::Ok,
            added: wait + service,
            steps,
        })
    }

    /// The blackout path: no verifier queue, no service time, verdicts
    /// from the degradation policy alone. Revocation still wins — the
    /// CRL is local state, not a verifier round trip.
    fn verify_degraded(
        &mut self,
        host: usize,
        chip: &[u8; 32],
        key: CacheKey,
        now: Nanos,
    ) -> Verification {
        if self.cache.is_revoked(chip) {
            self.metrics.revoked_verdicts += 1;
            return Verification {
                verdict: Verdict::Revoked,
                added: Nanos::ZERO,
                steps: vec![self.step(STEP_REVOKED, Nanos::ZERO)],
            };
        }
        if let FailMode::Open { staleness_budget } = self.config.degrade {
            match self.cache.probe_stale(key, now, staleness_budget) {
                StaleLookup::Fresh | StaleLookup::Stale => {
                    // Served on cached trust: owe a full re-verification
                    // once the verifier heals.
                    self.metrics.stale_serves += 1;
                    self.needs_reverify.insert(host);
                    return Verification {
                        verdict: Verdict::Ok,
                        added: Nanos::ZERO,
                        steps: vec![self.step(STEP_STALE_HIT, Nanos::ZERO)],
                    };
                }
                StaleLookup::Revoked => {
                    self.metrics.revoked_verdicts += 1;
                    return Verification {
                        verdict: Verdict::Revoked,
                        added: Nanos::ZERO,
                        steps: vec![self.step(STEP_REVOKED, Nanos::ZERO)],
                    };
                }
                StaleLookup::Miss => {}
            }
        }
        self.metrics.unavailable_refusals += 1;
        Verification {
            verdict: Verdict::Unavailable,
            added: Nanos::ZERO,
            steps: vec![self.step(STEP_UNAVAILABLE, Nanos::ZERO)],
        }
    }

    fn step(&self, label: &str, duration: Nanos) -> WorkStep {
        WorkStep::new(
            ResourceClass::Network,
            PhaseKind::Attestation,
            label,
            duration,
        )
    }

    fn check_host(&self, host: usize) -> Result<(), AttPlaneError> {
        if host >= self.chips.len() {
            return Err(AttPlaneError::UnknownHost {
                host,
                hosts: self.chips.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_sim::rng::XorShift64;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn naive_pays_full_pipeline_every_time() {
        let mut plane = AttPlane::new(AttPlaneConfig::naive(), 2).unwrap();
        for i in 0..4u64 {
            let v = plane.verify_launch(0, ms(100 * i)).unwrap();
            assert!(v.verdict.is_ok());
        }
        let m = plane.metrics();
        assert_eq!(m.cert_fetches, 4);
        assert_eq!(m.cert_hits, 0);
        assert_eq!(m.verifications, 4);
    }

    #[test]
    fn cached_mode_fetches_once_per_chip_and_tcb() {
        let mut plane = AttPlane::new(AttPlaneConfig::cached(), 2).unwrap();
        for i in 0..3u64 {
            plane.verify_launch(0, ms(100 * i)).unwrap();
            plane.verify_launch(1, ms(100 * i + 50)).unwrap();
        }
        let m = plane.metrics();
        assert_eq!(m.cert_fetches, 2, "one fetch per chip");
        assert_eq!(m.cert_hits, 4);
        // A rollout bumps host 0's TCB: its next verification misses.
        plane.bump_tcb(0).unwrap();
        plane.verify_launch(0, ms(1000)).unwrap();
        plane.verify_launch(1, ms(1100)).unwrap();
        let m = plane.metrics();
        assert_eq!(m.cert_fetches, 3);
        assert_eq!(m.cert_hits, 5);
    }

    #[test]
    fn batched_mode_shares_setup_within_a_window() {
        let mut cfg = AttPlaneConfig::cached_batched();
        cfg.batch_window = ms(10);
        let mut plane = AttPlane::new(cfg, 1).unwrap();
        // Prime the cache so only batching differs.
        plane.verify_launch(0, Nanos::ZERO).unwrap();
        // Three verifications land in one window: one setup, two joins.
        let base = ms(100);
        for i in 0..3u64 {
            plane
                .verify_launch(0, base + Nanos::from_micros(i))
                .unwrap();
        }
        let m = plane.metrics();
        assert_eq!(m.batch_setups, 2, "prime + window opener");
        assert_eq!(m.batch_joins, 2);
    }

    #[test]
    fn queue_wait_emerges_under_back_to_back_load() {
        let mut plane = AttPlane::new(AttPlaneConfig::naive(), 1).unwrap();
        let first = plane.verify_launch(0, Nanos::ZERO).unwrap();
        assert_eq!(plane.metrics().queue_waits, 0);
        // Arrives while the verifier is still busy with the first.
        let second = plane.verify_launch(0, Nanos::from_micros(1)).unwrap();
        assert_eq!(plane.metrics().queue_waits, 1);
        assert!(second.added > first.added);
        assert_eq!(second.steps[0].label, STEP_QUEUE_WAIT);
    }

    #[test]
    fn revocation_wins_over_cached_hit_and_costs_no_service() {
        let mut plane = AttPlane::new(AttPlaneConfig::cached(), 2).unwrap();
        plane.verify_launch(0, Nanos::ZERO).unwrap();
        let v = plane.verify_launch(0, ms(50)).unwrap();
        assert_eq!(plane.metrics().cert_hits, 1);
        assert!(v.verdict.is_ok());
        plane.revoke_host(0).unwrap();
        let v = plane.verify_launch(0, ms(100)).unwrap();
        assert_eq!(v.verdict, Verdict::Revoked);
        assert_eq!(v.steps.last().unwrap().label, STEP_REVOKED);
        // The other host still verifies, and the revoked host never
        // re-enters the cache.
        assert!(plane.verify_launch(1, ms(150)).unwrap().verdict.is_ok());
        assert_eq!(
            plane.verify_launch(0, ms(200)).unwrap().verdict,
            Verdict::Revoked
        );
        assert_eq!(plane.metrics().revoked_verdicts, 2);
    }

    #[test]
    fn hit_rate_is_deterministic_under_a_seeded_stream() {
        // Property: the same seeded (host, inter-arrival) stream drives
        // the plane to identical metrics and identical step sequences.
        let run = |seed: u64| {
            let mut plane = AttPlane::new(AttPlaneConfig::cached_batched(), 4).unwrap();
            let mut rng = XorShift64::new(seed);
            let mut now = Nanos::ZERO;
            let mut labels = Vec::new();
            for _ in 0..200 {
                let host = (rng.next_u64() % 4) as usize;
                now += Nanos::from_micros(rng.next_u64() % 5_000);
                let v = plane.verify_launch(host, now).unwrap();
                labels.extend(v.steps.into_iter().map(|s| s.label));
            }
            (*plane.metrics(), labels)
        };
        let (m1, l1) = run(0xDEAD);
        let (m2, l2) = run(0xDEAD);
        assert_eq!(m1, m2);
        assert_eq!(l1, l2);
        assert!(m1.hit_rate() > 0.5, "hot chips should mostly hit");
        let (m3, _) = run(0xBEEF);
        assert!(m3.verifications > 0);
    }

    #[test]
    fn ttl_expiry_forces_refetch_monotonically() {
        let mut cfg = AttPlaneConfig::cached();
        cfg.cache_ttl = ms(30);
        let mut plane = AttPlane::new(cfg, 1).unwrap();
        plane.verify_launch(0, Nanos::ZERO).unwrap();
        plane.verify_launch(0, ms(20)).unwrap(); // within TTL: hit
        plane.verify_launch(0, ms(60)).unwrap(); // lapsed: expired + refetch
        let m = plane.metrics();
        assert_eq!(m.cert_hits, 1);
        assert_eq!(m.cert_fetches, 2);
        assert_eq!(m.expired, 1);
    }

    #[test]
    fn real_reports_verify_until_the_chip_is_revoked() {
        use sevf_mem::GuestMemory;
        use sevf_psp::Psp;
        use sevf_sim::cost::SevGeneration;
        use sevf_sim::CostModel;

        let mut psp = Psp::new(CostModel::calibrated(), 7);
        let plane_chips = vec![psp.chip().clone()];
        let mut plane = AttPlane::with_chips(AttPlaneConfig::cached(), plane_chips).unwrap();

        let start = psp.launch_start(SevGeneration::SevSnp).unwrap();
        let mut mem = GuestMemory::new_sev(1 << 22, start.memory_key, SevGeneration::SevSnp);
        mem.host_write(0x1000, b"boot verifier").unwrap();
        psp.launch_update_data(start.guest, &mut mem, 0x1000, 4096)
            .unwrap();
        psp.launch_update_vmsa(start.guest, 1, &[0u8; 4096])
            .unwrap();
        let finish = psp.launch_finish(start.guest).unwrap();
        let client = sevf_attest::GuestAttestClient::new(b"entropy");
        let (report, _) = psp.guest_report(start.guest, client.report_data()).unwrap();

        // The latency model's ground truth: the plane's registry really
        // verifies the report, and a §2.4 owner built from the plane's
        // trust view provisions the secret.
        assert!(plane.check_report(&report));
        let mut owner = plane.owner(b"secret".to_vec(), b"owner");
        owner.expect_measurement(finish.measurement);
        assert!(owner.handle_report(&report).is_ok());

        // After the drill, the same report is refused everywhere.
        plane.revoke_host(0).unwrap();
        assert!(!plane.check_report(&report));
        let mut owner = plane.owner(b"secret".to_vec(), b"owner");
        owner.expect_measurement(finish.measurement);
        assert!(owner.handle_report(&report).is_err());
        assert_eq!(
            plane.verify_launch(0, Nanos::ZERO).unwrap().verdict,
            Verdict::Revoked
        );
    }

    #[test]
    fn fail_closed_blackout_refuses_everything_and_heals_clean() {
        let mut plane = AttPlane::new(AttPlaneConfig::cached(), 2).unwrap();
        plane.verify_launch(0, Nanos::ZERO).unwrap();
        plane.set_reachable(false);
        assert!(!plane.is_reachable());
        // Even the host with a live cache entry is refused: fail-closed
        // means no fresh verdicts, full stop.
        let v = plane.verify_launch(0, ms(10)).unwrap();
        assert_eq!(v.verdict, Verdict::Unavailable);
        assert!(!v.verdict.is_ok());
        assert_eq!(v.steps.last().unwrap().label, STEP_UNAVAILABLE);
        assert_eq!(v.added, Nanos::ZERO, "no verifier service during blackout");
        let before = plane.metrics().verifications;
        plane.set_reachable(true);
        assert!(plane.verify_launch(0, ms(20)).unwrap().verdict.is_ok());
        let m = plane.metrics();
        assert_eq!(m.unavailable_refusals, 1);
        assert_eq!(m.verifications, before + 1);
        assert_eq!(m.reverifies, 0, "fail-closed owes no re-verification");
    }

    #[test]
    fn fail_open_serves_stale_within_budget_and_reverifies_on_heal() {
        let mut cfg = AttPlaneConfig::cached();
        cfg.cache_ttl = ms(30);
        cfg.degrade = FailMode::Open {
            staleness_budget: ms(40),
        };
        let mut plane = AttPlane::new(cfg, 2).unwrap();
        plane.verify_launch(0, Nanos::ZERO).unwrap();
        plane.set_reachable(false);
        // Past the TTL but inside the budget: served stale.
        let v = plane.verify_launch(0, ms(50)).unwrap();
        assert!(v.verdict.is_ok());
        assert_eq!(v.steps.last().unwrap().label, STEP_STALE_HIT);
        // Host 1 was never verified: nothing to go stale on.
        assert_eq!(
            plane.verify_launch(1, ms(51)).unwrap().verdict,
            Verdict::Unavailable
        );
        // Past ttl + budget even host 0 is refused.
        assert_eq!(
            plane.verify_launch(0, ms(80)).unwrap().verdict,
            Verdict::Unavailable
        );
        // Heal: the stale-served host is forced down the full fetch path
        // even though its entry would still probe fresh after re-insert.
        plane.set_reachable(true);
        let fetches = plane.metrics().cert_fetches;
        assert!(plane.verify_launch(0, ms(90)).unwrap().verdict.is_ok());
        let m = plane.metrics();
        assert_eq!(m.cert_fetches, fetches + 1, "heal forces a refetch");
        assert_eq!(m.reverifies, 1);
        assert_eq!(m.stale_serves, 1);
        assert_eq!(m.unavailable_refusals, 2);
    }

    #[test]
    fn revocation_beats_stale_service_during_a_blackout() {
        let mut cfg = AttPlaneConfig::cached();
        cfg.degrade = FailMode::Open {
            staleness_budget: ms(1000),
        };
        let mut plane = AttPlane::new(cfg, 1).unwrap();
        plane.verify_launch(0, Nanos::ZERO).unwrap();
        plane.set_reachable(false);
        assert!(plane.verify_launch(0, ms(10)).unwrap().verdict.is_ok());
        // The revocation lands mid-blackout: stale trust is void.
        plane.revoke_host(0).unwrap();
        let v = plane.verify_launch(0, ms(20)).unwrap();
        assert_eq!(v.verdict, Verdict::Revoked);
        assert_eq!(v.steps.last().unwrap().label, STEP_REVOKED);
        // And the heal does not resurrect it.
        plane.set_reachable(true);
        assert_eq!(
            plane.verify_launch(0, ms(30)).unwrap().verdict,
            Verdict::Revoked
        );
    }

    #[test]
    fn tcb_rollout_during_blackout_survives_via_same_chip_fallback() {
        let mut cfg = AttPlaneConfig::cached();
        cfg.degrade = FailMode::Open {
            staleness_budget: ms(500),
        };
        let mut plane = AttPlane::new(cfg, 1).unwrap();
        plane.verify_launch(0, Nanos::ZERO).unwrap();
        plane.set_reachable(false);
        // The rollout bumps the key mid-blackout; the chip's old-TCB
        // entry still vouches for it within the allowance.
        plane.bump_tcb(0).unwrap();
        let v = plane.verify_launch(0, ms(10)).unwrap();
        assert!(v.verdict.is_ok());
        assert_eq!(v.steps.last().unwrap().label, STEP_STALE_HIT);
    }

    #[test]
    fn unknown_host_is_an_error() {
        let mut plane = AttPlane::new(AttPlaneConfig::naive(), 1).unwrap();
        assert!(matches!(
            plane.verify_launch(3, Nanos::ZERO),
            Err(AttPlaneError::UnknownHost { host: 3, hosts: 1 })
        ));
    }
}
