//! Verifier-service configuration: mode and cost model.

use sevf_sim::Nanos;

use crate::AttPlaneError;

/// How the verifier service treats each launch's attestation evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Every launch pays the full pipeline: KDS cert-chain fetch,
    /// signature-context setup, signature check. No state is reused.
    Naive,
    /// The VCEK cert chain and verified-report state are cached per
    /// *(chip id, TCB version)*; a hit skips the KDS fetch.
    Cached,
    /// Cached, plus reports arriving within one batch window share a
    /// single signature-context setup (the first member pays it).
    CachedBatched,
}

impl VerifyMode {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Naive => "naive",
            VerifyMode::Cached => "cached",
            VerifyMode::CachedBatched => "cached+batched",
        }
    }
}

/// What the plane does when the remote verifier is unreachable.
///
/// Fail-closed is the conservative posture: no fresh verdicts means no
/// launches. Fail-open trades a bounded amount of staleness for
/// availability: launches whose cert chain was verified recently enough
/// (within TTL + budget) are served from [`crate::CertCache`] and queued
/// for re-verification once the verifier heals. Revocation always wins
/// over staleness in either mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Refuse every launch while the verifier is unreachable.
    Closed,
    /// Serve from cache within `ttl + staleness_budget`, re-verify on heal.
    Open {
        /// Extra age past the TTL a cached verdict may be trusted for.
        staleness_budget: Nanos,
    },
}

/// Cost model and policy for the attestation plane.
///
/// All durations are virtual time. The defaults model a remote verifier:
/// a ~10 ms KDS round trip for the cert chain, ~2 ms of ECDSA-P384
/// chain-walk/context setup per verification batch, and ~0.5 ms per
/// report signature check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttPlaneConfig {
    /// Verification mode (the sweep's three arms).
    pub mode: VerifyMode,
    /// Seed for deriving per-host chip identities.
    pub seed: u64,
    /// Cost of fetching + validating a VCEK cert chain from the KDS.
    pub cert_fetch: Nanos,
    /// Per-batch signature-context setup (paid per report when unbatched).
    pub batch_setup: Nanos,
    /// Per-report signature check.
    pub sig_check: Nanos,
    /// Batch window length; reports whose service starts in the same
    /// window share one setup ([`VerifyMode::CachedBatched`] only).
    pub batch_window: Nanos,
    /// TTL for cached cert-chain/report entries, in virtual time.
    pub cache_ttl: Nanos,
    /// Degradation policy while the verifier is unreachable.
    pub degrade: FailMode,
}

impl AttPlaneConfig {
    /// The calibrated verifier model in the given mode.
    pub fn verifier(mode: VerifyMode) -> Self {
        AttPlaneConfig {
            mode,
            seed: 0x00A7_7E57,
            cert_fetch: Nanos::from_millis(10),
            batch_setup: Nanos::from_millis(2),
            sig_check: Nanos::from_micros(500),
            batch_window: Nanos::from_millis(10),
            cache_ttl: Nanos::from_secs(60),
            degrade: FailMode::Closed,
        }
    }

    /// Naive per-launch verification (the baseline arm).
    pub fn naive() -> Self {
        Self::verifier(VerifyMode::Naive)
    }

    /// Cached verification (the middle arm).
    pub fn cached() -> Self {
        Self::verifier(VerifyMode::Cached)
    }

    /// Cached + batched verification (the full control plane).
    pub fn cached_batched() -> Self {
        Self::verifier(VerifyMode::CachedBatched)
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), AttPlaneError> {
        if self.sig_check == Nanos::ZERO {
            return Err(AttPlaneError::Config("sig_check must be positive"));
        }
        if self.mode != VerifyMode::Naive && self.cache_ttl == Nanos::ZERO {
            return Err(AttPlaneError::Config(
                "cache_ttl must be positive in cached modes",
            ));
        }
        if self.mode == VerifyMode::CachedBatched && self.batch_window == Nanos::ZERO {
            return Err(AttPlaneError::Config(
                "batch_window must be positive in batched mode",
            ));
        }
        if let FailMode::Open { staleness_budget } = self.degrade {
            if staleness_budget == Nanos::ZERO {
                return Err(AttPlaneError::Config(
                    "fail-open staleness budget must be positive",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            AttPlaneConfig::naive(),
            AttPlaneConfig::cached(),
            AttPlaneConfig::cached_batched(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let mut cfg = AttPlaneConfig::cached();
        cfg.cache_ttl = Nanos::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = AttPlaneConfig::cached_batched();
        cfg.batch_window = Nanos::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = AttPlaneConfig::naive();
        cfg.sig_check = Nanos::ZERO;
        assert!(cfg.validate().is_err());
        // Naive mode never consults the cache, so a zero TTL is fine there.
        let mut cfg = AttPlaneConfig::naive();
        cfg.cache_ttl = Nanos::ZERO;
        cfg.validate().unwrap();
        // Fail-open with no budget would be fail-open forever; rejected.
        let mut cfg = AttPlaneConfig::cached();
        cfg.degrade = FailMode::Open {
            staleness_budget: Nanos::ZERO,
        };
        assert!(cfg.validate().is_err());
        cfg.degrade = FailMode::Open {
            staleness_budget: Nanos::from_secs(30),
        };
        cfg.validate().unwrap();
    }
}
