//! Fleet-scale attestation control plane.
//!
//! `crates/attest` reproduces §2.4's report → guest-owner → wrapped-secrets
//! handshake for one launch. Real SEV deployments run that handshake
//! against a *verifier service*: certificates come from AMD's KDS, the
//! VCEK cert chain is cached, signature checks are batched across
//! concurrent launches, and a TCB/firmware rollout or a key compromise
//! forces whole hosts back through re-measurement and re-attestation.
//!
//! This crate models that service on the shared virtual clock:
//!
//! - [`CertCache`] — a VCEK cert-chain + verified-report cache keyed by
//!   *(chip id, TCB version)*, with a TTL in virtual time and explicit
//!   revocation that always wins over a cached hit.
//! - [`AttPlane`] — a deterministic single-server verifier queue. Every
//!   dispatch consults it and receives a [`Verification`]: a verdict plus
//!   the network-class [`WorkStep`](sevf_obs::WorkStep)s (queue wait →
//!   cert fetch/hit → batch window → signature check) that the fleet and
//!   cluster layers splice into the launch's span tree.
//! - [`VerifyMode`] — naive per-launch verification, cached, or
//!   cached + batched, where the first report in a batch window pays the
//!   signature-context setup and later reports share it (the PSP-queue
//!   analogy: amortize the fixed cost across concurrent launches).
//!
//! The chip identities are real [`ChipIdentity`](sevf_psp::ChipIdentity)
//! keys registered in a real [`AmdRootRegistry`](sevf_psp::AmdRootRegistry);
//! revoking a host here revokes it at the root, so reports the chip signs
//! stop verifying — and by §6.2, every launch template derived under that
//! key must die with it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

mod cache;
mod config;
mod plane;

pub use cache::{CacheKey, CacheLookup, CertCache, StaleLookup};
pub use config::{AttPlaneConfig, FailMode, VerifyMode};
pub use plane::{
    AttPlane, AttPlaneMetrics, Verdict, Verification, STEP_BATCH_JOIN, STEP_BATCH_SETUP,
    STEP_CERT_FETCH, STEP_CERT_HIT, STEP_QUEUE_WAIT, STEP_REVOKED, STEP_RTT, STEP_STALE_HIT,
    STEP_UNAVAILABLE, STEP_VERIFY,
};

/// Errors from the attestation control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttPlaneError {
    /// The plane configuration is invalid.
    Config(&'static str),
    /// A verification named a host the plane holds no chip identity for.
    UnknownHost {
        /// The host index asked for.
        host: usize,
        /// How many hosts the plane was built with.
        hosts: usize,
    },
}

impl fmt::Display for AttPlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttPlaneError::Config(msg) => write!(f, "invalid attestation plane config: {msg}"),
            AttPlaneError::UnknownHost { host, hosts } => {
                write!(
                    f,
                    "host {host} unknown to attestation plane ({hosts} hosts)"
                )
            }
        }
    }
}

impl Error for AttPlaneError {}

/// One-line imports for examples and downstream crates.
pub mod prelude {
    pub use crate::{
        AttPlane, AttPlaneConfig, AttPlaneError, AttPlaneMetrics, CertCache, FailMode, StaleLookup,
        Verdict, Verification, VerifyMode,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_have_no_source() {
        let e = AttPlaneError::Config("bad");
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e = AttPlaneError::UnknownHost { host: 7, hosts: 3 };
        assert!(e.to_string().contains("host 7"));
    }
}
