//! Property-based tests for the image formats.
//!
//! Seeded XorShift64 case generation keeps the sweep deterministic without
//! an external property-testing dependency.

use sevf_codec::Codec;
use sevf_image::bzimage;
use sevf_image::cpio::{self, CpioEntry};
use sevf_image::elf::{ElfImage, Segment, SegmentFlags};
use sevf_image::kernel::{BootPhases, KernelDescriptor};
use sevf_sim::rng::XorShift64;

const CASES: u64 = 64;

fn bytes(rng: &mut XorShift64, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len as u64 + rng.next_below((max_len - min_len) as u64 + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn random_segment(rng: &mut XorShift64) -> Segment {
    let flags = match rng.next_below(3) {
        0 => SegmentFlags::RX,
        1 => SegmentFlags::R,
        _ => SegmentFlags::RW,
    };
    Segment {
        vaddr: rng.next_below(1 << 40),
        data: bytes(rng, 1, 1999),
        bss: rng.next_below(10_000),
        flags,
    }
}

fn random_segments(rng: &mut XorShift64) -> Vec<Segment> {
    let n = 1 + rng.next_below(5) as usize;
    (0..n).map(|_| random_segment(rng)).collect()
}

/// A path like the proptest regex `[a-z][a-z0-9/_.-]{0,30}` would draw.
fn random_name(rng: &mut XorShift64) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/_.-";
    let mut name = String::new();
    name.push(FIRST[rng.next_below(FIRST.len() as u64) as usize] as char);
    for _ in 0..rng.next_below(31) {
        name.push(REST[rng.next_below(REST.len() as u64) as usize] as char);
    }
    name
}

fn random_cpio_entry(rng: &mut XorShift64) -> CpioEntry {
    let mode = match rng.next_below(3) {
        0 => 0o100644u32,
        1 => 0o100755u32,
        _ => 0o040755u32,
    };
    CpioEntry {
        name: random_name(rng),
        mode,
        data: bytes(rng, 0, 499),
    }
}

#[test]
fn elf_roundtrip() {
    let mut rng = XorShift64::new(0x1A6_0001);
    for _ in 0..CASES {
        let elf = ElfImage {
            entry: rng.next_below(1 << 40),
            segments: random_segments(&mut rng),
        };
        let parsed = ElfImage::parse(&elf.to_bytes()).unwrap();
        assert_eq!(parsed, elf);
    }
}

#[test]
fn elf_fw_cfg_pieces_cover_data() {
    let mut rng = XorShift64::new(0x1A6_0002);
    for _ in 0..CASES {
        let elf = ElfImage {
            entry: 0x1000,
            segments: random_segments(&mut rng),
        };
        let (ehdr, phdrs, segs) = elf.fw_cfg_pieces();
        assert_eq!(ehdr.len(), 64);
        assert_eq!(phdrs.len(), elf.segments.len() * 56);
        assert_eq!(segs.len() as u64, elf.loadable_bytes());
    }
}

#[test]
fn elf_garbage_never_panics() {
    let mut rng = XorShift64::new(0x1A6_0003);
    for _ in 0..CASES {
        let _ = ElfImage::parse(&bytes(&mut rng, 0, 499));
    }
}

#[test]
fn cpio_roundtrip() {
    let mut rng = XorShift64::new(0x1A6_0004);
    for _ in 0..CASES {
        let raw: Vec<CpioEntry> = (0..rng.next_below(10))
            .map(|_| random_cpio_entry(&mut rng))
            .collect();
        // Deduplicate names (archives with duplicate paths are legal but
        // make the equality check ambiguous).
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<CpioEntry> = raw
            .into_iter()
            .filter(|e| seen.insert(e.name.clone()))
            .collect();
        let archive = cpio::build(&entries);
        assert_eq!(cpio::parse(&archive).unwrap(), entries);
    }
}

#[test]
fn cpio_garbage_never_panics() {
    let mut rng = XorShift64::new(0x1A6_0005);
    for _ in 0..CASES {
        let _ = cpio::parse(&bytes(&mut rng, 0, 399));
    }
}

#[test]
fn bzimage_roundtrip_any_payload() {
    let mut rng = XorShift64::new(0x1A6_0006);
    for _ in 0..CASES {
        let payload = bytes(&mut rng, 0, 19_999);
        let codec = match rng.next_below(3) {
            0 => Codec::None,
            1 => Codec::Lz4,
            _ => Codec::Deflate,
        };
        let bz = bzimage::build(&payload, codec);
        let (compressed, parsed_codec) = bzimage::parse(&bz).unwrap();
        assert_eq!(parsed_codec, codec);
        assert_eq!(codec.decompress(&compressed).unwrap(), payload);
        assert_eq!(bzimage::unpack_vmlinux(&bz).unwrap(), payload);
    }
}

#[test]
fn bzimage_garbage_never_panics() {
    let mut rng = XorShift64::new(0x1A6_0007);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 0, 1999);
        let _ = bzimage::parse(&data);
        let _ = bzimage::unpack_vmlinux(&data);
    }
}

#[test]
fn descriptor_roundtrip() {
    let mut rng = XorShift64::new(0x1A6_0008);
    for _ in 0..CASES {
        let mut name = String::new();
        name.push((b'a' + rng.next_below(26) as u8) as char);
        for _ in 0..rng.next_below(21) {
            const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
            name.push(CHARS[rng.next_below(CHARS.len() as u64) as usize] as char);
        }
        let d = KernelDescriptor {
            name,
            phases: BootPhases {
                early_us: rng.next_below(1_000_000) as u32,
                drivers_us: rng.next_below(1_000_000) as u32,
                late_us: rng.next_below(1_000_000) as u32,
            },
            has_network: rng.next_u64() & 1 == 1,
            vmlinux_size: rng.next_u64(),
        };
        assert_eq!(KernelDescriptor::from_bytes(&d.to_bytes()).unwrap(), d);
    }
}

#[test]
fn descriptor_garbage_never_panics() {
    let mut rng = XorShift64::new(0x1A6_0009);
    for _ in 0..CASES {
        let _ = KernelDescriptor::from_bytes(&bytes(&mut rng, 0, 99));
    }
}
