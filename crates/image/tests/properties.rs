//! Property-based tests for the image formats.

use proptest::prelude::*;
use sevf_codec::Codec;
use sevf_image::bzimage;
use sevf_image::cpio::{self, CpioEntry};
use sevf_image::elf::{ElfImage, Segment, SegmentFlags};
use sevf_image::kernel::{BootPhases, KernelDescriptor};

fn arb_segment() -> impl Strategy<Value = Segment> {
    (
        0u64..1 << 40,
        proptest::collection::vec(any::<u8>(), 1..2000),
        0u64..10_000,
        prop_oneof![
            Just(SegmentFlags::RX),
            Just(SegmentFlags::R),
            Just(SegmentFlags::RW)
        ],
    )
        .prop_map(|(vaddr, data, bss, flags)| Segment {
            vaddr,
            data,
            bss,
            flags,
        })
}

fn arb_cpio_entry() -> impl Strategy<Value = CpioEntry> {
    (
        "[a-z][a-z0-9/_.-]{0,30}",
        prop_oneof![Just(0o100644u32), Just(0o100755u32), Just(0o040755u32)],
        proptest::collection::vec(any::<u8>(), 0..500),
    )
        .prop_map(|(name, mode, data)| CpioEntry { name, mode, data })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn elf_roundtrip(
        entry in 0u64..1 << 40,
        segments in proptest::collection::vec(arb_segment(), 1..6),
    ) {
        let elf = ElfImage { entry, segments };
        let parsed = ElfImage::parse(&elf.to_bytes()).unwrap();
        prop_assert_eq!(parsed, elf);
    }

    #[test]
    fn elf_fw_cfg_pieces_cover_data(
        segments in proptest::collection::vec(arb_segment(), 1..6),
    ) {
        let elf = ElfImage { entry: 0x1000, segments };
        let (ehdr, phdrs, segs) = elf.fw_cfg_pieces();
        prop_assert_eq!(ehdr.len(), 64);
        prop_assert_eq!(phdrs.len(), elf.segments.len() * 56);
        prop_assert_eq!(segs.len() as u64, elf.loadable_bytes());
    }

    #[test]
    fn elf_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..500)) {
        let _ = ElfImage::parse(&data);
    }

    #[test]
    fn cpio_roundtrip(entries in proptest::collection::vec(arb_cpio_entry(), 0..10)) {
        // Deduplicate names (archives with duplicate paths are legal but
        // make the equality check ambiguous).
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<CpioEntry> = entries
            .into_iter()
            .filter(|e| seen.insert(e.name.clone()))
            .collect();
        let archive = cpio::build(&entries);
        prop_assert_eq!(cpio::parse(&archive).unwrap(), entries);
    }

    #[test]
    fn cpio_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = cpio::parse(&data);
    }

    #[test]
    fn bzimage_roundtrip_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..20_000),
        codec in prop_oneof![Just(Codec::None), Just(Codec::Lz4), Just(Codec::Deflate)],
    ) {
        let bz = bzimage::build(&payload, codec);
        let (compressed, parsed_codec) = bzimage::parse(&bz).unwrap();
        prop_assert_eq!(parsed_codec, codec);
        prop_assert_eq!(codec.decompress(&compressed).unwrap(), payload.clone());
        prop_assert_eq!(bzimage::unpack_vmlinux(&bz).unwrap(), payload);
    }

    #[test]
    fn bzimage_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let _ = bzimage::parse(&data);
        let _ = bzimage::unpack_vmlinux(&data);
    }

    #[test]
    fn descriptor_roundtrip(
        name in "[a-z][a-z0-9-]{0,20}",
        early in 0u32..1_000_000,
        drivers in 0u32..1_000_000,
        late in 0u32..1_000_000,
        has_network in any::<bool>(),
        size in any::<u64>(),
    ) {
        let d = KernelDescriptor {
            name,
            phases: BootPhases {
                early_us: early,
                drivers_us: drivers,
                late_us: late,
            },
            has_network,
            vmlinux_size: size,
        };
        prop_assert_eq!(KernelDescriptor::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn descriptor_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = KernelDescriptor::from_bytes(&data);
    }
}
