//! Kernel configurations, the embedded descriptor, and image building.
//!
//! Fig. 8 of the paper:
//!
//! | config | vmlinux | bzImage (LZ4) |
//! |---|---|---|
//! | Lupine | 23 MB | 3.3 MB |
//! | AWS    | 43 MB | 7.1 MB |
//! | Ubuntu | 61 MB | 15 MB  |
//!
//! A [`KernelConfig`] describes one such kernel; [`KernelConfig::build`]
//! manufactures (and caches) the matching [`KernelImage`]: an ELF64 vmlinux
//! whose first bytes at the entry point are a [`KernelDescriptor`] that the
//! guest-kernel runtime executes in place of real Linux — it carries the
//! per-phase boot costs (calibrated so the AWS kernel boots in ≈ 40 ms on
//! stock Firecracker, §3.1) and whether the config has networking (the
//! Lupine config does not, so it skips attestation; §6.1).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use sevf_codec::Codec;

use crate::bzimage;
use crate::content::{generate, ContentProfile};
use crate::elf::{ElfImage, Segment, SegmentFlags};
use crate::ImageError;

const MB: u64 = 1024 * 1024;

/// Physical/virtual base address kernels are linked at (16 MiB, the typical
/// x86-64 default).
pub const KERNEL_BASE: u64 = 0x100_0000;

/// Magic identifying an embedded kernel descriptor.
pub const DESCRIPTOR_MAGIC: &[u8; 4] = b"SVKD";

/// Guest-kernel boot phase durations on a *non-SEV* baseline, microseconds.
/// The SNP multiplier from the cost model is applied by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BootPhases {
    /// Early setup: paging, per-CPU areas, memblock.
    pub early_us: u32,
    /// Driver/subsystem initialization (initcalls).
    pub drivers_us: u32,
    /// Late boot: initrd unpack glue, mounting, exec of init.
    pub late_us: u32,
}

impl BootPhases {
    /// Total baseline boot time in microseconds.
    pub fn total_us(&self) -> u64 {
        self.early_us as u64 + self.drivers_us as u64 + self.late_us as u64
    }
}

/// The descriptor embedded at the kernel entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDescriptor {
    /// Kernel config name ("lupine", "aws", "ubuntu", ...).
    pub name: String,
    /// Baseline boot phase durations.
    pub phases: BootPhases,
    /// Whether this config includes virtio-net (required for attestation).
    pub has_network: bool,
    /// Declared size of the full vmlinux this descriptor belongs to.
    pub vmlinux_size: u64,
}

impl KernelDescriptor {
    /// Serialized size cap.
    pub const MAX_SIZE: usize = 64;

    /// Serializes to the on-image byte format.
    ///
    /// # Panics
    ///
    /// Panics if the name is longer than 32 bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.name.len() <= 32, "descriptor name too long");
        let mut out = Vec::with_capacity(Self::MAX_SIZE);
        out.extend_from_slice(DESCRIPTOR_MAGIC);
        out.push(1); // version
        out.push(self.name.len() as u8);
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.phases.early_us.to_le_bytes());
        out.extend_from_slice(&self.phases.drivers_us.to_le_bytes());
        out.extend_from_slice(&self.phases.late_us.to_le_bytes());
        out.push(self.has_network as u8);
        out.extend_from_slice(&self.vmlinux_size.to_le_bytes());
        out
    }

    /// Parses a descriptor from the start of a byte slice (e.g. guest memory
    /// at the kernel entry point).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BadDescriptor`] on bad magic or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ImageError> {
        if bytes.len() < 6 || &bytes[..4] != DESCRIPTOR_MAGIC {
            return Err(ImageError::BadDescriptor("missing SVKD magic"));
        }
        if bytes[4] != 1 {
            return Err(ImageError::BadDescriptor("unknown version"));
        }
        let name_len = bytes[5] as usize;
        let need = 6 + name_len + 4 * 3 + 1 + 8;
        if bytes.len() < need {
            return Err(ImageError::BadDescriptor("truncated"));
        }
        let name = std::str::from_utf8(&bytes[6..6 + name_len])
            .map_err(|_| ImageError::BadDescriptor("non-UTF-8 name"))?
            .to_string();
        let mut at = 6 + name_len;
        let mut read_u32 = || {
            let v = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            at += 4;
            v
        };
        let early_us = read_u32();
        let drivers_us = read_u32();
        let late_us = read_u32();
        let has_network = bytes[at] != 0;
        let vmlinux_size = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().expect("8"));
        Ok(KernelDescriptor {
            name,
            phases: BootPhases {
                early_us,
                drivers_us,
                late_us,
            },
            has_network,
            vmlinux_size,
        })
    }
}

/// A guest kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Config name (cache key together with size).
    pub name: String,
    /// Target vmlinux size in bytes.
    pub vmlinux_size: u64,
    /// Content mix controlling compressibility.
    pub profile: ContentProfile,
    /// Baseline boot phase durations.
    pub phases: BootPhases,
    /// Whether the config includes networking.
    pub has_network: bool,
}

impl KernelConfig {
    /// The Lupine-base config: smallest Linux that boots in Firecracker;
    /// no networking, so no attestation (§6.1).
    pub fn lupine() -> Self {
        KernelConfig {
            name: "lupine".into(),
            vmlinux_size: 23 * MB,
            profile: ContentProfile::lupine(),
            phases: BootPhases {
                early_us: 4_000,
                drivers_us: 9_000,
                late_us: 9_000,
            },
            has_network: false,
        }
    }

    /// The AWS microVM config shipped with Firecracker (the paper's
    /// "typical" kernel; stock boot ≈ 40 ms, §3.1).
    pub fn aws() -> Self {
        KernelConfig {
            name: "aws".into(),
            vmlinux_size: 43 * MB,
            profile: ContentProfile::aws(),
            phases: BootPhases {
                early_us: 6_000,
                drivers_us: 14_000,
                late_us: 11_000,
            },
            has_network: true,
        }
    }

    /// The Ubuntu-generic config (the paper's "large" kernel).
    pub fn ubuntu() -> Self {
        KernelConfig {
            name: "ubuntu".into(),
            vmlinux_size: 61 * MB,
            profile: ContentProfile::ubuntu(),
            phases: BootPhases {
                early_us: 10_000,
                drivers_us: 26_000,
                late_us: 16_000,
            },
            has_network: true,
        }
    }

    /// The three paper configs, small to large.
    pub fn paper_configs() -> Vec<KernelConfig> {
        vec![Self::lupine(), Self::aws(), Self::ubuntu()]
    }

    /// A miniature config for fast unit/integration tests (256 KiB image,
    /// AWS-like proportions).
    pub fn test_tiny() -> Self {
        KernelConfig {
            name: "test-tiny".into(),
            vmlinux_size: 256 * 1024,
            profile: ContentProfile::aws(),
            phases: BootPhases {
                early_us: 6_000,
                drivers_us: 14_000,
                late_us: 11_000,
            },
            has_network: true,
        }
    }

    /// Returns a copy with the vmlinux size divided by `factor` — the same
    /// boot-cost profile over proportionally smaller functional images,
    /// for experiments that must run quickly in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled_down(mut self, factor: u64) -> Self {
        assert!(factor > 0);
        self.vmlinux_size /= factor;
        self.name = format!("{}-div{factor}", self.name);
        self
    }

    /// The descriptor this config embeds.
    pub fn descriptor(&self) -> KernelDescriptor {
        KernelDescriptor {
            name: self.name.clone(),
            phases: self.phases,
            has_network: self.has_network,
            vmlinux_size: self.vmlinux_size,
        }
    }

    /// Builds (or fetches from the process-wide cache) the kernel image.
    pub fn build(&self) -> Arc<KernelImage> {
        static CACHE: OnceLock<Mutex<HashMap<String, Arc<KernelImage>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = format!("{}:{}", self.name, self.vmlinux_size);
        if let Some(image) = cache.lock().expect("cache lock").get(&key) {
            return Arc::clone(image);
        }
        let image = Arc::new(KernelImage::build(self.clone()));
        cache
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&image));
        image
    }
}

/// A fully built kernel: the ELF vmlinux plus lazily built bzImages.
#[derive(Debug)]
pub struct KernelImage {
    config: KernelConfig,
    vmlinux: Vec<u8>,
    elf: ElfImage,
    bzimages: Mutex<HashMap<Codec, Arc<Vec<u8>>>>,
}

impl KernelImage {
    fn build(config: KernelConfig) -> Self {
        let descriptor = config.descriptor().to_bytes();
        // Segment split mimicking a kernel layout: text / rodata / data.
        let total = config.vmlinux_size as usize;
        let text_size = total * 55 / 100;
        let rodata_size = total * 20 / 100;
        let data_size = total - text_size - rodata_size;

        let mut text = descriptor;
        let seed = format!("vmlinux-text-{}", config.name);
        text.extend(generate(
            config.profile,
            text_size.saturating_sub(text.len()),
            seed.as_bytes(),
        ));
        let rodata = generate(
            config.profile,
            rodata_size,
            format!("vmlinux-rodata-{}", config.name).as_bytes(),
        );
        let data = generate(
            config.profile,
            data_size,
            format!("vmlinux-data-{}", config.name).as_bytes(),
        );

        let text_len = text.len() as u64;
        let rodata_len = rodata.len() as u64;
        let elf = ElfImage {
            entry: KERNEL_BASE,
            segments: vec![
                Segment {
                    vaddr: KERNEL_BASE,
                    data: text,
                    bss: 0,
                    flags: SegmentFlags::RX,
                },
                Segment {
                    vaddr: KERNEL_BASE + align_up(text_len),
                    data: rodata,
                    bss: 0,
                    flags: SegmentFlags::R,
                },
                Segment {
                    vaddr: KERNEL_BASE + align_up(text_len) + align_up(rodata_len),
                    data,
                    bss: 2 * MB, // bss the loader must zero
                    flags: SegmentFlags::RW,
                },
            ],
        };
        let vmlinux = elf.to_bytes();
        KernelImage {
            config,
            vmlinux,
            elf,
            bzimages: Mutex::new(HashMap::new()),
        }
    }

    /// The config this image was built from.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The serialized ELF vmlinux.
    pub fn vmlinux(&self) -> &[u8] {
        &self.vmlinux
    }

    /// The parsed ELF structure.
    pub fn elf(&self) -> &ElfImage {
        &self.elf
    }

    /// The bzImage with the payload compressed by `codec` (built once and
    /// cached).
    pub fn bzimage(&self, codec: Codec) -> Arc<Vec<u8>> {
        let mut cache = self.bzimages.lock().expect("bzimage lock");
        if let Some(bz) = cache.get(&codec) {
            return Arc::clone(bz);
        }
        let bz = Arc::new(bzimage::build(&self.vmlinux, codec));
        cache.insert(codec, Arc::clone(&bz));
        bz
    }

    /// The descriptor embedded at the entry point.
    pub fn descriptor(&self) -> KernelDescriptor {
        self.config.descriptor()
    }
}

fn align_up(v: u64) -> u64 {
    (v + 0xfff) & !0xfff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = KernelConfig::aws().descriptor();
        let parsed = KernelDescriptor::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn descriptor_rejects_garbage() {
        assert!(KernelDescriptor::from_bytes(b"nope").is_err());
        let mut bytes = KernelConfig::aws().descriptor().to_bytes();
        bytes[4] = 99;
        assert!(KernelDescriptor::from_bytes(&bytes).is_err());
    }

    #[test]
    fn tiny_kernel_builds_and_parses() {
        let image = KernelConfig::test_tiny().build();
        assert!(image.vmlinux().len() as u64 >= 256 * 1024);
        let parsed = ElfImage::parse(image.vmlinux()).unwrap();
        assert_eq!(parsed.entry, KERNEL_BASE);
        assert_eq!(parsed.segments.len(), 3);
        // Descriptor is at the entry point (start of the first segment).
        let d = KernelDescriptor::from_bytes(&parsed.segments[0].data).unwrap();
        assert_eq!(d.name, "test-tiny");
        assert!(d.has_network);
    }

    #[test]
    fn bzimage_unpacks_to_vmlinux() {
        let image = KernelConfig::test_tiny().build();
        let bz = image.bzimage(Codec::Lz4);
        let vmlinux = bzimage::unpack_vmlinux(&bz).unwrap();
        assert_eq!(vmlinux, image.vmlinux());
    }

    #[test]
    fn cache_returns_same_instance() {
        let a = KernelConfig::test_tiny().build();
        let b = KernelConfig::test_tiny().build();
        assert!(Arc::ptr_eq(&a, &b));
        let bz1 = a.bzimage(Codec::Lz4);
        let bz2 = b.bzimage(Codec::Lz4);
        assert!(Arc::ptr_eq(&bz1, &bz2));
    }

    #[test]
    fn scaled_down_shrinks() {
        let config = KernelConfig::aws().scaled_down(16);
        assert_eq!(config.vmlinux_size, 43 * MB / 16);
        assert_eq!(config.phases, KernelConfig::aws().phases);
        let image = config.build();
        assert!(image.vmlinux().len() < 4 * MB as usize);
    }

    #[test]
    fn boot_phase_ordering_matches_paper() {
        // Lupine < AWS < Ubuntu in baseline boot time; AWS ≈ 31 ms so a
        // stock Firecracker boot lands near the paper's ≈ 40 ms.
        let l = KernelConfig::lupine().phases.total_us();
        let a = KernelConfig::aws().phases.total_us();
        let u = KernelConfig::ubuntu().phases.total_us();
        assert!(l < a && a < u);
        assert!((28_000..36_000).contains(&a), "aws total {a}");
    }

    #[test]
    fn paper_sizes_declared() {
        let configs = KernelConfig::paper_configs();
        assert_eq!(configs[0].vmlinux_size, 23 * MB);
        assert_eq!(configs[1].vmlinux_size, 43 * MB);
        assert_eq!(configs[2].vmlinux_size, 61 * MB);
    }
}
