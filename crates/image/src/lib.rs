//! Synthetic guest boot images.
//!
//! The paper evaluates three guest kernels (Fig. 8): a Lupine-based
//! unikernel-style config (23 MB vmlinux / 3.3 MB bzImage), the AWS
//! Firecracker microVM config (43 MB / 7.1 MB), and an Ubuntu-generic config
//! (61 MB / 15 MB). We cannot ship Linux builds, so this crate *manufactures*
//! images with the same externally observable properties:
//!
//! * a real **ELF64** vmlinux ([`elf`]) with loadable segments, parsed and
//!   loaded by the same code paths a real loader would need;
//! * a real **bzImage** container ([`bzimage`]) — boot sector, `HdrS` setup
//!   header, bootstrap-loader stub, and a compressed payload — matching the
//!   paper's observation that loading a bzImage takes *less* verifier code
//!   than parsing a kernel ELF (§4.4);
//! * a real **CPIO newc** initrd ([`cpio`], [`initrd`]) carrying the
//!   attestation tooling (§2.3: the initrd is plain text and secret-free);
//! * deterministic content ([`content`]) whose **compression ratios** under
//!   the from-scratch codecs land on Fig. 8's vmlinux/bzImage size pairs;
//! * an embedded [`kernel::KernelDescriptor`] that tells the guest-kernel
//!   runtime how long each boot phase takes, standing in for actually
//!   executing Linux.
//!
//! # Example
//!
//! ```
//! use sevf_image::kernel::KernelConfig;
//! use sevf_codec::Codec;
//!
//! let config = KernelConfig::test_tiny();
//! let image = config.build();
//! let bz = image.bzimage(Codec::Lz4);
//! assert!(bz.len() < image.vmlinux().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bzimage;
pub mod content;
pub mod cpio;
pub mod elf;
pub mod initrd;
pub mod kernel;

use std::fmt;

/// Errors raised when parsing or building boot images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Not a valid ELF file (bad magic/class/shape).
    BadElf(&'static str),
    /// Not a valid bzImage (missing 0x55AA or HdrS, bad offsets).
    BadBzImage(&'static str),
    /// Not a valid CPIO newc archive.
    BadCpio(&'static str),
    /// The embedded kernel descriptor is missing or corrupt.
    BadDescriptor(&'static str),
    /// Decompression of a payload failed.
    Codec(sevf_codec::CodecError),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadElf(w) => write!(f, "invalid ELF image: {w}"),
            ImageError::BadBzImage(w) => write!(f, "invalid bzImage: {w}"),
            ImageError::BadCpio(w) => write!(f, "invalid CPIO archive: {w}"),
            ImageError::BadDescriptor(w) => write!(f, "invalid kernel descriptor: {w}"),
            ImageError::Codec(e) => write!(f, "payload decompression failed: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sevf_codec::CodecError> for ImageError {
    fn from(e: sevf_codec::CodecError) -> Self {
        ImageError::Codec(e)
    }
}
