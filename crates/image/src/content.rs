//! Deterministic, compressibility-tunable content generation.
//!
//! Kernel images are a mixture of machine code (moderately compressible),
//! zero-filled/bss-like regions and tables (highly compressible), and
//! embedded compressed blobs (incompressible). [`ContentProfile`] controls
//! the mix, which is how the synthetic kernels land on Fig. 8's vmlinux →
//! bzImage ratios under the real LZ4 codec in `sevf-codec`.

use sevf_crypto::sha256;

/// Fractions of each content class; must sum to 1.0 (±0.01).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentProfile {
    /// Zero-run fraction (bss, padding, page tables).
    pub zeros: f64,
    /// Dictionary-text fraction (code-like, symbol tables, strings).
    pub text: f64,
    /// Pseudo-random fraction (embedded blobs, already-compressed data).
    pub random: f64,
}

impl ContentProfile {
    /// Profile tuned so LZ4 compresses ≈ 7.0× (Lupine's 23 → 3.3 MB).
    pub fn lupine() -> Self {
        ContentProfile {
            zeros: 0.498,
            text: 0.41,
            random: 0.092,
        }
    }

    /// Profile tuned so LZ4 compresses ≈ 6.1× (AWS's 43 → 7.1 MB).
    pub fn aws() -> Self {
        ContentProfile {
            zeros: 0.478,
            text: 0.41,
            random: 0.112,
        }
    }

    /// Profile tuned so LZ4 compresses ≈ 4.1× (Ubuntu's 61 → 15 MB).
    pub fn ubuntu() -> Self {
        ContentProfile {
            zeros: 0.387,
            text: 0.42,
            random: 0.193,
        }
    }

    /// Profile for initrd content: mostly binaries and already-packed
    /// tools, so compression barely pays (§3.3: "it is faster to leave the
    /// initrd uncompressed").
    pub fn initrd() -> Self {
        ContentProfile {
            zeros: 0.04,
            text: 0.12,
            random: 0.84,
        }
    }

    fn validate(&self) {
        let sum = self.zeros + self.text + self.random;
        assert!(
            (sum - 1.0).abs() < 0.01,
            "content profile fractions must sum to 1 (got {sum})"
        );
        assert!(self.zeros >= 0.0 && self.text >= 0.0 && self.random >= 0.0);
    }
}

/// A small xorshift generator for the pseudo-random class (independent of
/// the `rand` crate so image bytes never change across dependency bumps).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

const TEXT_DICTIONARY: &[&str] = &[
    "mov rax, [rbp-0x18]\n",
    "call schedule_timeout\n",
    "lock cmpxchg [rdi], rsi\n",
    "static int __init init_module(void)\n",
    "EXPORT_SYMBOL_GPL(kthread_create_on_node);\n",
    "page_fault_oops: unable to handle\n",
    "jmp .Lretpoline_thunk\n",
    "rcu_read_lock(); list_for_each_entry_rcu\n",
];

/// Generates `len` bytes with the given profile, deterministically from
/// `seed`.
///
/// The layout interleaves the three classes in 1 KiB strides so compression
/// windows always see a representative mix.
///
/// # Example
///
/// ```
/// use sevf_image::content::{generate, ContentProfile};
///
/// let a = generate(ContentProfile::aws(), 10_000, b"seed");
/// let b = generate(ContentProfile::aws(), 10_000, b"seed");
/// assert_eq!(a, b, "content is deterministic");
/// ```
pub fn generate(profile: ContentProfile, len: usize, seed: &[u8]) -> Vec<u8> {
    profile.validate();
    let digest = sha256(seed);
    let mut rng = Lcg(u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")));
    let mut out = Vec::with_capacity(len);
    const STRIDE: usize = 1024;
    let mut text_cursor = (u64::from_le_bytes(digest[8..16].try_into().expect("8 bytes")) as usize)
        % TEXT_DICTIONARY.len();
    // Precompute per-stride class counts.
    let zeros_in_stride = (STRIDE as f64 * profile.zeros) as usize;
    let text_in_stride = (STRIDE as f64 * profile.text) as usize;
    while out.len() < len {
        let remaining = len - out.len();
        let stride = STRIDE.min(remaining);
        let zero_take = zeros_in_stride.min(stride);
        out.extend(std::iter::repeat_n(0u8, zero_take));
        let mut text_emitted = 0usize;
        let text_take = text_in_stride.min(stride - zero_take);
        while text_emitted < text_take {
            let line = TEXT_DICTIONARY[text_cursor % TEXT_DICTIONARY.len()];
            text_cursor = text_cursor.wrapping_add(1 + (rng.next() % 3) as usize);
            let bytes = line.as_bytes();
            let take = bytes.len().min(text_take - text_emitted);
            out.extend_from_slice(&bytes[..take]);
            text_emitted += take;
        }
        let filled = zero_take + text_emitted;
        for _ in filled..stride {
            out.push((rng.next() >> 33) as u8);
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_codec::Codec;

    #[test]
    fn deterministic_and_length_exact() {
        let a = generate(ContentProfile::lupine(), 12_345, b"x");
        assert_eq!(a.len(), 12_345);
        assert_eq!(a, generate(ContentProfile::lupine(), 12_345, b"x"));
        assert_ne!(a, generate(ContentProfile::lupine(), 12_345, b"y"));
    }

    #[test]
    fn profiles_order_compressibility() {
        let len = 512 * 1024;
        let ratio = |p: ContentProfile| {
            let data = generate(p, len, b"ratio");
            len as f64 / Codec::Lz4.compress(&data).len() as f64
        };
        let lupine = ratio(ContentProfile::lupine());
        let aws = ratio(ContentProfile::aws());
        let ubuntu = ratio(ContentProfile::ubuntu());
        let initrd = ratio(ContentProfile::initrd());
        assert!(lupine > aws, "lupine {lupine} vs aws {aws}");
        assert!(aws > ubuntu, "aws {aws} vs ubuntu {ubuntu}");
        assert!(ubuntu > initrd, "ubuntu {ubuntu} vs initrd {initrd}");
        assert!(initrd < 1.6, "initrd must barely compress: {initrd}");
    }

    #[test]
    fn ratios_near_fig8_targets() {
        // Fig. 8: Lupine 23/3.3 ≈ 7.0, AWS 43/7.1 ≈ 6.1, Ubuntu 61/15 ≈ 4.1.
        let len = 2 * 1024 * 1024;
        let check = |p: ContentProfile, target: f64, tag: &str| {
            let data = generate(p, len, tag.as_bytes());
            let ratio = len as f64 / Codec::Lz4.compress(&data).len() as f64;
            assert!(
                (ratio / target - 1.0).abs() < 0.25,
                "{tag}: got {ratio:.2}, want ≈ {target}"
            );
        };
        check(ContentProfile::lupine(), 7.0, "lupine");
        check(ContentProfile::aws(), 6.1, "aws");
        check(ContentProfile::ubuntu(), 4.1, "ubuntu");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_profile_panics() {
        generate(
            ContentProfile {
                zeros: 0.9,
                text: 0.9,
                random: 0.9,
            },
            10,
            b"x",
        );
    }
}
