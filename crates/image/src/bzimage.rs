//! The bzImage container.
//!
//! A Linux bzImage is a real-mode boot sector + setup code ("the bootstrap
//! loader") with the compressed kernel appended (§2.1). We reproduce the
//! load-bearing parts of the x86 boot protocol:
//!
//! * boot-sector signature `0x55AA` at offset 510;
//! * `setup_sects` at offset 0x1f1;
//! * the `HdrS` header magic at offset 0x202;
//! * `payload_offset` / `payload_length` at 0x248/0x24c (relative to the
//!   start of the protected-mode kernel), which is how the paper's boot
//!   verifier finds the compressed payload without parsing an ELF (§4.4).
//!
//! One extension: the byte at offset 0x250 records which `sevf-codec` codec
//! compressed the payload (real kernels encode this in the payload's own
//! magic; a dedicated field keeps the loader honest and simple).

use sevf_codec::Codec;

use crate::content::{generate, ContentProfile};
use crate::ImageError;

/// Offset of `setup_sects` in the boot sector.
const SETUP_SECTS_OFFSET: usize = 0x1f1;
/// Offset of the `HdrS` magic.
const HDRS_OFFSET: usize = 0x202;
/// Offset of the boot-protocol version.
const VERSION_OFFSET: usize = 0x206;
/// Offset of `payload_offset` (u32, relative to protected-mode start).
const PAYLOAD_OFFSET_OFFSET: usize = 0x248;
/// Offset of `payload_length` (u32).
const PAYLOAD_LENGTH_OFFSET: usize = 0x24c;
/// Offset of our codec tag byte.
const CODEC_TAG_OFFSET: usize = 0x250;

/// Size of the synthetic real-mode setup code (the bootstrap loader stub):
/// 16 sectors, as in a typical modern bzImage.
const SETUP_SECTS: usize = 16;
/// Size of the synthetic protected-mode decompressor stub preceding the
/// payload (`arch/x86/boot/compressed` in real kernels).
const PM_STUB_SIZE: usize = 24 * 1024;

fn codec_tag(codec: Codec) -> u8 {
    match codec {
        Codec::None => 0,
        Codec::Lz4 => 1,
        Codec::Deflate => 2,
        Codec::Zstd => 3,
    }
}

fn codec_from_tag(tag: u8) -> Option<Codec> {
    Some(match tag {
        0 => Codec::None,
        1 => Codec::Lz4,
        2 => Codec::Deflate,
        3 => Codec::Zstd,
        _ => return None,
    })
}

/// Builds a bzImage holding `vmlinux` compressed with `codec`.
///
/// # Example
///
/// ```
/// use sevf_codec::Codec;
/// use sevf_image::bzimage;
///
/// let vmlinux = vec![0x90u8; 100_000];
/// let bz = bzimage::build(&vmlinux, Codec::Lz4);
/// let (payload, codec) = bzimage::parse(&bz)?;
/// assert_eq!(codec, Codec::Lz4);
/// assert_eq!(Codec::Lz4.decompress(&payload)?, vmlinux);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build(vmlinux: &[u8], codec: Codec) -> Vec<u8> {
    let payload = codec.compress(vmlinux);
    let setup_size = 512 + SETUP_SECTS * 512;
    let payload_offset = PM_STUB_SIZE as u32;

    let mut image = Vec::with_capacity(setup_size + PM_STUB_SIZE + payload.len());
    // Boot sector + setup code, filled with loader-stub content.
    image.extend(generate(
        ContentProfile::aws(),
        setup_size,
        b"bzimage-setup-stub",
    ));
    image[510] = 0x55;
    image[511] = 0xaa;
    image[SETUP_SECTS_OFFSET] = SETUP_SECTS as u8;
    image[HDRS_OFFSET..HDRS_OFFSET + 4].copy_from_slice(b"HdrS");
    image[VERSION_OFFSET..VERSION_OFFSET + 2].copy_from_slice(&0x020fu16.to_le_bytes());
    image[PAYLOAD_OFFSET_OFFSET..PAYLOAD_OFFSET_OFFSET + 4]
        .copy_from_slice(&payload_offset.to_le_bytes());
    image[PAYLOAD_LENGTH_OFFSET..PAYLOAD_LENGTH_OFFSET + 4]
        .copy_from_slice(&(payload.len() as u32).to_le_bytes());
    image[CODEC_TAG_OFFSET] = codec_tag(codec);

    // Protected-mode decompressor stub, then the payload.
    image.extend(generate(
        ContentProfile::aws(),
        PM_STUB_SIZE,
        b"bzimage-pm-stub",
    ));
    image.extend_from_slice(&payload);
    image
}

/// Parses a bzImage, returning the (still compressed) payload and its codec.
///
/// # Errors
///
/// Returns [`ImageError::BadBzImage`] if the signature, header magic, or
/// offsets are invalid.
pub fn parse(image: &[u8]) -> Result<(Vec<u8>, Codec), ImageError> {
    if image.len() < 0x260 {
        return Err(ImageError::BadBzImage("shorter than the setup header"));
    }
    if image[510] != 0x55 || image[511] != 0xaa {
        return Err(ImageError::BadBzImage("missing 0x55AA boot signature"));
    }
    if &image[HDRS_OFFSET..HDRS_OFFSET + 4] != b"HdrS" {
        return Err(ImageError::BadBzImage("missing HdrS magic"));
    }
    let setup_sects = image[SETUP_SECTS_OFFSET] as usize;
    let pm_start = 512 + setup_sects * 512;
    let payload_offset = u32::from_le_bytes(
        image[PAYLOAD_OFFSET_OFFSET..PAYLOAD_OFFSET_OFFSET + 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let payload_length = u32::from_le_bytes(
        image[PAYLOAD_LENGTH_OFFSET..PAYLOAD_LENGTH_OFFSET + 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let codec = codec_from_tag(image[CODEC_TAG_OFFSET])
        .ok_or(ImageError::BadBzImage("unknown payload codec tag"))?;
    let start = pm_start + payload_offset;
    let end = start
        .checked_add(payload_length)
        .ok_or(ImageError::BadBzImage("payload range overflows"))?;
    if end > image.len() {
        return Err(ImageError::BadBzImage("payload out of bounds"));
    }
    Ok((image[start..end].to_vec(), codec))
}

/// Extracts and decompresses the vmlinux from a bzImage in one step (what
/// the bootstrap loader does on the critical path).
///
/// # Errors
///
/// Propagates container ([`ImageError::BadBzImage`]) and codec errors.
pub fn unpack_vmlinux(image: &[u8]) -> Result<Vec<u8>, ImageError> {
    let (payload, codec) = parse(image)?;
    Ok(codec.decompress(&payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_codecs() {
        let vmlinux = generate(ContentProfile::aws(), 200_000, b"kernel");
        for codec in Codec::ALL {
            let bz = build(&vmlinux, codec);
            let (payload, parsed_codec) = parse(&bz).unwrap();
            assert_eq!(parsed_codec, codec);
            assert_eq!(codec.decompress(&payload).unwrap(), vmlinux);
            assert_eq!(unpack_vmlinux(&bz).unwrap(), vmlinux);
        }
    }

    #[test]
    fn compressed_is_smaller() {
        let vmlinux = generate(ContentProfile::lupine(), 500_000, b"kernel");
        let bz = build(&vmlinux, Codec::Lz4);
        assert!(bz.len() < vmlinux.len() / 3);
    }

    #[test]
    fn missing_signature_rejected() {
        let vmlinux = vec![0u8; 10_000];
        let mut bz = build(&vmlinux, Codec::Lz4);
        bz[510] = 0;
        assert!(matches!(parse(&bz), Err(ImageError::BadBzImage(_))));
    }

    #[test]
    fn missing_hdrs_rejected() {
        let mut bz = build(&[0u8; 10_000], Codec::Lz4);
        bz[HDRS_OFFSET] = b'X';
        assert!(parse(&bz).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let bz = build(&[7u8; 10_000], Codec::Lz4);
        assert!(parse(&bz[..bz.len() - 10]).is_err());
    }

    #[test]
    fn bad_codec_tag_rejected() {
        let mut bz = build(&[7u8; 10_000], Codec::Lz4);
        bz[CODEC_TAG_OFFSET] = 99;
        assert!(parse(&bz).is_err());
    }

    #[test]
    fn corrupted_payload_never_yields_original() {
        // A flipped payload byte either fails decoding or silently changes
        // the output — it can never reproduce the original vmlinux. (This is
        // why measured direct boot re-hashes after the copy.)
        let vmlinux = generate(ContentProfile::aws(), 50_000, b"k");
        let mut bz = build(&vmlinux, Codec::Lz4);
        let n = bz.len();
        bz[n - 1000] ^= 0xff;
        if let Ok(out) = unpack_vmlinux(&bz) {
            assert_ne!(out, vmlinux)
        }
    }
}
