//! Minimal ELF64 executable reader/writer.
//!
//! Enough of the format for the boot paths in the paper: the VMM's direct
//! vmlinux loader, the boot verifier's measured ELF loader, and the fw_cfg
//! protocol of §5 (which serves the ELF header, program headers, and
//! loadable segments as three separately hashed pieces).

use crate::ImageError;

/// ELF header size for 64-bit objects.
pub const EHDR_SIZE: usize = 64;
/// Program header entry size for 64-bit objects.
pub const PHDR_SIZE: usize = 56;

/// Segment permission flags (bitwise-OR of R=4, W=2, X=1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFlags(pub u32);

impl SegmentFlags {
    /// Read + execute (text).
    pub const RX: SegmentFlags = SegmentFlags(0b101);
    /// Read only (rodata).
    pub const R: SegmentFlags = SegmentFlags(0b100);
    /// Read + write (data/bss).
    pub const RW: SegmentFlags = SegmentFlags(0b110);
}

/// One loadable segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual/physical load address.
    pub vaddr: u64,
    /// File contents of the segment.
    pub data: Vec<u8>,
    /// Extra zero-initialized bytes beyond the file contents (bss).
    pub bss: u64,
    /// Permissions.
    pub flags: SegmentFlags,
}

impl Segment {
    /// Total in-memory size (file bytes + bss).
    pub fn mem_size(&self) -> u64 {
        self.data.len() as u64 + self.bss
    }
}

/// A parsed or constructed ELF64 executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfImage {
    /// Entry-point virtual address.
    pub entry: u64,
    /// Loadable segments, in program-header order.
    pub segments: Vec<Segment>,
}

impl ElfImage {
    /// Serializes to ELF64 bytes (header, program headers, then segment
    /// contents packed back to back).
    pub fn to_bytes(&self) -> Vec<u8> {
        let phnum = self.segments.len();
        let mut offset = (EHDR_SIZE + phnum * PHDR_SIZE) as u64;
        // Align first segment to a page, as linkers do.
        offset = (offset + 0xfff) & !0xfff;

        let mut ehdr = Vec::with_capacity(EHDR_SIZE);
        ehdr.extend_from_slice(&[0x7f, b'E', b'L', b'F', 2, 1, 1, 0]); // ident
        ehdr.extend_from_slice(&[0u8; 8]); // ident padding
        ehdr.extend_from_slice(&2u16.to_le_bytes()); // e_type = EXEC
        ehdr.extend_from_slice(&62u16.to_le_bytes()); // e_machine = x86-64
        ehdr.extend_from_slice(&1u32.to_le_bytes()); // e_version
        ehdr.extend_from_slice(&self.entry.to_le_bytes()); // e_entry
        ehdr.extend_from_slice(&(EHDR_SIZE as u64).to_le_bytes()); // e_phoff
        ehdr.extend_from_slice(&0u64.to_le_bytes()); // e_shoff
        ehdr.extend_from_slice(&0u32.to_le_bytes()); // e_flags
        ehdr.extend_from_slice(&(EHDR_SIZE as u16).to_le_bytes()); // e_ehsize
        ehdr.extend_from_slice(&(PHDR_SIZE as u16).to_le_bytes()); // e_phentsize
        ehdr.extend_from_slice(&(phnum as u16).to_le_bytes()); // e_phnum
        ehdr.extend_from_slice(&0u16.to_le_bytes()); // e_shentsize
        ehdr.extend_from_slice(&0u16.to_le_bytes()); // e_shnum
        ehdr.extend_from_slice(&0u16.to_le_bytes()); // e_shstrndx
        debug_assert_eq!(ehdr.len(), EHDR_SIZE);

        let mut phdrs = Vec::with_capacity(phnum * PHDR_SIZE);
        let mut seg_offset = offset;
        for seg in &self.segments {
            phdrs.extend_from_slice(&1u32.to_le_bytes()); // p_type = LOAD
            phdrs.extend_from_slice(&seg.flags.0.to_le_bytes()); // p_flags
            phdrs.extend_from_slice(&seg_offset.to_le_bytes()); // p_offset
            phdrs.extend_from_slice(&seg.vaddr.to_le_bytes()); // p_vaddr
            phdrs.extend_from_slice(&seg.vaddr.to_le_bytes()); // p_paddr
            phdrs.extend_from_slice(&(seg.data.len() as u64).to_le_bytes()); // p_filesz
            phdrs.extend_from_slice(&seg.mem_size().to_le_bytes()); // p_memsz
            phdrs.extend_from_slice(&0x1000u64.to_le_bytes()); // p_align
            seg_offset += seg.data.len() as u64;
        }

        let total = seg_offset as usize;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&ehdr);
        out.extend_from_slice(&phdrs);
        out.resize(offset as usize, 0);
        for seg in &self.segments {
            out.extend_from_slice(&seg.data);
        }
        out
    }

    /// Parses ELF64 bytes produced by [`ElfImage::to_bytes`] (or any simple
    /// static executable with LOAD segments).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BadElf`] on malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Self, ImageError> {
        if bytes.len() < EHDR_SIZE {
            return Err(ImageError::BadElf("shorter than the ELF header"));
        }
        if &bytes[..4] != b"\x7fELF" {
            return Err(ImageError::BadElf("bad magic"));
        }
        if bytes[4] != 2 {
            return Err(ImageError::BadElf("not 64-bit"));
        }
        let entry = u64::from_le_bytes(bytes[24..32].try_into().expect("8"));
        let phoff = u64::from_le_bytes(bytes[32..40].try_into().expect("8")) as usize;
        let phentsize = u16::from_le_bytes(bytes[54..56].try_into().expect("2")) as usize;
        let phnum = u16::from_le_bytes(bytes[56..58].try_into().expect("2")) as usize;
        if phentsize != PHDR_SIZE {
            return Err(ImageError::BadElf("unexpected program header size"));
        }
        if phoff + phnum * PHDR_SIZE > bytes.len() {
            return Err(ImageError::BadElf("program headers out of bounds"));
        }
        let mut segments = Vec::with_capacity(phnum);
        for i in 0..phnum {
            let ph = &bytes[phoff + i * PHDR_SIZE..phoff + (i + 1) * PHDR_SIZE];
            let p_type = u32::from_le_bytes(ph[0..4].try_into().expect("4"));
            if p_type != 1 {
                continue; // skip non-LOAD
            }
            let flags = u32::from_le_bytes(ph[4..8].try_into().expect("4"));
            let p_offset = u64::from_le_bytes(ph[8..16].try_into().expect("8")) as usize;
            let vaddr = u64::from_le_bytes(ph[16..24].try_into().expect("8"));
            let filesz = u64::from_le_bytes(ph[32..40].try_into().expect("8")) as usize;
            let memsz = u64::from_le_bytes(ph[40..48].try_into().expect("8"));
            if p_offset + filesz > bytes.len() {
                return Err(ImageError::BadElf("segment data out of bounds"));
            }
            if memsz < filesz as u64 {
                return Err(ImageError::BadElf("memsz smaller than filesz"));
            }
            segments.push(Segment {
                vaddr,
                data: bytes[p_offset..p_offset + filesz].to_vec(),
                bss: memsz - filesz as u64,
                flags: SegmentFlags(flags),
            });
        }
        if segments.is_empty() {
            return Err(ImageError::BadElf("no loadable segments"));
        }
        Ok(ElfImage { entry, segments })
    }

    /// Splits the serialized form into the three pieces the fw_cfg loader
    /// of §5 transfers and hashes separately: (ELF header, program headers,
    /// concatenated loadable segment data).
    pub fn fw_cfg_pieces(&self) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let bytes = self.to_bytes();
        let phnum = self.segments.len();
        let ehdr = bytes[..EHDR_SIZE].to_vec();
        let phdrs = bytes[EHDR_SIZE..EHDR_SIZE + phnum * PHDR_SIZE].to_vec();
        let segs: Vec<u8> = self
            .segments
            .iter()
            .flat_map(|s| s.data.iter().copied())
            .collect();
        (ehdr, phdrs, segs)
    }

    /// Sum of loadable file bytes (what a loader must copy).
    pub fn loadable_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.data.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ElfImage {
        ElfImage {
            entry: 0x1_0000_0000,
            segments: vec![
                Segment {
                    vaddr: 0x1_0000_0000,
                    data: vec![0x90; 5000],
                    bss: 0,
                    flags: SegmentFlags::RX,
                },
                Segment {
                    vaddr: 0x1_0001_0000,
                    data: vec![0x41; 3000],
                    bss: 0x2000,
                    flags: SegmentFlags::RW,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let elf = sample();
        let parsed = ElfImage::parse(&elf.to_bytes()).unwrap();
        assert_eq!(parsed, elf);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0;
        assert!(matches!(
            ElfImage::parse(&bytes),
            Err(ImageError::BadElf(_))
        ));
    }

    #[test]
    fn truncated_segment_rejected() {
        let bytes = sample().to_bytes();
        assert!(ElfImage::parse(&bytes[..bytes.len() - 100]).is_err());
    }

    #[test]
    fn not_64bit_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 1;
        assert!(ElfImage::parse(&bytes).is_err());
    }

    #[test]
    fn fw_cfg_pieces_cover_loadable_data() {
        let elf = sample();
        let (ehdr, phdrs, segs) = elf.fw_cfg_pieces();
        assert_eq!(ehdr.len(), EHDR_SIZE);
        assert_eq!(phdrs.len(), 2 * PHDR_SIZE);
        assert_eq!(segs.len() as u64, elf.loadable_bytes());
        // The pieces are enough to reconstruct a parseable image.
        let parsed = ElfImage::parse(&elf.to_bytes()).unwrap();
        assert_eq!(parsed.entry, elf.entry);
    }

    #[test]
    fn entry_and_bss_preserved() {
        let parsed = ElfImage::parse(&sample().to_bytes()).unwrap();
        assert_eq!(parsed.entry, 0x1_0000_0000);
        assert_eq!(parsed.segments[1].bss, 0x2000);
        assert_eq!(parsed.segments[1].mem_size(), 3000 + 0x2000);
    }
}
