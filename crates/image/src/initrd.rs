//! The attestation initrd.
//!
//! Per §2.3/§2.6 of the paper, the initrd is plain text, secret-free, and
//! contains only what remote attestation needs: an `/init` script, the
//! `sev-guest` kernel module, and the attestation client with its supporting
//! tools. Its size does not depend on the kernel config. The paper's
//! compressed initrd is 12 MB (§3.2) and barely benefits from compression
//! (mostly binaries), so we build a ≈ 14 MB archive of poorly compressible
//! content — which is exactly why Fig. 5 concludes it should ship
//! uncompressed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::content::{generate, ContentProfile};
use crate::cpio::{build, CpioEntry};

const MB: u64 = 1024 * 1024;

/// Full-scale initrd payload size (≈ 14 MB uncompressed; LZ4 lands near the
/// paper's 12 MB compressed figure).
pub const FULL_SIZE: u64 = 14 * MB;

/// The `/init` script shipped in every attestation initrd.
pub const INIT_SCRIPT: &str = "#!/bin/sh\n\
    # SEVeriFast attestation initrd\n\
    insmod /lib/modules/sev-guest.ko\n\
    exec /bin/sev-attest --server \"$ATTEST_SERVER\" --wrap-key dh\n";

/// Builds the attestation initrd CPIO with roughly `total_size` bytes of
/// content (cached per size).
///
/// # Example
///
/// ```
/// let initrd = sevf_image::initrd::build_initrd(64 * 1024);
/// let entries = sevf_image::cpio::parse(&initrd)?;
/// assert!(entries.iter().any(|e| e.name == "init"));
/// # Ok::<(), sevf_image::ImageError>(())
/// ```
pub fn build_initrd(total_size: u64) -> Arc<Vec<u8>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Vec<u8>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(archive) = cache.lock().expect("initrd cache").get(&total_size) {
        return Arc::clone(archive);
    }

    // Fixed small files; the attestation client and its shared libraries
    // absorb the rest of the size budget.
    let fixed: Vec<CpioEntry> = vec![
        CpioEntry::directory("bin"),
        CpioEntry::directory("lib"),
        CpioEntry::directory("lib/modules"),
        CpioEntry::directory("etc"),
        CpioEntry::executable("init", INIT_SCRIPT.as_bytes().to_vec()),
        CpioEntry::file(
            "etc/attest.conf",
            b"server=guest-owner.example\nport=8443\nretries=3\n".to_vec(),
        ),
    ];
    let fixed_bytes: u64 = fixed.iter().map(|e| e.data.len() as u64 + 128).sum();
    let budget = total_size.saturating_sub(fixed_bytes);
    // Split: module 4%, attestation client 36%, libcrypto 40%, busybox 20%.
    let module = (budget * 4 / 100) as usize;
    let client = (budget * 36 / 100) as usize;
    let libcrypto = (budget * 40 / 100) as usize;
    let busybox = budget as usize - module - client - libcrypto;

    let profile = ContentProfile::initrd();
    let mut entries = fixed;
    entries.push(CpioEntry::file(
        "lib/modules/sev-guest.ko",
        generate(profile, module, b"sev-guest.ko"),
    ));
    entries.push(CpioEntry::executable(
        "bin/sev-attest",
        generate(profile, client, b"sev-attest"),
    ));
    entries.push(CpioEntry::file(
        "lib/libcrypto.so.3",
        generate(profile, libcrypto, b"libcrypto"),
    ));
    entries.push(CpioEntry::executable(
        "bin/busybox",
        generate(profile, busybox, b"busybox"),
    ));
    let archive = Arc::new(build(&entries));
    cache
        .lock()
        .expect("initrd cache")
        .insert(total_size, Arc::clone(&archive));
    archive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpio::parse;
    use sevf_codec::Codec;

    #[test]
    fn contains_attestation_pieces() {
        let archive = build_initrd(256 * 1024);
        let entries = parse(&archive).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"init"));
        assert!(names.contains(&"bin/sev-attest"));
        assert!(names.contains(&"lib/modules/sev-guest.ko"));
        let init = entries.iter().find(|e| e.name == "init").unwrap();
        assert_eq!(init.mode, 0o100755);
        assert!(std::str::from_utf8(&init.data)
            .unwrap()
            .contains("sev-attest"));
    }

    #[test]
    fn size_close_to_request() {
        let archive = build_initrd(512 * 1024);
        let len = archive.len() as u64;
        assert!(
            (450 * 1024..600 * 1024).contains(&len),
            "archive size {len}"
        );
    }

    #[test]
    fn compresses_poorly() {
        // §3.3: the initrd should barely benefit from compression.
        let archive = build_initrd(512 * 1024);
        let ratio = archive.len() as f64 / Codec::Lz4.compress(&archive).len() as f64;
        assert!(ratio < 1.6, "initrd compression ratio {ratio:.2}");
        assert!(ratio > 1.0);
    }

    #[test]
    fn cached_per_size() {
        let a = build_initrd(128 * 1024);
        let b = build_initrd(128 * 1024);
        assert!(Arc::ptr_eq(&a, &b));
        let c = build_initrd(129 * 1024);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn no_secrets_in_initrd() {
        // "Secret-free construction" (§2.6): nothing resembling key material
        // may ship in the plain-text initrd. Our marker for generated key
        // material is the "sevf-dh-priv" domain tag — it must not appear.
        let archive = build_initrd(256 * 1024);
        let needle = b"sevf-dh-priv";
        assert!(!archive.windows(needle.len()).any(|w| w == needle));
    }
}
