//! CPIO "newc" (SVR4) archives — the initrd format Linux consumes.
//!
//! The guest kernel unpacks the initrd by walking these records; the paper's
//! Fig. 5 point about leaving the initrd uncompressed rests on the fact that
//! this unpack pass happens either way (§3.3).

use crate::ImageError;

const MAGIC: &[u8; 6] = b"070701";
const TRAILER: &str = "TRAILER!!!";

/// One file in a CPIO archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpioEntry {
    /// Path (no leading slash, as in real initrds).
    pub name: String,
    /// File mode bits (e.g. `0o100755` for an executable).
    pub mode: u32,
    /// File contents.
    pub data: Vec<u8>,
}

impl CpioEntry {
    /// Creates a regular file entry with mode 0644.
    pub fn file(name: impl Into<String>, data: Vec<u8>) -> Self {
        CpioEntry {
            name: name.into(),
            mode: 0o100644,
            data,
        }
    }

    /// Creates an executable entry with mode 0755.
    pub fn executable(name: impl Into<String>, data: Vec<u8>) -> Self {
        CpioEntry {
            name: name.into(),
            mode: 0o100755,
            data,
        }
    }

    /// Creates a directory entry.
    pub fn directory(name: impl Into<String>) -> Self {
        CpioEntry {
            name: name.into(),
            mode: 0o040755,
            data: Vec::new(),
        }
    }
}

fn hex8(value: u32) -> [u8; 8] {
    let s = format!("{value:08x}");
    s.into_bytes().try_into().expect("8 hex digits")
}

fn pad4(len: usize) -> usize {
    (4 - len % 4) % 4
}

fn push_record(out: &mut Vec<u8>, ino: u32, name: &str, mode: u32, data: &[u8]) {
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&hex8(ino)); // c_ino
    out.extend_from_slice(&hex8(mode)); // c_mode
    out.extend_from_slice(&hex8(0)); // c_uid
    out.extend_from_slice(&hex8(0)); // c_gid
    out.extend_from_slice(&hex8(1)); // c_nlink
    out.extend_from_slice(&hex8(0)); // c_mtime
    out.extend_from_slice(&hex8(data.len() as u32)); // c_filesize
    out.extend_from_slice(&hex8(0)); // c_devmajor
    out.extend_from_slice(&hex8(0)); // c_devminor
    out.extend_from_slice(&hex8(0)); // c_rdevmajor
    out.extend_from_slice(&hex8(0)); // c_rdevminor
    out.extend_from_slice(&hex8(name.len() as u32 + 1)); // c_namesize (inc NUL)
    out.extend_from_slice(&hex8(0)); // c_check
    out.extend_from_slice(name.as_bytes());
    out.push(0);
    // Name is padded so data starts 4-aligned (header is 110 bytes).
    let so_far = 110 + name.len() + 1;
    out.extend(std::iter::repeat_n(0u8, pad4(so_far)));
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(0u8, pad4(data.len())));
}

/// Serializes entries into a newc archive (with trailer).
///
/// # Example
///
/// ```
/// use sevf_image::cpio::{build, parse, CpioEntry};
///
/// let archive = build(&[CpioEntry::executable("init", b"#!/bin/sh".to_vec())]);
/// let entries = parse(&archive)?;
/// assert_eq!(entries[0].name, "init");
/// # Ok::<(), sevf_image::ImageError>(())
/// ```
pub fn build(entries: &[CpioEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        push_record(&mut out, i as u32 + 1, &entry.name, entry.mode, &entry.data);
    }
    push_record(&mut out, 0, TRAILER, 0, &[]);
    out
}

fn parse_hex8(bytes: &[u8]) -> Result<u32, ImageError> {
    let s = std::str::from_utf8(bytes).map_err(|_| ImageError::BadCpio("non-ASCII header"))?;
    u32::from_str_radix(s, 16).map_err(|_| ImageError::BadCpio("bad hex field"))
}

/// Parses a newc archive into its entries (trailer excluded).
///
/// # Errors
///
/// Returns [`ImageError::BadCpio`] for bad magic, truncated records, or a
/// missing trailer.
pub fn parse(archive: &[u8]) -> Result<Vec<CpioEntry>, ImageError> {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos + 110 > archive.len() {
            return Err(ImageError::BadCpio("truncated before trailer"));
        }
        if &archive[pos..pos + 6] != MAGIC {
            return Err(ImageError::BadCpio("bad record magic"));
        }
        let field = |idx: usize| parse_hex8(&archive[pos + 6 + idx * 8..pos + 6 + (idx + 1) * 8]);
        let mode = field(1)?;
        let filesize = field(6)? as usize;
        let namesize = field(11)? as usize;
        if namesize == 0 {
            return Err(ImageError::BadCpio("empty name"));
        }
        let name_start = pos + 110;
        if name_start + namesize > archive.len() {
            return Err(ImageError::BadCpio("name out of bounds"));
        }
        let name_bytes = &archive[name_start..name_start + namesize - 1];
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| ImageError::BadCpio("non-UTF-8 name"))?
            .to_string();
        let data_start = name_start + namesize + pad4(110 + namesize);
        if name == TRAILER {
            return Ok(entries);
        }
        if data_start + filesize > archive.len() {
            return Err(ImageError::BadCpio("data out of bounds"));
        }
        entries.push(CpioEntry {
            name,
            mode,
            data: archive[data_start..data_start + filesize].to_vec(),
        });
        pos = data_start + filesize + pad4(filesize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entries = vec![
            CpioEntry::directory("bin"),
            CpioEntry::executable("init", b"#!/bin/sh\nexec /bin/attest\n".to_vec()),
            CpioEntry::file("etc/config", vec![1, 2, 3, 4, 5]),
            CpioEntry::file("odd-size", vec![9; 7]),
        ];
        let archive = build(&entries);
        assert_eq!(parse(&archive).unwrap(), entries);
    }

    #[test]
    fn empty_archive_has_only_trailer() {
        let archive = build(&[]);
        assert_eq!(parse(&archive).unwrap(), vec![]);
    }

    #[test]
    fn alignment_is_4_bytes() {
        let archive = build(&[CpioEntry::file("a", vec![1])]);
        assert_eq!(archive.len() % 4, 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut archive = build(&[CpioEntry::file("a", vec![1])]);
        archive[0] = b'9';
        assert!(parse(&archive).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let archive = build(&[CpioEntry::file("a", vec![1, 2, 3])]);
        for cut in [10, 50, archive.len() - 4] {
            assert!(parse(&archive[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn large_binary_entries() {
        let blob = vec![0xabu8; 100_000];
        let entries = vec![CpioEntry::executable("bin/attest", blob.clone())];
        let parsed = parse(&build(&entries)).unwrap();
        assert_eq!(parsed[0].data, blob);
    }
}
