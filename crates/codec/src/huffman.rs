//! Canonical, length-limited Huffman coding.
//!
//! The [`lzh`](crate::lzh) container Huffman-codes its literal/length and
//! distance alphabets. Code lengths are built with a binary heap Huffman
//! construction; if the deepest code exceeds the 15-bit limit the symbol
//! frequencies are repeatedly halved (a standard flattening heuristic) until
//! the tree fits. Codes are then assigned canonically so only the *lengths*
//! need to be serialized.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum code length in bits.
pub const MAX_CODE_LEN: u8 = 15;

/// Builds length-limited Huffman code lengths for the given frequencies.
///
/// Symbols with zero frequency get length 0 (no code). If only one symbol
/// has nonzero frequency it is assigned length 1 so the stream is decodable.
///
/// # Example
///
/// ```
/// let lengths = sevf_codec::huffman::build_code_lengths(&[10, 1, 1, 0]);
/// assert_eq!(lengths[0], 1);       // most frequent symbol: shortest code
/// assert_eq!(lengths[3], 0);       // absent symbol: no code
/// ```
pub fn build_code_lengths(freqs: &[u64]) -> Vec<u8> {
    let mut freqs = freqs.to_vec();
    loop {
        let lengths = build_unlimited(&freqs);
        let max = lengths.iter().copied().max().unwrap_or(0);
        if max <= MAX_CODE_LEN {
            return lengths;
        }
        // Flatten the distribution and retry.
        for f in freqs.iter_mut() {
            if *f > 0 {
                *f = (*f).div_ceil(2);
            }
        }
    }
}

fn build_unlimited(freqs: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Node {
        weight: u64,
        // Tie-break on id for determinism.
        id: usize,
    }
    let mut lengths = vec![0u8; freqs.len()];
    let live: Vec<usize> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, _)| i)
        .collect();
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // parent[i] for internal nodes; leaves are 0..n, internals n..
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    let mut parent: Vec<usize> = vec![usize::MAX; freqs.len()];
    for &i in &live {
        heap.push(Reverse(Node {
            weight: freqs[i],
            id: i,
        }));
    }
    let mut next_id = freqs.len();
    while heap.len() > 1 {
        let Reverse(a) = heap.pop().expect("heap has >= 2 items");
        let Reverse(b) = heap.pop().expect("heap has >= 2 items");
        parent.push(usize::MAX);
        let merged = Node {
            weight: a.weight + b.weight,
            id: next_id,
        };
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        next_id += 1;
        heap.push(Reverse(merged));
    }
    let root = heap.pop().expect("one node remains").0.id;
    for &i in &live {
        let mut depth = 0u8;
        let mut node = i;
        while node != root {
            node = parent[node];
            depth += 1;
        }
        lengths[i] = depth.max(1);
    }
    lengths
}

/// Canonical Huffman encoder: maps symbols to (code, length).
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<(u32, u8)>,
}

impl Encoder {
    /// Builds an encoder from canonical code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let codes = assign_canonical(lengths);
        Encoder { codes }
    }

    /// Writes the code for `symbol` into `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code (zero frequency at build time).
    pub fn encode(&self, writer: &mut BitWriter, symbol: usize) {
        let (code, len) = self.codes[symbol];
        assert!(len > 0, "symbol {symbol} has no Huffman code");
        // Canonical codes are MSB-first; emit them bit-reversed so the
        // LSB-first reader sees the most significant code bit first.
        let mut reversed = 0u32;
        for i in 0..len {
            reversed |= ((code >> (len - 1 - i)) & 1) << i;
        }
        writer.write_bits(reversed, len);
    }

    /// Returns the code length for a symbol (0 = no code).
    pub fn length_of(&self, symbol: usize) -> u8 {
        self.codes[symbol].1
    }
}

/// Assigns canonical codes (MSB-first numeric codes) from lengths.
fn assign_canonical(lengths: &[u8]) -> Vec<(u32, u8)> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u32; max_len as usize + 1];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max_len as usize + 2];
    let mut code = 0u32;
    for len in 1..=max_len as usize {
        code = (code + count[len - 1]) << 1;
        next_code[len] = code;
    }
    let mut codes = vec![(0u32, 0u8); lengths.len()];
    for (sym, &len) in lengths.iter().enumerate() {
        if len > 0 {
            codes[sym] = (next_code[len as usize], len);
            next_code[len as usize] += 1;
        }
    }
    codes
}

/// Canonical Huffman decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// first_code[len] = numeric value of the first code of that length.
    first_code: Vec<u32>,
    /// first_index[len] = index into `symbols` of the first code of that length.
    first_index: Vec<u32>,
    /// count[len] = number of codes with that length.
    count: Vec<u32>,
    /// Symbols ordered by (length, symbol).
    symbols: Vec<u32>,
    max_len: u8,
}

impl Decoder {
    /// Builds a decoder from canonical code lengths.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] if the lengths describe an
    /// over-subscribed code (more codes than a prefix tree can hold).
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodecError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > MAX_CODE_LEN {
            return Err(CodecError::CorruptStream("code length exceeds limit"));
        }
        let mut count = vec![0u32; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft inequality check (allow incomplete codes only when there is
        // exactly one symbol, the degenerate single-symbol tree).
        let kraft: u64 = (1..=max_len as usize)
            .map(|len| (count[len] as u64) << (MAX_CODE_LEN as usize - len))
            .sum();
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(CodecError::CorruptStream("over-subscribed Huffman code"));
        }
        let mut first_code = vec![0u32; max_len as usize + 1];
        let mut first_index = vec![0u32; max_len as usize + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=max_len as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        let mut order: Vec<(u8, u32)> = lengths
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, &l)| (l, s as u32))
            .collect();
        order.sort_unstable();
        let symbols = order.into_iter().map(|(_, s)| s).collect();
        Ok(Decoder {
            first_code,
            first_index,
            count,
            symbols,
            max_len,
        })
    }

    /// Decodes one symbol from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] at end of input or
    /// [`CodecError::CorruptStream`] if the bits match no code.
    #[allow(clippy::needless_range_loop)]
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | reader.read_bit()?;
            let c = self.count[len];
            if c > 0 && code >= self.first_code[len] && code < self.first_code[len] + c {
                let idx = self.first_index[len] + (code - self.first_code[len]);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(CodecError::CorruptStream("bits match no Huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) {
        let lengths = build_code_lengths(freqs);
        let enc = Encoder::from_lengths(&lengths);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s as u32);
        }
    }

    #[test]
    fn simple_roundtrip() {
        roundtrip(&[40, 30, 20, 10], &[0, 1, 2, 3, 3, 2, 1, 0, 0, 0]);
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[0, 7, 0], &[1, 1, 1, 1]);
    }

    #[test]
    fn skewed_frequencies_respect_length_limit() {
        // Fibonacci-like frequencies force deep trees in unlimited Huffman.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let lengths = build_code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        assert!(lengths.iter().all(|&l| l > 0));
        // Still decodable.
        let stream: Vec<usize> = (0..40).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn shorter_codes_for_frequent_symbols() {
        let lengths = build_code_lengths(&[1000, 10, 10, 10, 10]);
        assert!(lengths[0] < lengths[1]);
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn garbage_bits_yield_corrupt_error() {
        let lengths = build_code_lengths(&[5, 5, 0, 0]);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        // lengths are [1, 1]: every bit decodes, so build a sparser code.
        let lengths2 = build_code_lengths(&[8, 4, 2, 1, 1]);
        let dec2 = Decoder::from_lengths(&lengths2).unwrap();
        let _ = dec; // the 2-symbol decoder accepts any bit; no corrupt case
                     // Feed all-ones; with a complete code this will always decode, so
                     // instead check truncation.
        let mut r = BitReader::new(&[]);
        assert_eq!(dec2.decode(&mut r), Err(CodecError::Truncated));
    }

    #[test]
    fn empty_alphabet_produces_no_codes() {
        let lengths = build_code_lengths(&[0, 0, 0]);
        assert_eq!(lengths, vec![0, 0, 0]);
        assert!(Decoder::from_lengths(&lengths).is_ok());
    }
}
