//! The LZSS + canonical-Huffman container ("SVLZ").
//!
//! Architecturally a DEFLATE sibling: the [`crate::lzss`] token stream is
//! entropy-coded with two canonical Huffman alphabets — literals/lengths and
//! distances — whose code lengths are stored in the header (4 bits each).
//! One container holds one block.
//!
//! Two window configurations are exposed through [`crate::Codec`]:
//! [`DEFLATE_WINDOW_LOG`] (32 KiB, the gzip stand-in) and
//! [`ZSTD_WINDOW_LOG`] (1 MiB, the zstd stand-in).
//!
//! Layout:
//!
//! ```text
//! "SVLZ" | window_log u8 | orig_len u64le | lit_len_count u16le |
//! dist_count u16le | code lengths (4 bits each, lit/len then dist, padded
//! to a byte) | Huffman bitstream | (end-of-block symbol terminates)
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::buckets::BucketTable;
use crate::huffman::{build_code_lengths, Decoder, Encoder};
use crate::lzss::{self, Token};
use crate::CodecError;

/// Window log for the deflate-class configuration (32 KiB).
pub const DEFLATE_WINDOW_LOG: u32 = 15;
/// Window log for the zstd-class configuration (1 MiB).
pub const ZSTD_WINDOW_LOG: u32 = 20;

const MAGIC: &[u8; 4] = b"SVLZ";
/// Literal alphabet: 0..=255 literals, 256 end-of-block, then length buckets.
const EOB: usize = 256;

/// Maximum match length for a window configuration: the zstd-class large
/// window also unlocks longer matches, as real zstd does.
fn max_match_for(window_log: u32) -> u32 {
    if window_log >= ZSTD_WINDOW_LOG {
        lzss::ZSTD_MAX_MATCH
    } else {
        lzss::DEFLATE_MAX_MATCH
    }
}

fn length_table(max_match: u32) -> BucketTable {
    BucketTable::new(lzss::MIN_MATCH, max_match, 8, 4)
}

fn distance_table(window_log: u32) -> BucketTable {
    BucketTable::new(1, 1u32 << window_log, 4, 2)
}

/// Compresses `data` with the given window configuration.
///
/// # Example
///
/// ```
/// use sevf_codec::lzh;
///
/// let data = b"kernel text kernel text kernel text".repeat(50);
/// let packed = lzh::compress(&data, lzh::DEFLATE_WINDOW_LOG);
/// assert!(packed.len() < data.len());
/// assert_eq!(lzh::decompress(&packed)?, data);
/// # Ok::<(), sevf_codec::CodecError>(())
/// ```
pub fn compress(data: &[u8], window_log: u32) -> Vec<u8> {
    let max_match = max_match_for(window_log);
    let lengths_tbl = length_table(max_match);
    let dists_tbl = distance_table(window_log);
    let tokens = lzss::tokenize(data, window_log, max_match);

    // Gather symbol frequencies.
    let lit_len_alphabet = 257 + lengths_tbl.symbol_count();
    let mut lit_freqs = vec![0u64; lit_len_alphabet];
    let mut dist_freqs = vec![0u64; dists_tbl.symbol_count()];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freqs[b as usize] += 1,
            Token::Match { length, distance } => {
                lit_freqs[257 + lengths_tbl.symbol_for(length)] += 1;
                dist_freqs[dists_tbl.symbol_for(distance)] += 1;
            }
        }
    }
    lit_freqs[EOB] += 1;

    let lit_lengths = build_code_lengths(&lit_freqs);
    let dist_lengths = build_code_lengths(&dist_freqs);
    let lit_enc = Encoder::from_lengths(&lit_lengths);
    let dist_enc = Encoder::from_lengths(&dist_lengths);

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(window_log as u8);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&(lit_lengths.len() as u16).to_le_bytes());
    out.extend_from_slice(&(dist_lengths.len() as u16).to_le_bytes());
    // Code lengths, 4 bits each (max length 15 fits).
    let mut header_bits = BitWriter::new();
    for &l in lit_lengths.iter().chain(dist_lengths.iter()) {
        header_bits.write_bits(l as u32, 4);
    }
    out.extend_from_slice(&header_bits.finish());

    let mut body = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.encode(&mut body, b as usize),
            Token::Match { length, distance } => {
                lit_enc.encode(&mut body, 257 + lengths_tbl.symbol_for(length));
                lengths_tbl.write_extra(&mut body, length);
                dist_enc.encode(&mut body, dists_tbl.symbol_for(distance));
                dists_tbl.write_extra(&mut body, distance);
            }
        }
    }
    lit_enc.encode(&mut body, EOB);
    out.extend_from_slice(&body.finish());
    out
}

/// Decompresses an "SVLZ" container.
///
/// # Errors
///
/// Returns a [`CodecError`] for bad magic, malformed Huffman tables,
/// truncated bitstreams, out-of-window back-references, or a payload that
/// does not match the declared length.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    if data.len() < 17 || &data[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let window_log = data[4] as u32;
    if !(8..=30).contains(&window_log) {
        return Err(CodecError::CorruptStream("implausible window size"));
    }
    let orig_len = u64::from_le_bytes(data[5..13].try_into().unwrap());
    let lit_count = u16::from_le_bytes(data[13..15].try_into().unwrap()) as usize;
    let dist_count = u16::from_le_bytes(data[15..17].try_into().unwrap()) as usize;

    let lengths_tbl = length_table(max_match_for(window_log));
    let dists_tbl = distance_table(window_log);
    if lit_count != 257 + lengths_tbl.symbol_count() || dist_count != dists_tbl.symbol_count() {
        return Err(CodecError::CorruptStream("alphabet size mismatch"));
    }

    let header_bytes = (lit_count + dist_count).div_ceil(2);
    if data.len() < 17 + header_bytes {
        return Err(CodecError::Truncated);
    }
    let mut header_bits = BitReader::new(&data[17..17 + header_bytes]);
    let mut lit_lengths = vec![0u8; lit_count];
    for l in lit_lengths.iter_mut() {
        *l = header_bits.read_bits(4)? as u8;
    }
    let mut dist_lengths = vec![0u8; dist_count];
    for l in dist_lengths.iter_mut() {
        *l = header_bits.read_bits(4)? as u8;
    }
    let lit_dec = Decoder::from_lengths(&lit_lengths)?;
    let dist_dec = Decoder::from_lengths(&dist_lengths)?;

    let mut body = BitReader::new(&data[17 + header_bytes..]);
    // Cap the up-front reservation: a corrupted header must not be able to
    // trigger a huge allocation before any payload is validated.
    let mut out: Vec<u8> = Vec::with_capacity((orig_len as usize).min(1 << 20));
    loop {
        let sym = lit_dec.decode(&mut body)? as usize;
        if sym < 256 {
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else {
            let length = lengths_tbl.read_value(&mut body, sym - 257)?;
            let dist_sym = dist_dec.decode(&mut body)? as usize;
            let distance = dists_tbl.read_value(&mut body, dist_sym)? as usize;
            if distance == 0 || distance > out.len() {
                return Err(CodecError::InvalidBackReference { at: out.len() });
            }
            let start = out.len() - distance;
            for i in 0..length as usize {
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() as u64 > orig_len {
            return Err(CodecError::LengthMismatch {
                expected: orig_len,
                actual: out.len() as u64,
            });
        }
    }
    if out.len() as u64 != orig_len {
        return Err(CodecError::LengthMismatch {
            expected: orig_len,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let data = b"a moderately compressible kernel-like byte stream ".repeat(200);
        for wlog in [DEFLATE_WINDOW_LOG, ZSTD_WINDOW_LOG] {
            let packed = compress(&data, wlog);
            assert!(packed.len() < data.len() / 2);
            assert_eq!(decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            let packed = compress(data, DEFLATE_WINDOW_LOG);
            assert_eq!(decompress(&packed).unwrap(), data.to_vec());
        }
    }

    #[test]
    fn larger_window_never_hurts_much() {
        // Content with long-range repetition: 1 MiB window should win.
        let unit: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
        let mut data = unit.clone();
        data.extend(vec![0x55; 100_000]);
        data.extend_from_slice(&unit);
        let small = compress(&data, DEFLATE_WINDOW_LOG).len();
        let large = compress(&data, ZSTD_WINDOW_LOG).len();
        assert!(large < small, "zstd-class {large} vs deflate-class {small}");
    }

    #[test]
    fn corrupt_header_rejected() {
        let data = b"hello hello hello".repeat(20);
        let mut packed = compress(&data, DEFLATE_WINDOW_LOG);
        packed[0] = b'X';
        assert_eq!(decompress(&packed), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncated_body_rejected() {
        let data = b"hello hello hello".repeat(50);
        let packed = compress(&data, DEFLATE_WINDOW_LOG);
        let cut = &packed[..packed.len() - 4];
        assert!(decompress(cut).is_err());
    }

    #[test]
    fn declared_length_enforced() {
        let data = b"abcabcabc".repeat(30);
        let mut packed = compress(&data, DEFLATE_WINDOW_LOG);
        // Tamper with the declared length.
        packed[5] ^= 0x01;
        assert!(matches!(
            decompress(&packed),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn window_log_validated() {
        let data = b"x".repeat(100);
        let mut packed = compress(&data, DEFLATE_WINDOW_LOG);
        packed[4] = 99;
        assert!(decompress(&packed).is_err());
    }
}
