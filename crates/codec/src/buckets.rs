//! Value bucketization for match lengths and distances.
//!
//! DEFLATE encodes match lengths and distances as a small symbol (the
//! bucket) plus a handful of raw extra bits. Rather than transcribing
//! DEFLATE's tables, this module *generates* an equivalent bucket layout:
//! a run of unary buckets (one value each, zero extra bits), followed by
//! tiers of buckets that double in width, each tier adding one extra bit.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// A generated bucket table mapping values to (symbol, extra bits).
#[derive(Debug, Clone)]
pub struct BucketTable {
    /// (base_value, extra_bits) per bucket symbol.
    buckets: Vec<(u32, u8)>,
    min_value: u32,
    max_value: u32,
}

impl BucketTable {
    /// Builds a table covering `min_value..=max_value`.
    ///
    /// The first `unary` buckets hold one value each; afterwards, tiers of
    /// `per_tier` buckets are emitted with 1, 2, 3… extra bits until
    /// `max_value` is covered.
    ///
    /// # Panics
    ///
    /// Panics if `max_value < min_value` or `per_tier == 0`.
    pub fn new(min_value: u32, max_value: u32, unary: u32, per_tier: u32) -> Self {
        assert!(max_value >= min_value);
        assert!(per_tier > 0);
        let mut buckets = Vec::new();
        let mut base = min_value;
        for _ in 0..unary {
            if base > max_value {
                break;
            }
            buckets.push((base, 0u8));
            base += 1;
        }
        let mut extra: u8 = 1;
        while base <= max_value {
            for _ in 0..per_tier {
                if base > max_value {
                    break;
                }
                buckets.push((base, extra));
                base += 1u32 << extra;
            }
            extra += 1;
        }
        BucketTable {
            buckets,
            min_value,
            max_value,
        }
    }

    /// Number of bucket symbols.
    pub fn symbol_count(&self) -> usize {
        self.buckets.len()
    }

    /// Largest encodable value.
    pub fn max_value(&self) -> u32 {
        self.max_value
    }

    /// Smallest encodable value.
    pub fn min_value(&self) -> u32 {
        self.min_value
    }

    /// Maps a value to its bucket symbol.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `min_value..=max_value`.
    pub fn symbol_for(&self, value: u32) -> usize {
        assert!(
            value >= self.min_value && value <= self.max_value,
            "value {value} out of range {}..={}",
            self.min_value,
            self.max_value
        );
        // Binary search for the last bucket whose base <= value.
        match self.buckets.binary_search_by_key(&value, |&(b, _)| b) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Writes the extra bits for `value` (after its symbol has been coded).
    pub fn write_extra(&self, writer: &mut BitWriter, value: u32) {
        let sym = self.symbol_for(value);
        let (base, extra) = self.buckets[sym];
        if extra > 0 {
            writer.write_bits(value - base, extra);
        }
    }

    /// Reconstructs a value from its symbol by reading the extra bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] for an unknown symbol, or
    /// [`CodecError::Truncated`] if the stream ends inside the extra bits.
    pub fn read_value(&self, reader: &mut BitReader<'_>, symbol: usize) -> Result<u32, CodecError> {
        let &(base, extra) = self
            .buckets
            .get(symbol)
            .ok_or(CodecError::CorruptStream("bucket symbol out of range"))?;
        let offset = if extra > 0 {
            reader.read_bits(extra)?
        } else {
            0
        };
        let value = base + offset;
        if value > self.max_value {
            return Err(CodecError::CorruptStream("bucketed value exceeds maximum"));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_range_contiguously() {
        let t = BucketTable::new(3, 258, 8, 4);
        let mut prev_sym = 0;
        for v in 3..=258u32 {
            let s = t.symbol_for(v);
            assert!(s >= prev_sym, "symbols must be monotone");
            prev_sym = s;
        }
        assert_eq!(t.symbol_for(3), 0);
    }

    #[test]
    fn roundtrip_every_value() {
        let t = BucketTable::new(1, 1 << 20, 4, 2);
        let probe: Vec<u32> = (0..21)
            .map(|i| 1u32 << i)
            .chain([3, 5, 1000, 65_535, (1 << 20)])
            .collect();
        for v in probe {
            let v = v.min(t.max_value()).max(t.min_value());
            let sym = t.symbol_for(v);
            let mut w = BitWriter::new();
            t.write_extra(&mut w, v);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(t.read_value(&mut r, sym).unwrap(), v);
        }
    }

    #[test]
    fn unary_buckets_have_no_extra_bits() {
        let t = BucketTable::new(3, 100, 8, 4);
        for v in 3..11u32 {
            let mut w = BitWriter::new();
            t.write_extra(&mut w, v);
            assert_eq!(w.bit_len(), 0, "value {v}");
        }
    }

    #[test]
    fn symbol_count_is_logarithmic() {
        let t = BucketTable::new(1, 1 << 20, 4, 2);
        assert!(t.symbol_count() < 50, "got {}", t.symbol_count());
    }

    #[test]
    fn bad_symbol_rejected() {
        let t = BucketTable::new(1, 10, 2, 2);
        let mut r = BitReader::new(&[0xff]);
        assert!(t.read_value(&mut r, 999).is_err());
    }
}
