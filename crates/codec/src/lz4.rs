//! The LZ4 block format.
//!
//! This is the codec the paper recommends for bzImage payloads: its
//! byte-oriented sequences decompress far faster than entropy-coded formats,
//! which is what makes `copy + hash + decompress(LZ4)` beat
//! `copy + hash` of the uncompressed kernel in Fig. 5.
//!
//! The block format is implemented as specified upstream:
//! each *sequence* is
//!
//! ```text
//! token(1B: literal_len<<4 | (match_len-4)) | [literal_len ext 255…] |
//! literals | offset(2B LE) | [match_len ext 255…]
//! ```
//!
//! with the spec's end conditions (final sequence is literal-only; matches
//! stop ≥ 12 bytes before the end; the last 5 bytes are literals). A small
//! container header (`"SVL4"` + original length) makes the stream
//! self-describing.

use crate::CodecError;

const MAGIC: &[u8; 4] = b"SVL4";
const MIN_MATCH: usize = 4;
/// Spec: matches must not start within the last 12 bytes of input.
const MF_LIMIT: usize = 12;
/// Spec: the last 5 bytes must be literals.
const LAST_LITERALS: usize = 5;
const MAX_DISTANCE: usize = 65_535;

fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(2654435761) >> 17) as usize & 0x7fff
}

/// Compresses `data` into an LZ4 block with the "SVL4" container header.
///
/// # Example
///
/// ```
/// let data = vec![7u8; 1000];
/// let packed = sevf_codec::lz4::compress(&data);
/// assert!(packed.len() < 64);
/// assert_eq!(sevf_codec::lz4::decompress(&packed)?, data);
/// # Ok::<(), sevf_codec::CodecError>(())
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    compress_block(data, &mut out);
    out
}

fn write_varlen(out: &mut Vec<u8>, mut value: usize) {
    while value >= 255 {
        out.push(255);
        value -= 255;
    }
    out.push(value as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], match_len: usize, offset: usize) {
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = if match_len > 0 {
        (match_len - MIN_MATCH).min(15) as u8
    } else {
        0
    };
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        write_varlen(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if match_len - MIN_MATCH >= 15 {
            write_varlen(out, match_len - MIN_MATCH - 15);
        }
    }
}

fn compress_block(data: &[u8], out: &mut Vec<u8>) {
    if data.len() < MF_LIMIT + 1 {
        emit_sequence(out, data, 0, 0);
        return;
    }
    let mut table = vec![usize::MAX; 1 << 15];
    let match_limit = data.len() - MF_LIMIT;
    let literal_limit = data.len() - LAST_LITERALS;
    let mut anchor = 0usize;
    let mut pos = 0usize;
    while pos < match_limit {
        let h = hash4(data, pos);
        let candidate = table[h];
        table[h] = pos;
        let found = candidate != usize::MAX
            && pos - candidate <= MAX_DISTANCE
            && data[candidate..candidate + 4] == data[pos..pos + 4];
        if !found {
            pos += 1;
            continue;
        }
        // Extend the match forward, but never into the last-literals zone.
        let mut len = 4usize;
        let max_len = literal_limit - pos;
        while len < max_len && data[candidate + len] == data[pos + len] {
            len += 1;
        }
        emit_sequence(out, &data[anchor..pos], len, pos - candidate);
        // Index a couple of positions inside the match to help later finds.
        let step = (len / 4).max(1);
        let mut p = pos + 1;
        while p + 4 <= data.len() && p < pos + len {
            table[hash4(data, p)] = p;
            p += step;
        }
        pos += len;
        anchor = pos;
    }
    // Final literal-only sequence.
    emit_sequence(out, &data[anchor..], 0, 0);
}

/// Decompresses an "SVL4" container produced by [`compress`].
///
/// # Errors
///
/// Returns a [`CodecError`] for bad magic, truncated streams, invalid
/// offsets, or output that does not match the declared length.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    if data.len() < 12 || &data[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let orig_len = u64::from_le_bytes(data[4..12].try_into().unwrap()) as usize;
    // Cap the up-front reservation: a corrupted header must not be able to
    // trigger a huge allocation before any payload is validated.
    let mut out = Vec::with_capacity(orig_len.min(1 << 20));
    let mut input = &data[12..];

    let read_varlen = |input: &mut &[u8], base: usize| -> Result<usize, CodecError> {
        let mut value = base;
        if base == 15 {
            loop {
                let (&b, rest) = input.split_first().ok_or(CodecError::Truncated)?;
                *input = rest;
                value += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        Ok(value)
    };

    loop {
        let (&token, rest) = input.split_first().ok_or(CodecError::Truncated)?;
        input = rest;
        let lit_len = read_varlen(&mut input, (token >> 4) as usize)?;
        if input.len() < lit_len {
            return Err(CodecError::Truncated);
        }
        out.extend_from_slice(&input[..lit_len]);
        input = &input[lit_len..];
        if input.is_empty() {
            // Literal-only final sequence.
            break;
        }
        if input.len() < 2 {
            return Err(CodecError::Truncated);
        }
        let offset = u16::from_le_bytes([input[0], input[1]]) as usize;
        input = &input[2..];
        let match_len = read_varlen(&mut input, (token & 0x0f) as usize)? + MIN_MATCH;
        if offset == 0 || offset > out.len() {
            return Err(CodecError::InvalidBackReference { at: out.len() });
        }
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
        if out.len() > orig_len {
            return Err(CodecError::LengthMismatch {
                expected: orig_len as u64,
                actual: out.len() as u64,
            });
        }
    }
    if out.len() != orig_len {
        return Err(CodecError::LengthMismatch {
            expected: orig_len as u64,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_runs() {
        let data = vec![0xaau8; 100_000];
        let packed = compress(&data);
        assert!(packed.len() < 1000, "run should collapse: {}", packed.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn roundtrip_text() {
        let data = b"firecracker boots microvms very fast indeed ".repeat(500);
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 3);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn roundtrip_small_inputs() {
        for len in 0..20usize {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(decompress(&compress(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn roundtrip_incompressible() {
        let mut state = 0xdeadbeefu64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
        // Expansion must be bounded (< 1% for random data).
        assert!(packed.len() < data.len() + data.len() / 64 + 64);
    }

    #[test]
    fn long_matches_use_extended_lengths() {
        let mut data = b"0123456789abcdefghij".to_vec();
        data.extend(std::iter::repeat_n(b'z', 1000));
        data.extend_from_slice(b"0123456789abcdefghij");
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decompress(b"NOPE00000000"), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = b"hello world hello world hello world".repeat(10);
        let packed = compress(&data);
        for cut in [12, packed.len() / 2, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn zero_offset_rejected() {
        // token: 0 literals, match; offset 0x0000.
        let mut stream = MAGIC.to_vec();
        stream.extend_from_slice(&10u64.to_le_bytes());
        stream.push(0x00);
        stream.extend_from_slice(&[0x00, 0x00]);
        assert!(matches!(
            decompress(&stream),
            Err(CodecError::InvalidBackReference { .. })
        ));
    }

    #[test]
    fn overlapping_copy_semantics() {
        // abab... via offset 2.
        let data: Vec<u8> = std::iter::repeat_n([b'a', b'b'], 500).flatten().collect();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }
}
