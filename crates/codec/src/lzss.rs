//! LZSS match finding with hash chains.
//!
//! Produces the token stream that [`crate::lzh`] entropy-codes. The match
//! finder hashes every 4-byte prefix into chains and walks a bounded number
//! of candidates per position (greedy parse with lazy one-step lookahead,
//! the same shape zlib uses at its default level).

/// One LZSS token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `length` bytes starting `distance` bytes back.
    Match {
        /// Match length in bytes (>= [`MIN_MATCH`]).
        length: u32,
        /// Backward distance in bytes (>= 1).
        distance: u32,
    },
}

/// Minimum match length worth emitting.
pub const MIN_MATCH: u32 = 3;
/// Maximum match length for the deflate-class configuration (DEFLATE's cap).
pub const DEFLATE_MAX_MATCH: u32 = 258;
/// Maximum match length for the zstd-class configuration.
pub const ZSTD_MAX_MATCH: u32 = 4096;
/// Candidates examined per position before giving up.
const CHAIN_DEPTH: usize = 32;

fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(2654435761) >> 16) as usize & 0xffff
}

/// Finds LZSS tokens over `data` with a `1 << window_log` byte window and
/// matches capped at `max_match` bytes.
///
/// # Example
///
/// ```
/// use sevf_codec::lzss::{tokenize, Token, DEFLATE_MAX_MATCH};
///
/// let tokens = tokenize(b"abcabcabcabc", 15, DEFLATE_MAX_MATCH);
/// assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
/// ```
///
/// # Panics
///
/// Panics if `max_match < MIN_MATCH`.
pub fn tokenize(data: &[u8], window_log: u32, max_match: u32) -> Vec<Token> {
    assert!(max_match >= MIN_MATCH);
    let window = 1usize << window_log;
    let mut tokens = Vec::new();
    if data.len() < MIN_MATCH as usize + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut head = vec![usize::MAX; 1 << 16];
    let mut chain = vec![usize::MAX; data.len()];
    let mut pos = 0usize;

    let insert = |head: &mut Vec<usize>, chain: &mut Vec<usize>, p: usize| {
        if p + 4 <= data.len() {
            let h = hash4(data, p);
            chain[p] = head[h];
            head[h] = p;
        }
    };

    while pos < data.len() {
        let best = find_match(data, pos, window, max_match, &head, &chain);
        match best {
            Some((len, dist)) if len >= MIN_MATCH => {
                // Lazy matching: if the next position has a strictly better
                // match, emit a literal instead and advance one byte.
                let take_match = if pos + 1 < data.len() {
                    let next = find_match_after_insert(
                        data, pos, window, max_match, &mut head, &mut chain,
                    );
                    !matches!(next, Some((next_len, _)) if next_len > len + 1)
                } else {
                    insert(&mut head, &mut chain, pos);
                    true
                };
                if take_match {
                    tokens.push(Token::Match {
                        length: len,
                        distance: dist,
                    });
                    // Position pos was inserted above; insert the rest of the
                    // matched region.
                    for p in pos + 1..pos + len as usize {
                        insert(&mut head, &mut chain, p);
                    }
                    pos += len as usize;
                } else {
                    tokens.push(Token::Literal(data[pos]));
                    pos += 1;
                }
            }
            _ => {
                insert(&mut head, &mut chain, pos);
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
    }
    tokens
}

/// Inserts `pos` into the chains, then searches for a match at `pos + 1`.
fn find_match_after_insert(
    data: &[u8],
    pos: usize,
    window: usize,
    max_match: u32,
    head: &mut [usize],
    chain: &mut [usize],
) -> Option<(u32, u32)> {
    if pos + 4 <= data.len() {
        let h = hash4(data, pos);
        chain[pos] = head[h];
        head[h] = pos;
    }
    find_match(data, pos + 1, window, max_match, head, chain)
}

fn find_match(
    data: &[u8],
    pos: usize,
    window: usize,
    max_match: u32,
    head: &[usize],
    chain: &[usize],
) -> Option<(u32, u32)> {
    if pos + 4 > data.len() {
        return None;
    }
    let h = hash4(data, pos);
    let mut candidate = head[h];
    let min_pos = pos.saturating_sub(window);
    let max_len = max_match.min((data.len() - pos) as u32);
    let mut best: Option<(u32, u32)> = None;
    let mut depth = 0;
    while candidate != usize::MAX && candidate >= min_pos && depth < CHAIN_DEPTH {
        debug_assert!(candidate < pos);
        let mut len = 0u32;
        while len < max_len && data[candidate + len as usize] == data[pos + len as usize] {
            len += 1;
        }
        if len >= MIN_MATCH && best.is_none_or(|(bl, _)| len > bl) {
            best = Some((len, (pos - candidate) as u32));
            if len == max_len {
                break;
            }
        }
        candidate = chain[candidate];
        depth += 1;
    }
    best
}

/// Reconstructs the original bytes from a token stream (used in tests and by
/// the [`crate::lzh`] decoder core).
///
/// # Example
///
/// ```
/// use sevf_codec::lzss::{apply, tokenize, DEFLATE_MAX_MATCH};
///
/// let data = b"the quick brown fox, the quick brown fox";
/// assert_eq!(apply(&tokenize(data, 15, DEFLATE_MAX_MATCH)).unwrap(), data.to_vec());
/// ```
///
/// # Errors
///
/// Returns `None` if a match refers past the start of the output.
pub fn apply(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { length, distance } => {
                let dist = distance as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for i in 0..length as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let data = b"abracadabra abracadabra abracadabra".repeat(10);
        assert_eq!(
            apply(&tokenize(&data, 15, DEFLATE_MAX_MATCH)).unwrap(),
            data
        );
    }

    #[test]
    fn roundtrip_zeros() {
        let data = vec![0u8; 10_000];
        let tokens = tokenize(&data, 15, DEFLATE_MAX_MATCH);
        assert!(tokens.len() < 100, "runs should collapse: {}", tokens.len());
        assert_eq!(apply(&tokens).unwrap(), data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // A simple LCG makes 4-byte-unique content.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        assert_eq!(
            apply(&tokenize(&data, 15, DEFLATE_MAX_MATCH)).unwrap(),
            data
        );
    }

    #[test]
    fn tiny_inputs() {
        for len in 0..6usize {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(
                apply(&tokenize(&data, 15, DEFLATE_MAX_MATCH)).unwrap(),
                data
            );
        }
    }

    #[test]
    fn overlapping_match_semantics() {
        // RLE via distance-1 match overlapping itself.
        let tokens = [
            Token::Literal(7),
            Token::Match {
                length: 10,
                distance: 1,
            },
        ];
        assert_eq!(apply(&tokens).unwrap(), vec![7u8; 11]);
    }

    #[test]
    fn invalid_distance_detected() {
        let tokens = [Token::Match {
            length: 5,
            distance: 3,
        }];
        assert_eq!(apply(&tokens), None);
    }

    #[test]
    fn window_limits_distances() {
        // Repeat a block farther apart than a tiny window can reach.
        let mut data = b"0123456789abcdef".to_vec();
        data.extend(vec![b'x'; 5000]);
        data.extend_from_slice(b"0123456789abcdef");
        let window_log = 8; // 256-byte window
        for t in tokenize(&data, window_log, DEFLATE_MAX_MATCH) {
            if let Token::Match { distance, .. } = t {
                assert!(distance <= 1 << window_log);
            }
        }
    }

    #[test]
    fn matches_respect_min_length() {
        for t in tokenize(b"abcdefabcdefabcdef", 15, DEFLATE_MAX_MATCH) {
            if let Token::Match { length, .. } = t {
                assert!(length >= MIN_MATCH);
            }
        }
    }
}
