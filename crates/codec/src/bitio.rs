//! LSB-first bit-level I/O used by the Huffman coder.

use crate::CodecError;

/// Writes bits least-significant-bit first into a byte vector.
///
/// # Example
///
/// ```
/// use sevf_codec::bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0b1, 1);
/// let bytes = w.finish();
/// assert_eq!(bytes, vec![0b0000_1101]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in 0..count {
            let bit = (value >> i) & 1;
            self.current |= (bit as u8) << self.used;
            self.used += 1;
            if self.used == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.used = 0;
            }
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.used as usize
    }

    /// Flushes the final partial byte (zero-padded) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

/// Reads bits least-significant-bit first from a byte slice.
///
/// # Example
///
/// ```
/// use sevf_codec::bitio::BitReader;
///
/// let mut r = BitReader::new(&[0b0000_1101]);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(1).unwrap(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, bit_pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] past the end of input.
    pub fn read_bit(&mut self) -> Result<u32, CodecError> {
        let byte = self.bit_pos / 8;
        if byte >= self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let bit = (self.bytes[byte] >> (self.bit_pos % 8)) & 1;
        self.bit_pos += 1;
        Ok(bit as u32)
    }

    /// Reads `count` bits, LSB first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] past the end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u8) -> Result<u32, CodecError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        let mut out = 0u32;
        for i in 0..count {
            out |= self.read_bit()? << i;
        }
        Ok(out)
    }

    /// Current bit offset from the start of the stream.
    pub fn bit_pos(&self) -> usize {
        self.bit_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let values = [
            (0x1u32, 1u8),
            (0x3, 2),
            (0x1f, 5),
            (0xabcd, 16),
            (0, 3),
            (0x7fffffff, 31),
        ];
        for (v, n) in values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in values {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn truncated_read_errors() {
        let mut r = BitReader::new(&[0xff]);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bit(), Err(CodecError::Truncated));
    }

    #[test]
    fn zero_count_reads_zero() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_bits(0xff, 8);
        assert_eq!(w.bit_len(), 10);
        assert_eq!(w.finish().len(), 2);
    }
}
