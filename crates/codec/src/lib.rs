//! From-scratch compression codecs for the SEVeriFast reproduction.
//!
//! The paper's central Fig. 5 trade-off — *measured direct boot favors
//! kernel compression* — depends on real compression ratios: the boot
//! verifier copies and hashes the **compressed** bzImage, then the bootstrap
//! loader decompresses it. This crate implements the codecs whose ratios
//! drive that figure:
//!
//! * [`lz4`] — the LZ4 block format (the winner in the paper; kernels built
//!   with `CONFIG_KERNEL_LZ4`),
//! * [`lzh`] — an LZSS + canonical-Huffman container used in two
//!   configurations: a 32 KiB window "deflate-class" codec (gzip stand-in)
//!   and a 1 MiB window "zstd-class" codec. These are *our own* formats with
//!   the same architectural shape as DEFLATE, documented as substitutions in
//!   DESIGN.md.
//!
//! Decompression *throughput* (LZ4 ≫ deflate) is part of the virtual-time
//! cost model in `sevf-sim`; this crate is only responsible for real bytes
//! in, real bytes out.
//!
//! # Example
//!
//! ```
//! use sevf_codec::Codec;
//!
//! let data = vec![42u8; 10_000];
//! let compressed = Codec::Lz4.compress(&data);
//! assert!(compressed.len() < data.len() / 10);
//! assert_eq!(Codec::Lz4.decompress(&compressed)?, data);
//! # Ok::<(), sevf_codec::CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod buckets;
pub mod huffman;
pub mod lz4;
pub mod lzh;
pub mod lzss;

use std::fmt;

/// Errors produced when decoding a compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The stream ended before the declared payload was decoded.
    Truncated,
    /// A match referenced data before the start of the output window.
    InvalidBackReference {
        /// Byte offset in the output at which the bad reference occurred.
        at: usize,
    },
    /// A Huffman table or symbol in the stream is malformed.
    CorruptStream(&'static str),
    /// The decoded output did not match the declared length.
    LengthMismatch {
        /// Length declared in the header.
        expected: u64,
        /// Length actually produced.
        actual: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "stream does not begin with the codec magic"),
            CodecError::Truncated => write!(f, "compressed stream ended prematurely"),
            CodecError::InvalidBackReference { at } => {
                write!(
                    f,
                    "back-reference before window start at output offset {at}"
                )
            }
            CodecError::CorruptStream(what) => write!(f, "corrupt stream: {what}"),
            CodecError::LengthMismatch { expected, actual } => write!(
                f,
                "decoded length {actual} does not match declared length {expected}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// A kernel/initrd compression codec.
///
/// Mirrors the choices a Linux build offers for `CONFIG_KERNEL_*`; the
/// paper's evaluation compares booting uncompressed images against LZ4 (the
/// recommendation) and slower, denser codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Codec {
    /// No compression (stored); used for vmlinux direct boot and for the
    /// paper's recommended *uncompressed* initrd.
    None,
    /// LZ4 block format — fastest decompression, moderate ratio.
    Lz4,
    /// Deflate-class LZSS+Huffman, 32 KiB window (gzip stand-in).
    Deflate,
    /// Zstd-class LZSS+Huffman, 1 MiB window — denser, mid-speed.
    Zstd,
}

impl Codec {
    /// All codecs, in the order figures present them.
    pub const ALL: [Codec; 4] = [Codec::None, Codec::Lz4, Codec::Deflate, Codec::Zstd];

    /// Short lowercase name, as used in figure labels ("none", "lz4", ...).
    pub fn name(self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::Lz4 => "lz4",
            Codec::Deflate => "gzip",
            Codec::Zstd => "zstd",
        }
    }

    /// Compresses `data` into a self-describing container.
    pub fn compress(self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => {
                let mut out = Vec::with_capacity(data.len() + 13);
                out.extend_from_slice(b"SVST");
                out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                out.extend_from_slice(data);
                out
            }
            Codec::Lz4 => lz4::compress(data),
            Codec::Deflate => lzh::compress(data, lzh::DEFLATE_WINDOW_LOG),
            Codec::Zstd => lzh::compress(data, lzh::ZSTD_WINDOW_LOG),
        }
    }

    /// Decompresses a container produced by [`Codec::compress`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is malformed, truncated, or was
    /// produced by a different codec.
    pub fn decompress(self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        match self {
            Codec::None => {
                if data.len() < 12 || &data[..4] != b"SVST" {
                    return Err(CodecError::BadMagic);
                }
                let len = u64::from_le_bytes(data[4..12].try_into().unwrap()) as usize;
                if data.len() - 12 != len {
                    return Err(CodecError::LengthMismatch {
                        expected: len as u64,
                        actual: (data.len() - 12) as u64,
                    });
                }
                Ok(data[12..].to_vec())
            }
            Codec::Lz4 => lz4::decompress(data),
            Codec::Deflate | Codec::Zstd => lzh::decompress(data),
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kernel-image-like content: short local repeats, a skewed byte
    /// distribution, and occasional pseudo-random stretches — the regime in
    /// which entropy coding (deflate/zstd-class) out-compresses LZ4.
    fn sample() -> Vec<u8> {
        let words = [
            "sched",
            "futex",
            "vfs_read",
            "memcg",
            "tcp_v4_rcv",
            "kmalloc",
            "rcu",
            "ext4",
        ];
        let mut state = 0x243f6a8885a308d3u64;
        let mut v = Vec::new();
        while v.len() < 200_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize;
            v.extend_from_slice(words[pick % words.len()].as_bytes());
            v.push(b' ');
            // Sprinkle per-site varying bytes so long-range matches are rare.
            v.extend_from_slice(&(state as u32).to_le_bytes()[..2]);
        }
        v
    }

    #[test]
    fn all_codecs_roundtrip() {
        let data = sample();
        for codec in Codec::ALL {
            let compressed = codec.compress(&data);
            assert_eq!(codec.decompress(&compressed).unwrap(), data, "{codec}");
        }
    }

    #[test]
    fn ratio_ordering_on_text() {
        // On repetitive text: zstd-class <= deflate-class <= lz4 < stored.
        let data = sample();
        let lz4 = Codec::Lz4.compress(&data).len();
        let deflate = Codec::Deflate.compress(&data).len();
        let zstd = Codec::Zstd.compress(&data).len();
        let stored = Codec::None.compress(&data).len();
        assert!(lz4 < stored);
        assert!(deflate < lz4, "deflate {deflate} vs lz4 {lz4}");
        // Without long-range structure the two LZH configurations land within
        // a couple percent of each other (the zstd-class pays a slightly
        // larger alphabet); the long-range win is covered in `lzh::tests`.
        assert!(
            zstd <= deflate + deflate / 50,
            "zstd {zstd} vs deflate {deflate}"
        );
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let data = sample();
        let lz4 = Codec::Lz4.compress(&data);
        assert_eq!(Codec::None.decompress(&lz4), Err(CodecError::BadMagic));
        assert_eq!(Codec::Deflate.decompress(&lz4), Err(CodecError::BadMagic));
    }

    #[test]
    fn empty_input_roundtrips() {
        for codec in Codec::ALL {
            assert_eq!(codec.decompress(&codec.compress(&[])).unwrap(), vec![]);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Codec::Lz4.name(), "lz4");
        assert_eq!(Codec::Deflate.to_string(), "gzip");
    }
}
