//! Property-based tests: every codec must roundtrip arbitrary byte streams
//! and fail cleanly (never panic) on arbitrary garbage input.

use proptest::prelude::*;
use sevf_codec::Codec;

fn compressible(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    // Mix of runs, repeated phrases, and raw bytes — kernel-image-like.
    proptest::collection::vec(
        prop_oneof![
            Just(b"init_task".to_vec()),
            Just(vec![0u8; 37]),
            proptest::collection::vec(any::<u8>(), 1..20),
        ],
        0..max_len / 16,
    )
    .prop_map(|chunks| chunks.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_random(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for codec in Codec::ALL {
            let packed = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&packed).unwrap(), data.clone(), "{}", codec);
        }
    }

    #[test]
    fn roundtrip_compressible(data in compressible(4096)) {
        for codec in Codec::ALL {
            let packed = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&packed).unwrap(), data.clone(), "{}", codec);
        }
    }

    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        for codec in Codec::ALL {
            let _ = codec.decompress(&data);
        }
    }

    #[test]
    fn bit_flip_is_detected_or_harmless(
        data in compressible(2048),
        byte_index in any::<usize>(),
        bit in 0u8..8,
    ) {
        // Flipping any bit of a compressed stream must either fail cleanly
        // or (rarely, e.g. inside literals) still decode — never panic.
        for codec in Codec::ALL {
            let mut packed = codec.compress(&data);
            if packed.is_empty() { continue; }
            let idx = byte_index % packed.len();
            packed[idx] ^= 1 << bit;
            let _ = codec.decompress(&packed);
        }
    }

    #[test]
    fn compressed_size_bounded(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // Even on incompressible input, overhead stays modest.
        for codec in Codec::ALL {
            let packed = codec.compress(&data);
            prop_assert!(packed.len() <= data.len() + data.len() / 8 + 1024,
                "{}: {} -> {}", codec, data.len(), packed.len());
        }
    }
}
