//! Property-based tests: every codec must roundtrip arbitrary byte streams
//! and fail cleanly (never panic) on arbitrary garbage input.
//!
//! Cases are drawn from a local xorshift generator (sevf-sim's RNG lives
//! downstream of this crate), so every run covers the same seeded family.

use sevf_codec::Codec;

const CASES: u64 = 64;

/// Minimal xorshift64* generator for deterministic case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

/// Mix of runs, repeated phrases, and raw bytes — kernel-image-like.
fn compressible(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let chunks = rng.below(max_len as u64 / 16) as usize;
    let mut data = Vec::new();
    for _ in 0..chunks {
        match rng.below(3) {
            0 => data.extend_from_slice(b"init_task"),
            1 => data.extend_from_slice(&[0u8; 37]),
            _ => {
                let n = 1 + rng.below(19) as usize;
                data.extend((0..n).map(|_| rng.next_u64() as u8));
            }
        }
    }
    data
}

#[test]
fn roundtrip_random() {
    let mut rng = Rng::new(0xC0DE_C001);
    for _ in 0..CASES {
        let data = rng.bytes(4096);
        for codec in Codec::ALL {
            let packed = codec.compress(&data);
            assert_eq!(codec.decompress(&packed).unwrap(), data, "{codec}");
        }
    }
}

#[test]
fn roundtrip_compressible() {
    let mut rng = Rng::new(0xC0DE_C002);
    for _ in 0..CASES {
        let data = compressible(&mut rng, 4096);
        for codec in Codec::ALL {
            let packed = codec.compress(&data);
            assert_eq!(codec.decompress(&packed).unwrap(), data, "{codec}");
        }
    }
}

#[test]
fn garbage_never_panics() {
    let mut rng = Rng::new(0xC0DE_C003);
    for _ in 0..CASES {
        let data = rng.bytes(512);
        for codec in Codec::ALL {
            let _ = codec.decompress(&data);
        }
    }
}

#[test]
fn bit_flip_is_detected_or_harmless() {
    // Flipping any bit of a compressed stream must either fail cleanly
    // or (rarely, e.g. inside literals) still decode — never panic.
    let mut rng = Rng::new(0xC0DE_C004);
    for _ in 0..CASES {
        let data = compressible(&mut rng, 2048);
        let byte_index = rng.next_u64() as usize;
        let bit = rng.below(8) as u8;
        for codec in Codec::ALL {
            let mut packed = codec.compress(&data);
            if packed.is_empty() {
                continue;
            }
            let idx = byte_index % packed.len();
            packed[idx] ^= 1 << bit;
            let _ = codec.decompress(&packed);
        }
    }
}

#[test]
fn compressed_size_bounded() {
    // Even on incompressible input, overhead stays modest.
    let mut rng = Rng::new(0xC0DE_C005);
    for _ in 0..CASES {
        let data = rng.bytes(4096);
        for codec in Codec::ALL {
            let packed = codec.compress(&data);
            assert!(
                packed.len() <= data.len() + data.len() / 8 + 1024,
                "{}: {} -> {}",
                codec,
                data.len(),
                packed.len()
            );
        }
    }
}
