//! Property-based tests for the simulation substrate.
//!
//! Each property runs over a seeded family of randomized cases drawn from
//! [`XorShift64`], so the sweep is deterministic and needs no external
//! property-testing dependency. The DES invariants lean on [`RunTrace`]:
//! the engine's own occupancy record is checked against the capacities it
//! was configured with.

use sevf_sim::rng::XorShift64;
use sevf_sim::{DesEngine, Job, Nanos, PhaseKind, RunTrace, Segment, Timeline};

const CASES: u64 = 64;

/// Random segment durations in `1..5_000_000` ns, `1..max_segments` long.
fn random_durations(rng: &mut XorShift64, max_segments: usize) -> Vec<u64> {
    let len = 1 + rng.next_below(max_segments as u64 - 1) as usize;
    (0..len).map(|_| 1 + rng.next_below(4_999_999)).collect()
}

fn random_job_specs(rng: &mut XorShift64, max_jobs: usize, max_segments: usize) -> Vec<Vec<u64>> {
    let jobs = 1 + rng.next_below(max_jobs as u64 - 1) as usize;
    (0..jobs)
        .map(|_| random_durations(rng, max_segments))
        .collect()
}

fn jobs_on(res: sevf_sim::ResourceId, specs: &[Vec<u64>]) -> Vec<Job> {
    specs
        .iter()
        .map(|durations| {
            Job::new(
                durations
                    .iter()
                    .map(|&d| Segment::on(res, Nanos::from_nanos(d), "seg"))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn des_latency_never_below_service_time() {
    let mut rng = XorShift64::new(0xDE5_0001);
    for _ in 0..CASES {
        let specs = random_job_specs(&mut rng, 12, 5);
        let capacity = 1 + rng.next_below(3) as usize;
        let mut engine = DesEngine::new();
        let res = engine.add_resource("r", capacity);
        let jobs = jobs_on(res, &specs);
        let service: Vec<Nanos> = jobs.iter().map(Job::service_time).collect();
        let outcomes = engine.run(jobs);
        assert_eq!(outcomes.len(), service.len());
        for (outcome, s) in outcomes.iter().zip(&service) {
            assert!(outcome.latency() >= *s, "latency below service time");
        }
    }
}

#[test]
fn des_makespan_bounded_by_total_work() {
    // Single-slot resource: makespan == total demand (work conserving),
    // and the queue never idles while work remains.
    let mut rng = XorShift64::new(0xDE5_0002);
    for _ in 0..CASES {
        let specs = random_job_specs(&mut rng, 10, 4);
        let mut engine = DesEngine::new();
        let res = engine.add_resource("psp", 1);
        let total: u64 = specs.iter().flatten().sum();
        let outcomes = engine.run(jobs_on(res, &specs));
        let makespan = outcomes.iter().map(|o| o.finish).max().unwrap();
        assert_eq!(makespan, Nanos::from_nanos(total));
    }
}

#[test]
fn des_pure_delays_are_independent() {
    let mut rng = XorShift64::new(0xDE5_0003);
    for _ in 0..CASES {
        let delays: Vec<u64> = (0..1 + rng.next_below(19))
            .map(|_| 1 + rng.next_below(999_999))
            .collect();
        let mut engine = DesEngine::new();
        let jobs: Vec<Job> = delays
            .iter()
            .map(|&d| Job::new(vec![Segment::delay(Nanos::from_nanos(d), "net")]))
            .collect();
        let outcomes = engine.run(jobs);
        for (outcome, &d) in outcomes.iter().zip(&delays) {
            assert_eq!(outcome.finish, Nanos::from_nanos(d));
            assert_eq!(outcome.queued, Nanos::ZERO);
        }
    }
}

/// A capacity-`c` resource must never run more than `c` segments at once;
/// in particular a capacity-1 resource never overlaps two segments.
#[test]
fn des_trace_never_exceeds_capacity() {
    let mut rng = XorShift64::new(0xDE5_0004);
    for _ in 0..CASES {
        let specs = random_job_specs(&mut rng, 14, 5);
        let capacity = 1 + rng.next_below(4) as usize;
        let mut engine = DesEngine::new();
        let res = engine.add_resource("r", capacity);
        let (_, trace) = engine.run_traced(jobs_on(res, &specs));
        assert!(
            trace.max_concurrency(res) <= capacity,
            "{} segments overlapped on a capacity-{} resource",
            trace.max_concurrency(res),
            capacity
        );
        if capacity == 1 {
            // Stronger form: sorted by start, each segment begins at or
            // after the previous one ends.
            let mut entries: Vec<_> = trace
                .entries()
                .iter()
                .filter(|e| e.resource == res)
                .collect();
            entries.sort_by_key(|e| e.start);
            for pair in entries.windows(2) {
                assert!(pair[1].start >= pair[0].end, "capacity-1 overlap");
            }
        }
    }
}

/// Busy time on a resource can never exceed `makespan × capacity`, and the
/// trace's busy accounting must equal the work the jobs brought.
#[test]
fn des_busy_time_bounded_and_conserved() {
    let mut rng = XorShift64::new(0xDE5_0005);
    for _ in 0..CASES {
        let specs = random_job_specs(&mut rng, 12, 4);
        let capacity = 1 + rng.next_below(3) as usize;
        let mut engine = DesEngine::new();
        let res = engine.add_resource("r", capacity);
        let demand: u64 = specs.iter().flatten().sum();
        let (_, trace) = engine.run_traced(jobs_on(res, &specs));
        let busy = trace.busy_time(res);
        assert_eq!(busy, Nanos::from_nanos(demand), "busy != offered work");
        let cap = Nanos::from_nanos(trace.makespan().as_nanos() * capacity as u64);
        assert!(
            busy <= cap,
            "busy {busy:?} exceeds makespan × capacity {cap:?}"
        );
        let util = trace.utilization(res, capacity);
        assert!((0.0..=1.0).contains(&util), "utilization {util}");
    }
}

/// Latency decomposes exactly: finish − release == service time + queueing,
/// and both parts are non-negative.
#[test]
fn des_latency_is_service_plus_queueing() {
    let mut rng = XorShift64::new(0xDE5_0006);
    for _ in 0..CASES {
        let specs = random_job_specs(&mut rng, 12, 5);
        let capacity = 1 + rng.next_below(3) as usize;
        let mut engine = DesEngine::new();
        let res = engine.add_resource("r", capacity);
        let jobs = jobs_on(res, &specs);
        let service: Vec<Nanos> = jobs.iter().map(Job::service_time).collect();
        let outcomes = engine.run(jobs);
        for (outcome, s) in outcomes.iter().zip(&service) {
            assert!(outcome.finish >= outcome.release);
            assert_eq!(
                outcome.latency(),
                *s + outcome.queued,
                "latency must be service + queued"
            );
        }
    }
}

/// The invariants hold under dynamic injection too: a chain of follow-up
/// jobs spawned from completions still respects capacity and conservation.
#[test]
fn des_dynamic_injection_keeps_invariants() {
    let mut rng = XorShift64::new(0xDE5_0007);
    for _ in 0..CASES {
        let seed_specs = random_job_specs(&mut rng, 6, 3);
        let follow_up = 1 + rng.next_below(4_999) * 1_000;
        let extra = rng.next_below(4) as usize;
        let mut engine = DesEngine::new();
        let res = engine.add_resource("r", 1);
        let seeds = jobs_on(res, &seed_specs);
        let seed_count = seeds.len();
        let demand: u64 =
            seed_specs.iter().flatten().sum::<u64>() + (seed_count * extra) as u64 * follow_up;
        let mut injected = 0usize;
        let (outcomes, trace): (Vec<_>, RunTrace) = engine.run_dynamic(seeds, |outcome, inject| {
            // Each seed job fans out `extra` follow-ups at its completion.
            if outcome.job < seed_count {
                for _ in 0..extra {
                    injected += 1;
                    inject.push(Job::released_at(
                        outcome.finish,
                        vec![Segment::on(res, Nanos::from_nanos(follow_up), "chain")],
                    ));
                }
            }
        });
        assert_eq!(outcomes.len(), seed_count + injected);
        assert_eq!(trace.busy_time(res), Nanos::from_nanos(demand));
        assert!(trace.max_concurrency(res) <= 1);
        for outcome in &outcomes {
            assert!(outcome.finish >= outcome.release);
        }
    }
}

#[test]
fn timeline_totals_are_span_sums() {
    let mut rng = XorShift64::new(0xDE5_0008);
    for _ in 0..CASES {
        let durations: Vec<u64> = (0..1 + rng.next_below(29))
            .map(|_| 1 + rng.next_below(9_999_999))
            .collect();
        let mut tl = Timeline::new();
        let phases = [
            PhaseKind::VmmSetup,
            PhaseKind::LinuxBoot,
            PhaseKind::Attestation,
        ];
        for (i, &d) in durations.iter().enumerate() {
            tl.push(phases[i % 3], "work", Nanos::from_nanos(d));
        }
        let total: u64 = durations.iter().sum();
        assert_eq!(tl.total(), Nanos::from_nanos(total));
        let by_phase: u64 = phases.iter().map(|&p| tl.phase_total(p).as_nanos()).sum();
        assert_eq!(by_phase, total);
        // boot_total excludes exactly the attestation spans.
        let attestation: u64 = durations
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 2)
            .map(|(_, &d)| d)
            .sum();
        assert_eq!(tl.boot_total(), Nanos::from_nanos(total - attestation));
    }
}

#[test]
fn timeline_filtered_keeps_selected_phases() {
    let mut rng = XorShift64::new(0xDE5_0009);
    for _ in 0..CASES {
        let durations: Vec<u64> = (0..1 + rng.next_below(19))
            .map(|_| 1 + rng.next_below(999_999))
            .collect();
        let mut tl = Timeline::new();
        let phases = [PhaseKind::VmmSetup, PhaseKind::Attestation];
        for (i, &d) in durations.iter().enumerate() {
            tl.push(phases[i % 2], "work", Nanos::from_nanos(d));
        }
        let filtered = tl.filtered(|p| p.counts_as_boot());
        assert_eq!(filtered.total(), tl.boot_total());
        assert!(filtered
            .spans()
            .iter()
            .all(|s| s.phase != PhaseKind::Attestation));
    }
}

#[test]
fn jitter_preserves_scale() {
    let mut rng = XorShift64::new(0xDE5_000A);
    for _ in 0..CASES {
        let mut j = sevf_sim::rng::Jitter::new(rng.next_u64());
        let nominal = Nanos::from_millis(100);
        let mean: f64 = (0..500)
            .map(|_| j.apply(nominal).as_millis_f64())
            .sum::<f64>()
            / 500.0;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }
}

#[test]
fn stats_percentiles_within_bounds() {
    let mut rng = XorShift64::new(0xDE5_000B);
    for _ in 0..CASES {
        let values: Vec<f64> = (0..1 + rng.next_below(199))
            .map(|_| rng.next_f64() * 1e9)
            .collect();
        let s = sevf_sim::Summary::from_values(&values);
        assert!(s.min <= s.p50 && s.p50 <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.p50 <= s.p99 && s.p99 <= s.max);
        let points = sevf_sim::stats::cdf(&values);
        for pair in points.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
