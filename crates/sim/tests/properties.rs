//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use sevf_sim::{DesEngine, Job, Nanos, PhaseKind, Segment, Timeline};

fn arb_durations(max_segments: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..5_000_000, 1..max_segments)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn des_latency_never_below_service_time(
        jobs_spec in proptest::collection::vec(arb_durations(5), 1..12),
        capacity in 1usize..4,
    ) {
        let mut engine = DesEngine::new();
        let res = engine.add_resource("r", capacity);
        let jobs: Vec<Job> = jobs_spec
            .iter()
            .map(|durations| {
                Job::new(
                    durations
                        .iter()
                        .map(|&d| Segment::on(res, Nanos::from_nanos(d), "seg"))
                        .collect(),
                )
            })
            .collect();
        let service: Vec<Nanos> = jobs.iter().map(Job::service_time).collect();
        let outcomes = engine.run(jobs);
        prop_assert_eq!(outcomes.len(), service.len());
        for (outcome, s) in outcomes.iter().zip(&service) {
            prop_assert!(outcome.latency() >= *s, "latency below service time");
        }
    }

    #[test]
    fn des_makespan_bounded_by_total_work(
        jobs_spec in proptest::collection::vec(arb_durations(4), 1..10),
    ) {
        // Single-slot resource: makespan == total demand (work conserving),
        // and the queue never idles while work remains.
        let mut engine = DesEngine::new();
        let res = engine.add_resource("psp", 1);
        let total: u64 = jobs_spec.iter().flatten().sum();
        let jobs: Vec<Job> = jobs_spec
            .iter()
            .map(|durations| {
                Job::new(
                    durations
                        .iter()
                        .map(|&d| Segment::on(res, Nanos::from_nanos(d), "seg"))
                        .collect(),
                )
            })
            .collect();
        let outcomes = engine.run(jobs);
        let makespan = outcomes.iter().map(|o| o.finish).max().unwrap();
        prop_assert_eq!(makespan, Nanos::from_nanos(total));
    }

    #[test]
    fn des_pure_delays_are_independent(
        delays in proptest::collection::vec(1u64..1_000_000, 1..20),
    ) {
        let mut engine = DesEngine::new();
        let jobs: Vec<Job> = delays
            .iter()
            .map(|&d| Job::new(vec![Segment::delay(Nanos::from_nanos(d), "net")]))
            .collect();
        let outcomes = engine.run(jobs);
        for (outcome, &d) in outcomes.iter().zip(&delays) {
            prop_assert_eq!(outcome.finish, Nanos::from_nanos(d));
            prop_assert_eq!(outcome.queued, Nanos::ZERO);
        }
    }

    #[test]
    fn timeline_totals_are_span_sums(durations in proptest::collection::vec(1u64..10_000_000, 1..30)) {
        let mut tl = Timeline::new();
        let phases = [PhaseKind::VmmSetup, PhaseKind::LinuxBoot, PhaseKind::Attestation];
        for (i, &d) in durations.iter().enumerate() {
            tl.push(phases[i % 3], "work", Nanos::from_nanos(d));
        }
        let total: u64 = durations.iter().sum();
        prop_assert_eq!(tl.total(), Nanos::from_nanos(total));
        let by_phase: u64 = phases
            .iter()
            .map(|&p| tl.phase_total(p).as_nanos())
            .sum();
        prop_assert_eq!(by_phase, total);
        // boot_total excludes exactly the attestation spans.
        let attestation: u64 = durations
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 2)
            .map(|(_, &d)| d)
            .sum();
        prop_assert_eq!(tl.boot_total(), Nanos::from_nanos(total - attestation));
    }

    #[test]
    fn timeline_filtered_keeps_selected_phases(
        durations in proptest::collection::vec(1u64..1_000_000, 1..20),
    ) {
        let mut tl = Timeline::new();
        let phases = [PhaseKind::VmmSetup, PhaseKind::Attestation];
        for (i, &d) in durations.iter().enumerate() {
            tl.push(phases[i % 2], "work", Nanos::from_nanos(d));
        }
        let filtered = tl.filtered(|p| p.counts_as_boot());
        prop_assert_eq!(filtered.total(), tl.boot_total());
        prop_assert!(filtered
            .spans()
            .iter()
            .all(|s| s.phase != PhaseKind::Attestation));
    }

    #[test]
    fn jitter_preserves_scale(seed in any::<u64>()) {
        let mut j = sevf_sim::rng::Jitter::new(seed);
        let nominal = Nanos::from_millis(100);
        let mean: f64 = (0..500)
            .map(|_| j.apply(nominal).as_millis_f64())
            .sum::<f64>()
            / 500.0;
        prop_assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn stats_percentiles_within_bounds(
        values in proptest::collection::vec(0.0f64..1e9, 1..200),
    ) {
        let s = sevf_sim::Summary::from_values(&values);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.p50 <= s.p99 && s.p99 <= s.max);
        let points = sevf_sim::stats::cdf(&values);
        for pair in points.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
        prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
