//! Calendar-queue engine ≡ heap reference engine, on seeded random job sets.
//!
//! The raw-speed pass swapped the DES scheduler from a `BinaryHeap` to an
//! indexed calendar queue. Every downstream result — fleet sweeps, cluster
//! scaling, the byte-diff replay gates in ci.sh — rests on the two engines
//! producing *identical* `(time, seq)` event orders, so these tests compare
//! [`sevf_sim::DesEngine`] against [`sevf_sim::reference::HeapEngine`]
//! outcome-for-outcome and trace-entry-for-trace-entry, with workloads
//! crafted to hit the queue's edge paths: simultaneous releases (tie-breaks),
//! duration ties, far-future events (overflow + rebase), zero-duration
//! segments, empty jobs, and dynamic injection mid-drain.

use sevf_sim::reference::HeapEngine;
use sevf_sim::rng::XorShift64;
use sevf_sim::{DesEngine, Job, Nanos, Segment};

/// Resources both engines register, in the same order.
const RESOURCES: &[(&str, usize)] = &[("psp", 1), ("cpu", 4), ("nic", 2)];

fn engines() -> (DesEngine, HeapEngine) {
    let mut cal = DesEngine::new();
    let mut heap = HeapEngine::new();
    for &(name, cap) in RESOURCES {
        let a = cal.add_resource(name, cap);
        let b = heap.add_resource(name, cap);
        assert_eq!(a, b, "engines must hand out identical resource ids");
    }
    (cal, heap)
}

/// A random job: 0–4 segments over the three resources plus pure delays,
/// with durations drawn from a small lattice so ties are common, and
/// releases drawn from a range wide enough to cross calendar buckets.
fn random_job(rng: &mut XorShift64, release_span_ns: u64) -> Job {
    let release = Nanos::from_nanos(rng.next_below(release_span_ns));
    let n_segs = rng.next_below(5) as usize;
    let ids: Vec<_> = {
        // Recreate the ids an engine with RESOURCES hands out.
        let mut e = DesEngine::new();
        RESOURCES
            .iter()
            .map(|&(n, c)| e.add_resource(n, c))
            .collect()
    };
    let segments = (0..n_segs)
        .map(|_| {
            // Lattice of 0/1/2/5/10 µs durations: zero-length segments and
            // exact duration ties both show up constantly.
            let dur = Nanos::from_micros([0, 1, 2, 5, 10][rng.next_below(5) as usize]);
            match rng.next_below(4) {
                0 => Segment::on(ids[0], dur, "psp"),
                1 => Segment::on(ids[1], dur, "cpu"),
                2 => Segment::on(ids[2], dur, "nic"),
                _ => Segment::delay(dur, "net"),
            }
        })
        .collect();
    Job::released_at(release, segments)
}

fn random_batch(seed: u64, n: usize, release_span_ns: u64) -> Vec<Job> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|_| random_job(&mut rng, release_span_ns))
        .collect()
}

/// Asserts both engines agree on outcomes (order included — outcomes come
/// back in job order, so equality here also pins queue/finish tie-breaking)
/// and on the occupancy trace (order of trace entries is event order).
fn assert_equivalent(jobs: Vec<Job>) {
    let (mut cal, mut heap) = engines();
    let (a_out, a_trace) = cal.run_traced(jobs.clone());
    let (b_out, b_trace) = heap.run_traced(jobs);
    assert_eq!(a_out.len(), b_out.len());
    for (a, b) in a_out.iter().zip(&b_out) {
        assert_eq!(
            (a.job, a.release, a.finish, a.queued),
            (b.job, b.release, b.finish, b.queued)
        );
    }
    assert_eq!(
        a_trace.entries(),
        b_trace.entries(),
        "occupancy trace order"
    );
    assert_eq!(a_trace.makespan(), b_trace.makespan());
}

#[test]
fn random_batches_match_across_seeds() {
    for seed in 1..=20u64 {
        // Tight release span: heavy contention and constant ties.
        assert_equivalent(random_batch(seed, 200, 50_000));
    }
}

#[test]
fn sparse_far_future_batches_match() {
    for seed in 21..=30u64 {
        // Releases spread over ~100 s of virtual time: every job starts in
        // calendar overflow and arrives via rebase migration.
        assert_equivalent(random_batch(seed, 120, 100_000_000_000));
    }
}

#[test]
fn all_simultaneous_releases_match() {
    // Everything releases at t=0: pure submission-order tie-breaking.
    let mut rng = XorShift64::new(99);
    let jobs: Vec<Job> = (0..300)
        .map(|_| {
            let mut j = random_job(&mut rng, 1);
            j.release = Nanos::ZERO;
            j
        })
        .collect();
    assert_equivalent(jobs);
}

#[test]
fn empty_and_zero_duration_jobs_match() {
    let ids: Vec<_> = {
        let mut e = DesEngine::new();
        RESOURCES
            .iter()
            .map(|&(n, c)| e.add_resource(n, c))
            .collect()
    };
    let mut jobs = vec![
        Job::released_at(Nanos::from_millis(1), vec![]),
        Job::new(vec![]),
        Job::new(vec![Segment::on(ids[0], Nanos::ZERO, "z")]),
        Job::new(vec![Segment::delay(Nanos::ZERO, "z")]),
    ];
    jobs.extend(random_batch(5, 50, 2_000_000));
    assert_equivalent(jobs);
}

#[test]
fn dynamic_injection_matches() {
    for seed in 1..=10u64 {
        let jobs = random_batch(seed, 60, 100_000);
        let (mut cal, mut heap) = engines();

        // Each completion of an original job injects a follow-up chain job
        // whose shape depends on the outcome, so any divergence in event
        // order compounds instead of washing out.
        let run = |out: &mut Vec<(usize, Nanos, Nanos, Nanos)>,
                   outcome: &sevf_sim::JobOutcome,
                   inject: &mut Vec<Job>| {
            out.push((outcome.job, outcome.release, outcome.finish, outcome.queued));
            if outcome.job < 60 {
                let mut e = DesEngine::new();
                let ids: Vec<_> = RESOURCES
                    .iter()
                    .map(|&(n, c)| e.add_resource(n, c))
                    .collect();
                let which = outcome.job % 3;
                inject.push(Job::released_at(
                    outcome.finish + Nanos::from_nanos(outcome.job as u64 % 2),
                    vec![Segment::on(ids[which], Nanos::from_micros(3), "chain")],
                ));
            }
        };

        let mut a_seen = Vec::new();
        let (a_out, a_trace) = cal.run_dynamic(jobs.clone(), |o, inj| run(&mut a_seen, o, inj));
        let mut b_seen = Vec::new();
        let (b_out, b_trace) = heap.run_dynamic(jobs, |o, inj| run(&mut b_seen, o, inj));

        // Completion-callback order is the event order itself.
        assert_eq!(a_seen, b_seen, "seed {seed}: completion order");
        assert_eq!(a_out.len(), b_out.len());
        for (a, b) in a_out.iter().zip(&b_out) {
            assert_eq!(
                (a.job, a.release, a.finish, a.queued),
                (b.job, b.release, b.finish, b.queued),
                "seed {seed}"
            );
        }
        assert_eq!(a_trace.entries(), b_trace.entries());
        assert_eq!(a_trace.makespan(), b_trace.makespan());
    }
}

#[test]
fn untraced_run_matches_reference() {
    for seed in 31..=40u64 {
        let jobs = random_batch(seed, 150, 500_000);
        let (mut cal, mut heap) = engines();
        let fast = cal.run(jobs.clone());
        let slow = heap.run(jobs);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(
                (a.job, a.release, a.finish, a.queued),
                (b.job, b.release, b.finish, b.queued),
                "seed {seed}"
            );
        }
    }
}
