//! Deterministic fault injection on the virtual clock.
//!
//! Real SEV fleets see PSP firmware resets, transient launch-command
//! failures, warm guests that die, and attestation round trips that hang or
//! error. This module pre-computes all of that from a seed so a chaos run is
//! exactly replayable: a [`FaultPlan`] is a pure function of
//! `(seed, config, horizon)` and every per-event draw is *stateless* — a
//! splitmix64-style hash of `(seed, domain, token)` — so consulting the plan
//! never perturbs any other random stream. A fleet simulation driven by the
//! same `(catalog, config, fault_plan)` triple therefore produces
//! byte-identical output on every run.
//!
//! Two kinds of schedule coexist:
//!
//! * **Timed faults** — PSP firmware-reset outage windows and warm-guest
//!   crash instants are generated up front over a caller-supplied horizon
//!   (exponential gaps, non-overlapping windows) and exposed as sorted lists
//!   the caller turns into simulation events.
//! * **Per-event faults** — PSP command transients and attestation
//!   timeouts/errors are Bernoulli draws keyed by a caller-chosen token
//!   (e.g. the launch sequence number), so the verdict for event *n* is
//!   independent of how many other events were probed in between.

use crate::rng::XorShift64;
use crate::time::Nanos;

/// The kinds of fault the plan can inject (counter and display taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A single PSP launch command failed transiently; retry may succeed.
    PspTransient,
    /// Whole-PSP firmware reset: in-flight launch state is lost and shared-key
    /// templates are invalidated (§6.2 trust caveat exercised under failure).
    PspReset,
    /// A keep-alive warm guest crashed and its pool slot is gone.
    WarmCrash,
    /// An attestation round trip hung until the client-side timeout.
    AttestTimeout,
    /// An attestation round trip returned an error immediately.
    AttestError,
    /// Whole-host outage: the machine (PSP, CPUs, warm pool, templates)
    /// drops off the cluster; everything in flight on it is lost.
    HostOutage,
    /// Network partition: the host was alive but fenced — its dispatch
    /// lease lapsed while it was unreachable, so work in flight on it is
    /// aborted rather than completed (split-brain discipline).
    NetPartition,
}

impl FaultKind {
    /// Display name for tables and counters.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PspTransient => "psp-transient",
            FaultKind::PspReset => "psp-reset",
            FaultKind::WarmCrash => "warm-crash",
            FaultKind::AttestTimeout => "attest-timeout",
            FaultKind::AttestError => "attest-error",
            FaultKind::HostOutage => "host-outage",
            FaultKind::NetPartition => "net-partition",
        }
    }
}

/// How an attestation round trip misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestFault {
    /// No answer until the client-side timeout elapses (costs the timeout).
    Timeout,
    /// Immediate error from the attestation service (costs one RTT).
    Error,
}

/// Knobs of the fault model. All rates are per-event probabilities in
/// `[0, 1]`; all periods are *mean* gaps on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that one PSP-using launch fails transiently mid-command.
    pub psp_transient_rate: f64,
    /// Mean gap between PSP firmware resets (`None` = never).
    pub psp_reset_period: Option<Nanos>,
    /// Outage length per reset: the PSP accepts no commands inside the
    /// window and everything in flight on it is lost.
    pub psp_reset_outage: Nanos,
    /// Mean gap between warm-guest crashes (`None` = never).
    pub warm_crash_period: Option<Nanos>,
    /// Probability an attestation round trip hangs until timeout.
    pub attest_timeout_rate: f64,
    /// Probability an attestation round trip errors immediately.
    pub attest_error_rate: f64,
    /// Client-side attestation timeout (how long a hang costs).
    pub attest_timeout: Nanos,
    /// Mean gap between whole-host outages (`None` = never). Only meaningful
    /// when a plan models one fault domain of a multi-host cluster: the host
    /// vanishes for the window — PSP, CPUs, warm pool, and templates all die.
    pub host_outage_period: Option<Nanos>,
    /// Outage length per whole-host outage.
    pub host_outage_length: Nanos,
}

impl FaultConfig {
    /// A config that injects nothing (useful as a base for overrides).
    pub fn none() -> Self {
        FaultConfig {
            psp_transient_rate: 0.0,
            psp_reset_period: None,
            psp_reset_outage: Nanos::ZERO,
            warm_crash_period: None,
            attest_timeout_rate: 0.0,
            attest_error_rate: 0.0,
            attest_timeout: Nanos::from_secs(1),
            host_outage_period: None,
            host_outage_length: Nanos::ZERO,
        }
    }

    /// The chaos-storm preset: frequent firmware resets with a long outage,
    /// a noticeable transient rate, occasional warm crashes, and flaky
    /// attestation. Tuned so a naive (no-retry) fleet visibly collapses on a
    /// ~30 s virtual run while a resilient one keeps serving.
    pub fn storm() -> Self {
        FaultConfig {
            psp_transient_rate: 0.05,
            psp_reset_period: Some(Nanos::from_secs(2)),
            psp_reset_outage: Nanos::from_millis(500),
            warm_crash_period: Some(Nanos::from_millis(400)),
            attest_timeout_rate: 0.02,
            attest_error_rate: 0.03,
            attest_timeout: Nanos::from_secs(1),
            host_outage_period: None,
            host_outage_length: Nanos::ZERO,
        }
    }

    /// Checks that every knob is in range.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first invalid knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        let rate_ok = |r: f64| r.is_finite() && (0.0..=1.0).contains(&r);
        if !rate_ok(self.psp_transient_rate) {
            return Err("psp_transient_rate outside [0, 1]");
        }
        if !rate_ok(self.attest_timeout_rate) || !rate_ok(self.attest_error_rate) {
            return Err("attestation fault rate outside [0, 1]");
        }
        if self.attest_timeout_rate + self.attest_error_rate > 1.0 {
            return Err("attestation fault rates sum past 1");
        }
        if let Some(period) = self.psp_reset_period {
            if period == Nanos::ZERO {
                return Err("psp_reset_period must be positive");
            }
            if self.psp_reset_outage == Nanos::ZERO {
                return Err("psp_reset_outage must be positive when resets are on");
            }
        }
        if self.warm_crash_period == Some(Nanos::ZERO) {
            return Err("warm_crash_period must be positive");
        }
        if let Some(period) = self.host_outage_period {
            if period == Nanos::ZERO {
                return Err("host_outage_period must be positive");
            }
            if self.host_outage_length == Nanos::ZERO {
                return Err("host_outage_length must be positive when host outages are on");
            }
        }
        Ok(())
    }

    /// True if no knob can ever fire.
    pub fn is_none(&self) -> bool {
        self.psp_transient_rate == 0.0
            && self.psp_reset_period.is_none()
            && self.warm_crash_period.is_none()
            && self.attest_timeout_rate == 0.0
            && self.attest_error_rate == 0.0
            && self.host_outage_period.is_none()
    }
}

/// One PSP firmware-reset outage: `[start, end)` on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetWindow {
    /// Instant the firmware reset begins (in-flight state is lost).
    pub start: Nanos,
    /// Instant the PSP accepts commands again.
    pub end: Nanos,
}

impl ResetWindow {
    /// True if `at` falls inside the outage.
    pub fn contains(&self, at: Nanos) -> bool {
        self.start <= at && at < self.end
    }
}

// Domain separators for the stateless per-event draws. Arbitrary odd
// constants; all that matters is that they differ.
const DOM_TRANSIENT: u64 = 0x7E57_FA17_0001;
const DOM_PROGRESS: u64 = 0x7E57_FA17_0003;
const DOM_ATTEST: u64 = 0x7E57_FA17_0005;

// Stream separators for the pre-generated schedules.
const STREAM_RESETS: u64 = 0xFA17_5EED_0001;
const STREAM_CRASHES: u64 = 0xFA17_5EED_0002;
const STREAM_HOST_OUTAGES: u64 = 0xFA17_5EED_0003;

// Domain separator for deriving per-fault-domain (per-host) plan seeds.
const DOM_FAULT_DOMAIN: u64 = 0x7E57_FA17_0007;

/// splitmix64-style finalizer over `(seed, domain, token)`.
fn mix(seed: u64, domain: u64, token: u64) -> u64 {
    let mut z = seed
        .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(token.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the stateless hash over `(seed, domain, token)`.
///
/// Public so seeded-jitter code elsewhere (e.g. retry backoff) can share the
/// plan's statelessness property: the draw for one token is independent of
/// every other draw, so consulting it never perturbs a shared RNG stream.
pub fn unit_draw(seed: u64, domain: u64, token: u64) -> f64 {
    (mix(seed, domain, token) >> 11) as f64 / (1u64 << 53) as f64
}

/// Internal alias kept short for the plan's own draws.
fn unit(seed: u64, domain: u64, token: u64) -> f64 {
    unit_draw(seed, domain, token)
}

/// Non-overlapping `[start, end)` outage windows over `[0, horizon)`:
/// exponential gaps with the given mean, each gap drawn from the end of the
/// previous window so every outage is a distinct event.
fn outage_windows(seed: u64, period: Nanos, length: Nanos, horizon: Nanos) -> Vec<ResetWindow> {
    let mut rng = XorShift64::new(seed);
    let mut windows = Vec::new();
    let mut cursor = Nanos::ZERO;
    loop {
        let start = cursor + exponential_gap(period, &mut rng);
        if start >= horizon {
            break;
        }
        let end = start + length;
        windows.push(ResetWindow { start, end });
        cursor = end;
    }
    windows
}

/// If `at` falls inside one of the sorted, non-overlapping `windows`, the
/// instant that window ends. `partition_point` finds the first window ending
/// after `at`, which is the only candidate that can contain it.
fn window_end(windows: &[ResetWindow], at: Nanos) -> Option<Nanos> {
    let idx = windows.partition_point(|w| w.end <= at);
    match windows.get(idx) {
        Some(w) if w.contains(at) => Some(w.end),
        _ => None,
    }
}

/// Exponential gap with the given mean, floored at 1 ns so schedules advance.
fn exponential_gap(mean: Nanos, rng: &mut XorShift64) -> Nanos {
    let u = rng.next_f64();
    let gap = mean.scale_f64(-(1.0 - u).ln());
    if gap == Nanos::ZERO {
        Nanos::from_nanos(1)
    } else {
        gap
    }
}

/// A fully pre-computed, seed-deterministic fault schedule.
///
/// # Example
///
/// ```
/// use sevf_sim::fault::{FaultConfig, FaultPlan};
/// use sevf_sim::Nanos;
///
/// let plan = FaultPlan::generate(7, FaultConfig::storm(), Nanos::from_secs(30)).unwrap();
/// let again = FaultPlan::generate(7, FaultConfig::storm(), Nanos::from_secs(30)).unwrap();
/// assert_eq!(plan.resets(), again.resets());
/// assert_eq!(plan.psp_transient(42), again.psp_transient(42));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    horizon: Nanos,
    resets: Vec<ResetWindow>,
    warm_crashes: Vec<Nanos>,
    host_outages: Vec<ResetWindow>,
}

impl FaultPlan {
    /// Builds the plan: validates the config, then pre-generates the
    /// firmware-reset windows (exponential gaps, non-overlapping) and the
    /// warm-crash instants over `[0, horizon)`.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultConfig::validate`] error for an invalid config.
    pub fn generate(seed: u64, config: FaultConfig, horizon: Nanos) -> Result<Self, &'static str> {
        config.validate()?;

        let resets = match config.psp_reset_period {
            Some(period) => outage_windows(
                seed ^ STREAM_RESETS,
                period,
                config.psp_reset_outage,
                horizon,
            ),
            None => Vec::new(),
        };

        let mut warm_crashes = Vec::new();
        if let Some(period) = config.warm_crash_period {
            let mut rng = XorShift64::new(seed ^ STREAM_CRASHES);
            let mut cursor = Nanos::ZERO;
            loop {
                cursor += exponential_gap(period, &mut rng);
                if cursor >= horizon {
                    break;
                }
                warm_crashes.push(cursor);
            }
        }

        let host_outages = match config.host_outage_period {
            Some(period) => outage_windows(
                seed ^ STREAM_HOST_OUTAGES,
                period,
                config.host_outage_length,
                horizon,
            ),
            None => Vec::new(),
        };

        Ok(FaultPlan {
            seed,
            config,
            horizon,
            resets,
            warm_crashes,
            host_outages,
        })
    }

    /// Derives a decorrelated seed for fault domain `domain` (e.g. one host
    /// of a cluster) from a cluster-level seed. Distinct domains get
    /// independent schedules and per-event draws; the same `(seed, domain)`
    /// always maps to the same derived seed.
    pub fn domain_seed(seed: u64, domain: u64) -> u64 {
        mix(seed, DOM_FAULT_DOMAIN, domain)
    }

    /// [`FaultPlan::generate`] for one fault domain of a multi-domain system:
    /// the plan is generated from [`FaultPlan::domain_seed`]`(seed, domain)`,
    /// so each domain replays its own independent schedule while the whole
    /// ensemble stays a pure function of the cluster seed.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultConfig::validate`] error for an invalid config.
    pub fn generate_for_domain(
        seed: u64,
        domain: u64,
        config: FaultConfig,
        horizon: Nanos,
    ) -> Result<Self, &'static str> {
        Self::generate(Self::domain_seed(seed, domain), config, horizon)
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The config the plan was generated from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The horizon the timed schedules cover.
    pub fn horizon(&self) -> Nanos {
        self.horizon
    }

    /// The firmware-reset outage windows, sorted and non-overlapping.
    pub fn resets(&self) -> &[ResetWindow] {
        &self.resets
    }

    /// The warm-guest crash instants, sorted.
    pub fn warm_crashes(&self) -> &[Nanos] {
        &self.warm_crashes
    }

    /// The whole-host outage windows, sorted and non-overlapping.
    pub fn host_outages(&self) -> &[ResetWindow] {
        &self.host_outages
    }

    /// If `at` falls inside a reset outage, the instant the outage ends.
    pub fn in_outage(&self, at: Nanos) -> Option<Nanos> {
        window_end(&self.resets, at)
    }

    /// If `at` falls inside a whole-host outage, the instant the host is back.
    pub fn in_host_outage(&self, at: Nanos) -> Option<Nanos> {
        window_end(&self.host_outages, at)
    }

    /// How many firmware resets have *started* at or before `at`. Two probes
    /// in different epochs straddle at least one loss of PSP state.
    pub fn reset_epoch(&self, at: Nanos) -> usize {
        self.resets.partition_point(|w| w.start <= at)
    }

    /// Stateless Bernoulli draw: does PSP-using launch `token` fail
    /// transiently? Independent of every other token.
    pub fn psp_transient(&self, token: u64) -> bool {
        self.config.psp_transient_rate > 0.0
            && unit(self.seed, DOM_TRANSIENT, token) < self.config.psp_transient_rate
    }

    /// Fraction of the launch's work consumed before transient failure
    /// `token` strikes, uniform in `[0, 1)`. Deterministic per token.
    pub fn transient_progress(&self, token: u64) -> f64 {
        unit(self.seed, DOM_PROGRESS, token)
    }

    /// Stateless draw: does attestation round trip `token` misbehave, and
    /// how? The timeout and error rates partition the unit interval.
    pub fn attest_fault(&self, token: u64) -> Option<AttestFault> {
        let timeout = self.config.attest_timeout_rate;
        let error = self.config.attest_error_rate;
        if timeout == 0.0 && error == 0.0 {
            return None;
        }
        let u = unit(self.seed, DOM_ATTEST, token);
        if u < timeout {
            Some(AttestFault::Timeout)
        } else if u < timeout + error {
            Some(AttestFault::Error)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(seed, FaultConfig::storm(), Nanos::from_secs(30)).unwrap()
    }

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(storm_plan(7), storm_plan(7));
        assert_ne!(storm_plan(7).resets(), storm_plan(8).resets());
    }

    #[test]
    fn reset_windows_sorted_and_disjoint() {
        let plan = storm_plan(11);
        assert!(!plan.resets().is_empty(), "storm over 30 s must reset");
        for pair in plan.resets().windows(2) {
            assert!(pair[0].end <= pair[1].start, "{pair:?} overlap");
        }
        for w in plan.resets() {
            assert!(w.start < w.end);
            assert!(w.start < plan.horizon());
        }
    }

    #[test]
    fn outage_lookup_matches_windows() {
        let plan = storm_plan(13);
        let w = plan.resets()[0];
        assert_eq!(plan.in_outage(w.start), Some(w.end));
        assert_eq!(
            plan.in_outage(w.end.saturating_sub(Nanos::from_nanos(1))),
            Some(w.end)
        );
        assert_eq!(plan.in_outage(w.end), None);
        assert_eq!(plan.in_outage(Nanos::ZERO), None);
    }

    #[test]
    fn reset_epoch_counts_starts() {
        let plan = storm_plan(17);
        assert_eq!(plan.reset_epoch(Nanos::ZERO), 0);
        let w = plan.resets()[0];
        assert_eq!(plan.reset_epoch(w.start), 1);
        assert_eq!(plan.reset_epoch(plan.horizon()), plan.resets().len());
    }

    #[test]
    fn transient_rate_is_respected() {
        let mut cfg = FaultConfig::none();
        cfg.psp_transient_rate = 0.5;
        let plan = FaultPlan::generate(3, cfg, Nanos::from_secs(1)).unwrap();
        let hits = (0..4000u64).filter(|&t| plan.psp_transient(t)).count();
        let rate = hits as f64 / 4000.0;
        assert!((0.45..0.55).contains(&rate), "rate {rate}");
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::generate(5, FaultConfig::none(), Nanos::from_secs(30)).unwrap();
        assert!(plan.resets().is_empty());
        assert!(plan.warm_crashes().is_empty());
        for t in 0..1000 {
            assert!(!plan.psp_transient(t));
            assert!(plan.attest_fault(t).is_none());
        }
        assert!(plan.config().is_none());
    }

    #[test]
    fn attest_faults_partition_the_unit_interval() {
        let mut cfg = FaultConfig::none();
        cfg.attest_timeout_rate = 0.3;
        cfg.attest_error_rate = 0.3;
        let plan = FaultPlan::generate(9, cfg, Nanos::from_secs(1)).unwrap();
        let (mut timeouts, mut errors, mut clean) = (0, 0, 0);
        for t in 0..3000u64 {
            match plan.attest_fault(t) {
                Some(AttestFault::Timeout) => timeouts += 1,
                Some(AttestFault::Error) => errors += 1,
                None => clean += 1,
            }
        }
        for share in [timeouts, errors] {
            let rate = share as f64 / 3000.0;
            assert!((0.25..0.35).contains(&rate), "rate {rate}");
        }
        assert!(clean > 0);
    }

    #[test]
    fn draws_are_stateless() {
        let plan = storm_plan(21);
        let first = plan.psp_transient(100);
        // Probing other tokens in between must not change token 100's verdict.
        for t in 0..50 {
            let _ = plan.psp_transient(t);
            let _ = plan.attest_fault(t);
        }
        assert_eq!(plan.psp_transient(100), first);
        let p = plan.transient_progress(64);
        assert!((0.0..1.0).contains(&p));
        assert_eq!(plan.transient_progress(64), p);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = FaultConfig::none();
        cfg.psp_transient_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::none();
        cfg.attest_timeout_rate = 0.6;
        cfg.attest_error_rate = 0.6;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::none();
        cfg.psp_reset_period = Some(Nanos::from_secs(1));
        cfg.psp_reset_outage = Nanos::ZERO;
        assert!(cfg.validate().is_err());

        assert!(FaultConfig::none().validate().is_ok());
        assert!(FaultConfig::storm().validate().is_ok());
    }

    #[test]
    fn host_outage_windows_sorted_and_disjoint() {
        let mut cfg = FaultConfig::none();
        cfg.host_outage_period = Some(Nanos::from_secs(3));
        cfg.host_outage_length = Nanos::from_secs(1);
        let plan = FaultPlan::generate(19, cfg, Nanos::from_secs(60)).unwrap();
        assert!(!plan.host_outages().is_empty(), "60 s must see an outage");
        for pair in plan.host_outages().windows(2) {
            assert!(pair[0].end <= pair[1].start, "{pair:?} overlap");
        }
        let w = plan.host_outages()[0];
        assert_eq!(plan.in_host_outage(w.start), Some(w.end));
        assert_eq!(plan.in_host_outage(w.end), None);
        // Host outages ride their own stream: resets stay empty here and
        // the existing reset lookup is untouched by the new windows.
        assert!(plan.resets().is_empty());
        assert_eq!(plan.in_outage(w.start), None);
    }

    #[test]
    fn domain_seeds_decorrelate_hosts() {
        let mut cfg = FaultConfig::storm();
        cfg.host_outage_period = Some(Nanos::from_secs(5));
        cfg.host_outage_length = Nanos::from_secs(1);
        let horizon = Nanos::from_secs(30);
        let a = FaultPlan::generate_for_domain(7, 0, cfg.clone(), horizon).unwrap();
        let b = FaultPlan::generate_for_domain(7, 1, cfg.clone(), horizon).unwrap();
        let a2 = FaultPlan::generate_for_domain(7, 0, cfg, horizon).unwrap();
        assert_eq!(a, a2, "same (seed, domain) must replay");
        assert_ne!(a.resets(), b.resets(), "domains must not share schedules");
        assert_ne!(a.seed(), b.seed());
        assert_eq!(a.seed(), FaultPlan::domain_seed(7, 0));
    }

    #[test]
    fn host_outage_config_is_validated() {
        let mut cfg = FaultConfig::none();
        cfg.host_outage_period = Some(Nanos::ZERO);
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::none();
        cfg.host_outage_period = Some(Nanos::from_secs(1));
        cfg.host_outage_length = Nanos::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::none();
        cfg.host_outage_period = Some(Nanos::from_secs(1));
        cfg.host_outage_length = Nanos::from_millis(200);
        assert!(cfg.validate().is_ok());
        assert!(!cfg.is_none());
    }

    #[test]
    fn fault_kind_names_are_distinct() {
        let kinds = [
            FaultKind::PspTransient,
            FaultKind::PspReset,
            FaultKind::WarmCrash,
            FaultKind::AttestTimeout,
            FaultKind::AttestError,
            FaultKind::HostOutage,
            FaultKind::NetPartition,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
