//! Deterministic fault injection on the virtual clock.
//!
//! Real SEV fleets see PSP firmware resets, transient launch-command
//! failures, warm guests that die, and attestation round trips that hang or
//! error. This module pre-computes all of that from a seed so a chaos run is
//! exactly replayable: a [`FaultPlan`] is a pure function of
//! `(seed, config, horizon)` and every per-event draw is *stateless* — a
//! splitmix64-style hash of `(seed, domain, token)` — so consulting the plan
//! never perturbs any other random stream. A fleet simulation driven by the
//! same `(catalog, config, fault_plan)` triple therefore produces
//! byte-identical output on every run.
//!
//! Two kinds of schedule coexist:
//!
//! * **Timed faults** — PSP firmware-reset outage windows and warm-guest
//!   crash instants are generated up front over a caller-supplied horizon
//!   (exponential gaps, non-overlapping windows) and exposed as sorted lists
//!   the caller turns into simulation events.
//! * **Per-event faults** — PSP command transients and attestation
//!   timeouts/errors are Bernoulli draws keyed by a caller-chosen token
//!   (e.g. the launch sequence number), so the verdict for event *n* is
//!   independent of how many other events were probed in between.

use crate::rng::XorShift64;
use crate::time::Nanos;

/// The kinds of fault the plan can inject (counter and display taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A single PSP launch command failed transiently; retry may succeed.
    PspTransient,
    /// Whole-PSP firmware reset: in-flight launch state is lost and shared-key
    /// templates are invalidated (§6.2 trust caveat exercised under failure).
    PspReset,
    /// A keep-alive warm guest crashed and its pool slot is gone.
    WarmCrash,
    /// An attestation round trip hung until the client-side timeout.
    AttestTimeout,
    /// An attestation round trip returned an error immediately.
    AttestError,
}

impl FaultKind {
    /// Display name for tables and counters.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PspTransient => "psp-transient",
            FaultKind::PspReset => "psp-reset",
            FaultKind::WarmCrash => "warm-crash",
            FaultKind::AttestTimeout => "attest-timeout",
            FaultKind::AttestError => "attest-error",
        }
    }
}

/// How an attestation round trip misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestFault {
    /// No answer until the client-side timeout elapses (costs the timeout).
    Timeout,
    /// Immediate error from the attestation service (costs one RTT).
    Error,
}

/// Knobs of the fault model. All rates are per-event probabilities in
/// `[0, 1]`; all periods are *mean* gaps on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that one PSP-using launch fails transiently mid-command.
    pub psp_transient_rate: f64,
    /// Mean gap between PSP firmware resets (`None` = never).
    pub psp_reset_period: Option<Nanos>,
    /// Outage length per reset: the PSP accepts no commands inside the
    /// window and everything in flight on it is lost.
    pub psp_reset_outage: Nanos,
    /// Mean gap between warm-guest crashes (`None` = never).
    pub warm_crash_period: Option<Nanos>,
    /// Probability an attestation round trip hangs until timeout.
    pub attest_timeout_rate: f64,
    /// Probability an attestation round trip errors immediately.
    pub attest_error_rate: f64,
    /// Client-side attestation timeout (how long a hang costs).
    pub attest_timeout: Nanos,
}

impl FaultConfig {
    /// A config that injects nothing (useful as a base for overrides).
    pub fn none() -> Self {
        FaultConfig {
            psp_transient_rate: 0.0,
            psp_reset_period: None,
            psp_reset_outage: Nanos::ZERO,
            warm_crash_period: None,
            attest_timeout_rate: 0.0,
            attest_error_rate: 0.0,
            attest_timeout: Nanos::from_secs(1),
        }
    }

    /// The chaos-storm preset: frequent firmware resets with a long outage,
    /// a noticeable transient rate, occasional warm crashes, and flaky
    /// attestation. Tuned so a naive (no-retry) fleet visibly collapses on a
    /// ~30 s virtual run while a resilient one keeps serving.
    pub fn storm() -> Self {
        FaultConfig {
            psp_transient_rate: 0.05,
            psp_reset_period: Some(Nanos::from_secs(2)),
            psp_reset_outage: Nanos::from_millis(500),
            warm_crash_period: Some(Nanos::from_millis(400)),
            attest_timeout_rate: 0.02,
            attest_error_rate: 0.03,
            attest_timeout: Nanos::from_secs(1),
        }
    }

    /// Checks that every knob is in range.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first invalid knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        let rate_ok = |r: f64| r.is_finite() && (0.0..=1.0).contains(&r);
        if !rate_ok(self.psp_transient_rate) {
            return Err("psp_transient_rate outside [0, 1]");
        }
        if !rate_ok(self.attest_timeout_rate) || !rate_ok(self.attest_error_rate) {
            return Err("attestation fault rate outside [0, 1]");
        }
        if self.attest_timeout_rate + self.attest_error_rate > 1.0 {
            return Err("attestation fault rates sum past 1");
        }
        if let Some(period) = self.psp_reset_period {
            if period == Nanos::ZERO {
                return Err("psp_reset_period must be positive");
            }
            if self.psp_reset_outage == Nanos::ZERO {
                return Err("psp_reset_outage must be positive when resets are on");
            }
        }
        if self.warm_crash_period == Some(Nanos::ZERO) {
            return Err("warm_crash_period must be positive");
        }
        Ok(())
    }

    /// True if no knob can ever fire.
    pub fn is_none(&self) -> bool {
        self.psp_transient_rate == 0.0
            && self.psp_reset_period.is_none()
            && self.warm_crash_period.is_none()
            && self.attest_timeout_rate == 0.0
            && self.attest_error_rate == 0.0
    }
}

/// One PSP firmware-reset outage: `[start, end)` on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetWindow {
    /// Instant the firmware reset begins (in-flight state is lost).
    pub start: Nanos,
    /// Instant the PSP accepts commands again.
    pub end: Nanos,
}

impl ResetWindow {
    /// True if `at` falls inside the outage.
    pub fn contains(&self, at: Nanos) -> bool {
        self.start <= at && at < self.end
    }
}

// Domain separators for the stateless per-event draws. Arbitrary odd
// constants; all that matters is that they differ.
const DOM_TRANSIENT: u64 = 0x7E57_FA17_0001;
const DOM_PROGRESS: u64 = 0x7E57_FA17_0003;
const DOM_ATTEST: u64 = 0x7E57_FA17_0005;

// Stream separators for the pre-generated schedules.
const STREAM_RESETS: u64 = 0xFA17_5EED_0001;
const STREAM_CRASHES: u64 = 0xFA17_5EED_0002;

/// splitmix64-style finalizer over `(seed, domain, token)`.
fn mix(seed: u64, domain: u64, token: u64) -> u64 {
    let mut z = seed
        .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(token.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the stateless hash over `(seed, domain, token)`.
///
/// Public so seeded-jitter code elsewhere (e.g. retry backoff) can share the
/// plan's statelessness property: the draw for one token is independent of
/// every other draw, so consulting it never perturbs a shared RNG stream.
pub fn unit_draw(seed: u64, domain: u64, token: u64) -> f64 {
    (mix(seed, domain, token) >> 11) as f64 / (1u64 << 53) as f64
}

/// Internal alias kept short for the plan's own draws.
fn unit(seed: u64, domain: u64, token: u64) -> f64 {
    unit_draw(seed, domain, token)
}

/// Exponential gap with the given mean, floored at 1 ns so schedules advance.
fn exponential_gap(mean: Nanos, rng: &mut XorShift64) -> Nanos {
    let u = rng.next_f64();
    let gap = mean.scale_f64(-(1.0 - u).ln());
    if gap == Nanos::ZERO {
        Nanos::from_nanos(1)
    } else {
        gap
    }
}

/// A fully pre-computed, seed-deterministic fault schedule.
///
/// # Example
///
/// ```
/// use sevf_sim::fault::{FaultConfig, FaultPlan};
/// use sevf_sim::Nanos;
///
/// let plan = FaultPlan::generate(7, FaultConfig::storm(), Nanos::from_secs(30)).unwrap();
/// let again = FaultPlan::generate(7, FaultConfig::storm(), Nanos::from_secs(30)).unwrap();
/// assert_eq!(plan.resets(), again.resets());
/// assert_eq!(plan.psp_transient(42), again.psp_transient(42));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    horizon: Nanos,
    resets: Vec<ResetWindow>,
    warm_crashes: Vec<Nanos>,
}

impl FaultPlan {
    /// Builds the plan: validates the config, then pre-generates the
    /// firmware-reset windows (exponential gaps, non-overlapping) and the
    /// warm-crash instants over `[0, horizon)`.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultConfig::validate`] error for an invalid config.
    pub fn generate(seed: u64, config: FaultConfig, horizon: Nanos) -> Result<Self, &'static str> {
        config.validate()?;

        let mut resets = Vec::new();
        if let Some(period) = config.psp_reset_period {
            let mut rng = XorShift64::new(seed ^ STREAM_RESETS);
            let mut cursor = Nanos::ZERO;
            loop {
                let start = cursor + exponential_gap(period, &mut rng);
                if start >= horizon {
                    break;
                }
                let end = start + config.psp_reset_outage;
                resets.push(ResetWindow { start, end });
                // Next gap is drawn from the end of the outage, so windows
                // never overlap and each reset is a distinct event.
                cursor = end;
            }
        }

        let mut warm_crashes = Vec::new();
        if let Some(period) = config.warm_crash_period {
            let mut rng = XorShift64::new(seed ^ STREAM_CRASHES);
            let mut cursor = Nanos::ZERO;
            loop {
                cursor += exponential_gap(period, &mut rng);
                if cursor >= horizon {
                    break;
                }
                warm_crashes.push(cursor);
            }
        }

        Ok(FaultPlan {
            seed,
            config,
            horizon,
            resets,
            warm_crashes,
        })
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The config the plan was generated from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The horizon the timed schedules cover.
    pub fn horizon(&self) -> Nanos {
        self.horizon
    }

    /// The firmware-reset outage windows, sorted and non-overlapping.
    pub fn resets(&self) -> &[ResetWindow] {
        &self.resets
    }

    /// The warm-guest crash instants, sorted.
    pub fn warm_crashes(&self) -> &[Nanos] {
        &self.warm_crashes
    }

    /// If `at` falls inside a reset outage, the instant the outage ends.
    pub fn in_outage(&self, at: Nanos) -> Option<Nanos> {
        // Windows are sorted; partition_point finds the first window ending
        // after `at`, which is the only candidate that can contain it.
        let idx = self.resets.partition_point(|w| w.end <= at);
        match self.resets.get(idx) {
            Some(w) if w.contains(at) => Some(w.end),
            _ => None,
        }
    }

    /// How many firmware resets have *started* at or before `at`. Two probes
    /// in different epochs straddle at least one loss of PSP state.
    pub fn reset_epoch(&self, at: Nanos) -> usize {
        self.resets.partition_point(|w| w.start <= at)
    }

    /// Stateless Bernoulli draw: does PSP-using launch `token` fail
    /// transiently? Independent of every other token.
    pub fn psp_transient(&self, token: u64) -> bool {
        self.config.psp_transient_rate > 0.0
            && unit(self.seed, DOM_TRANSIENT, token) < self.config.psp_transient_rate
    }

    /// Fraction of the launch's work consumed before transient failure
    /// `token` strikes, uniform in `[0, 1)`. Deterministic per token.
    pub fn transient_progress(&self, token: u64) -> f64 {
        unit(self.seed, DOM_PROGRESS, token)
    }

    /// Stateless draw: does attestation round trip `token` misbehave, and
    /// how? The timeout and error rates partition the unit interval.
    pub fn attest_fault(&self, token: u64) -> Option<AttestFault> {
        let timeout = self.config.attest_timeout_rate;
        let error = self.config.attest_error_rate;
        if timeout == 0.0 && error == 0.0 {
            return None;
        }
        let u = unit(self.seed, DOM_ATTEST, token);
        if u < timeout {
            Some(AttestFault::Timeout)
        } else if u < timeout + error {
            Some(AttestFault::Error)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(seed, FaultConfig::storm(), Nanos::from_secs(30)).unwrap()
    }

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(storm_plan(7), storm_plan(7));
        assert_ne!(storm_plan(7).resets(), storm_plan(8).resets());
    }

    #[test]
    fn reset_windows_sorted_and_disjoint() {
        let plan = storm_plan(11);
        assert!(!plan.resets().is_empty(), "storm over 30 s must reset");
        for pair in plan.resets().windows(2) {
            assert!(pair[0].end <= pair[1].start, "{pair:?} overlap");
        }
        for w in plan.resets() {
            assert!(w.start < w.end);
            assert!(w.start < plan.horizon());
        }
    }

    #[test]
    fn outage_lookup_matches_windows() {
        let plan = storm_plan(13);
        let w = plan.resets()[0];
        assert_eq!(plan.in_outage(w.start), Some(w.end));
        assert_eq!(
            plan.in_outage(w.end.saturating_sub(Nanos::from_nanos(1))),
            Some(w.end)
        );
        assert_eq!(plan.in_outage(w.end), None);
        assert_eq!(plan.in_outage(Nanos::ZERO), None);
    }

    #[test]
    fn reset_epoch_counts_starts() {
        let plan = storm_plan(17);
        assert_eq!(plan.reset_epoch(Nanos::ZERO), 0);
        let w = plan.resets()[0];
        assert_eq!(plan.reset_epoch(w.start), 1);
        assert_eq!(plan.reset_epoch(plan.horizon()), plan.resets().len());
    }

    #[test]
    fn transient_rate_is_respected() {
        let mut cfg = FaultConfig::none();
        cfg.psp_transient_rate = 0.5;
        let plan = FaultPlan::generate(3, cfg, Nanos::from_secs(1)).unwrap();
        let hits = (0..4000u64).filter(|&t| plan.psp_transient(t)).count();
        let rate = hits as f64 / 4000.0;
        assert!((0.45..0.55).contains(&rate), "rate {rate}");
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::generate(5, FaultConfig::none(), Nanos::from_secs(30)).unwrap();
        assert!(plan.resets().is_empty());
        assert!(plan.warm_crashes().is_empty());
        for t in 0..1000 {
            assert!(!plan.psp_transient(t));
            assert!(plan.attest_fault(t).is_none());
        }
        assert!(plan.config().is_none());
    }

    #[test]
    fn attest_faults_partition_the_unit_interval() {
        let mut cfg = FaultConfig::none();
        cfg.attest_timeout_rate = 0.3;
        cfg.attest_error_rate = 0.3;
        let plan = FaultPlan::generate(9, cfg, Nanos::from_secs(1)).unwrap();
        let (mut timeouts, mut errors, mut clean) = (0, 0, 0);
        for t in 0..3000u64 {
            match plan.attest_fault(t) {
                Some(AttestFault::Timeout) => timeouts += 1,
                Some(AttestFault::Error) => errors += 1,
                None => clean += 1,
            }
        }
        for share in [timeouts, errors] {
            let rate = share as f64 / 3000.0;
            assert!((0.25..0.35).contains(&rate), "rate {rate}");
        }
        assert!(clean > 0);
    }

    #[test]
    fn draws_are_stateless() {
        let plan = storm_plan(21);
        let first = plan.psp_transient(100);
        // Probing other tokens in between must not change token 100's verdict.
        for t in 0..50 {
            let _ = plan.psp_transient(t);
            let _ = plan.attest_fault(t);
        }
        assert_eq!(plan.psp_transient(100), first);
        let p = plan.transient_progress(64);
        assert!((0.0..1.0).contains(&p));
        assert_eq!(plan.transient_progress(64), p);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = FaultConfig::none();
        cfg.psp_transient_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::none();
        cfg.attest_timeout_rate = 0.6;
        cfg.attest_error_rate = 0.6;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::none();
        cfg.psp_reset_period = Some(Nanos::from_secs(1));
        cfg.psp_reset_outage = Nanos::ZERO;
        assert!(cfg.validate().is_err());

        assert!(FaultConfig::none().validate().is_ok());
        assert!(FaultConfig::storm().validate().is_ok());
    }

    #[test]
    fn fault_kind_names_are_distinct() {
        let kinds = [
            FaultKind::PspTransient,
            FaultKind::PspReset,
            FaultKind::WarmCrash,
            FaultKind::AttestTimeout,
            FaultKind::AttestError,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
