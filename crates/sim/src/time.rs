//! The virtual time unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A duration or instant on the virtual clock, in nanoseconds.
///
/// All simulated costs are integral nanoseconds so results are exactly
/// reproducible across platforms; floating point only appears at the
/// reporting boundary ([`Nanos::as_millis_f64`]).
///
/// # Example
///
/// ```
/// use sevf_sim::Nanos;
///
/// let t = Nanos::from_millis(40) + Nanos::from_micros(250);
/// assert_eq!(t.as_nanos(), 40_250_000);
/// assert_eq!(format!("{t}"), "40.250ms");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in milliseconds (floating point) — the unit the paper reports.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub fn scale(self, factor: u64) -> Nanos {
        Nanos(self.0 * factor)
    }

    /// Multiplies the duration by a floating factor (rounded to nearest ns).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scale_f64(self, factor: f64) -> Nanos {
        assert!(factor.is_finite() && factor >= 0.0, "bad scale factor");
        Nanos((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("Nanos subtraction underflow"),
        )
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1000));
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1000));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(12)), "12.000µs");
        assert_eq!(format!("{}", Nanos::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_and_scale() {
        let parts = [Nanos::from_millis(1), Nanos::from_millis(2)];
        let total: Nanos = parts.iter().copied().sum();
        assert_eq!(total, Nanos::from_millis(3));
        assert_eq!(total.scale(2), Nanos::from_millis(6));
        assert_eq!(total.scale_f64(0.5), Nanos::from_micros(1500));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Nanos::from_nanos(1) - Nanos::from_nanos(2);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Nanos::from_nanos(1).saturating_sub(Nanos::from_nanos(5)),
            Nanos::ZERO
        );
    }
}
