//! A tiny deterministic PRNG and the boot-time jitter model.
//!
//! The paper's Fig. 9 CDF and the error bars of Fig. 11 need run-to-run
//! variance. We model it as multiplicative noise on each phase duration,
//! drawn from an approximately normal distribution (Irwin–Hall sum of 12
//! uniforms) with a small σ, using an xorshift64* generator so every
//! experiment is exactly reproducible from its seed.

/// xorshift64* pseudo-random generator.
///
/// # Example
///
/// ```
/// use sevf_sim::rng::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is remapped to a fixed odd value).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Approximately standard-normal value (Irwin–Hall with n = 12).
    pub fn next_gaussian(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        sum - 6.0
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Multiplicative jitter for phase durations.
///
/// Each sample multiplies a nominal duration by `max(ε, 1 + σ·Z)`; σ defaults
/// to 3%, which reproduces the tight error bars of the paper's Fig. 11 and
/// the spread of its Fig. 9 CDFs.
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: XorShift64,
    sigma: f64,
}

impl Jitter {
    /// Creates a jitter source with the default σ = 0.03.
    pub fn new(seed: u64) -> Self {
        Jitter {
            rng: XorShift64::new(seed),
            sigma: 0.03,
        }
    }

    /// Creates a jitter source with an explicit σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_sigma(seed: u64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0);
        Jitter {
            rng: XorShift64::new(seed),
            sigma,
        }
    }

    /// A jitter source that applies no noise (σ = 0), for deterministic
    /// single-run breakdowns.
    pub fn disabled() -> Self {
        Jitter::with_sigma(1, 0.0)
    }

    /// Samples one multiplicative factor.
    pub fn factor(&mut self) -> f64 {
        (1.0 + self.sigma * self.rng.next_gaussian()).max(0.01)
    }

    /// Applies jitter to a duration.
    pub fn apply(&mut self, nominal: crate::Nanos) -> crate::Nanos {
        nominal.scale_f64(self.factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nanos;

    #[test]
    fn deterministic_sequences() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = XorShift64::new(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = XorShift64::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn jitter_stays_near_one() {
        let mut j = Jitter::new(9);
        for _ in 0..1000 {
            let f = j.factor();
            assert!(f > 0.7 && f < 1.3, "factor {f}");
        }
    }

    #[test]
    fn disabled_jitter_is_identity() {
        let mut j = Jitter::disabled();
        let t = Nanos::from_millis(40);
        assert_eq!(j.apply(t), t);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = XorShift64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
