//! An indexed calendar (bucket) queue for discrete-event scheduling.
//!
//! The DES engine pops events in `(time, seq)` order, where `seq` is a
//! monotone push counter — a total order, since `seq` is unique. A binary
//! heap gives that in O(log n) per operation with a comparison-heavy inner
//! loop; at "millions of users" scale the pending-event set holds every
//! future arrival of the run, and the heap becomes the simulator's single
//! hottest data structure.
//!
//! This queue exploits what a heap cannot: event times are *nanoseconds on
//! a forward-moving clock*. Events land in fixed-width time buckets
//! (`2^20` ns ≈ 1.05 ms wide); a push into the active window is one `Vec`
//! push, O(1). Only the bucket currently being drained is kept sorted —
//! sorted descending once when the cursor reaches it and drained from the
//! tail, so same-bucket pushes (which fire at or just after the drain
//! point) binary-insert near the tail with a short memmove. Events beyond
//! the window
//! (far-future arrivals) overflow into a small binary heap and migrate
//! into the calendar in bulk whenever the window empties and re-bases, so
//! each event pays heap costs at most once, and most pay none.
//!
//! Determinism is load-bearing: pop order is *exactly* the `(time, seq)`
//! order the heap-based reference engine produces, which is what lets the
//! byte-diff replay gates in ci.sh hold across the engine swap (see
//! `tests/engine_equivalence.rs` for the property test).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// log2 of the bucket width in nanoseconds (2^20 ns ≈ 1.05 ms).
const BUCKET_SHIFT: u32 = 20;
/// Buckets per window (2^13 buckets ≈ 8.6 s of virtual time).
const WINDOW: usize = 1 << 13;

/// One scheduled event. `seq` is unique, so `(time, seq)` totally orders
/// events; `payload` is opaque to the queue (the engine packs job + kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalEvent {
    /// Virtual instant the event fires.
    pub time: Nanos,
    /// Monotone push sequence number (tie-break; unique).
    pub seq: u64,
    /// Caller payload (job index, event kind, ...).
    pub payload: u64,
}

impl CalEvent {
    #[inline]
    fn key(&self) -> (Nanos, u64) {
        (self.time, self.seq)
    }
}

impl PartialOrd for CalEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CalEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The calendar queue. See the module docs for the design.
///
/// # Example
///
/// ```
/// use sevf_sim::calendar::{CalEvent, CalendarQueue};
/// use sevf_sim::Nanos;
///
/// let mut q = CalendarQueue::new();
/// q.push(CalEvent { time: Nanos::from_millis(5), seq: 0, payload: 1 });
/// q.push(CalEvent { time: Nanos::from_millis(2), seq: 1, payload: 2 });
/// assert_eq!(q.pop().unwrap().payload, 2);
/// assert_eq!(q.pop().unwrap().payload, 1);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct CalendarQueue {
    /// The active window: `buckets[i]` holds events in bucket `base + i`.
    buckets: Vec<Vec<CalEvent>>,
    /// Absolute bucket index of `buckets[0]`.
    base: u64,
    /// First possibly non-empty bucket offset within the window.
    cursor: usize,
    /// Whether `buckets[cursor]` is sorted descending by `(time, seq)`.
    front_prepared: bool,
    /// Events in the calendar window.
    in_window: usize,
    /// Events past the window, ordered by `(time, seq)`.
    overflow: BinaryHeap<Reverse<CalEvent>>,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// Creates an empty queue with the window based at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: vec![Vec::new(); WINDOW],
            base: 0,
            cursor: 0,
            front_prepared: false,
            in_window: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Total pending events.
    pub fn len(&self) -> usize {
        self.in_window + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn bucket_of(time: Nanos) -> u64 {
        time.as_nanos() >> BUCKET_SHIFT
    }

    /// Schedules an event. Events must not be scheduled before the last
    /// popped event's time (the clock only moves forward); pushing earlier
    /// within the *current* bucket is fine and keeps exact order.
    pub fn push(&mut self, ev: CalEvent) {
        let bucket = Self::bucket_of(ev.time);
        // Behind the window base can only happen before the first pop of a
        // fresh window (base starts at 0 / rebases onto the earliest event);
        // clamp into the front bucket, where exact (time, seq) order is
        // restored by the sort/insert path.
        let rel = bucket.saturating_sub(self.base) as usize;
        if rel >= WINDOW {
            self.overflow.push(Reverse(ev));
            return;
        }
        let rel = rel.max(self.cursor);
        if rel == self.cursor && self.front_prepared {
            // The front bucket is mid-drain and sorted descending: insert at
            // the exact position so pop order stays (time, seq). Mid-drain
            // pushes fire at or just after the drain point — segment
            // durations are usually far shorter than a bucket — so the
            // position sits near the tail and the memmove stays short.
            let slot = &mut self.buckets[rel];
            let pos = slot.partition_point(|e| e.key() > ev.key());
            slot.insert(pos, ev);
        } else {
            self.buckets[rel].push(ev);
        }
        self.in_window += 1;
    }

    /// Pops the earliest event by `(time, seq)`.
    pub fn pop(&mut self) -> Option<CalEvent> {
        if self.in_window == 0 && !self.rebase() {
            return None;
        }
        loop {
            let slot = &mut self.buckets[self.cursor];
            if slot.is_empty() {
                self.cursor += 1;
                self.front_prepared = false;
                if self.cursor == WINDOW {
                    // Window fully drained; pull the overflow in.
                    if !self.rebase() {
                        return None;
                    }
                }
                continue;
            }
            if !self.front_prepared {
                // First touch of this bucket: sort descending once, then
                // drain from the tail in O(1) per pop.
                slot.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.front_prepared = true;
            }
            let ev = slot.pop().expect("non-empty front bucket");
            self.in_window -= 1;
            return Some(ev);
        }
    }

    /// Re-bases the (empty) window onto the earliest overflow event and
    /// migrates every overflow event that now fits. Returns false when the
    /// queue is exhausted.
    fn rebase(&mut self) -> bool {
        debug_assert_eq!(self.in_window, 0);
        let Some(Reverse(first)) = self.overflow.peek().copied() else {
            return false;
        };
        self.base = Self::bucket_of(first.time);
        self.cursor = 0;
        self.front_prepared = false;
        while let Some(Reverse(ev)) = self.overflow.peek().copied() {
            let rel = Self::bucket_of(ev.time) - self.base;
            if rel as usize >= WINDOW {
                break;
            }
            self.overflow.pop();
            self.buckets[rel as usize].push(ev);
            self.in_window += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64, seq: u64) -> CalEvent {
        CalEvent {
            time: Nanos::from_micros(us),
            seq,
            payload: seq,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(ev(500, 0));
        q.push(ev(100, 1));
        q.push(ev(100, 2));
        q.push(ev(300, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn same_bucket_push_mid_drain_keeps_order() {
        let mut q = CalendarQueue::new();
        // All in one 1.05 ms bucket.
        q.push(ev(10, 0));
        q.push(ev(30, 1));
        assert_eq!(q.pop().unwrap().seq, 0);
        // Push between the drained head and the pending tail.
        q.push(ev(20, 2));
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 1);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = CalendarQueue::new();
        // ~86 s apart: crosses many windows.
        for i in 0..50u64 {
            q.push(CalEvent {
                time: Nanos::from_secs(i * 86),
                seq: i,
                payload: i,
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<CalEvent>> = BinaryHeap::new();
        let mut rng = crate::rng::XorShift64::new(7);
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..5_000 {
            // Push 0-3 events at now + random offset (up to ~100 s).
            for _ in 0..rng.next_below(4) {
                let t = now + rng.next_below(100_000_000_000);
                let e = CalEvent {
                    time: Nanos::from_nanos(t),
                    seq,
                    payload: seq,
                };
                seq += 1;
                q.push(e);
                heap.push(Reverse(e));
            }
            if rng.next_below(2) == 0 {
                let a = q.pop();
                let b = heap.pop().map(|Reverse(e)| e);
                assert_eq!(a, b);
                if let Some(e) = a {
                    now = e.time.as_nanos();
                }
            }
        }
        loop {
            let a = q.pop();
            let b = heap.pop().map(|Reverse(e)| e);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn len_tracks_both_window_and_overflow() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        q.push(ev(1, 0));
        q.push(CalEvent {
            time: Nanos::from_secs(1000),
            seq: 1,
            payload: 1,
        });
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
