//! Boot timelines: phase spans and instrumentation events.
//!
//! §6.1 of the paper describes its measurement methodology: a debug-port
//! device at I/O port 0x80 records timestamped writes from the guest, and —
//! before #VC handlers are installed in an SEV-ES/SNP guest — magic values
//! written to the GHCB MSR are interpreted as timing events. [`Timeline`]
//! reproduces exactly that: boot code emits [`EventChannel`]-tagged marks,
//! and phases accumulate into [`Span`]s that the figures later group by
//! [`PhaseKind`].

use std::fmt;

use crate::time::Nanos;

/// The boot-phase buckets the paper's figures group time into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhaseKind {
    /// Time in the VMM before entering the guest (Firecracker/QEMU bars in
    /// Figs. 10/11) excluding pre-encryption.
    VmmSetup,
    /// PSP launch sequence: LAUNCH_START / UPDATE_DATA / UPDATE_VMSA /
    /// FINISH (the "Pre-encryption" column of Fig. 10).
    PreEncryption,
    /// OVMF SEC phase (Fig. 3).
    OvmfSec,
    /// OVMF PEI phase (Fig. 3).
    OvmfPei,
    /// OVMF DXE phase (Fig. 3).
    OvmfDxe,
    /// OVMF BDS phase (Fig. 3).
    OvmfBds,
    /// The boot verifier: pvalidate, page tables, measured direct boot
    /// (Fig. 11 "Boot Verification"; Fig. 3 "Boot Verifier").
    BootVerification,
    /// The bzImage bootstrap loader decompressing/loading the vmlinux
    /// (Fig. 11 "Bootstrap Loader").
    BootstrapLoader,
    /// Guest kernel from entry point to `init` (Fig. 11 "Linux Boot").
    LinuxBoot,
    /// Remote attestation (included in Fig. 9, excluded from Fig. 11).
    Attestation,
}

impl PhaseKind {
    /// Stable label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::VmmSetup => "VMM",
            PhaseKind::PreEncryption => "Pre-encryption",
            PhaseKind::OvmfSec => "OVMF SEC",
            PhaseKind::OvmfPei => "OVMF PEI",
            PhaseKind::OvmfDxe => "OVMF DXE",
            PhaseKind::OvmfBds => "OVMF BDS",
            PhaseKind::BootVerification => "Boot Verification",
            PhaseKind::BootstrapLoader => "Bootstrap Loader",
            PhaseKind::LinuxBoot => "Linux Boot",
            PhaseKind::Attestation => "Attestation",
        }
    }

    /// True for the phases that count as "boot" in the paper (attestation is
    /// reported separately; §6.1).
    pub fn counts_as_boot(self) -> bool {
        self != PhaseKind::Attestation
    }
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a timing event reached the VMM (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventChannel {
    /// An `outb` to the debug port (0x80); requires #VC handling under SNP.
    DebugPort,
    /// A magic value written to the GHCB MSR — always intercepted, usable
    /// before #VC handlers are installed.
    GhcbMsr,
    /// Logged directly by the VMM process.
    VmmLog,
}

/// The class of host resource a span occupies while it runs.
///
/// The concurrency experiments (Fig. 12) and the fleet control plane replay
/// timelines through the DES engine, where PSP-mediated work serializes on a
/// single slot while CPU work spreads over the core pool and network waits
/// overlap freely. Carrying the class *on the span* — set at the call site
/// that knows what the work is — means the replay can never silently
/// misclassify a span because someone reworded its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResourceClass {
    /// Runs on a host core (the default for boot work).
    #[default]
    HostCpu,
    /// Serializes on the Platform Security Processor (SEV launch commands,
    /// RMP initialization, report generation).
    Psp,
    /// A network/remote wait that overlaps freely across VMs.
    Network,
}

impl ResourceClass {
    /// Stable label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ResourceClass::HostCpu => "cpu",
            ResourceClass::Psp => "psp",
            ResourceClass::Network => "network",
        }
    }
}

/// One contiguous stretch of work attributed to a phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase bucket for figures.
    pub phase: PhaseKind,
    /// Human-readable description of the work.
    pub label: String,
    /// Start instant on the virtual clock.
    pub start: Nanos,
    /// Duration of the work.
    pub duration: Nanos,
    /// Host resource the work occupies (defaults to [`ResourceClass::HostCpu`]).
    pub class: ResourceClass,
}

impl Span {
    /// Instant at which the span ends.
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }
}

/// A timestamped instrumentation mark.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the mark was recorded.
    pub at: Nanos,
    /// The channel it travelled through.
    pub channel: EventChannel,
    /// The mark's tag (the paper uses magic byte values; we keep strings).
    pub tag: String,
}

/// An accumulating per-boot timeline with a virtual-clock cursor.
///
/// # Example
///
/// ```
/// use sevf_sim::{Nanos, PhaseKind, Timeline};
///
/// let mut tl = Timeline::new();
/// tl.push(PhaseKind::VmmSetup, "spawn", Nanos::from_millis(5));
/// tl.push(PhaseKind::LinuxBoot, "kernel", Nanos::from_millis(30));
/// assert_eq!(tl.total(), Nanos::from_millis(35));
/// assert_eq!(tl.phase_total(PhaseKind::LinuxBoot), Nanos::from_millis(30));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    events: Vec<Event>,
    cursor: Nanos,
}

impl Timeline {
    /// Creates an empty timeline at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current position of the virtual clock.
    pub fn now(&self) -> Nanos {
        self.cursor
    }

    /// Appends a host-CPU span of `duration` starting at the cursor and
    /// advances it.
    pub fn push(&mut self, phase: PhaseKind, label: impl Into<String>, duration: Nanos) {
        self.push_on(phase, label, ResourceClass::HostCpu, duration);
    }

    /// Appends a span tagged with the resource class it occupies.
    pub fn push_on(
        &mut self,
        phase: PhaseKind,
        label: impl Into<String>,
        class: ResourceClass,
        duration: Nanos,
    ) {
        self.spans.push(Span {
            phase,
            label: label.into(),
            start: self.cursor,
            duration,
            class,
        });
        self.cursor += duration;
    }

    /// Records an instrumentation mark at the current cursor.
    pub fn mark(&mut self, channel: EventChannel, tag: impl Into<String>) {
        self.events.push(Event {
            at: self.cursor,
            channel,
            tag: tag.into(),
        });
    }

    /// All spans in order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All instrumentation events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total virtual time elapsed.
    pub fn total(&self) -> Nanos {
        self.cursor
    }

    /// Total time excluding attestation (the paper's "boot time", §6.1).
    pub fn boot_total(&self) -> Nanos {
        self.spans
            .iter()
            .filter(|s| s.phase.counts_as_boot())
            .map(|s| s.duration)
            .sum()
    }

    /// Sum of all spans in one phase bucket.
    pub fn phase_total(&self, phase: PhaseKind) -> Nanos {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.duration)
            .sum()
    }

    /// Appends another timeline's spans and events, shifted to start at this
    /// timeline's cursor (used when the guest timeline continues the VMM's).
    pub fn absorb(&mut self, other: Timeline) {
        let base = self.cursor;
        for span in other.spans {
            self.spans.push(Span {
                start: base + span.start,
                ..span
            });
        }
        for ev in other.events {
            self.events.push(Event {
                at: base + ev.at,
                ..ev
            });
        }
        self.cursor = base + other.cursor;
    }

    /// Returns a copy containing only the spans whose phase satisfies
    /// `keep`, re-packed contiguously from time zero (events are dropped).
    /// Used e.g. to strip attestation from a boot before replaying it in
    /// the concurrency experiment.
    pub fn filtered(&self, keep: impl Fn(PhaseKind) -> bool) -> Timeline {
        let mut out = Timeline::new();
        for span in &self.spans {
            if keep(span.phase) {
                out.push_on(span.phase, span.label.clone(), span.class, span.duration);
            }
        }
        out
    }

    /// Renders an indented text breakdown (used by examples and the figure
    /// harness).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&format!(
                "{:>12}  {:<18} {} ({})\n",
                format!("{}", span.start),
                span.phase.label(),
                span.label,
                span.duration
            ));
        }
        out.push_str(&format!("{:>12}  total\n", format!("{}", self.total())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_advances_with_spans() {
        let mut tl = Timeline::new();
        assert_eq!(tl.now(), Nanos::ZERO);
        tl.push(PhaseKind::VmmSetup, "a", Nanos::from_millis(2));
        tl.push(PhaseKind::PreEncryption, "b", Nanos::from_millis(8));
        assert_eq!(tl.now(), Nanos::from_millis(10));
        assert_eq!(tl.spans()[1].start, Nanos::from_millis(2));
        assert_eq!(tl.spans()[1].end(), Nanos::from_millis(10));
    }

    #[test]
    fn phase_totals_accumulate() {
        let mut tl = Timeline::new();
        tl.push(PhaseKind::LinuxBoot, "early", Nanos::from_millis(10));
        tl.push(PhaseKind::LinuxBoot, "late", Nanos::from_millis(20));
        assert_eq!(tl.phase_total(PhaseKind::LinuxBoot), Nanos::from_millis(30));
        assert_eq!(tl.phase_total(PhaseKind::VmmSetup), Nanos::ZERO);
    }

    #[test]
    fn boot_total_excludes_attestation() {
        let mut tl = Timeline::new();
        tl.push(PhaseKind::LinuxBoot, "boot", Nanos::from_millis(40));
        tl.push(PhaseKind::Attestation, "attest", Nanos::from_millis(200));
        assert_eq!(tl.boot_total(), Nanos::from_millis(40));
        assert_eq!(tl.total(), Nanos::from_millis(240));
    }

    #[test]
    fn events_carry_cursor_time() {
        let mut tl = Timeline::new();
        tl.push(PhaseKind::VmmSetup, "a", Nanos::from_millis(1));
        tl.mark(EventChannel::GhcbMsr, "verifier-entry");
        assert_eq!(tl.events()[0].at, Nanos::from_millis(1));
        assert_eq!(tl.events()[0].channel, EventChannel::GhcbMsr);
    }

    #[test]
    fn absorb_shifts_child_timeline() {
        let mut parent = Timeline::new();
        parent.push(PhaseKind::VmmSetup, "vmm", Nanos::from_millis(5));
        let mut child = Timeline::new();
        child.push(PhaseKind::LinuxBoot, "guest", Nanos::from_millis(30));
        child.mark(EventChannel::DebugPort, "init");
        parent.absorb(child);
        assert_eq!(parent.total(), Nanos::from_millis(35));
        assert_eq!(parent.spans()[1].start, Nanos::from_millis(5));
        assert_eq!(parent.events()[0].at, Nanos::from_millis(35));
    }

    #[test]
    fn resource_class_defaults_and_survives_filtering() {
        let mut tl = Timeline::new();
        tl.push(PhaseKind::VmmSetup, "spawn", Nanos::from_millis(1));
        tl.push_on(
            PhaseKind::PreEncryption,
            "SNP_LAUNCH_START",
            ResourceClass::Psp,
            Nanos::from_millis(2),
        );
        tl.push_on(
            PhaseKind::Attestation,
            "owner round trip",
            ResourceClass::Network,
            Nanos::from_millis(3),
        );
        assert_eq!(tl.spans()[0].class, ResourceClass::HostCpu);
        assert_eq!(tl.spans()[1].class, ResourceClass::Psp);
        let kept = tl.filtered(|p| p != PhaseKind::Attestation);
        assert_eq!(kept.spans().len(), 2);
        assert_eq!(kept.spans()[1].class, ResourceClass::Psp);
    }

    #[test]
    fn render_contains_phases() {
        let mut tl = Timeline::new();
        tl.push(
            PhaseKind::BootVerification,
            "hash kernel",
            Nanos::from_millis(3),
        );
        let text = tl.render();
        assert!(text.contains("Boot Verification"));
        assert!(text.contains("hash kernel"));
        assert!(text.contains("total"));
    }
}
