//! The calibrated virtual-time cost model.
//!
//! One struct, [`CostModel`], holds every constant that converts functional
//! work (bytes hashed, pages encrypted, commands dispatched) into virtual
//! time. Each constant's doc comment cites the paper measurement it was
//! derived from, so EXPERIMENTS.md can trace every reproduced number back to
//! its calibration anchor. All fields are public: the ablation benches tweak
//! them to explore the design space (e.g. "what if the PSP were 4× faster?").
//!
//! Calibration anchors (AMD EPYC 7313P, §6.1 of the paper):
//!
//! | anchor | paper value | model value |
//! |---|---|---|
//! | pre-encrypt 23 MB vmlinux (§3.2) | 5.65 s | ≈ 5.8 s |
//! | pre-encrypt 3.3 MB bzImage (§3.2) | 840 ms | ≈ 838 ms |
//! | pre-encrypt 1 MB OVMF (§3.1) | +256.65 ms | ≈ 260 ms |
//! | SEVeriFast pre-encryption (Fig. 10) | 8.07–8.22 ms | ≈ 8 ms |
//! | pvalidate 256 MB, 4 KiB pages (§6.1) | > 60 ms | ≈ 65 ms |
//! | pvalidate 256 MB, 2 MiB pages (§6.1) | < 1 ms | ≈ 0.13 ms |
//! | hash a kernel in the VMM (§4.3) | up to 23 ms | 61 MB ≈ 30 ms |
//! | Linux boot under SNP (§6.2) | ≈ 2.3× | 2.3× |
//! | attestation round trip (§6.1) | ≈ 200 ms | 198 ms |

use sevf_codec::Codec;

use crate::time::Nanos;

/// 4 KiB — the granularity of `LAUNCH_UPDATE_DATA` and `pvalidate`.
pub const PAGE_4K: u64 = 4096;
/// 2 MiB — the huge-page granularity (§6.1: transparent huge pages enabled).
pub const PAGE_2M: u64 = 2 * 1024 * 1024;

/// Every calibrated constant of the simulation, in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---- PSP (Platform Security Processor) ------------------------------
    /// Per-byte cost of `LAUNCH_UPDATE_DATA` hashing+encryption on the PSP,
    /// in picoseconds per byte. Anchor: 23 MB vmlinux → 5.65 s and 3.3 MB
    /// bzImage → 840 ms (§3.2) give ≈ 0.248 ms/KiB ≈ 242 000 ps/B.
    pub psp_encrypt_ps_per_byte: u64,
    /// Fixed dispatch cost per PSP command (mailbox write, doorbell,
    /// completion poll). Fitted intercept of Fig. 4's line.
    pub psp_cmd_dispatch: Nanos,
    /// `SNP_LAUNCH_START`: create guest context, generate the VEK.
    pub psp_launch_start: Nanos,
    /// `SNP_LAUNCH_UPDATE` of one VMSA (per vCPU, SEV-ES/SNP only).
    pub psp_launch_update_vmsa: Nanos,
    /// `SNP_LAUNCH_FINISH`: finalize the measurement.
    pub psp_launch_finish: Nanos,
    /// PSP-mediated RMP/page-state initialization per 2 MiB of guest memory.
    /// Anchor: the Fig. 12 slope — average boot ≈ 1.8 s at 50 concurrent
    /// 256 MB guests, and the paper observes the slope equals the total
    /// SEV launch-command time per VM (⇒ ≈ 36 ms of serialized PSP work
    /// per launch, of which RMP init is the bulk).
    pub psp_rmp_init_per_2mb: Nanos,
    /// `SNP_GUEST_REQUEST` attestation-report generation.
    pub psp_report: Nanos,
    /// Firmware reset/recovery: `SEV_PLATFORM_INIT` after a PSP reboot.
    /// Modeling assumption (no paper anchor): tens of milliseconds, the
    /// order of `DOWNLOAD_FIRMWARE` + platform re-init on EPYC parts.
    pub psp_firmware_reset: Nanos,

    // ---- Guest / host CPU ------------------------------------------------
    /// SHA-256 with x86 SHA extensions, ps/B. Anchor: §4.3 "hashing the
    /// kernel/initrd in the VMM could add up to 23 ms" (≈ 60 MB at 2 GB/s).
    pub cpu_sha256_ps_per_byte: u64,
    /// SHA-384 in software (no SHA-NI for SHA-512 family), ps/B.
    pub cpu_sha384_ps_per_byte: u64,
    /// Copy from shared to C-bit (encrypted) memory, ps/B: every write takes
    /// an RMP check (§6.2), so this is slower than a plain copy.
    pub cpu_copy_encrypted_ps_per_byte: u64,
    /// Plain memcpy within host memory (kernel image warm in buffer cache,
    /// §6.1), ps/B.
    pub cpu_copy_plain_ps_per_byte: u64,
    /// LZ4 decompression, ps per *output* byte.
    pub lz4_decompress_ps_per_byte: u64,
    /// Deflate-class decompression, ps per output byte.
    pub deflate_decompress_ps_per_byte: u64,
    /// Zstd-class decompression, ps per output byte.
    pub zstd_decompress_ps_per_byte: u64,
    /// One `pvalidate` instruction (any page size).
    pub pvalidate_per_page: Nanos,
    /// Building the identity-mapped page tables in the boot verifier
    /// (1 GB with 2 MB pages — Fig. 7).
    pub page_table_setup: Nanos,
    /// Parsing overhead per ELF program header processed by a loader.
    pub elf_segment_overhead: Nanos,
    /// Per-file overhead when unpacking a CPIO archive.
    pub cpio_entry_overhead: Nanos,
    /// One #VC exit (GHCB MSR write or intercepted port I/O).
    pub vc_exit: Nanos,

    // ---- VMM --------------------------------------------------------------
    /// Firecracker process exec + config parse + API handling.
    pub fc_process_spawn: Nanos,
    /// KVM VM + vCPU creation, memory region registration.
    pub kvm_vm_setup: Nanos,
    /// MMIO/legacy device setup (serial, virtio stubs, debug port).
    pub device_setup: Nanos,
    /// Extra KVM work for an SEV guest: registering/pinning encrypted
    /// memory regions (§6.2: "KVM pins guest memory pages during boot").
    pub sev_kvm_extra: Nanos,
    /// QEMU process spawn + machine model construction (heavier than
    /// Firecracker; part of why Fig. 9's QEMU CDF starts so far right).
    pub qemu_process_spawn: Nanos,

    // ---- Guest kernel ------------------------------------------------------
    /// Multiplier on guest-kernel boot phases under SEV-SNP (§6.2: "Linux
    /// Boot takes about 2.3× longer" — #VC handling + RMP-checked writes).
    pub snp_linux_boot_multiplier: f64,
    /// Multiplier under plain SEV (no encrypted register state, no RMP).
    pub sev_linux_boot_multiplier: f64,
    /// Multiplier under SEV-ES.
    pub seves_linux_boot_multiplier: f64,

    // ---- OVMF / UEFI PI phases (Fig. 3) ------------------------------------
    /// SEC (security) phase.
    pub ovmf_sec: Nanos,
    /// PEI (pre-EFI initialization) phase.
    pub ovmf_pei: Nanos,
    /// DXE (driver execution environment) phase — the bulk of Fig. 3.
    pub ovmf_dxe: Nanos,
    /// BDS (boot device selection) phase.
    pub ovmf_bds: Nanos,

    // ---- Attestation (§6.1: ≈ 200 ms end to end) ----------------------------
    /// Network round trip guest ↔ guest-owner server.
    pub attestation_network_rtt: Nanos,
    /// Server-side report validation + secret wrapping.
    pub attestation_server_validate: Nanos,
    /// Guest-side key generation and secret unwrapping.
    pub attestation_guest_crypto: Nanos,
}

impl CostModel {
    /// The model calibrated to the paper's published numbers (see the
    /// module-level anchor table).
    pub fn calibrated() -> Self {
        CostModel {
            psp_encrypt_ps_per_byte: 242_000,
            psp_cmd_dispatch: Nanos::from_micros(18),
            psp_launch_start: Nanos::from_micros(900),
            psp_launch_update_vmsa: Nanos::from_micros(350),
            psp_launch_finish: Nanos::from_micros(350),
            psp_rmp_init_per_2mb: Nanos::from_micros(200),
            psp_report: Nanos::from_millis(1),
            psp_firmware_reset: Nanos::from_millis(50),

            cpu_sha256_ps_per_byte: 520,
            cpu_sha384_ps_per_byte: 667,
            cpu_copy_encrypted_ps_per_byte: 400,
            cpu_copy_plain_ps_per_byte: 100,
            lz4_decompress_ps_per_byte: 357,
            deflate_decompress_ps_per_byte: 2_857,
            zstd_decompress_ps_per_byte: 909,
            pvalidate_per_page: Nanos::from_nanos(1_000),
            page_table_setup: Nanos::from_micros(30),
            elf_segment_overhead: Nanos::from_micros(5),
            cpio_entry_overhead: Nanos::from_micros(2),
            vc_exit: Nanos::from_micros(8),

            fc_process_spawn: Nanos::from_micros(4_500),
            kvm_vm_setup: Nanos::from_micros(1_200),
            device_setup: Nanos::from_micros(400),
            sev_kvm_extra: Nanos::from_micros(2_500),
            qemu_process_spawn: Nanos::from_millis(38),

            snp_linux_boot_multiplier: 2.3,
            sev_linux_boot_multiplier: 1.4,
            seves_linux_boot_multiplier: 1.8,

            ovmf_sec: Nanos::from_millis(85),
            ovmf_pei: Nanos::from_millis(340),
            ovmf_dxe: Nanos::from_millis(1_750),
            ovmf_bds: Nanos::from_millis(975),

            attestation_network_rtt: Nanos::from_millis(180),
            attestation_server_validate: Nanos::from_millis(15),
            attestation_guest_crypto: Nanos::from_millis(3),
        }
    }

    fn per_byte(ps_per_byte: u64, bytes: u64) -> Nanos {
        Nanos::from_nanos(ps_per_byte.saturating_mul(bytes) / 1000)
    }

    // ---- PSP costs ----------------------------------------------------------

    /// Cost of pre-encrypting `bytes` of guest memory through
    /// `LAUNCH_UPDATE_DATA` (4 KiB command granularity), excluding
    /// start/finish.
    pub fn psp_pre_encrypt_bytes(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let commands = bytes.div_ceil(PAGE_4K);
        self.psp_cmd_dispatch.scale(commands) + Self::per_byte(self.psp_encrypt_ps_per_byte, bytes)
    }

    /// PSP-mediated RMP/page-state initialization for a guest of
    /// `guest_mem_bytes`.
    pub fn psp_rmp_init(&self, guest_mem_bytes: u64) -> Nanos {
        self.psp_rmp_init_per_2mb
            .scale(guest_mem_bytes.div_ceil(PAGE_2M))
    }

    /// `LAUNCH_UPDATE_VMSA` for `vcpus` virtual CPUs.
    pub fn psp_update_vmsas(&self, vcpus: u64) -> Nanos {
        (self.psp_launch_update_vmsa + self.psp_cmd_dispatch).scale(vcpus)
    }

    // ---- CPU costs ----------------------------------------------------------

    /// SHA-256 over `bytes` on the guest/host CPU.
    pub fn cpu_sha256(&self, bytes: u64) -> Nanos {
        Nanos::from_micros(2) + Self::per_byte(self.cpu_sha256_ps_per_byte, bytes)
    }

    /// SHA-384 over `bytes` on the CPU (expected-measurement tooling).
    pub fn cpu_sha384(&self, bytes: u64) -> Nanos {
        Nanos::from_micros(2) + Self::per_byte(self.cpu_sha384_ps_per_byte, bytes)
    }

    /// Copy `bytes` from shared pages into C-bit (encrypted) pages.
    pub fn cpu_copy_to_encrypted(&self, bytes: u64) -> Nanos {
        Self::per_byte(self.cpu_copy_encrypted_ps_per_byte, bytes)
    }

    /// Plain copy of `bytes` (e.g. VMM loading the kernel into guest memory).
    pub fn cpu_copy_plain(&self, bytes: u64) -> Nanos {
        Self::per_byte(self.cpu_copy_plain_ps_per_byte, bytes)
    }

    /// Decompression of a payload expanding to `output_bytes` with `codec`.
    pub fn decompress(&self, codec: Codec, output_bytes: u64) -> Nanos {
        let ps = match codec {
            Codec::None => return Nanos::ZERO,
            Codec::Lz4 => self.lz4_decompress_ps_per_byte,
            Codec::Deflate => self.deflate_decompress_ps_per_byte,
            Codec::Zstd => self.zstd_decompress_ps_per_byte,
        };
        Nanos::from_micros(10) + Self::per_byte(ps, output_bytes)
    }

    /// `pvalidate` sweep over `mem_bytes` using the given page size.
    pub fn pvalidate_sweep(&self, mem_bytes: u64, page_size: u64) -> Nanos {
        self.pvalidate_per_page.scale(mem_bytes.div_ceil(page_size))
    }

    /// Boot-phase multiplier for a guest kernel under the given policy
    /// ("none" = 1.0; SEV/SEV-ES/SNP per §6.2).
    pub fn linux_boot_multiplier(&self, snp: SevGeneration) -> f64 {
        match snp {
            SevGeneration::None => 1.0,
            SevGeneration::Sev => self.sev_linux_boot_multiplier,
            SevGeneration::SevEs => self.seves_linux_boot_multiplier,
            SevGeneration::SevSnp => self.snp_linux_boot_multiplier,
        }
    }

    /// End-to-end attestation round trip (network + server + guest crypto +
    /// PSP report), ≈ 200 ms (§6.1).
    pub fn attestation_roundtrip(&self) -> Nanos {
        self.attestation_network_rtt
            + self.attestation_server_validate
            + self.attestation_guest_crypto
            + self.psp_report
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Which SEV generation a guest is launched with.
///
/// SEV-SNP is a superset of SEV-ES which is a superset of SEV (§2.2); all
/// headline experiments in the paper run SEV-SNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SevGeneration {
    /// No memory encryption (stock microVM).
    None,
    /// Base SEV: memory encryption only.
    Sev,
    /// SEV-ES: + encrypted register state.
    SevEs,
    /// SEV-SNP: + integrity protection (RMP, pvalidate, #VC).
    SevSnp,
}

impl SevGeneration {
    /// True for any generation with memory encryption.
    pub fn is_sev(self) -> bool {
        self != SevGeneration::None
    }

    /// True if guest register state is encrypted (ES and SNP).
    pub fn encrypts_vmsa(self) -> bool {
        matches!(self, SevGeneration::SevEs | SevGeneration::SevSnp)
    }

    /// True if the RMP / pvalidate machinery is active (SNP only).
    pub fn has_rmp(self) -> bool {
        self == SevGeneration::SevSnp
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            SevGeneration::None => "none",
            SevGeneration::Sev => "SEV",
            SevGeneration::SevEs => "SEV-ES",
            SevGeneration::SevSnp => "SEV-SNP",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn preencrypt_anchors_match_paper() {
        let m = CostModel::calibrated();
        // §3.2: 23 MB vmlinux → 5.65 s (we land within 5%).
        let vmlinux = m.psp_pre_encrypt_bytes(23 * MB).as_secs_f64();
        assert!((5.3..6.2).contains(&vmlinux), "vmlinux: {vmlinux}");
        // §3.2: 3.3 MB bzImage → 840 ms.
        let bz = m.psp_pre_encrypt_bytes((33 * MB) / 10).as_millis_f64();
        assert!((790.0..900.0).contains(&bz), "bzImage: {bz}");
        // §3.1: 1 MB OVMF → ~256 ms.
        let ovmf = m.psp_pre_encrypt_bytes(MB).as_millis_f64();
        assert!((240.0..280.0).contains(&ovmf), "ovmf: {ovmf}");
    }

    #[test]
    fn severifast_preencryption_is_single_digit_ms() {
        let m = CostModel::calibrated();
        // ~13 KB verifier + ~6 KB of boot structures + hashes page.
        let content = 13 * 1024 + 6 * 1024 + 4096;
        let total = m.psp_launch_start
            + m.psp_pre_encrypt_bytes(content)
            + m.psp_update_vmsas(1)
            + m.psp_launch_finish;
        let ms = total.as_millis_f64();
        assert!((6.0..11.0).contains(&ms), "SEVeriFast pre-encryption: {ms}");
    }

    #[test]
    fn pvalidate_anchors_match_paper() {
        let m = CostModel::calibrated();
        // §6.1: 256 MB with 4 KiB pages > 60 ms; with 2 MiB pages < 1 ms.
        let small = m.pvalidate_sweep(256 * MB, PAGE_4K).as_millis_f64();
        assert!(small > 60.0, "4k sweep: {small}");
        let huge = m.pvalidate_sweep(256 * MB, PAGE_2M).as_millis_f64();
        assert!(huge < 1.0, "2M sweep: {huge}");
    }

    #[test]
    fn hashing_kernel_matches_s4_3() {
        let m = CostModel::calibrated();
        // §4.3: hashing kernel+initrd in the VMM "could add up to 23 ms".
        let t = m.cpu_sha256(43 * MB) + m.cpu_sha256(14 * MB);
        assert!((20.0..32.0).contains(&t.as_millis_f64()), "{t}");
    }

    #[test]
    fn attestation_near_200ms() {
        let m = CostModel::calibrated();
        let t = m.attestation_roundtrip().as_millis_f64();
        assert!((190.0..210.0).contains(&t), "{t}");
    }

    #[test]
    fn ovmf_phases_total_over_3s() {
        let m = CostModel::calibrated();
        let t = m.ovmf_sec + m.ovmf_pei + m.ovmf_dxe + m.ovmf_bds;
        assert!(t.as_secs_f64() > 3.0);
    }

    #[test]
    fn lz4_beats_deflate_decompression() {
        let m = CostModel::calibrated();
        assert!(m.decompress(Codec::Lz4, MB) < m.decompress(Codec::Zstd, MB));
        assert!(m.decompress(Codec::Zstd, MB) < m.decompress(Codec::Deflate, MB));
        assert_eq!(m.decompress(Codec::None, MB), Nanos::ZERO);
    }

    #[test]
    fn rmp_init_drives_fig12_slope() {
        let m = CostModel::calibrated();
        // Serialized PSP work per 256 MB / 1 vCPU SEVeriFast launch.
        let per_vm = m.psp_launch_start
            + m.psp_rmp_init(256 * MB)
            + m.psp_pre_encrypt_bytes(24 * 1024)
            + m.psp_update_vmsas(1)
            + m.psp_launch_finish;
        let ms = per_vm.as_millis_f64();
        // Fig. 12: ≈ 1.8 s average at 50 guests with slope = launch-command
        // time ⇒ ≈ 36 ms serialized per VM.
        assert!((28.0..44.0).contains(&ms), "PSP per VM: {ms}");
    }

    #[test]
    fn generation_predicates() {
        assert!(!SevGeneration::None.is_sev());
        assert!(SevGeneration::Sev.is_sev());
        assert!(!SevGeneration::Sev.encrypts_vmsa());
        assert!(SevGeneration::SevEs.encrypts_vmsa());
        assert!(SevGeneration::SevSnp.has_rmp());
        assert!(!SevGeneration::SevEs.has_rmp());
    }
}
