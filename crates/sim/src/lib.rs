//! Virtual time, cost model, timelines, and discrete-event simulation.
//!
//! Every *functional* operation in this reproduction (hashing, encrypting,
//! copying, decompressing, page-table writes) really happens — but on the
//! machine running the tests, not on an AMD EPYC 7313P with SEV-SNP. This
//! crate supplies the **virtual clock** those operations advance and the
//! **calibrated cost model** that converts byte counts and command streams
//! into the durations the paper reports.
//!
//! * [`time::Nanos`] — the virtual time unit.
//! * [`cost::CostModel`] — one struct holding every calibrated constant, each
//!   documented with the paper number it was derived from.
//! * [`timeline::Timeline`] — phase spans and debug-port/GHCB event marks,
//!   reproducing the instrumentation methodology of §6.1.
//! * [`des`] — a discrete-event engine with FIFO resources, used for the
//!   Fig. 12 concurrency experiment where every launch serializes on the
//!   single-core PSP. Its scheduler is an indexed [`calendar`] queue; the
//!   original heap engine survives in [`reference`] for differential tests
//!   and as the perf baseline.
//! * [`fault`] — seed-deterministic fault schedules (PSP firmware resets,
//!   transient command failures, warm-guest crashes, flaky attestation) for
//!   the chaos experiments.
//! * [`stats`] — means, standard deviations, percentiles, and CDFs for the
//!   figures.
//!
//! # Example
//!
//! ```
//! use sevf_sim::cost::CostModel;
//!
//! let model = CostModel::calibrated();
//! // Pre-encrypting the 1 MiB OVMF image costs ~a quarter second (§3.1).
//! let t = model.psp_pre_encrypt_bytes(1 << 20);
//! assert!(t.as_millis_f64() > 200.0 && t.as_millis_f64() < 320.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod cost;
pub mod des;
pub mod fault;
pub mod reference;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeline;

pub use cost::CostModel;
pub use des::{DesEngine, Job, JobOutcome, ResourceId, RunTrace, Segment, TraceEntry};
pub use fault::{AttestFault, FaultConfig, FaultKind, FaultPlan, ResetWindow};
pub use stats::Summary;
pub use time::Nanos;
pub use timeline::{EventChannel, PhaseKind, ResourceClass, Span, Timeline};
