//! The original binary-heap DES engine, kept as a reference.
//!
//! [`HeapEngine`] is the pre-calendar-queue implementation of
//! [`crate::DesEngine`], preserved byte-for-byte in behavior: same FIFO
//! resources, same `(time, seq)` event order, same dynamic-injection
//! semantics. It exists for two reasons:
//!
//! 1. **Differential testing.** `tests/engine_equivalence.rs` proves on
//!    seeded random job sets that the calendar-queue engine produces
//!    identical [`JobOutcome`] sequences — including tie-breaking order —
//!    and identical occupancy traces.
//! 2. **The perf baseline.** The `perf_sweep` bench arm times both engines
//!    on the same workload; `BENCH_perf.json`'s `des_speedup` is the ratio.
//!    Keeping the slow engine compilable keeps that number honest instead
//!    of anecdotal.
//!
//! Do not use this engine in serving paths; it allocates per event and its
//! heap costs grow with the pending-event set.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::des::{Job, JobOutcome, ResourceId, RunTrace, TraceEntry};
use crate::time::Nanos;

#[derive(Debug)]
struct Resource {
    name: String,
    capacity: usize,
    busy: usize,
    waiting: VecDeque<usize>, // job indices
}

/// The heap-based reference engine. API mirrors [`crate::DesEngine`].
#[derive(Debug, Default)]
pub struct HeapEngine {
    resources: Vec<Resource>,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Release,
    SegmentDone,
}

impl HeapEngine {
    /// Creates an engine with no resources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with `capacity` parallel slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: usize) -> ResourceId {
        assert!(capacity > 0, "resource must have at least one slot");
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            busy: 0,
            waiting: VecDeque::new(),
        });
        ResourceId::from_index(self.resources.len() - 1)
    }

    /// Name of a resource (for reports).
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.index()].name
    }

    /// Capacity (parallel slots) of a resource.
    pub fn capacity(&self, id: ResourceId) -> usize {
        self.resources[id.index()].capacity
    }

    /// Runs a batch of jobs to completion and returns their outcomes in job
    /// order.
    pub fn run(&mut self, jobs: Vec<Job>) -> Vec<JobOutcome> {
        self.run_traced(jobs).0
    }

    /// Like [`HeapEngine::run`], but also returns the occupancy trace.
    pub fn run_traced(&mut self, jobs: Vec<Job>) -> (Vec<JobOutcome>, RunTrace) {
        self.run_dynamic(jobs, |_, _| {})
    }

    /// Runs jobs with dynamic injection; see [`crate::DesEngine::run_dynamic`].
    pub fn run_dynamic(
        &mut self,
        jobs: Vec<Job>,
        mut on_complete: impl FnMut(&JobOutcome, &mut Vec<Job>),
    ) -> (Vec<JobOutcome>, RunTrace) {
        for r in &mut self.resources {
            r.busy = 0;
            r.waiting.clear();
        }
        let mut jobs = jobs;
        let mut next_segment = vec![0usize; jobs.len()];
        let mut queued_since = vec![None::<Nanos>; jobs.len()];
        let mut queued_total = vec![Nanos::ZERO; jobs.len()];
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        let mut trace = RunTrace::default();

        // (time, sequence, job, kind); sequence keeps ordering deterministic.
        let mut calendar: BinaryHeap<Reverse<(Nanos, u64, usize, EventKind)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, job) in jobs.iter().enumerate() {
            calendar.push(Reverse((job.release, seq, i, EventKind::Release)));
            seq += 1;
        }

        while let Some(Reverse((now, _, job_idx, kind))) = calendar.pop() {
            if kind == EventKind::SegmentDone {
                let seg_idx = next_segment[job_idx];
                let segment = &jobs[job_idx].segments[seg_idx];
                if let Some(rid) = segment.resource {
                    let resource = &mut self.resources[rid.index()];
                    resource.busy -= 1;
                    // Wake the longest-waiting job for this resource.
                    if let Some(waiter) = resource.waiting.pop_front() {
                        resource.busy += 1;
                        if let Some(since) = queued_since[waiter].take() {
                            queued_total[waiter] += now - since;
                        }
                        let dur = jobs[waiter].segments[next_segment[waiter]].duration;
                        trace.push_entry(TraceEntry {
                            resource: rid,
                            job: waiter,
                            start: now,
                            end: now + dur,
                        });
                        calendar.push(Reverse((now + dur, seq, waiter, EventKind::SegmentDone)));
                        seq += 1;
                    }
                }
                next_segment[job_idx] += 1;
            }
            let completed = self.start_next_segment(
                now,
                job_idx,
                &jobs,
                &mut next_segment,
                &mut queued_since,
                &queued_total,
                &mut calendar,
                &mut seq,
                &mut outcomes,
                &mut trace,
            );
            if completed {
                if now > trace.makespan() {
                    trace.set_makespan(now);
                }
                let outcome = outcomes[job_idx].expect("just completed");
                let mut injected = Vec::new();
                on_complete(&outcome, &mut injected);
                for mut job in injected {
                    if job.release < now {
                        job.release = now;
                    }
                    let idx = jobs.len();
                    calendar.push(Reverse((job.release, seq, idx, EventKind::Release)));
                    seq += 1;
                    jobs.push(job);
                    next_segment.push(0);
                    queued_since.push(None);
                    queued_total.push(Nanos::ZERO);
                    outcomes.push(None);
                }
            }
        }

        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("all jobs completed"))
            .collect();
        (outcomes, trace)
    }

    /// Starts the job's next segment (or records its completion when none
    /// remain). Returns `true` if the job just completed.
    #[allow(clippy::too_many_arguments)]
    fn start_next_segment(
        &mut self,
        now: Nanos,
        job_idx: usize,
        jobs: &[Job],
        next_segment: &mut [usize],
        queued_since: &mut [Option<Nanos>],
        queued_total: &[Nanos],
        calendar: &mut BinaryHeap<Reverse<(Nanos, u64, usize, EventKind)>>,
        seq: &mut u64,
        outcomes: &mut [Option<JobOutcome>],
        trace: &mut RunTrace,
    ) -> bool {
        let seg_idx = next_segment[job_idx];
        let job = &jobs[job_idx];
        if seg_idx >= job.segments.len() {
            outcomes[job_idx] = Some(JobOutcome {
                job: job_idx,
                release: job.release,
                finish: now,
                queued: queued_total[job_idx],
            });
            return true;
        }
        let segment = &job.segments[seg_idx];
        match segment.resource {
            None => {
                calendar.push(Reverse((
                    now + segment.duration,
                    *seq,
                    job_idx,
                    EventKind::SegmentDone,
                )));
                *seq += 1;
            }
            Some(rid) => {
                let resource = self
                    .resources
                    .get_mut(rid.index())
                    .expect("segment references unknown resource");
                if resource.busy < resource.capacity {
                    resource.busy += 1;
                    trace.push_entry(TraceEntry {
                        resource: rid,
                        job: job_idx,
                        start: now,
                        end: now + segment.duration,
                    });
                    calendar.push(Reverse((
                        now + segment.duration,
                        *seq,
                        job_idx,
                        EventKind::SegmentDone,
                    )));
                    *seq += 1;
                } else {
                    resource.waiting.push_back(job_idx);
                    queued_since[job_idx] = Some(now);
                }
            }
        }
        false
    }
}
