//! A discrete-event engine with FIFO resources.
//!
//! Fig. 12 of the paper shows that concurrent SEV launches serialize on the
//! PSP — a single low-power core that every `LAUNCH_*` command must pass
//! through — while non-SEV launches scale almost flat. This engine models
//! exactly that: each boot is a [`Job`] made of [`Segment`]s, each segment
//! either occupies a slot of a capacity-limited resource (PSP: capacity 1;
//! host CPU pool: one slot per core) or is a pure delay (network waits).
//!
//! Scheduling is FIFO per resource with deterministic tie-breaking by job
//! arrival order, so results are exactly reproducible.
//!
//! # Engine internals (the raw-speed pass)
//!
//! The event scheduler is an indexed calendar queue
//! ([`crate::calendar::CalendarQueue`]) instead of a binary heap: pushes into
//! the active window are O(1) and only the bucket being drained is ever
//! sorted. Job segments are flattened into one arena of `(resource,
//! duration)` pairs at submission, so the inner loop walks a flat `Vec`
//! instead of chasing per-job `Vec<Segment>` allocations, and [`Segment`]
//! labels are `Cow<'static, str>` so the common static-label case allocates
//! nothing per dispatch. [`DesEngine::run`] skips occupancy-trace collection
//! entirely — callers that need utilization accounting use
//! [`DesEngine::run_traced`] / [`DesEngine::run_dynamic`].
//!
//! The pre-calendar heap implementation survives as
//! [`crate::reference::HeapEngine`]; `tests/engine_equivalence.rs` proves the
//! two produce identical outcomes (including tie-breaking order) on seeded
//! random job sets, and the `perf_sweep` bench arm times them against each
//! other.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;

use crate::calendar::{CalEvent, CalendarQueue};
use crate::time::Nanos;

/// Identifies a resource registered with a [`DesEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

impl ResourceId {
    /// Builds an id from a raw index (crate-internal; used by the reference
    /// engine so both engines hand out identical ids).
    pub(crate) fn from_index(index: usize) -> Self {
        ResourceId(index)
    }

    /// Raw index of this id.
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// One step of a job: `duration` of work on `resource` (or a pure delay when
/// `resource` is `None`).
#[derive(Debug, Clone)]
pub struct Segment {
    /// Resource this segment occupies; `None` = pure delay.
    pub resource: Option<ResourceId>,
    /// Amount of virtual time the segment takes once running.
    pub duration: Nanos,
    /// Label for reports. `Cow` so the common static-label case is
    /// allocation-free on the dispatch path.
    pub label: Cow<'static, str>,
}

impl Segment {
    /// Creates a resource-bound segment.
    pub fn on(resource: ResourceId, duration: Nanos, label: impl Into<Cow<'static, str>>) -> Self {
        Segment {
            resource: Some(resource),
            duration,
            label: label.into(),
        }
    }

    /// Creates a pure-delay segment.
    pub fn delay(duration: Nanos, label: impl Into<Cow<'static, str>>) -> Self {
        Segment {
            resource: None,
            duration,
            label: label.into(),
        }
    }
}

/// A sequential list of segments released into the system at `release` time.
#[derive(Debug, Clone, Default)]
pub struct Job {
    /// Time at which the job arrives.
    pub release: Nanos,
    /// Ordered segments the job must execute.
    pub segments: Vec<Segment>,
}

impl Job {
    /// Creates a job released at time zero.
    pub fn new(segments: Vec<Segment>) -> Self {
        Job {
            release: Nanos::ZERO,
            segments,
        }
    }

    /// Creates a job released at `release`.
    pub fn released_at(release: Nanos, segments: Vec<Segment>) -> Self {
        Job { release, segments }
    }

    /// Sum of all segment durations (the job's completion time if it never
    /// had to queue).
    pub fn service_time(&self) -> Nanos {
        self.segments.iter().map(|s| s.duration).sum()
    }
}

/// Completion record for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Release time it was submitted with.
    pub release: Nanos,
    /// Time the final segment finished.
    pub finish: Nanos,
    /// Total time spent waiting in resource queues.
    pub queued: Nanos,
}

impl JobOutcome {
    /// Wall-clock latency of the job (finish − release).
    pub fn latency(&self) -> Nanos {
        self.finish - self.release
    }
}

/// One recorded occupancy of a resource slot during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The occupied resource.
    pub resource: ResourceId,
    /// Index of the job the segment belongs to.
    pub job: usize,
    /// Instant the segment started executing.
    pub start: Nanos,
    /// Instant the segment finishes.
    pub end: Nanos,
}

/// Resource-occupancy record of one engine run: every executed
/// resource-bound segment with its start/end instants, plus the makespan.
/// Used for utilization accounting (fleet metrics) and for checking the
/// engine's scheduling invariants.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    entries: Vec<TraceEntry>,
    makespan: Nanos,
}

impl RunTrace {
    /// All recorded occupancies, in execution-start order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Instant of the last job completion.
    pub fn makespan(&self) -> Nanos {
        self.makespan
    }

    /// Records an occupancy (crate-internal; engines only).
    pub(crate) fn push_entry(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Sets the makespan (crate-internal; engines only).
    pub(crate) fn set_makespan(&mut self, makespan: Nanos) {
        self.makespan = makespan;
    }

    /// Total busy time accumulated on `resource` across all its slots.
    pub fn busy_time(&self, resource: ResourceId) -> Nanos {
        self.entries
            .iter()
            .filter(|e| e.resource == resource)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Fraction of `capacity × makespan` the resource spent busy (0 when the
    /// run is empty).
    pub fn utilization(&self, resource: ResourceId, capacity: usize) -> f64 {
        if self.makespan == Nanos::ZERO || capacity == 0 {
            return 0.0;
        }
        self.busy_time(resource).as_nanos() as f64
            / (self.makespan.as_nanos() as f64 * capacity as f64)
    }

    /// Maximum number of segments simultaneously executing on `resource`
    /// (a capacity-`c` resource must never exceed `c`).
    pub fn max_concurrency(&self, resource: ResourceId) -> usize {
        let mut points: Vec<(Nanos, i64)> = Vec::new();
        for e in self.entries.iter().filter(|e| e.resource == resource) {
            points.push((e.start, 1));
            points.push((e.end, -1));
        }
        // Ends sort before starts at the same instant: back-to-back segments
        // on one slot do not count as overlapping.
        points.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut current = 0i64;
        let mut max = 0i64;
        for (_, delta) in points {
            current += delta;
            max = max.max(current);
        }
        max.max(0) as usize
    }
}

#[derive(Debug)]
struct Resource {
    name: String,
    capacity: usize,
    busy: usize,
    waiting: VecDeque<u32>, // job indices
}

/// Arena form of a segment: just what the scheduler needs, flat in memory.
/// `resource == DELAY` marks a pure delay.
#[derive(Debug, Clone, Copy)]
struct SegLite {
    resource: u32,
    duration: Nanos,
}

const DELAY: u32 = u32::MAX;

/// Sentinel for "not currently queued".
const NOT_QUEUED: Nanos = Nanos::from_nanos(u64::MAX);

/// Per-job scheduler state, struct-of-everything so the hot loop touches one
/// cache line per job instead of five parallel `Vec`s.
#[derive(Debug, Clone, Copy)]
struct JobState {
    /// Arena index of the segment the job is currently on (or about to
    /// start); advances to `seg_hi` as segments complete.
    cursor: u32,
    /// One past the job's last arena segment.
    seg_hi: u32,
    /// Release time the job was submitted with.
    release: Nanos,
    /// Instant the job entered a resource queue (`NOT_QUEUED` when running).
    queued_since: Nanos,
    /// Accumulated queue wait.
    queued_total: Nanos,
    /// Completion instant (valid once `done`).
    finish: Nanos,
    /// Whether the job has completed.
    done: bool,
}

/// Event payloads pack `(job index << 1) | kind`; kind 0 = release,
/// kind 1 = segment-done.
const KIND_SEGMENT_DONE: u64 = 1;

/// The discrete-event engine.
///
/// # Example
///
/// ```
/// use sevf_sim::{DesEngine, Job, Nanos, Segment};
///
/// let mut engine = DesEngine::new();
/// let psp = engine.add_resource("psp", 1);
/// let jobs: Vec<Job> = (0..3)
///     .map(|_| Job::new(vec![Segment::on(psp, Nanos::from_millis(10), "launch")]))
///     .collect();
/// let outcomes = engine.run(jobs);
/// // Three 10 ms launches on a single-slot PSP finish at 10/20/30 ms.
/// assert_eq!(outcomes[2].finish, Nanos::from_millis(30));
/// ```
#[derive(Debug, Default)]
pub struct DesEngine {
    resources: Vec<Resource>,
}

impl DesEngine {
    /// Creates an engine with no resources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with `capacity` parallel slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: usize) -> ResourceId {
        assert!(capacity > 0, "resource must have at least one slot");
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            busy: 0,
            waiting: VecDeque::new(),
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Name of a resource (for reports).
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.0].name
    }

    /// Capacity (parallel slots) of a resource.
    pub fn capacity(&self, id: ResourceId) -> usize {
        self.resources[id.0].capacity
    }

    /// Runs a batch of jobs to completion and returns their outcomes in job
    /// order. Skips occupancy-trace collection entirely; use
    /// [`DesEngine::run_traced`] when utilization accounting is needed.
    ///
    /// # Panics
    ///
    /// Panics if a segment references a resource not registered with this
    /// engine.
    pub fn run(&mut self, jobs: Vec<Job>) -> Vec<JobOutcome> {
        self.run_inner(jobs, |_, _| {}, false).0
    }

    /// Like [`DesEngine::run`], but also returns the resource-occupancy
    /// trace for utilization accounting.
    pub fn run_traced(&mut self, jobs: Vec<Job>) -> (Vec<JobOutcome>, RunTrace) {
        self.run_dynamic(jobs, |_, _| {})
    }

    /// Runs jobs to completion with dynamic injection: every time a job
    /// completes, `on_complete` is invoked with its outcome and may push
    /// follow-up jobs into the provided vector. Injected jobs are assigned
    /// the next indices in submission order and released no earlier than the
    /// completion instant (earlier `release` values are clamped forward).
    ///
    /// This is what closed-loop load generation and admission control build
    /// on: arrivals are zero-segment marker jobs whose completion hands
    /// control to the caller at the arrival instant.
    ///
    /// # Panics
    ///
    /// Panics if a segment references a resource not registered with this
    /// engine.
    pub fn run_dynamic(
        &mut self,
        jobs: Vec<Job>,
        on_complete: impl FnMut(&JobOutcome, &mut Vec<Job>),
    ) -> (Vec<JobOutcome>, RunTrace) {
        self.run_inner(jobs, on_complete, true)
    }

    /// The engine loop. Event order is exactly `(time, seq)` — identical to
    /// the heap reference engine — so every downstream byte-diff replay gate
    /// holds across the scheduler swap.
    fn run_inner(
        &mut self,
        jobs: Vec<Job>,
        mut on_complete: impl FnMut(&JobOutcome, &mut Vec<Job>),
        collect_trace: bool,
    ) -> (Vec<JobOutcome>, RunTrace) {
        for r in &mut self.resources {
            r.busy = 0;
            r.waiting.clear();
        }
        let mut arena: Vec<SegLite> = Vec::new();
        let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
        let mut trace = RunTrace::default();
        let mut queue = CalendarQueue::new();
        let mut seq = 0u64;
        // Reused across completions so dynamic injection is allocation-free
        // in the steady state.
        let mut injected: Vec<Job> = Vec::new();

        for job in jobs {
            admit(job, &mut arena, &mut states, &mut queue, &mut seq);
        }

        while let Some(ev) = queue.pop() {
            let now = ev.time;
            let job_idx = (ev.payload >> 1) as usize;
            if ev.payload & 1 == KIND_SEGMENT_DONE {
                let seg = arena[states[job_idx].cursor as usize];
                if seg.resource != DELAY {
                    let resource = &mut self.resources[seg.resource as usize];
                    resource.busy -= 1;
                    // Wake the longest-waiting job for this resource.
                    if let Some(waiter) = resource.waiting.pop_front() {
                        let waiter = waiter as usize;
                        resource.busy += 1;
                        let ws = &mut states[waiter];
                        if ws.queued_since != NOT_QUEUED {
                            ws.queued_total += now - ws.queued_since;
                            ws.queued_since = NOT_QUEUED;
                        }
                        let dur = arena[ws.cursor as usize].duration;
                        if collect_trace {
                            trace.entries.push(TraceEntry {
                                resource: ResourceId(seg.resource as usize),
                                job: waiter,
                                start: now,
                                end: now + dur,
                            });
                        }
                        queue.push(CalEvent {
                            time: now + dur,
                            seq,
                            payload: ((waiter as u64) << 1) | KIND_SEGMENT_DONE,
                        });
                        seq += 1;
                    }
                }
                states[job_idx].cursor += 1;
            }

            // Start the job's next segment, or complete it.
            let st = states[job_idx];
            if st.cursor == st.seg_hi {
                let s = &mut states[job_idx];
                s.finish = now;
                s.done = true;
                if now > trace.makespan {
                    trace.makespan = now;
                }
                let outcome = JobOutcome {
                    job: job_idx,
                    release: st.release,
                    finish: now,
                    queued: st.queued_total,
                };
                on_complete(&outcome, &mut injected);
                for mut job in injected.drain(..) {
                    if job.release < now {
                        job.release = now;
                    }
                    admit(job, &mut arena, &mut states, &mut queue, &mut seq);
                }
                continue;
            }
            let seg = arena[st.cursor as usize];
            if seg.resource == DELAY {
                queue.push(CalEvent {
                    time: now + seg.duration,
                    seq,
                    payload: ((job_idx as u64) << 1) | KIND_SEGMENT_DONE,
                });
                seq += 1;
            } else {
                let resource = self
                    .resources
                    .get_mut(seg.resource as usize)
                    .expect("segment references unknown resource");
                if resource.busy < resource.capacity {
                    resource.busy += 1;
                    if collect_trace {
                        trace.entries.push(TraceEntry {
                            resource: ResourceId(seg.resource as usize),
                            job: job_idx,
                            start: now,
                            end: now + seg.duration,
                        });
                    }
                    queue.push(CalEvent {
                        time: now + seg.duration,
                        seq,
                        payload: ((job_idx as u64) << 1) | KIND_SEGMENT_DONE,
                    });
                    seq += 1;
                } else {
                    resource.waiting.push_back(job_idx as u32);
                    states[job_idx].queued_since = now;
                }
            }
        }

        let outcomes = states
            .iter()
            .enumerate()
            .map(|(i, s)| {
                assert!(s.done, "all jobs completed");
                JobOutcome {
                    job: i,
                    release: s.release,
                    finish: s.finish,
                    queued: s.queued_total,
                }
            })
            .collect();
        (outcomes, trace)
    }
}

/// Flattens a job's segments into the arena, records its state, and
/// schedules its release event.
fn admit(
    job: Job,
    arena: &mut Vec<SegLite>,
    states: &mut Vec<JobState>,
    queue: &mut CalendarQueue,
    seq: &mut u64,
) {
    let lo = arena.len() as u32;
    for s in &job.segments {
        arena.push(SegLite {
            resource: s.resource.map_or(DELAY, |r| r.0 as u32),
            duration: s.duration,
        });
    }
    let idx = states.len();
    debug_assert!(idx < u32::MAX as usize, "job count exceeds u32 index space");
    states.push(JobState {
        cursor: lo,
        seg_hi: arena.len() as u32,
        release: job.release,
        queued_since: NOT_QUEUED,
        queued_total: Nanos::ZERO,
        finish: Nanos::ZERO,
        done: false,
    });
    queue.push(CalEvent {
        time: job.release,
        seq: *seq,
        payload: (idx as u64) << 1,
    });
    *seq += 1;
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resource#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_resource_serializes() {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let jobs: Vec<Job> = (0..5)
            .map(|_| Job::new(vec![Segment::on(psp, Nanos::from_millis(10), "cmd")]))
            .collect();
        let outcomes = engine.run(jobs);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.finish, Nanos::from_millis(10 * (i as u64 + 1)));
        }
        // Last job queued for 40 ms.
        assert_eq!(outcomes[4].queued, Nanos::from_millis(40));
    }

    #[test]
    fn wide_resource_runs_in_parallel() {
        let mut engine = DesEngine::new();
        let cpu = engine.add_resource("cpu", 8);
        let jobs: Vec<Job> = (0..8)
            .map(|_| Job::new(vec![Segment::on(cpu, Nanos::from_millis(10), "boot")]))
            .collect();
        let outcomes = engine.run(jobs);
        assert!(outcomes.iter().all(|o| o.finish == Nanos::from_millis(10)));
    }

    #[test]
    fn mixed_pipeline_queues_only_on_psp() {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let cpu = engine.add_resource("cpu", 32);
        let jobs: Vec<Job> = (0..4)
            .map(|_| {
                Job::new(vec![
                    Segment::on(cpu, Nanos::from_millis(5), "vmm"),
                    Segment::on(psp, Nanos::from_millis(20), "launch"),
                    Segment::on(cpu, Nanos::from_millis(30), "guest"),
                ])
            })
            .collect();
        let outcomes = engine.run(jobs);
        // Job i leaves the PSP at 5 + 20·(i+1); finishes 30 ms later.
        for (i, o) in outcomes.iter().enumerate() {
            let expect = Nanos::from_millis(5 + 20 * (i as u64 + 1) + 30);
            assert_eq!(o.finish, expect, "job {i}");
        }
    }

    #[test]
    fn pure_delays_do_not_contend() {
        let mut engine = DesEngine::new();
        let jobs: Vec<Job> = (0..10)
            .map(|_| Job::new(vec![Segment::delay(Nanos::from_millis(200), "network")]))
            .collect();
        let outcomes = engine.run(jobs);
        assert!(outcomes.iter().all(|o| o.finish == Nanos::from_millis(200)));
    }

    #[test]
    fn staggered_releases_respected() {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let jobs = vec![
            Job::released_at(
                Nanos::from_millis(100),
                vec![Segment::on(psp, Nanos::from_millis(10), "late")],
            ),
            Job::new(vec![Segment::on(psp, Nanos::from_millis(10), "early")]),
        ];
        let outcomes = engine.run(jobs);
        assert_eq!(outcomes[1].finish, Nanos::from_millis(10));
        assert_eq!(outcomes[0].finish, Nanos::from_millis(110));
        assert_eq!(outcomes[0].latency(), Nanos::from_millis(10));
    }

    #[test]
    fn empty_job_finishes_at_release() {
        let mut engine = DesEngine::new();
        let outcomes = engine.run(vec![Job::released_at(Nanos::from_millis(3), vec![])]);
        assert_eq!(outcomes[0].finish, Nanos::from_millis(3));
    }

    #[test]
    fn fifo_order_is_stable() {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        // All released at once: FIFO by submission order.
        let jobs: Vec<Job> = (0..3)
            .map(|i| {
                Job::new(vec![Segment::on(
                    psp,
                    Nanos::from_millis(10 + i as u64),
                    "x",
                )])
            })
            .collect();
        let outcomes = engine.run(jobs);
        assert_eq!(outcomes[0].finish, Nanos::from_millis(10));
        assert_eq!(outcomes[1].finish, Nanos::from_millis(21));
        assert_eq!(outcomes[2].finish, Nanos::from_millis(33));
    }

    #[test]
    fn trace_accounts_busy_time_and_overlap() {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let cpu = engine.add_resource("cpu", 4);
        let jobs: Vec<Job> = (0..3)
            .map(|_| {
                Job::new(vec![
                    Segment::on(cpu, Nanos::from_millis(5), "setup"),
                    Segment::on(psp, Nanos::from_millis(10), "launch"),
                ])
            })
            .collect();
        let (outcomes, trace) = engine.run_traced(jobs);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(trace.busy_time(psp), Nanos::from_millis(30));
        assert_eq!(trace.busy_time(cpu), Nanos::from_millis(15));
        assert_eq!(trace.max_concurrency(psp), 1);
        assert_eq!(trace.max_concurrency(cpu), 3);
        // 3 setups overlap, then 3 serialized launches: makespan 5 + 30.
        assert_eq!(trace.makespan(), Nanos::from_millis(35));
        let util = trace.utilization(psp, 1);
        assert!((util - 30.0 / 35.0).abs() < 1e-9);
    }

    #[test]
    fn untraced_run_matches_traced_outcomes() {
        let build = || -> Vec<Job> {
            (0..6)
                .map(|i| {
                    Job::released_at(
                        Nanos::from_millis(i % 3),
                        vec![
                            Segment::delay(Nanos::from_millis(2), "net"),
                            Segment::on(ResourceId(0), Nanos::from_millis(7 + i), "psp"),
                        ],
                    )
                })
                .collect()
        };
        let mut a = DesEngine::new();
        a.add_resource("psp", 1);
        let mut b = DesEngine::new();
        b.add_resource("psp", 1);
        let fast = a.run(build());
        let (slow, _) = b.run_traced(build());
        assert_eq!(fast, slow);
    }

    #[test]
    fn dynamic_injection_chains_jobs() {
        let mut engine = DesEngine::new();
        let cpu = engine.add_resource("cpu", 1);
        let seed = vec![Job::new(vec![Segment::on(
            cpu,
            Nanos::from_millis(10),
            "first",
        )])];
        let mut chained = 0;
        let (outcomes, trace) = engine.run_dynamic(seed, |outcome, inject| {
            if chained < 2 {
                chained += 1;
                inject.push(Job::released_at(
                    outcome.finish + Nanos::from_millis(1),
                    vec![Segment::on(cpu, Nanos::from_millis(10), "next")],
                ));
            }
        });
        // first at [0,10], injected at [11,21] and [22,32].
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[1].finish, Nanos::from_millis(21));
        assert_eq!(outcomes[2].finish, Nanos::from_millis(32));
        assert_eq!(trace.makespan(), Nanos::from_millis(32));
    }

    #[test]
    fn dynamic_injection_clamps_past_releases() {
        let mut engine = DesEngine::new();
        let cpu = engine.add_resource("cpu", 1);
        let seed = vec![Job::new(vec![Segment::on(
            cpu,
            Nanos::from_millis(10),
            "first",
        )])];
        let mut injected_once = false;
        let (outcomes, _) = engine.run_dynamic(seed, |_, inject| {
            if !injected_once {
                injected_once = true;
                // Asks for the past; runs at the completion instant instead.
                inject.push(Job::released_at(
                    Nanos::from_millis(1),
                    vec![Segment::on(cpu, Nanos::from_millis(5), "late")],
                ));
            }
        });
        assert_eq!(outcomes[1].release, Nanos::from_millis(10));
        assert_eq!(outcomes[1].finish, Nanos::from_millis(15));
    }

    #[test]
    fn queued_time_lands_in_outcomes() {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let jobs: Vec<Job> = (0..3)
            .map(|_| Job::new(vec![Segment::on(psp, Nanos::from_millis(10), "cmd")]))
            .collect();
        let (outcomes, _) = engine.run_traced(jobs);
        assert_eq!(outcomes[0].queued, Nanos::ZERO);
        assert_eq!(outcomes[1].queued, Nanos::from_millis(10));
        assert_eq!(outcomes[2].queued, Nanos::from_millis(20));
        for o in &outcomes {
            assert_eq!(o.latency(), Nanos::from_millis(10) + o.queued);
        }
    }

    #[test]
    fn service_time_sums_segments() {
        let mut engine = DesEngine::new();
        let cpu = engine.add_resource("cpu", 1);
        let job = Job::new(vec![
            Segment::on(cpu, Nanos::from_millis(5), "a"),
            Segment::delay(Nanos::from_millis(7), "b"),
        ]);
        assert_eq!(job.service_time(), Nanos::from_millis(12));
        let outcomes = engine.run(vec![job]);
        assert_eq!(outcomes[0].finish, Nanos::from_millis(12));
    }

    #[test]
    fn owned_labels_still_accepted() {
        let mut engine = DesEngine::new();
        let cpu = engine.add_resource("cpu", 1);
        let label = format!("dispatch-{}", 7);
        let job = Job::new(vec![Segment::on(cpu, Nanos::from_millis(1), label)]);
        assert_eq!(job.segments[0].label, "dispatch-7");
        let outcomes = engine.run(vec![job]);
        assert_eq!(outcomes[0].finish, Nanos::from_millis(1));
    }
}
