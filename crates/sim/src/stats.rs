//! Summary statistics and CDFs for the figures.

use crate::time::Nanos;

/// Mean / standard deviation / extremes / percentiles of a sample set.
///
/// # Example
///
/// ```
/// use sevf_sim::Summary;
///
/// let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Summarizes a slice of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite numbers.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample set");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "samples must be finite"
        );
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Summary {
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile_sorted(&sorted, 50.0),
            p99: percentile_sorted(&sorted, 99.0),
            count,
        }
    }

    /// Summarizes virtual durations in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_nanos(values: &[Nanos]) -> Self {
        let ms: Vec<f64> = values.iter().map(|n| n.as_millis_f64()).collect();
        Self::from_values(&ms)
    }
}

/// Percentile (0–100) of an already-sorted slice, with linear interpolation.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile (0–100) of an unsorted slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    percentile_sorted(&sorted, pct)
}

/// Empirical CDF of a sample set: `(value, cumulative_probability)` pairs,
/// the series Fig. 9 plots.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.stddev - 2.0).abs() < 1e-9);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let points = cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        for pair in points.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
    }

    #[test]
    fn from_nanos_reports_millis() {
        let s = Summary::from_nanos(&[Nanos::from_millis(10), Nanos::from_millis(20)]);
        assert!((s.mean - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        let _ = Summary::from_values(&[]);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_values(&[42.0]);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.stddev, 0.0);
    }
}
