//! The QEMU/OVMF baseline boot path.
//!
//! The paper's comparison point (§2.5, §3.1): mainstream SEV-SNP boots run
//! the EDK2 Open Virtual Machine Firmware, a UEFI Platform Initialization
//! implementation. OVMF carries everything UEFI requires — device drivers,
//! an EFI shell, the six PI boot phases — none of which a microVM needs, and
//! its smallest build is 1 MB, so pre-encrypting it costs ~256 ms (Fig. 4).
//! Fig. 3 breaks its SNP boot into SEC → PEI → DXE → BDS (> 3 s total) with
//! only the final "Boot Verifier" sliver doing SEV-relevant work.
//!
//! This crate builds the 1 MB firmware blob (plus the SNP metadata pages
//! QEMU also pre-encrypts), models the four timed PI phases, and then runs
//! the *same* measured-direct-boot core as SEVeriFast (`sevf-verifier`) —
//! because that part, the paper shows, is the only part that matters.
//!
//! # Example
//!
//! ```
//! use sevf_ovmf::OvmfImage;
//!
//! let ovmf = OvmfImage::build();
//! assert_eq!(ovmf.bytes().len(), 1024 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sevf_image::content::{generate, ContentProfile};
use sevf_mem::GuestMemory;
use sevf_sim::cost::CostModel;
use sevf_sim::{Nanos, PhaseKind};
use sevf_verifier::layout::GuestLayout;
use sevf_verifier::loader::Step;
use sevf_verifier::verify::{self, KernelKind, VerifiedBoot, VerifierConfig};
use sevf_verifier::VerifierError;

/// Guest-physical base address the OVMF image is pre-encrypted at (clear of
/// the page-table region at 1 MB and the kernel base at 16 MB).
pub const OVMF_BASE: u64 = 0x20_0000;

/// Size of the smallest supported OVMF build (§3.1).
pub const OVMF_IMAGE_SIZE: u64 = 1024 * 1024;

/// SNP metadata QEMU additionally pre-encrypts alongside the firmware:
/// CPUID page, secrets page, and assorted DXE/SEC working pages.
pub const OVMF_METADATA_SIZE: u64 = 96 * 1024;

/// The OVMF firmware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OvmfImage {
    blob: Vec<u8>,
}

impl OvmfImage {
    /// Builds the deterministic 1 MB firmware blob.
    pub fn build() -> Self {
        let mut blob = b"OVMF".to_vec();
        blob.extend(generate(
            ContentProfile::aws(),
            OVMF_IMAGE_SIZE as usize - 4,
            b"edk2-ovmf-build",
        ));
        OvmfImage { blob }
    }

    /// The firmware bytes to pre-encrypt.
    pub fn bytes(&self) -> &[u8] {
        &self.blob
    }

    /// Total bytes QEMU pre-encrypts for this image (blob + metadata).
    pub fn pre_encrypted_size(&self) -> u64 {
        self.blob.len() as u64 + OVMF_METADATA_SIZE
    }
}

/// One timed UEFI PI phase.
#[derive(Debug, Clone, PartialEq)]
pub struct OvmfPhase {
    /// Which figure bucket the phase belongs to.
    pub phase: PhaseKind,
    /// Phase name per the PI spec.
    pub name: &'static str,
    /// Modeled duration.
    pub duration: Nanos,
}

/// The four timed phases of Fig. 3, in order. (The PI spec's TSL/RT phases
/// are where the kernel takes over; their time is accounted to boot
/// verification and the kernel itself.)
pub fn pi_phases(cost: &CostModel) -> Vec<OvmfPhase> {
    vec![
        OvmfPhase {
            phase: PhaseKind::OvmfSec,
            name: "SEC (security)",
            duration: cost.ovmf_sec,
        },
        OvmfPhase {
            phase: PhaseKind::OvmfPei,
            name: "PEI (pre-EFI initialization)",
            duration: cost.ovmf_pei,
        },
        OvmfPhase {
            phase: PhaseKind::OvmfDxe,
            name: "DXE (driver execution environment)",
            duration: cost.ovmf_dxe,
        },
        OvmfPhase {
            phase: PhaseKind::OvmfBds,
            name: "BDS (boot device selection)",
            duration: cost.ovmf_bds,
        },
    ]
}

/// Result of the OVMF guest-side boot.
#[derive(Debug, Clone, PartialEq)]
pub struct OvmfBoot {
    /// The timed PI phases.
    pub phases: Vec<OvmfPhase>,
    /// The embedded boot verifier's outcome (the Fig. 3 "Boot Verifier"
    /// sliver).
    pub verified: VerifiedBoot,
}

impl OvmfBoot {
    /// Total firmware time: PI phases plus boot verification (the
    /// "Firmware/Boot Verification" column of Fig. 10).
    pub fn firmware_total(&self) -> Nanos {
        self.phases.iter().map(|p| p.duration).sum::<Nanos>() + self.verified.total_time()
    }

    /// The verifier steps (for timeline rendering).
    pub fn verifier_steps(&self) -> &[Step] {
        &self.verified.steps
    }
}

/// Runs the OVMF guest boot: the four PI phases, then measured direct boot
/// with OVMF's embedded verifier.
///
/// # Errors
///
/// Propagates [`VerifierError`]s from the measured-direct-boot core (hash
/// mismatches, memory faults).
pub fn boot(
    mem: &mut GuestMemory,
    layout: &GuestLayout,
    cost: &CostModel,
    kind: KernelKind,
    huge_pages: bool,
) -> Result<OvmfBoot, VerifierError> {
    let phases = pi_phases(cost);
    let config = VerifierConfig {
        kind,
        huge_pages,
        c_bit: sevf_mem::C_BIT_POSITION,
        firmware_base: OVMF_BASE,
        firmware_size: OVMF_IMAGE_SIZE + OVMF_METADATA_SIZE,
    };
    let verified = verify::run(mem, layout, cost, config)?;
    Ok(OvmfBoot { phases, verified })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_codec::Codec;
    use sevf_crypto::sha256;
    use sevf_image::kernel::KernelConfig;
    use sevf_mem::PAGE_SIZE;
    use sevf_sim::cost::SevGeneration;
    use sevf_verifier::hashes::{HashPage, KernelHashes};
    use sevf_verifier::layout::HASH_PAGE_ADDR;

    const MB: u64 = 1024 * 1024;

    fn setup() -> (GuestMemory, GuestLayout) {
        let image = KernelConfig::test_tiny().build();
        let bz = image.bzimage(Codec::Lz4);
        let initrd = sevf_image::initrd::build_initrd(64 * 1024);
        let mut mem = GuestMemory::new_sev(64 * MB, [8u8; 16], SevGeneration::SevSnp);
        let layout = GuestLayout::plan(64 * MB, bz.len() as u64, initrd.len() as u64).unwrap();
        mem.host_write(layout.kernel_staging, &bz).unwrap();
        mem.host_write(layout.initrd_staging, &initrd).unwrap();
        let hash_page = HashPage {
            kernel: KernelHashes::WholeImage(sha256(&bz)),
            initrd: sha256(&initrd),
        };
        mem.host_write(HASH_PAGE_ADDR, &hash_page.to_page())
            .unwrap();
        let ovmf = OvmfImage::build();
        mem.host_write(OVMF_BASE, ovmf.bytes()).unwrap();
        mem.pre_encrypt(HASH_PAGE_ADDR, PAGE_SIZE).unwrap();
        mem.pre_encrypt(OVMF_BASE, ovmf.pre_encrypted_size())
            .unwrap();
        for (base, len) in layout.private_ranges() {
            mem.rmp_assign(base, len).unwrap();
        }
        (mem, layout)
    }

    #[test]
    fn image_is_exactly_one_megabyte() {
        let ovmf = OvmfImage::build();
        assert_eq!(ovmf.bytes().len() as u64, OVMF_IMAGE_SIZE);
        assert_eq!(
            ovmf.pre_encrypted_size(),
            OVMF_IMAGE_SIZE + OVMF_METADATA_SIZE
        );
        assert_eq!(OvmfImage::build(), ovmf, "deterministic build");
    }

    #[test]
    fn pi_phases_total_matches_fig3() {
        let total: Nanos = pi_phases(&CostModel::calibrated())
            .iter()
            .map(|p| p.duration)
            .sum();
        let s = total.as_secs_f64();
        assert!((2.9..3.4).contains(&s), "PI phases total {s}s");
    }

    #[test]
    fn ovmf_boot_succeeds_and_is_slow() {
        let (mut mem, layout) = setup();
        let boot = super::boot(
            &mut mem,
            &layout,
            &CostModel::calibrated(),
            KernelKind::Bzimage,
            true,
        )
        .unwrap();
        // Fig. 3: firmware dominated by PI phases, > 3 s.
        assert!(boot.firmware_total().as_secs_f64() > 3.0);
        // The boot-verifier sliver is tiny by comparison.
        assert!(boot.verified.total_time().as_millis_f64() < 100.0);
        assert_eq!(boot.verified.kernel_entry, layout.kernel_dest);
    }

    #[test]
    fn ovmf_detects_tampering_too() {
        let (mut mem, layout) = setup();
        let evil = vec![0x55u8; layout.kernel_size as usize];
        mem.host_write(layout.kernel_staging, &evil).unwrap();
        assert!(super::boot(
            &mut mem,
            &layout,
            &CostModel::calibrated(),
            KernelKind::Bzimage,
            true,
        )
        .is_err());
    }

    #[test]
    fn preencryption_cost_matches_s3_1() {
        // Pre-encrypting OVMF + metadata should land near Fig. 10's 288 ms.
        let cost = CostModel::calibrated();
        let ovmf = OvmfImage::build();
        let ms = cost
            .psp_pre_encrypt_bytes(ovmf.pre_encrypted_size())
            .as_millis_f64();
        assert!((260.0..310.0).contains(&ms), "OVMF pre-encryption {ms} ms");
    }
}
