//! Per-tenant policy contracts: isolation tier, attestation posture, SLO
//! class, quota, and the tenant registry the engine is built from.

use crate::PolicyError;
use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

/// Requested confidential-computing isolation level, ordered weakest to
/// strongest. Mirrors the SEV ladder the substrate actually runs
/// (stock → SEV → SEV-ES → SEV-SNP); more isolation means more serialized
/// PSP work per launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IsolationTier {
    /// No memory encryption — a plain microVM.
    Stock,
    /// SEV: encrypted guest memory.
    Sev,
    /// SEV-ES: encrypted memory + register state.
    SevEs,
    /// SEV-SNP: integrity-protected encrypted memory.
    SevSnp,
}

impl IsolationTier {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IsolationTier::Stock => "stock",
            IsolationTier::Sev => "sev",
            IsolationTier::SevEs => "sev-es",
            IsolationTier::SevSnp => "sev-snp",
        }
    }
}

/// How much attestation evidence the tenant demands before its guest may
/// serve traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Posture {
    /// No attestation requirement.
    None,
    /// A cached verifier verdict is acceptable if it is younger than the
    /// staleness budget (the attplane's VCEK/report cache provides these).
    Cached {
        /// Maximum acceptable verdict age.
        staleness: Nanos,
    },
    /// Every launch must be freshly verified end-to-end.
    Fresh,
}

/// Service-level class. Shed priority is derived from this: batch traffic
/// sheds before latency-sensitive traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloClass {
    /// Interactive traffic with a tight deadline target.
    LatencySensitive,
    /// Throughput traffic that tolerates queueing and sheds first.
    Batch,
}

impl SloClass {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::LatencySensitive => "latency",
            SloClass::Batch => "batch",
        }
    }
}

/// Token-bucket quota parameters (see [`crate::TokenBucket`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaSpec {
    /// Sustained admission rate, requests per virtual second.
    pub rate_per_sec: f64,
    /// Burst capacity in requests.
    pub burst: f64,
}

/// The full per-tenant policy contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicySpec {
    /// Requested isolation tier.
    pub isolation: IsolationTier,
    /// If the substrate runs a weaker tier than requested, may the tenant
    /// be admitted at the substrate tier (`Degrade`) instead of rejected?
    pub accept_degrade: bool,
    /// Attestation posture requirement.
    pub posture: Posture,
    /// Minimum acceptable host TCB (firmware) version. Only enforced when
    /// `posture` is not [`Posture::None`]; the VCEK-seed-extraction attack
    /// is why a strict tenant refuses pre-patch firmware.
    pub min_tcb: u32,
    /// SLO class (drives shed priority).
    pub slo: SloClass,
    /// Per-class deadline target, used for SLO reporting (p99 vs target).
    pub deadline: Nanos,
    /// Weighted-fair-queueing weight; must be > 0.
    pub weight: u64,
    /// Optional admission quota.
    pub quota: Option<QuotaSpec>,
}

impl PolicySpec {
    /// A permissive default: SEV isolation, no posture, latency-sensitive,
    /// weight 1, no quota.
    pub fn permissive() -> Self {
        PolicySpec {
            isolation: IsolationTier::Sev,
            accept_degrade: true,
            posture: Posture::None,
            min_tcb: 0,
            slo: SloClass::LatencySensitive,
            deadline: Nanos::from_millis(250),
            weight: 1,
            quota: None,
        }
    }
}

/// A named tenant: its arrival share in the mixed workload plus its policy
/// contract and (optionally) its own request-class mix.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Display name (stable across runs; used in reports and tables).
    pub name: &'static str,
    /// Relative arrival weight in the mixed workload.
    pub share: u64,
    /// The policy contract.
    pub spec: PolicySpec,
    /// Optional per-tenant request-class mix as `(class index, weight)`
    /// pairs; empty means "use the catalog-wide mix".
    pub class_mix: Vec<(usize, u64)>,
}

impl Tenant {
    /// A tenant with the given name/share/spec and the catalog-wide mix.
    pub fn new(name: &'static str, share: u64, spec: PolicySpec) -> Self {
        Tenant {
            name,
            share,
            spec,
            class_mix: Vec::new(),
        }
    }
}

/// Which scheduler fronts each PSP when the policy layer is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Keep the pre-policy single FIFO bounded queue (tenants are tagged
    /// and accounted, but share one line). The "naive" sweep arm.
    Fifo,
    /// Virtual-finish-time weighted-fair queueing over per-tenant
    /// backlogs with policy-aware shed.
    Wfq,
}

impl Scheduler {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Fifo => "fifo",
            Scheduler::Wfq => "wfq",
        }
    }
}

/// The policy layer's complete configuration: the tenant registry plus
/// which enforcement mechanisms are switched on. Fleet and cluster configs
/// carry this as an `Option` — `None` is the pre-policy byte-identical
/// path.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// The tenant registry; request arrivals are attributed by `share`.
    pub tenants: Vec<Tenant>,
    /// FIFO (naive) or WFQ (policy-aware) scheduling.
    pub scheduler: Scheduler,
    /// Enforce token-bucket quotas (reject on empty bucket, demote
    /// over-quota tenants in the shed order).
    pub quotas: bool,
    /// Enforce posture-aware placement (cluster only: route TCB-strict
    /// tenants exclusively to eligible hosts, re-checked at dispatch).
    pub posture: bool,
}

impl PolicyConfig {
    /// Tag-only config: tenants are sampled and accounted but nothing is
    /// enforced and the FIFO queue is kept. Useful as the baseline arm.
    pub fn tagged(tenants: Vec<Tenant>) -> Self {
        PolicyConfig {
            tenants,
            scheduler: Scheduler::Fifo,
            quotas: false,
            posture: false,
        }
    }

    /// Full enforcement: WFQ scheduling, quotas, posture placement.
    pub fn enforced(tenants: Vec<Tenant>) -> Self {
        PolicyConfig {
            tenants,
            scheduler: Scheduler::Wfq,
            quotas: true,
            posture: true,
        }
    }

    /// Validate every knob; the error message names the offending one.
    pub fn validate(&self, catalog_classes: usize) -> Result<(), PolicyError> {
        if self.tenants.is_empty() {
            return Err(PolicyError::Config("tenant registry is empty"));
        }
        for t in &self.tenants {
            if t.share == 0 {
                return Err(PolicyError::Config("tenant share must be > 0"));
            }
            if t.spec.weight == 0 {
                return Err(PolicyError::Config("tenant weight must be > 0"));
            }
            if let Some(q) = t.spec.quota {
                // Written to reject NaN as well as out-of-range values.
                let rate_ok = q.rate_per_sec > 0.0;
                let burst_ok = q.burst >= 1.0;
                if !rate_ok || !burst_ok {
                    return Err(PolicyError::Config("quota needs rate > 0 and burst >= 1"));
                }
            }
            for &(class, weight) in &t.class_mix {
                if class >= catalog_classes {
                    return Err(PolicyError::Config(
                        "tenant class mix names a class outside the catalog",
                    ));
                }
                if weight == 0 {
                    return Err(PolicyError::Config("tenant class mix weight must be > 0"));
                }
            }
        }
        Ok(())
    }

    /// Sample a tenant index by arrival share. Callers must feed a
    /// *dedicated* RNG stream so tenancy tagging never perturbs the
    /// arrival/class streams the no-policy path draws from.
    pub fn sample_tenant(&self, rng: &mut XorShift64) -> usize {
        let total: u64 = self.tenants.iter().map(|t| t.share).sum();
        let mut draw = rng.next_below(total);
        for (i, t) in self.tenants.iter().enumerate() {
            if draw < t.share {
                return i;
            }
            draw -= t.share;
        }
        self.tenants.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Vec<Tenant> {
        vec![
            Tenant::new("a", 3, PolicySpec::permissive()),
            Tenant::new("b", 1, PolicySpec::permissive()),
        ]
    }

    #[test]
    fn validate_catches_each_bad_knob() {
        let cfg = PolicyConfig::tagged(Vec::new());
        assert!(matches!(cfg.validate(4), Err(PolicyError::Config(_))));

        let mut cfg = PolicyConfig::tagged(two_tenants());
        cfg.tenants[0].share = 0;
        assert!(cfg.validate(4).is_err());

        let mut cfg = PolicyConfig::tagged(two_tenants());
        cfg.tenants[1].spec.weight = 0;
        assert!(cfg.validate(4).is_err());

        let mut cfg = PolicyConfig::tagged(two_tenants());
        cfg.tenants[0].spec.quota = Some(QuotaSpec {
            rate_per_sec: 0.0,
            burst: 4.0,
        });
        assert!(cfg.validate(4).is_err());

        let mut cfg = PolicyConfig::tagged(two_tenants());
        cfg.tenants[0].class_mix = vec![(9, 1)];
        assert!(cfg.validate(4).is_err());

        let cfg = PolicyConfig::enforced(two_tenants());
        assert!(cfg.validate(4).is_ok());
    }

    #[test]
    fn tenant_sampling_tracks_shares_and_is_seeded() {
        let cfg = PolicyConfig::tagged(two_tenants());
        let mut rng = XorShift64::new(42);
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            counts[cfg.sample_tenant(&mut rng)] += 1;
        }
        // 3:1 share split within loose bounds.
        assert!(counts[0] > 2 * counts[1], "{counts:?}");
        // Same seed replays the same tag sequence.
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(cfg.sample_tenant(&mut a), cfg.sample_tenant(&mut b));
        }
    }
}
