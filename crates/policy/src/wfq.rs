//! Deterministic weighted-fair queueing over per-tenant backlogs.
//!
//! Replaces the single FIFO bounded queue in front of each PSP. Each
//! tenant owns a FIFO *lane*; an item enqueued on lane `i` with service
//! cost `c` (its expected PSP nanos) is stamped with a virtual finish time
//!
//! ```text
//! finish = max(V, lane.last_finish) + c·S / weight_i
//! ```
//!
//! where `V` is the queue's virtual clock (advanced to the finish of each
//! popped item) and `S` a fixed-point scale. [`WfqQueue::pop`] always
//! returns the globally smallest `(finish, arrival_seq)` — heavier lanes
//! advance their finish more slowly per unit of work, so a premium
//! tenant's trickle overtakes a batch tenant's flood without ever starving
//! it.
//!
//! Two deliberate deviations from textbook WFQ:
//!
//! * **FIFO collapse.** When *every* lane has the same weight the stamp is
//!   simply the arrival sequence number, so the pop order is byte-identical
//!   to the plain FIFO queue it replaces. Fairness adds nothing at equal
//!   weights, and the collapse preserves exact continuity with the
//!   policy-off path (and is property-tested below).
//! * **Policy-aware shed.** On overflow the queue does not blindly refuse
//!   the newcomer: it ranks lanes by shed priority — batch before
//!   latency-sensitive, quota-violators first within a class, largest
//!   backlog first, seeded tie-break — and displaces the newest item of
//!   the most sheddable lane if that lane is strictly more sheddable than
//!   the newcomer's.
//!
//! Everything is a pure function of (lane specs, seed, operation
//! sequence); the only randomness is the seeded tie-break between equally
//! sheddable victim lanes.

use std::collections::VecDeque;

use crate::PolicyError;
use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

/// Fixed-point scale for virtual finish times (`cost·S / weight`).
const SCALE: u128 = 1 << 16;

/// Static per-lane (per-tenant) scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSpec {
    /// Fair-share weight; must be > 0.
    pub weight: u64,
    /// Latency-sensitive lanes shed *after* batch lanes.
    pub latency_sensitive: bool,
}

/// Outcome of [`WfqQueue::offer`].
#[derive(Debug, PartialEq, Eq)]
pub enum Offer<T> {
    /// The item was enqueued.
    Queued,
    /// The queue was full and a more-sheddable queued item was displaced
    /// to make room; the caller must count the victim as shed.
    Displaced {
        /// Lane the victim belonged to.
        tenant: usize,
        /// The displaced item.
        item: T,
    },
    /// The queue was full and no queued lane was more sheddable than the
    /// newcomer; the item is handed back to be shed.
    Refused(T),
}

#[derive(Debug)]
struct Entry<T> {
    item: T,
    finish: u128,
    seq: u64,
}

#[derive(Debug)]
struct Lane<T> {
    weight: u64,
    latency_sensitive: bool,
    over_quota: bool,
    last_finish: u128,
    items: VecDeque<Entry<T>>,
}

impl<T> Lane<T> {
    /// Shed rank: lower sheds first. Batch+over-quota (0), batch (1),
    /// latency-sensitive+over-quota (2), latency-sensitive (3).
    fn shed_rank(&self) -> u8 {
        (self.latency_sensitive as u8) * 2 + (!self.over_quota as u8)
    }
}

/// A bounded weighted-fair queue over per-tenant lanes.
#[derive(Debug)]
pub struct WfqQueue<T> {
    bound: usize,
    uniform: bool,
    virt: u128,
    seq: u64,
    len: usize,
    shed: u64,
    max_depth: usize,
    rng: XorShift64,
    lanes: Vec<Lane<T>>,
}

impl<T> WfqQueue<T> {
    /// A queue with the given capacity, lane specs, and tie-break seed.
    pub fn new(bound: usize, specs: &[LaneSpec], seed: u64) -> Result<Self, PolicyError> {
        if bound == 0 {
            return Err(PolicyError::Config("wfq bound must be > 0"));
        }
        if specs.is_empty() {
            return Err(PolicyError::Config("wfq needs at least one lane"));
        }
        if specs.iter().any(|s| s.weight == 0) {
            return Err(PolicyError::Config("wfq lane weight must be > 0"));
        }
        let uniform = specs.iter().all(|s| s.weight == specs[0].weight);
        Ok(WfqQueue {
            bound,
            uniform,
            virt: 0,
            seq: 0,
            len: 0,
            shed: 0,
            max_depth: 0,
            rng: XorShift64::new(seed ^ 0x5EF0_u64.rotate_left(32)),
            lanes: specs
                .iter()
                .map(|s| Lane {
                    weight: s.weight,
                    latency_sensitive: s.latency_sensitive,
                    over_quota: false,
                    last_finish: 0,
                    items: VecDeque::new(),
                })
                .collect(),
        })
    }

    /// Mark a lane as currently over (or back within) its quota; over-quota
    /// lanes shed first within their SLO class.
    pub fn set_over_quota(&mut self, tenant: usize, over: bool) {
        self.lanes[tenant].over_quota = over;
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items shed at this queue (refused or displaced on overflow).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// High-water mark of the total backlog.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Current backlog of one lane.
    pub fn backlog(&self, tenant: usize) -> usize {
        self.lanes[tenant].items.len()
    }

    fn stamp(&mut self, tenant: usize, cost: Nanos) -> u128 {
        if self.uniform {
            // Equal weights: collapse to FIFO (arrival order).
            self.seq as u128
        } else {
            let lane = &self.lanes[tenant];
            let start = self.virt.max(lane.last_finish);
            let c = (cost.as_nanos().max(1) as u128) * SCALE;
            start + c / lane.weight as u128
        }
    }

    /// Enqueue `item` on `tenant`'s lane with expected service cost
    /// `cost`. On overflow, policy-aware shed picks the victim (see module
    /// docs); the caller is responsible for terminal accounting of any
    /// [`Offer::Displaced`] / [`Offer::Refused`] item.
    pub fn offer(&mut self, tenant: usize, item: T, cost: Nanos) -> Offer<T> {
        let incoming_rank = self.lanes[tenant].shed_rank();
        let displaced = if self.len >= self.bound {
            match self.pick_victim(incoming_rank) {
                Some(victim) => {
                    let lane = &mut self.lanes[victim];
                    let entry = lane.items.pop_back().expect("victim lane non-empty");
                    lane.last_finish = lane.items.back().map(|e| e.finish).unwrap_or(0);
                    self.len -= 1;
                    self.shed += 1;
                    Some((victim, entry.item))
                }
                None => {
                    self.shed += 1;
                    return Offer::Refused(item);
                }
            }
        } else {
            None
        };

        let finish = self.stamp(tenant, cost);
        let seq = self.seq;
        self.seq += 1;
        let lane = &mut self.lanes[tenant];
        lane.items.push_back(Entry { item, finish, seq });
        lane.last_finish = finish;
        self.len += 1;
        self.max_depth = self.max_depth.max(self.len);
        match displaced {
            Some((tenant, item)) => Offer::Displaced { tenant, item },
            None => Offer::Queued,
        }
    }

    /// The most sheddable non-empty lane strictly more sheddable than
    /// `incoming_rank`: lowest shed rank, then largest backlog, seeded
    /// tie-break.
    fn pick_victim(&mut self, incoming_rank: u8) -> Option<usize> {
        let mut best: Option<(u8, usize)> = None;
        let mut tied: Vec<usize> = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.items.is_empty() {
                continue;
            }
            let key = (lane.shed_rank(), lane.items.len());
            match best {
                None => {
                    best = Some(key);
                    tied = vec![i];
                }
                Some((rank, len)) => {
                    if key.0 < rank || (key.0 == rank && key.1 > len) {
                        best = Some(key);
                        tied = vec![i];
                    } else if key.0 == rank && key.1 == len {
                        tied.push(i);
                    }
                }
            }
        }
        let (rank, _) = best?;
        if rank >= incoming_rank {
            return None;
        }
        if tied.len() == 1 {
            Some(tied[0])
        } else {
            Some(tied[self.rng.next_below(tied.len() as u64) as usize])
        }
    }

    /// Remove and return the item with the globally smallest
    /// `(finish, arrival seq)`, advancing the virtual clock to its finish.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        let mut best: Option<(u128, u64, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some(head) = lane.items.front() {
                let key = (head.finish, head.seq, i);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        let (finish, _, tenant) = best?;
        let entry = self.lanes[tenant].items.pop_front().expect("head exists");
        if self.lanes[tenant].items.is_empty() {
            self.lanes[tenant].last_finish = 0;
        }
        self.len -= 1;
        self.virt = self.virt.max(finish);
        Some((tenant, entry.item))
    }

    /// Pop everything, in pop order. Used when a host dies or a lease
    /// expires and every queued request must fail over.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(weights: &[u64]) -> Vec<LaneSpec> {
        weights
            .iter()
            .map(|&w| LaneSpec {
                weight: w,
                latency_sensitive: false,
            })
            .collect()
    }

    fn ns(v: u64) -> Nanos {
        Nanos::from_nanos(v)
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        assert!(WfqQueue::<u32>::new(0, &lanes(&[1]), 1).is_err());
        assert!(WfqQueue::<u32>::new(4, &[], 1).is_err());
        assert!(WfqQueue::<u32>::new(4, &lanes(&[1, 0]), 1).is_err());
    }

    /// Satellite: byte-identical pop order to FIFO when all weights are
    /// equal, under a seeded bursty arrival pattern.
    #[test]
    fn equal_weights_collapse_to_fifo() {
        let mut q = WfqQueue::new(1024, &lanes(&[5, 5, 5]), 9).unwrap();
        let mut rng = XorShift64::new(0xF1F0);
        let mut fifo: VecDeque<u64> = VecDeque::new();
        let mut item = 0u64;
        for _ in 0..2000 {
            if rng.next_below(3) != 0 {
                let t = rng.next_below(3) as usize;
                let cost = ns(1 + rng.next_below(1_000_000));
                assert!(matches!(q.offer(t, item, cost), Offer::Queued));
                fifo.push_back(item);
                item += 1;
            } else if let Some((_, got)) = q.pop() {
                assert_eq!(Some(got), fifo.pop_front());
            }
        }
        while let Some((_, got)) = q.pop() {
            assert_eq!(Some(got), fifo.pop_front());
        }
        assert!(fifo.is_empty());
    }

    /// Satellite: work-conserving — pop never comes back empty while a
    /// backlog exists, across a seeded push/pop storm.
    #[test]
    fn work_conserving_under_seeded_storm() {
        let mut q = WfqQueue::new(64, &lanes(&[1, 3, 7]), 11).unwrap();
        let mut rng = XorShift64::new(0xBEEF);
        let mut expect = 0usize;
        for i in 0..5000u64 {
            if rng.next_below(2) == 0 {
                match q.offer(
                    rng.next_below(3) as usize,
                    i,
                    ns(1 + rng.next_below(500_000)),
                ) {
                    Offer::Queued => expect += 1,
                    // Displacement swaps one item for another.
                    Offer::Displaced { .. } => {}
                    Offer::Refused(_) => {}
                }
            } else {
                let popped = q.pop();
                assert_eq!(popped.is_some(), expect > 0, "idle with backlog");
                if popped.is_some() {
                    expect -= 1;
                }
            }
            assert_eq!(q.len(), expect);
        }
    }

    /// Satellite: proportional share — with continuous backlog and equal
    /// costs, pops split by weight within one quantum over a long run.
    #[test]
    fn proportional_share_within_one_quantum() {
        // Weights 3:1 (non-uniform so the WFQ path is exercised).
        let mut q = WfqQueue::new(100_000, &lanes(&[3, 1]), 5).unwrap();
        for i in 0..40_000u64 {
            assert!(matches!(
                q.offer((i % 2) as usize, i, ns(1_000_000)),
                Offer::Queued
            ));
        }
        let (mut a, mut b) = (0i64, 0i64);
        for step in 1..=20_000i64 {
            match q.pop().unwrap() {
                (0, _) => a += 1,
                (_, _) => b += 1,
            }
            // Running share must track 3:1 to within one quantum (4 pops).
            let ideal_a = step * 3 / 4;
            assert!((a - ideal_a).abs() <= 4, "step {step}: a={a} b={b}");
        }
        assert!(a > 0 && b > 0);
    }

    /// Satellite: starvation-freedom — a weight-1 lane facing a weight-64
    /// flood still gets served at its fair share, never starved.
    #[test]
    fn no_starvation_for_positive_weights() {
        let mut q = WfqQueue::new(100_000, &lanes(&[64, 1]), 3).unwrap();
        for i in 0..13_000u64 {
            let lane = if i % 65 == 0 { 1 } else { 0 };
            assert!(matches!(q.offer(lane, i, ns(1_000_000)), Offer::Queued));
        }
        let mut since_minnow = 0usize;
        let mut minnow_pops = 0usize;
        for _ in 0..13_000 {
            match q.pop().unwrap() {
                (1, _) => {
                    minnow_pops += 1;
                    since_minnow = 0;
                }
                _ => {
                    since_minnow += 1;
                    // Fair share is 1 in 65; allow slack but bound the gap.
                    assert!(since_minnow <= 130, "weight-1 lane starved");
                }
            }
        }
        assert_eq!(minnow_pops, 200);
    }

    /// Satellite: deterministic replay — the same seed and operation
    /// sequence reproduce the same pop/shed trace.
    #[test]
    fn deterministic_replay_from_seed() {
        let run = |seed: u64| {
            let mut q = WfqQueue::new(8, &lanes(&[2, 5, 1]), seed).unwrap();
            let mut rng = XorShift64::new(seed ^ 0xABCD);
            let mut trace = Vec::new();
            for i in 0..2000u64 {
                if rng.next_below(3) > 0 {
                    let t = rng.next_below(3) as usize;
                    match q.offer(t, i, ns(1 + rng.next_below(250_000))) {
                        Offer::Queued => trace.push((0u8, t as u64, 0)),
                        Offer::Displaced { tenant, item } => trace.push((1, tenant as u64, item)),
                        Offer::Refused(item) => trace.push((2, 0, item)),
                    }
                } else if let Some((t, item)) = q.pop() {
                    trace.push((3, t as u64, item));
                }
            }
            (trace, q.shed(), q.max_depth())
        };
        assert_eq!(run(77), run(77));
        assert_eq!(run(1), run(1));
    }

    /// Policy-aware shed: batch lanes displace before latency-sensitive
    /// ones, and a batch newcomer cannot displace latency-sensitive work.
    #[test]
    fn shed_prefers_batch_then_quota_violators() {
        let specs = [
            LaneSpec {
                weight: 1,
                latency_sensitive: true,
            },
            LaneSpec {
                weight: 1,
                latency_sensitive: false,
            },
            LaneSpec {
                weight: 1,
                latency_sensitive: false,
            },
        ];
        let mut q = WfqQueue::new(4, &specs, 2).unwrap();
        assert!(matches!(q.offer(0, 100, ns(10)), Offer::Queued));
        assert!(matches!(q.offer(1, 200, ns(10)), Offer::Queued));
        assert!(matches!(q.offer(1, 201, ns(10)), Offer::Queued));
        assert!(matches!(q.offer(2, 300, ns(10)), Offer::Queued));
        // Full. Latency-sensitive newcomer displaces from the batch lane
        // with the largest backlog (lane 1), newest item first.
        match q.offer(0, 101, ns(10)) {
            Offer::Displaced { tenant, item } => {
                assert_eq!(tenant, 1);
                assert_eq!(item, 201);
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        // A quota-violating batch lane sheds before a compliant one.
        q.set_over_quota(2, true);
        match q.offer(0, 102, ns(10)) {
            Offer::Displaced { tenant, item } => {
                assert_eq!(tenant, 2);
                assert_eq!(item, 300);
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        // A batch newcomer cannot displace latency-sensitive work once
        // only LS items remain... fill with LS first.
        let mut q = WfqQueue::new(2, &specs, 2).unwrap();
        assert!(matches!(q.offer(0, 1, ns(10)), Offer::Queued));
        assert!(matches!(q.offer(0, 2, ns(10)), Offer::Queued));
        match q.offer(1, 3, ns(10)) {
            Offer::Refused(item) => assert_eq!(item, 3),
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(q.shed(), 1);
    }

    /// A premium trickle overtakes a batch flood that arrived first.
    #[test]
    fn heavy_lane_overtakes_flood() {
        let specs = [
            LaneSpec {
                weight: 8,
                latency_sensitive: true,
            },
            LaneSpec {
                weight: 1,
                latency_sensitive: false,
            },
        ];
        let mut q = WfqQueue::new(1024, &specs, 4).unwrap();
        // Flood 50 batch items, then one premium arrival.
        for i in 0..50u64 {
            assert!(matches!(q.offer(1, i, ns(1_000_000)), Offer::Queued));
        }
        assert!(matches!(q.offer(0, 999, ns(1_000_000)), Offer::Queued));
        // Premium pops within its weight window, not behind the flood.
        let mut position = 0;
        loop {
            position += 1;
            let (tenant, item) = q.pop().unwrap();
            if tenant == 0 {
                assert_eq!(item, 999);
                break;
            }
        }
        assert!(position <= 9, "premium served at position {position}");
    }

    #[test]
    fn drain_empties_in_pop_order() {
        let mut q = WfqQueue::new(16, &lanes(&[2, 1]), 6).unwrap();
        for i in 0..10u64 {
            q.offer((i % 2) as usize, i, ns(500_000));
        }
        let drained = q.drain();
        assert_eq!(drained.len(), 10);
        assert!(q.is_empty());
        // Drain order equals repeated pop order on an identical twin.
        let mut twin = WfqQueue::new(16, &lanes(&[2, 1]), 6).unwrap();
        for i in 0..10u64 {
            twin.offer((i % 2) as usize, i, ns(500_000));
        }
        let mut popped = Vec::new();
        while let Some(e) = twin.pop() {
            popped.push(e);
        }
        assert_eq!(drained, popped);
    }
}
