//! Deterministic token-bucket quotas on the virtual clock.
//!
//! A bucket refills continuously at `rate_per_sec` up to `burst` tokens;
//! each admitted request takes one token. All arithmetic is a pure
//! function of the virtual timestamps the simulation feeds in, so quota
//! behaviour replays bit-identically from the seed.

use crate::spec::QuotaSpec;
use sevf_sim::Nanos;

/// A continuously-refilling token bucket on virtual time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Nanos,
}

impl TokenBucket {
    /// A bucket that starts full at virtual time `start`.
    pub fn new(spec: QuotaSpec, start: Nanos) -> Self {
        TokenBucket {
            rate_per_sec: spec.rate_per_sec,
            burst: spec.burst,
            tokens: spec.burst,
            last: start,
        }
    }

    fn refill(&mut self, now: Nanos) {
        if now > self.last {
            let dt = (now.as_nanos() - self.last.as_nanos()) as f64 / 1e9;
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
            self.last = now;
        }
    }

    /// Take one token if available. Returns whether the request is within
    /// quota.
    pub fn try_take(&mut self, now: Nanos) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token level after refilling to `now` (read-only peek used
    /// for shed-order demotion: a tenant whose bucket is dry is a
    /// quota-violator and sheds first within its SLO class).
    pub fn peek(&self, now: Nanos) -> f64 {
        let dt = now.as_nanos().saturating_sub(self.last.as_nanos()) as f64 / 1e9;
        (self.tokens + dt * self.rate_per_sec).min(self.burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn burst_then_throttle_then_refill() {
        let mut b = TokenBucket::new(
            QuotaSpec {
                rate_per_sec: 10.0,
                burst: 3.0,
            },
            Nanos::ZERO,
        );
        // Burst of 3 admitted back-to-back, 4th throttled.
        assert!(b.try_take(Nanos::ZERO));
        assert!(b.try_take(Nanos::ZERO));
        assert!(b.try_take(Nanos::ZERO));
        assert!(!b.try_take(Nanos::ZERO));
        // 100 ms at 10/s refills exactly one token.
        assert!(b.try_take(ms(100)));
        assert!(!b.try_take(ms(100)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(
            QuotaSpec {
                rate_per_sec: 1000.0,
                burst: 2.0,
            },
            Nanos::ZERO,
        );
        assert!(b.try_take(Nanos::ZERO));
        // A long idle period refills to burst, not beyond.
        assert!((b.peek(Nanos::from_secs(60)) - 2.0).abs() < 1e-9);
        assert!(b.try_take(Nanos::from_secs(60)));
        assert!(b.try_take(Nanos::from_secs(60)));
        assert!(!b.try_take(Nanos::from_secs(60)));
    }

    #[test]
    fn deterministic_on_virtual_time() {
        let spec = QuotaSpec {
            rate_per_sec: 37.5,
            burst: 5.0,
        };
        let run = || {
            let mut b = TokenBucket::new(spec, Nanos::ZERO);
            (0..200).map(|i| b.try_take(ms(i * 7))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
