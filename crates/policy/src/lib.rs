//! # sevf-policy — multi-tenant policy engine and QoS scheduling
//!
//! SEVeriFast's core observation is that SEV launch cost is a scarce,
//! *serialized* resource: every launch-measurement command funnels through
//! the PSP. In a production fleet that scarcity must be **allocated**, not
//! just queued. Tenants differ along three axes:
//!
//! * **isolation tier** — stock → SEV → SEV-ES → SEV-SNP, each buying more
//!   of the threat model at more PSP cost;
//! * **attestation posture** — none, a cached verdict within a staleness
//!   budget, or a fresh verify, plus a minimum TCB version (the
//!   VCEK-seed-extraction attack in PAPERS.md is why a tenant may refuse
//!   hosts below a firmware floor or with a distrusted chip key);
//! * **SLO class** — latency-sensitive vs batch, with a per-class deadline
//!   target and shed priority.
//!
//! This crate is the dependency-light bottom layer (sevf-sim + sevf-obs
//! only) that `sevf-fleet` and `sevf-cluster` thread through their
//! admission→dispatch paths:
//!
//! * [`Tenant`] / [`PolicySpec`] — the per-tenant contract ([`spec`]);
//! * [`PolicyEngine::evaluate`] — the single choke point every dispatch
//!   flows through, returning a [`PolicyDecision`] record
//!   (admit / degrade / reject) ([`engine`]);
//! * [`TokenBucket`] — deterministic per-tenant quota on virtual time
//!   ([`quota`]);
//! * [`WfqQueue`] — virtual-finish-time weighted-fair queueing over
//!   per-tenant backlogs with policy-aware shed ([`wfq`]).
//!
//! Everything is a pure function of (config, seed, virtual clock): no wall
//! time, no global state, no external crates. A disabled policy
//! (`Option::None` in the fleet/cluster configs) consumes zero randomness
//! and leaves the host byte-identical to the pre-policy code path.

pub mod engine;
pub mod quota;
pub mod spec;
pub mod wfq;

pub use engine::{
    HostPosture, PolicyDecision, PolicyEngine, RejectReason, TenantMetrics, TenantRollup,
};
pub use quota::TokenBucket;
pub use spec::{
    IsolationTier, PolicyConfig, PolicySpec, Posture, QuotaSpec, Scheduler, SloClass, Tenant,
};
pub use wfq::{LaneSpec, Offer, WfqQueue};

/// Everything a policy misconfiguration can say for itself.
///
/// `PolicyError` is a chain *leaf*: `FleetError::Policy` and
/// `ClusterError::Policy` wrap it with `source()` so callers can walk from
/// a failed sweep down to the exact invalid knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// A structurally invalid [`PolicyConfig`] (empty tenant set, zero
    /// weight, zero quota rate, ...). The message names the knob.
    Config(&'static str),
    /// A tenant index outside the registry — always a caller bug.
    UnknownTenant {
        /// The offending index.
        tenant: usize,
        /// How many tenants the registry actually holds.
        tenants: usize,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Config(what) => write!(f, "invalid policy config: {what}"),
            PolicyError::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (registry holds {tenants})")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// One-stop imports for consumers.
pub mod prelude {
    pub use crate::engine::{
        HostPosture, PolicyDecision, PolicyEngine, RejectReason, TenantMetrics, TenantRollup,
    };
    pub use crate::quota::TokenBucket;
    pub use crate::spec::{
        IsolationTier, PolicyConfig, PolicySpec, Posture, QuotaSpec, Scheduler, SloClass, Tenant,
    };
    pub use crate::wfq::{LaneSpec, Offer, WfqQueue};
    pub use crate::PolicyError;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_and_are_leaves() {
        use std::error::Error;
        let e = PolicyError::Config("no tenants");
        assert!(e.to_string().contains("no tenants"));
        assert!(e.source().is_none());
        let e = PolicyError::UnknownTenant {
            tenant: 7,
            tenants: 2,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.source().is_none());
    }
}
