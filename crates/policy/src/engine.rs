//! The policy engine: the single choke point every dispatch flows through.
//!
//! `evaluate` is deliberately shaped like a state-machine transition
//! record (the zero-os exemplar in SNIPPETS.md: "all consequential
//! transitions flow through the Policy Engine"): one call per dispatch
//! decision, one [`PolicyDecision`] out, recorded as an obs marker so
//! traces show *why* a request landed where it did. Host eligibility
//! ([`PolicyEngine::host_eligible`]) is the posture-aware placement
//! filter the cluster applies before its ring/JSQ router runs — and
//! re-checks at dispatch, because a TCB rollout can change a host's
//! firmware between enqueue and pop.

use crate::quota::TokenBucket;
use crate::spec::{IsolationTier, PolicyConfig, PolicySpec, Posture, SloClass};
use crate::PolicyError;
use sevf_obs::metrics::percentile_or_zero;
use sevf_obs::Histogram;
use sevf_sim::Nanos;

/// What the placement layer knows about a host when policy consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostPosture {
    /// The host's current TCB (firmware) version.
    pub tcb_version: u32,
    /// Whether the host's chip key is currently distrusted.
    pub revoked: bool,
}

/// Why a request was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty.
    QuotaExceeded,
    /// The substrate runs a weaker isolation tier than the tenant demands
    /// and the tenant refuses degradation.
    IsolationUnavailable,
    /// No live host satisfies the tenant's posture (min TCB / revocation)
    /// requirements right now.
    NoEligibleHost,
}

impl RejectReason {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QuotaExceeded => "quota-exceeded",
            RejectReason::IsolationUnavailable => "isolation-unavailable",
            RejectReason::NoEligibleHost => "no-eligible-host",
        }
    }
}

/// The decision record produced by [`PolicyEngine::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Admit at the tenant's SLO class and fair-share weight.
    Admit {
        /// SLO class driving deadline targets and shed priority.
        class: SloClass,
        /// WFQ weight.
        weight: u64,
    },
    /// Admit, but at a weaker isolation tier than requested (the tenant
    /// opted in via `accept_degrade`).
    Degrade {
        /// The tier actually provided.
        to: IsolationTier,
    },
    /// Turn the request away before it consumes any PSP work.
    Reject {
        /// Why.
        reason: RejectReason,
    },
}

/// The policy engine: tenant specs + live quota state.
#[derive(Debug)]
pub struct PolicyEngine {
    substrate: IsolationTier,
    quotas_enforced: bool,
    specs: Vec<PolicySpec>,
    buckets: Vec<Option<TokenBucket>>,
}

impl PolicyEngine {
    /// Build an engine for a validated config against a substrate that
    /// provides `substrate` isolation.
    pub fn new(
        cfg: &PolicyConfig,
        substrate: IsolationTier,
        catalog_classes: usize,
    ) -> Result<Self, PolicyError> {
        cfg.validate(catalog_classes)?;
        Ok(PolicyEngine {
            substrate,
            quotas_enforced: cfg.quotas,
            specs: cfg.tenants.iter().map(|t| t.spec).collect(),
            buckets: cfg
                .tenants
                .iter()
                .map(|t| t.spec.quota.map(|q| TokenBucket::new(q, Nanos::ZERO)))
                .collect(),
        })
    }

    /// How many tenants the engine knows.
    pub fn tenant_count(&self) -> usize {
        self.specs.len()
    }

    /// The spec for one tenant.
    pub fn spec(&self, tenant: usize) -> &PolicySpec {
        &self.specs[tenant]
    }

    /// The single choke point: one call per dispatch decision.
    ///
    /// Order of checks: quota (cheapest, protects the PSP), then
    /// isolation availability. Quota is charged even for decisions that
    /// later fail placement — admission is the contract boundary.
    pub fn evaluate(&mut self, tenant: usize, now: Nanos) -> PolicyDecision {
        debug_assert!(tenant < self.specs.len(), "unknown tenant {tenant}");
        let spec = self.specs[tenant];
        if self.quotas_enforced {
            if let Some(bucket) = &mut self.buckets[tenant] {
                if !bucket.try_take(now) {
                    return PolicyDecision::Reject {
                        reason: RejectReason::QuotaExceeded,
                    };
                }
            }
        }
        if spec.isolation > self.substrate {
            return if spec.accept_degrade {
                PolicyDecision::Degrade { to: self.substrate }
            } else {
                PolicyDecision::Reject {
                    reason: RejectReason::IsolationUnavailable,
                }
            };
        }
        PolicyDecision::Admit {
            class: spec.slo,
            weight: spec.weight,
        }
    }

    /// Whether `tenant`'s bucket is currently dry (quota-violator — sheds
    /// first within its SLO class). Read-only; does not take a token.
    pub fn over_quota(&self, tenant: usize, now: Nanos) -> bool {
        self.quotas_enforced
            && self.buckets[tenant]
                .as_ref()
                .map(|b| b.peek(now) < 1.0)
                .unwrap_or(false)
    }

    /// Posture-aware placement filter: may `tenant`'s guest launch on a
    /// host in this posture? Tenants with [`Posture::None`] accept any
    /// host; everyone else demands an un-revoked chip key and a TCB at or
    /// above their floor.
    pub fn host_eligible(&self, tenant: usize, host: HostPosture) -> bool {
        let spec = &self.specs[tenant];
        match spec.posture {
            Posture::None => true,
            Posture::Cached { .. } | Posture::Fresh => {
                !host.revoked && host.tcb_version >= spec.min_tcb
            }
        }
    }

    /// Per-lane WFQ parameters derived from the specs.
    pub fn lane_specs(&self) -> Vec<crate::wfq::LaneSpec> {
        self.specs
            .iter()
            .map(|s| crate::wfq::LaneSpec {
                weight: s.weight,
                latency_sensitive: s.slo == SloClass::LatencySensitive,
            })
            .collect()
    }
}

/// Per-tenant terminal accounting: the conservation invariant, extended
/// with the `rejected` term, must hold for every tenant individually:
///
/// ```text
/// completed + shed + breaker_sheds + timeouts + failed + rejected == issued
/// ```
#[derive(Debug, Clone, Default)]
pub struct TenantMetrics {
    /// Requests attributed to this tenant.
    pub issued: usize,
    /// Requests that finished a launch.
    pub completed: usize,
    /// Queue-overflow / unroutable sheds.
    pub shed: u64,
    /// Breaker-ladder sheds.
    pub breaker_sheds: u64,
    /// Deadline expirations.
    pub timeouts: u64,
    /// Permanent failures.
    pub failed: u64,
    /// Turned away by policy (quota / isolation / posture).
    pub rejected: u64,
    /// Admitted at a degraded isolation tier.
    pub degraded: u64,
    /// End-to-end latencies of completed requests, milliseconds.
    pub latencies_ms: Vec<f64>,
}

impl TenantMetrics {
    /// Record a completion with its end-to-end latency.
    pub fn complete(&mut self, latency: Nanos) {
        self.completed += 1;
        self.latencies_ms.push(latency.as_millis_f64());
    }

    /// Every issued request reached exactly one terminal.
    pub fn conserved(&self) -> bool {
        self.completed as u64
            + self.shed
            + self.breaker_sheds
            + self.timeouts
            + self.failed
            + self.rejected
            == self.issued as u64
    }

    /// Median completed latency (ms).
    pub fn p50_ms(&self) -> f64 {
        percentile_or_zero(&self.latencies_ms, 50.0)
    }

    /// Tail completed latency (ms).
    pub fn p99_ms(&self) -> f64 {
        percentile_or_zero(&self.latencies_ms, 99.0)
    }

    /// Completed requests per virtual second over `makespan`.
    pub fn goodput_rps(&self, makespan: Nanos) -> f64 {
        if makespan == Nanos::ZERO {
            0.0
        } else {
            self.completed as f64 / makespan.as_secs_f64()
        }
    }

    /// Mergeable latency histogram (obs schema) with the given bucket
    /// width in ms — the per-tenant histograms the sweep tables render.
    pub fn latency_histogram(&self, width_ms: f64) -> Histogram {
        let mut h = Histogram::new(width_ms);
        for &v in &self.latencies_ms {
            h.record(v);
        }
        h
    }
}

/// A tenant's name paired with its terminal accounting — the per-tenant
/// rows fleet and cluster reports carry when policy is active.
#[derive(Debug, Clone)]
pub struct TenantRollup {
    /// Tenant display name.
    pub name: &'static str,
    /// Terminal accounting and latencies.
    pub metrics: TenantMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PolicyConfig, QuotaSpec, Tenant};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn engine(cfg: &PolicyConfig) -> PolicyEngine {
        PolicyEngine::new(cfg, IsolationTier::Sev, 4).unwrap()
    }

    #[test]
    fn admit_carries_class_and_weight() {
        let mut spec = PolicySpec::permissive();
        spec.weight = 7;
        spec.slo = SloClass::Batch;
        let cfg = PolicyConfig::tagged(vec![Tenant::new("t", 1, spec)]);
        let mut eng = engine(&cfg);
        assert_eq!(
            eng.evaluate(0, Nanos::ZERO),
            PolicyDecision::Admit {
                class: SloClass::Batch,
                weight: 7
            }
        );
    }

    #[test]
    fn quota_rejects_only_when_enforced() {
        let mut spec = PolicySpec::permissive();
        spec.quota = Some(QuotaSpec {
            rate_per_sec: 1.0,
            burst: 2.0,
        });
        let tenants = vec![Tenant::new("t", 1, spec)];
        // Not enforced: the bucket never bites.
        let mut eng = engine(&PolicyConfig::tagged(tenants.clone()));
        for _ in 0..10 {
            assert!(matches!(
                eng.evaluate(0, Nanos::ZERO),
                PolicyDecision::Admit { .. }
            ));
        }
        // Enforced: burst of 2 then rejects, refilling on virtual time.
        let mut cfg = PolicyConfig::tagged(tenants);
        cfg.quotas = true;
        let mut eng = engine(&cfg);
        assert!(matches!(
            eng.evaluate(0, Nanos::ZERO),
            PolicyDecision::Admit { .. }
        ));
        assert!(matches!(
            eng.evaluate(0, Nanos::ZERO),
            PolicyDecision::Admit { .. }
        ));
        assert_eq!(
            eng.evaluate(0, Nanos::ZERO),
            PolicyDecision::Reject {
                reason: RejectReason::QuotaExceeded
            }
        );
        assert!(eng.over_quota(0, Nanos::ZERO));
        assert!(matches!(
            eng.evaluate(0, ms(1000)),
            PolicyDecision::Admit { .. }
        ));
    }

    #[test]
    fn isolation_mismatch_degrades_or_rejects() {
        let mut strict = PolicySpec::permissive();
        strict.isolation = IsolationTier::SevSnp;
        strict.accept_degrade = false;
        let mut flexible = strict;
        flexible.accept_degrade = true;
        let cfg = PolicyConfig::tagged(vec![
            Tenant::new("strict", 1, strict),
            Tenant::new("flexible", 1, flexible),
        ]);
        // Substrate runs plain SEV.
        let mut eng = engine(&cfg);
        assert_eq!(
            eng.evaluate(0, Nanos::ZERO),
            PolicyDecision::Reject {
                reason: RejectReason::IsolationUnavailable
            }
        );
        assert_eq!(
            eng.evaluate(1, Nanos::ZERO),
            PolicyDecision::Degrade {
                to: IsolationTier::Sev
            }
        );
        // Substrate runs SNP: both admit.
        let mut eng = PolicyEngine::new(&cfg, IsolationTier::SevSnp, 4).unwrap();
        assert!(matches!(
            eng.evaluate(0, Nanos::ZERO),
            PolicyDecision::Admit { .. }
        ));
    }

    #[test]
    fn posture_filter_checks_tcb_and_revocation() {
        let mut strict = PolicySpec::permissive();
        strict.posture = Posture::Fresh;
        strict.min_tcb = 2;
        let lax = PolicySpec::permissive();
        let cfg = PolicyConfig::tagged(vec![
            Tenant::new("strict", 1, strict),
            Tenant::new("lax", 1, lax),
        ]);
        let eng = engine(&cfg);
        let old = HostPosture {
            tcb_version: 1,
            revoked: false,
        };
        let patched = HostPosture {
            tcb_version: 2,
            revoked: false,
        };
        let burned = HostPosture {
            tcb_version: 5,
            revoked: true,
        };
        assert!(!eng.host_eligible(0, old));
        assert!(eng.host_eligible(0, patched));
        assert!(!eng.host_eligible(0, burned));
        // Posture::None accepts anything, even revoked hosts.
        assert!(eng.host_eligible(1, old));
        assert!(eng.host_eligible(1, burned));
    }

    #[test]
    fn tenant_metrics_conserve_and_summarize() {
        let mut m = TenantMetrics {
            issued: 10,
            ..Default::default()
        };
        m.complete(ms(10));
        m.complete(ms(30));
        m.shed = 2;
        m.breaker_sheds = 1;
        m.timeouts = 2;
        m.failed = 1;
        m.rejected = 2;
        assert!(m.conserved());
        m.issued += 1;
        assert!(!m.conserved());
        assert!(m.p50_ms() > 0.0);
        assert!(m.p99_ms() >= m.p50_ms());
        assert_eq!(m.latency_histogram(5.0).count(), 2);
    }
}
