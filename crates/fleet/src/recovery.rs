//! Retry, deadline, circuit-breaker, and degradation policies.
//!
//! The recovery machinery turns injected faults ([`sevf_sim::fault`]) into
//! *degraded* service instead of *no* service:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and seeded
//!   jitter, all in virtual time. The jitter draw is stateless
//!   ([`sevf_sim::fault::unit_draw`]), so two runs with the same seed produce
//!   identical schedules regardless of event interleaving.
//! * Per-request deadlines — a retry that cannot land before the deadline is
//!   shed as a timeout rather than queued forever.
//! * [`CircuitBreaker`] — per request class. Consecutive failures trip it,
//!   each trip drops the class one serving tier (warm → template → cold →
//!   shed), and a success after the cooldown heals one level.
//! * PSP quiesce — while the PSP is inside a firmware-reset outage, the
//!   resilient fleet holds PSP-needing dispatches in the admission queue and
//!   releases them when the outage ends; the naive fleet keeps dispatching
//!   into the dead PSP and eats the failures.

use sevf_sim::fault::unit_draw;
use sevf_sim::Nanos;

/// Domain separator for backoff-jitter draws (see [`unit_draw`]).
const DOM_BACKOFF: u64 = 0x7E57_BAC0_FF01;

/// Bounded exponential backoff with seeded jitter, in virtual time.
///
/// The delay before retry `f` (1-based failure count) is
/// `min(cap, base · 2^(f-1) · (1 + jitter · u))` with `u` a stateless
/// uniform draw in `[0, 1)` keyed by `(seed, token, f)`. Because
/// `jitter ≤ 1`, the jittered multiplier never exceeds the doubling, so the
/// schedule is monotone non-decreasing up to the cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Nanos,
    /// Upper bound on any single backoff delay.
    pub cap: Nanos,
    /// Jitter amplitude in `[0, 1]`: the delay is stretched by up to this
    /// fraction, never shrunk (so monotonicity survives).
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Nanos::ZERO,
            cap: Nanos::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// The resilient default: four attempts, 10 ms base doubling to a 2 s
    /// cap, 30% jitter.
    pub fn resilient(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Nanos::from_millis(10),
            cap: Nanos::from_secs(2),
            jitter: 0.3,
            seed,
        }
    }

    /// Checks every knob is in range.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first invalid knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1");
        }
        if !self.jitter.is_finite() || !(0.0..=1.0).contains(&self.jitter) {
            return Err("jitter outside [0, 1]");
        }
        if self.max_attempts > 1 && self.base == Nanos::ZERO {
            return Err("base backoff must be positive when retries are on");
        }
        if self.cap < self.base {
            return Err("cap must be at least base");
        }
        Ok(())
    }

    /// The backoff before the retry following failure number `failures`
    /// (1-based), or `None` when the attempt budget is exhausted. `token`
    /// identifies the request so distinct requests jitter independently.
    pub fn backoff(&self, failures: u32, token: u64) -> Option<Nanos> {
        if failures >= self.max_attempts {
            return None;
        }
        let mult = 1u64.checked_shl(failures - 1).unwrap_or(u64::MAX);
        let doubling = Nanos::from_nanos(self.base.as_nanos().saturating_mul(mult));
        let capped = doubling.min(self.cap);
        let u = unit_draw(self.seed, DOM_BACKOFF, token ^ u64::from(failures) << 48);
        Some(capped.scale_f64(1.0 + self.jitter * u).min(self.cap))
    }
}

/// Circuit-breaker knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures of a class that trip the breaker one level.
    pub threshold: u32,
    /// How long a trip holds before a success may heal a level.
    pub cooldown: Nanos,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: Nanos::from_millis(500),
        }
    }
}

/// Per-class circuit breaker driving the degradation ladder.
///
/// `level` counts how many serving tiers the class has fallen: 0 is the
/// configured tier, each trip adds one (warm → template → cold → shed), and
/// a success observed after the cooldown heals one level.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    consecutive: u32,
    level: usize,
    open_until: Nanos,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker at level 0.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            consecutive: 0,
            level: 0,
            open_until: Nanos::ZERO,
            trips: 0,
        }
    }

    /// Records a failure at `now`; returns `true` when this one tripped the
    /// breaker a level deeper.
    ///
    /// While the breaker is open (inside the cooldown of a trip), further
    /// failures do not deepen it: one fault event — e.g. a PSP reset
    /// poisoning every in-flight launch of a class — lands a *burst* of
    /// failures, and counting the whole burst would slam the class several
    /// rungs down the ladder at once. One trip per cooldown window.
    pub fn on_failure(&mut self, now: Nanos) -> bool {
        if now < self.open_until {
            return false;
        }
        self.consecutive += 1;
        if self.consecutive >= self.config.threshold {
            self.consecutive = 0;
            self.level += 1;
            self.open_until = now + self.config.cooldown;
            self.trips += 1;
            true
        } else {
            false
        }
    }

    /// Records a success at `now`: clears the consecutive-failure streak and,
    /// once the cooldown has passed, heals one degradation level (re-arming
    /// the cooldown so healing is paced, not instant).
    pub fn on_success(&mut self, now: Nanos) {
        self.consecutive = 0;
        if self.level > 0 && now >= self.open_until {
            self.level -= 1;
            self.open_until = now + self.config.cooldown;
        }
    }

    /// Time-based healing: each elapsed cooldown period since the last trip
    /// decays one degradation level. Without this, a class degraded past
    /// the bottom of the ladder would shed forever — shedding launches
    /// nothing, so no success could ever heal it (no half-open probes in a
    /// success-only breaker).
    pub fn heal(&mut self, now: Nanos) {
        while self.level > 0 && now >= self.open_until {
            self.level -= 1;
            self.open_until += self.config.cooldown;
        }
    }

    /// Current degradation level (0 = healthy).
    pub fn level(&self) -> usize {
        self.level
    }

    /// How many times the breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// The full recovery configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Retry schedule for failed launches.
    pub retry: RetryPolicy,
    /// Per-request deadline from arrival; past it the request is shed as a
    /// timeout instead of retried or dispatched. `None` = no deadline.
    pub deadline: Option<Nanos>,
    /// Per-class circuit breaker; `None` disables degradation.
    pub breaker: Option<BreakerConfig>,
    /// Hold PSP-needing dispatches while the PSP is inside a reset outage
    /// (requeue and release at outage end) instead of feeding the dead PSP.
    pub quiesce: bool,
}

impl RecoveryConfig {
    /// The naive fleet: no retries, no deadline, no breaker, no quiesce.
    /// Every fault is a permanently failed request.
    pub fn none() -> Self {
        RecoveryConfig {
            retry: RetryPolicy::none(),
            deadline: None,
            breaker: None,
            quiesce: false,
        }
    }

    /// The resilient fleet: retries with backoff, a deadline, a per-class
    /// breaker, and PSP quiesce across resets.
    pub fn resilient(seed: u64) -> Self {
        RecoveryConfig {
            retry: RetryPolicy::resilient(seed),
            deadline: Some(Nanos::from_secs(10)),
            breaker: Some(BreakerConfig::default()),
            quiesce: true,
        }
    }

    /// Checks the nested policies.
    ///
    /// # Errors
    ///
    /// Returns the first nested validation error.
    pub fn validate(&self) -> Result<(), &'static str> {
        self.retry.validate()?;
        if self.deadline == Some(Nanos::ZERO) {
            return Err("deadline must be positive when set");
        }
        if let Some(b) = self.breaker {
            if b.threshold == 0 {
                return Err("breaker threshold must be at least 1");
            }
        }
        Ok(())
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_monotone_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Nanos::from_millis(10),
            cap: Nanos::from_millis(200),
            jitter: 0.5,
            seed: 42,
        };
        let mut prev = Nanos::ZERO;
        for f in 1..p.max_attempts {
            let d = p.backoff(f, 7).unwrap();
            assert!(d >= prev, "failure {f}: {d} < {prev}");
            assert!(d <= p.cap, "failure {f}: {d} over cap");
            prev = d;
        }
        assert_eq!(p.backoff(p.max_attempts, 7), None);
    }

    #[test]
    fn no_retry_policy_exhausts_immediately() {
        let p = RetryPolicy::none();
        assert_eq!(p.backoff(1, 0), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn jitter_stretches_but_never_shrinks() {
        let plain = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::resilient(3)
        };
        let jittered = RetryPolicy::resilient(3);
        for f in 1..3 {
            let a = plain.backoff(f, 11).unwrap();
            let b = jittered.backoff(f, 11).unwrap();
            assert!(b >= a, "failure {f}: jittered {b} below plain {a}");
        }
    }

    #[test]
    fn huge_failure_counts_do_not_overflow() {
        let p = RetryPolicy {
            max_attempts: 64,
            ..RetryPolicy::resilient(1)
        };
        // 2^(f-1) would overflow u64 scaling; the shift clamp + cap keep the
        // delay finite and bounded.
        let d = p.backoff(60, 0).unwrap();
        assert!(d <= p.cap && d > Nanos::ZERO, "delay {d}");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut p = RetryPolicy::resilient(1);
        p.max_attempts = 0;
        assert!(p.validate().is_err());

        let mut p = RetryPolicy::resilient(1);
        p.jitter = 1.5;
        assert!(p.validate().is_err());

        let mut p = RetryPolicy::resilient(1);
        p.cap = Nanos::from_nanos(1);
        assert!(p.validate().is_err());

        let mut r = RecoveryConfig::resilient(1);
        r.deadline = Some(Nanos::ZERO);
        assert!(r.validate().is_err());
        assert!(RecoveryConfig::none().validate().is_ok());
        assert!(RecoveryConfig::resilient(9).validate().is_ok());
    }

    #[test]
    fn breaker_trips_after_threshold_and_heals_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 2,
            cooldown: Nanos::from_millis(100),
        });
        let t0 = Nanos::from_millis(1);
        assert!(!b.on_failure(t0));
        assert!(b.on_failure(t0), "second consecutive failure trips");
        assert_eq!(b.level(), 1);
        assert_eq!(b.trips(), 1);

        // Success inside the cooldown clears the streak but does not heal.
        b.on_success(Nanos::from_millis(50));
        assert_eq!(b.level(), 1);

        // Success after the cooldown heals one level.
        b.on_success(Nanos::from_millis(200));
        assert_eq!(b.level(), 0);
    }

    #[test]
    fn heal_decays_one_level_per_elapsed_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            cooldown: Nanos::from_millis(100),
        });
        // A failure burst at one instant trips exactly once: while the
        // breaker is open, stragglers from the same fault event are inert.
        assert!(b.on_failure(Nanos::ZERO));
        assert!(!b.on_failure(Nanos::ZERO));
        assert_eq!(b.level(), 1);

        // A failure after the cooldown trips a second rung.
        assert!(b.on_failure(Nanos::from_millis(100)));
        assert_eq!(b.level(), 2);

        // Inside the new cooldown nothing heals — even with no successes.
        b.heal(Nanos::from_millis(150));
        assert_eq!(b.level(), 2);

        // One cooldown past the trip: one level back. Two past: fully
        // healed. This is what un-wedges a class that was shedding (and so
        // could never record a success).
        b.heal(Nanos::from_millis(200));
        assert_eq!(b.level(), 1);
        b.heal(Nanos::from_millis(450));
        assert_eq!(b.level(), 0);
    }

    #[test]
    fn interleaved_failures_do_not_trip_below_threshold() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 3,
            cooldown: Nanos::from_millis(10),
        });
        for i in 0..10u64 {
            assert!(!b.on_failure(Nanos::from_millis(i)));
            b.on_success(Nanos::from_millis(i) + Nanos::from_micros(1));
        }
        assert_eq!(b.level(), 0);
        assert_eq!(b.trips(), 0);
    }
}
