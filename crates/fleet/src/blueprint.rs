//! Launch blueprints, the class catalog, and the content-addressed cache.
//!
//! Serving thousands of requests cannot re-run the full functional boot
//! (real hashing, real encryption) per request — and does not need to: the
//! virtual-time shape of a boot is a property of its *configuration*. So the
//! control plane boots each request class **once per serving tier** on a
//! real [`sevf_vmm::Machine`], converts the resulting timeline into a
//! replayable [`Blueprint`] (the same span-to-segment mapping
//! [`sevf_vmm::concurrent::boot_job`] uses), and replays that blueprint for
//! every request of the class.
//!
//! Three blueprints per class:
//!
//! * **cold** — a full launch: every byte measured by the PSP.
//! * **template fill / hit** — the §6.2 shared-key path: the first launch of
//!   a configuration fills the template (full PSP work + registration),
//!   subsequent identical launches reuse its key and measurement and skip
//!   almost all PSP work. [`LaunchCache`] decides fill vs hit by
//!   content-address ([`TemplateKey`] = the launch measurement).
//! * **warm invoke** — the §7.1 keep-alive path: no launch at all, just a
//!   vCPU kick into a resident guest.

use std::collections::HashMap;

use sevf_image::kernel::KernelConfig;
use sevf_obs::WorkStep;
use sevf_psp::TemplateKey;
use sevf_sim::cost::SevGeneration;
use sevf_sim::{Job, Nanos, PhaseKind, ResourceClass, ResourceId, Segment};
use sevf_vmm::config::LaunchMode;
use sevf_vmm::{BootPolicy, BootReport, Machine, MicroVm, VmConfig};

use crate::FleetError;

const MB: u64 = 1024 * 1024;

/// The virtual-time shape of one launch, replayable as a DES job.
///
/// Steps keep the boot timeline's phase and per-step label (the PSP
/// command names, attestation round trips, ...), so a replayed launch can
/// be traced back to the paper's phase breakdowns instead of flattening
/// into anonymous `(class, duration)` pairs.
#[derive(Debug, Clone)]
pub struct Blueprint {
    /// Label carried into job segments (shows up in traces).
    pub label: String,
    /// Ordered resource-class steps with their boot phases and labels.
    pub steps: Vec<WorkStep>,
}

impl Blueprint {
    /// Extracts the blueprint of a boot report's timeline, preserving each
    /// span's phase and label.
    pub fn from_report(label: impl Into<String>, report: &BootReport) -> Self {
        Blueprint {
            label: label.into(),
            steps: report
                .timeline
                .spans()
                .iter()
                .map(|span| {
                    WorkStep::new(span.class, span.phase, span.label.clone(), span.duration)
                })
                .collect(),
        }
    }

    /// A single-step CPU blueprint (used for warm invocations).
    pub fn cpu_step(label: impl Into<String>, duration: Nanos) -> Self {
        let label = label.into();
        Blueprint {
            steps: vec![WorkStep::new(
                ResourceClass::HostCpu,
                PhaseKind::VmmSetup,
                label.clone(),
                duration,
            )],
            label,
        }
    }

    /// Serialized PSP work this blueprint costs per replay — the quantity
    /// the shortest-expected-PSP-work scheduler orders by.
    pub fn psp_work(&self) -> Nanos {
        self.steps
            .iter()
            .filter(|step| step.class == ResourceClass::Psp)
            .map(|step| step.duration)
            .sum()
    }

    /// Total service time (all steps, uncontended).
    pub fn service_time(&self) -> Nanos {
        self.steps.iter().map(|step| step.duration).sum()
    }

    /// Whether any step is a network delay (attestation round trips) —
    /// the launches attestation faults can strike.
    pub fn has_network(&self) -> bool {
        self.steps
            .iter()
            .any(|step| step.class == ResourceClass::Network)
    }

    /// The prefix of this blueprint consuming `frac` of its service time —
    /// the work a launch burns before a transient fault kills it. The last
    /// step is cut partially; `frac` is clamped to `[0, 1]`.
    pub fn truncate_frac(&self, frac: f64) -> Blueprint {
        let frac = frac.clamp(0.0, 1.0);
        let mut budget = self.service_time().scale_f64(frac);
        let mut steps = Vec::new();
        for step in &self.steps {
            if budget == Nanos::ZERO {
                break;
            }
            let take = step.duration.min(budget);
            steps.push(WorkStep::new(
                step.class,
                step.phase,
                step.label.clone(),
                take,
            ));
            budget = budget.saturating_sub(take);
        }
        Blueprint {
            label: format!("{} (aborted)", self.label),
            steps,
        }
    }

    /// Converts the blueprint into a DES job released at `release`.
    ///
    /// Segment labels are static class names, not the blueprint label: the
    /// engine never reads them, and this runs once per dispatched request —
    /// a per-segment `String` clone here was the fleet's hottest allocation.
    pub fn to_job(&self, release: Nanos, cpu: ResourceId, psp: ResourceId) -> Job {
        let segments = self
            .steps
            .iter()
            .map(|step| match step.class {
                ResourceClass::Psp => Segment::on(psp, step.duration, "psp"),
                ResourceClass::HostCpu => Segment::on(cpu, step.duration, "cpu"),
                ResourceClass::Network => Segment::delay(step.duration, "net"),
            })
            .collect();
        Job::released_at(release, segments)
    }
}

/// One request class the fleet serves: a named VM configuration.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Display name ("aws-snp", ...).
    pub name: String,
    /// The configuration every request of this class launches.
    pub config: VmConfig,
}

impl ClassSpec {
    /// Builds a class from a policy/generation/kernel triple at the paper's
    /// guest size (`mem_size` bytes of guest memory — the PSP's RMP-init
    /// cost scales with it, so this knob sets the Fig. 12 slope).
    pub fn new(
        name: impl Into<String>,
        policy: BootPolicy,
        generation: SevGeneration,
        kernel: KernelConfig,
        mem_size: u64,
    ) -> Self {
        let mut config = VmConfig::paper_default(policy, kernel);
        config.generation = generation;
        config.mem_size = mem_size.max(32 * MB);
        ClassSpec {
            name: name.into(),
            config,
        }
    }

    /// The paper-mix request classes: the three §6.1 kernels across
    /// SEV / SEV-ES / SEV-SNP plus a stock (non-SEV) class, with images
    /// scaled down by `kernel_div` (1 = paper scale) and `mem_size` of
    /// guest memory.
    pub fn paper_classes(kernel_div: u64, mem_size: u64) -> Vec<ClassSpec> {
        let scaled = |k: KernelConfig| {
            if kernel_div == 1 {
                k
            } else {
                k.scaled_down(kernel_div)
            }
        };
        let mut classes = vec![
            ClassSpec::new(
                "aws-snp",
                BootPolicy::Severifast,
                SevGeneration::SevSnp,
                scaled(KernelConfig::aws()),
                mem_size,
            ),
            ClassSpec::new(
                "lupine-snp",
                BootPolicy::Severifast,
                SevGeneration::SevSnp,
                scaled(KernelConfig::lupine()),
                mem_size,
            ),
            ClassSpec::new(
                "ubuntu-es",
                BootPolicy::Severifast,
                SevGeneration::SevEs,
                scaled(KernelConfig::ubuntu()),
                mem_size,
            ),
            ClassSpec::new(
                "aws-sev",
                BootPolicy::Severifast,
                SevGeneration::Sev,
                scaled(KernelConfig::aws()),
                mem_size,
            ),
            ClassSpec::new(
                "stock",
                BootPolicy::StockFirecracker,
                SevGeneration::None,
                scaled(KernelConfig::aws()),
                mem_size,
            ),
        ];
        for class in &mut classes {
            class.config.initrd_size = sevf_image::initrd::FULL_SIZE / kernel_div;
        }
        classes
    }

    /// Two tiny classes for fast tests and doctests.
    pub fn quick_test_classes() -> Vec<ClassSpec> {
        vec![
            ClassSpec {
                name: "tiny-snp".into(),
                config: VmConfig::test_tiny(BootPolicy::Severifast),
            },
            ClassSpec {
                name: "tiny-stock".into(),
                config: VmConfig::test_tiny(BootPolicy::StockFirecracker),
            },
        ]
    }
}

/// The measured blueprints of one request class.
#[derive(Debug, Clone)]
pub struct ClassBlueprints {
    /// Class name.
    pub name: String,
    /// Content-address of the class's launch template.
    pub key: TemplateKey,
    /// Full cold launch.
    pub cold: Blueprint,
    /// Template fill: the first shared-key launch (full PSP work).
    pub template_fill: Blueprint,
    /// Template hit: a launch reusing the filled template.
    pub template_hit: Blueprint,
    /// Warm invocation into a resident keep-alive guest.
    pub warm_invoke: Blueprint,
    /// Host memory one keep-alive of this class holds resident (§7.1 rent).
    pub resident_bytes: u64,
}

/// The fleet's class catalog: every class booted once per tier on a real
/// machine, blueprints extracted for replay.
#[derive(Debug, Clone)]
pub struct Catalog {
    classes: Vec<ClassBlueprints>,
}

impl Catalog {
    /// Boots each class on a fresh seeded machine and extracts blueprints.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoClasses`] for an empty spec list;
    /// [`FleetError::Boot`] if any blueprint boot fails.
    pub fn build(seed: u64, specs: &[ClassSpec]) -> Result<Catalog, FleetError> {
        if specs.is_empty() {
            return Err(FleetError::NoClasses);
        }
        let mut classes = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let mut machine = Machine::new(seed.wrapping_add(i as u64).wrapping_mul(0x9e37) | 1);
            machine
                .owner
                .set_required_generation(spec.config.generation);

            // Cold: full launch, fresh key, everything measured.
            let cold_vm = MicroVm::new(spec.config.clone())?;
            if spec.config.policy.is_sev() {
                cold_vm.register_expected(&mut machine)?;
            }
            let cold_report = cold_vm.boot(&mut machine)?;
            let key = match cold_report.measurement {
                Some(m) => TemplateKey::from_measurement(m),
                // Non-SEV classes have no launch measurement; give each a
                // distinct synthetic address so cache/affinity logic still
                // has a per-class identity.
                None => {
                    let mut pseudo = [0xA5u8; 48];
                    pseudo[0] = i as u8;
                    TemplateKey::from_measurement(pseudo)
                }
            };

            // Template pair: same machine, shared-key mode. First boot
            // fills `machine.templates`, second reuses it.
            let mut template_config = spec.config.clone();
            template_config.launch_mode = LaunchMode::SharedKeyTemplate;
            let template_vm = MicroVm::new(template_config)?;
            if spec.config.policy.is_sev() {
                template_vm.register_expected(&mut machine)?;
            }
            let fill_report = template_vm.boot(&mut machine)?;
            let hit_report = template_vm.boot(&mut machine)?;

            // Warm: keep one guest alive and time a vCPU kick into it.
            let (_, mut warm_vm) = cold_vm.boot_keep_alive(&mut machine)?;
            let invocation = warm_vm.invoke(&machine.cost);

            classes.push(ClassBlueprints {
                name: spec.name.clone(),
                key,
                cold: Blueprint::from_report(format!("{} cold", spec.name), &cold_report),
                template_fill: Blueprint::from_report(
                    format!("{} template-fill", spec.name),
                    &fill_report,
                ),
                template_hit: Blueprint::from_report(
                    format!("{} template-hit", spec.name),
                    &hit_report,
                ),
                warm_invoke: Blueprint::cpu_step(
                    format!("{} warm-invoke", spec.name),
                    invocation.latency,
                ),
                resident_bytes: warm_vm.resident_bytes(),
            });
        }
        Ok(Catalog { classes })
    }

    /// The measured classes, in spec order.
    pub fn classes(&self) -> &[ClassBlueprints] {
        &self.classes
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the catalog is empty (never true for a built catalog).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// One class by index.
    pub fn class(&self, idx: usize) -> &ClassBlueprints {
        &self.classes[idx]
    }
}

/// Content-addressed launch cache: which template measurements are live on
/// the machine. A hit replays the cheap template-hit blueprint; a miss pays
/// the full fill.
#[derive(Debug, Clone, Default)]
pub struct LaunchCache {
    live: HashMap<TemplateKey, usize>,
    hits: u64,
    misses: u64,
}

impl LaunchCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, recording a hit or a miss. On miss the key is
    /// inserted (the fill launch that follows makes it live).
    pub fn lookup_or_fill(&mut self, key: TemplateKey, class: usize) -> bool {
        if self.live.contains_key(&key) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.live.insert(key, class);
            false
        }
    }

    /// Whether `key` is live, without touching the counters (used by the
    /// template-affinity scheduler to peek).
    pub fn contains(&self, key: &TemplateKey) -> bool {
        self.live.contains_key(key)
    }

    /// Pre-fills the cache (warm-pool serving starts with every class's
    /// template live, since the pool itself was built from them).
    pub fn prefill(&mut self, key: TemplateKey, class: usize) {
        self.live.insert(key, class);
    }

    /// Drops one key (a fill launch that died before finalizing its
    /// template must not leave the key looking live).
    pub fn invalidate(&mut self, key: &TemplateKey) {
        self.live.remove(key);
    }

    /// Drops every live template — a PSP firmware reset destroyed the
    /// launch contexts they address, so each class must re-measure from
    /// scratch (§6.2 under failure). Returns how many templates died.
    pub fn invalidate_all(&mut self) -> usize {
        let n = self.live.len();
        self.live.clear();
        n
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_catalog() -> Catalog {
        Catalog::build(41, &ClassSpec::quick_test_classes()).unwrap()
    }

    #[test]
    fn catalog_builds_all_tiers_for_each_class() {
        let catalog = quick_catalog();
        assert_eq!(catalog.len(), 2);
        for class in catalog.classes() {
            assert!(class.cold.service_time() > Nanos::ZERO, "{}", class.name);
            assert!(class.warm_invoke.service_time() > Nanos::ZERO);
            assert!(class.resident_bytes > 0);
        }
    }

    #[test]
    fn template_hit_skips_most_psp_work() {
        let catalog = quick_catalog();
        let snp = catalog.class(0);
        assert!(snp.cold.psp_work() > Nanos::ZERO);
        // Fill pays full launch work; the hit skips nearly all of it (§6.2).
        assert!(snp.template_fill.psp_work() > snp.template_hit.psp_work().scale(5));
        // Warm invocation touches the PSP not at all.
        assert_eq!(snp.warm_invoke.psp_work(), Nanos::ZERO);
    }

    #[test]
    fn warm_invoke_is_far_cheaper_than_any_launch() {
        let catalog = quick_catalog();
        let snp = catalog.class(0);
        assert!(snp.cold.service_time() > snp.warm_invoke.service_time().scale(100));
        assert!(snp.template_hit.service_time() > snp.warm_invoke.service_time());
    }

    #[test]
    fn stock_class_uses_no_psp() {
        let catalog = quick_catalog();
        let stock = catalog.class(1);
        assert_eq!(stock.cold.psp_work(), Nanos::ZERO);
    }

    #[test]
    fn keys_are_distinct_per_class() {
        let catalog = quick_catalog();
        assert_ne!(catalog.class(0).key, catalog.class(1).key);
    }

    #[test]
    fn catalog_is_deterministic_under_a_seed() {
        let a = Catalog::build(9, &ClassSpec::quick_test_classes()).unwrap();
        let b = Catalog::build(9, &ClassSpec::quick_test_classes()).unwrap();
        assert_eq!(a.class(0).key, b.class(0).key);
        assert_eq!(
            a.class(0).cold.service_time(),
            b.class(0).cold.service_time()
        );
    }

    #[test]
    fn cache_counts_fill_then_hits() {
        let mut cache = LaunchCache::new();
        let key = TemplateKey::from_measurement([3u8; 48]);
        assert!(!cache.lookup_or_fill(key, 0));
        assert!(cache.lookup_or_fill(key, 0));
        assert!(cache.lookup_or_fill(key, 0));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert!(cache.contains(&key));
    }

    #[test]
    fn truncate_frac_takes_a_prefix_of_the_work() {
        let catalog = quick_catalog();
        let bp = &catalog.class(0).cold;
        let half = bp.truncate_frac(0.5);
        let tol = Nanos::from_nanos(1);
        assert!(half.service_time() <= bp.service_time().scale_f64(0.5) + tol);
        assert!(half.service_time() + tol >= bp.service_time().scale_f64(0.5));
        // Prefix property: step classes and labels match the original's
        // in order.
        for (a, b) in half.steps.iter().zip(&bp.steps) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.label, b.label);
        }
        assert!(bp.truncate_frac(0.0).steps.is_empty());
        assert_eq!(bp.truncate_frac(1.0).service_time(), bp.service_time());
        assert_eq!(bp.truncate_frac(7.0).service_time(), bp.service_time());
    }

    #[test]
    fn cache_invalidation_forces_refills() {
        let mut cache = LaunchCache::new();
        let a = TemplateKey::from_measurement([1u8; 48]);
        let b = TemplateKey::from_measurement([2u8; 48]);
        assert!(!cache.lookup_or_fill(a, 0));
        assert!(!cache.lookup_or_fill(b, 1));
        assert!(cache.lookup_or_fill(a, 0));

        cache.invalidate(&a);
        assert!(!cache.contains(&a));
        assert!(cache.contains(&b));

        assert_eq!(cache.invalidate_all(), 1);
        assert!(!cache.lookup_or_fill(b, 1), "post-reset lookups re-fill");
    }

    #[test]
    fn blueprint_job_round_trips_service_time() {
        let catalog = quick_catalog();
        let bp = &catalog.class(0).cold;
        let mut engine = sevf_sim::DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let cpu = engine.add_resource("cpu", 4);
        let outcomes = engine.run(vec![bp.to_job(Nanos::ZERO, cpu, psp)]);
        assert_eq!(outcomes[0].latency(), bp.service_time());
    }
}
