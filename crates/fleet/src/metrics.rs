//! Service-level metrics for one fleet run.
//!
//! Everything the experiment tables print comes from here: request latency
//! percentiles (on [`sevf_sim::stats::Summary`]), a coarse latency
//! histogram, queue depth sampled at every enqueue/dequeue, PSP/CPU
//! utilization derived from the DES [`sevf_sim::RunTrace`], and the
//! shed / cache-hit / warm-hit counters that explain *why* the latencies
//! look the way they do.

use sevf_sim::fault::FaultKind;
use sevf_sim::{Nanos, Summary};

/// Per-fault-kind occurrence counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient PSP launch-command failures.
    pub psp_transient: u64,
    /// Launches lost to PSP firmware resets (poisoned in flight or
    /// dispatched into a dead PSP).
    pub psp_reset: u64,
    /// Warm guests that crashed out of the pool.
    pub warm_crash: u64,
    /// Attestation round trips that hung until timeout.
    pub attest_timeout: u64,
    /// Attestation round trips that returned errors.
    pub attest_error: u64,
    /// Launches lost to whole-host outages (cluster fault domain died with
    /// the request in flight on it).
    pub host_outage: u64,
    /// Launches aborted because the host's dispatch lease lapsed during a
    /// network partition (fenced, not served — split-brain discipline).
    pub net_partition: u64,
}

impl FaultCounters {
    /// Counts one occurrence of `kind`.
    pub fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::PspTransient => self.psp_transient += 1,
            FaultKind::PspReset => self.psp_reset += 1,
            FaultKind::WarmCrash => self.warm_crash += 1,
            FaultKind::AttestTimeout => self.attest_timeout += 1,
            FaultKind::AttestError => self.attest_error += 1,
            FaultKind::HostOutage => self.host_outage += 1,
            FaultKind::NetPartition => self.net_partition += 1,
        }
    }

    /// Total faults of every kind.
    pub fn total(&self) -> u64 {
        self.psp_transient
            + self.psp_reset
            + self.warm_crash
            + self.attest_timeout
            + self.attest_error
            + self.host_outage
            + self.net_partition
    }
}

/// Metrics collected over one [`crate::service::FleetService`] run.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Requests that completed a launch (or warm invocation).
    pub completed: usize,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests shed because the class's circuit breaker degraded past the
    /// bottom of the tier ladder.
    pub breaker_sheds: u64,
    /// Requests shed because their deadline passed (at retry scheduling or
    /// while waiting in the queue).
    pub timeouts: u64,
    /// Requests permanently failed after exhausting the retry budget.
    pub failed: u64,
    /// Requests turned away by the policy engine (quota / isolation)
    /// before consuming any PSP work. Zero without a policy layer.
    pub rejected: u64,
    /// Retry launches dispatched (beyond each request's first attempt).
    pub retries: u64,
    /// Retry histogram: `retries_by_attempt[k]` counts retries scheduled
    /// after failure number `k + 1`.
    pub retries_by_attempt: Vec<u64>,
    /// Injected-fault occurrences by kind.
    pub faults: FaultCounters,
    /// Launches dispatched below the configured tier (degraded ladder).
    pub degraded_dispatches: u64,
    /// Circuit-breaker trips across all classes.
    pub breaker_trips: u64,
    /// Virtual time the PSP spent inside firmware-reset outages (clipped to
    /// the makespan).
    pub time_degraded: Nanos,
    /// Template-cache hits (template and warm-pool tiers).
    pub cache_hits: u64,
    /// Template-cache misses (fills).
    pub cache_misses: u64,
    /// Warm-pool hits.
    pub warm_hits: u64,
    /// Warm-pool misses (fell through to a launch).
    pub warm_misses: u64,
    /// Warm guests evicted above target.
    pub evicted: u64,
    /// Per-request latency, arrival to completion.
    pub latencies: Vec<Nanos>,
    /// `(instant, depth)` samples taken at every queue transition.
    pub queue_depth: Vec<(Nanos, usize)>,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: usize,
    /// Fraction of the run the PSP spent busy.
    pub psp_utilization: f64,
    /// Fraction of `makespan × cores` the CPU pool spent busy.
    pub cpu_utilization: f64,
    /// Instant the last job finished.
    pub makespan: Nanos,
}

impl FleetMetrics {
    /// Records one completed request's latency.
    pub fn record_latency(&mut self, latency: Nanos) {
        self.completed += 1;
        self.latencies.push(latency);
    }

    /// Records a queue-depth transition.
    pub fn sample_queue_depth(&mut self, at: Nanos, depth: usize) {
        self.queue_depth.push((at, depth));
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    /// Records a retry scheduled after failure number `failures` (1-based).
    pub fn record_retry(&mut self, failures: u32) {
        self.retries += 1;
        let idx = failures.saturating_sub(1) as usize;
        if self.retries_by_attempt.len() <= idx {
            self.retries_by_attempt.resize(idx + 1, 0);
        }
        self.retries_by_attempt[idx] += 1;
    }

    /// Requests that left the system without completing: load sheds,
    /// breaker sheds, deadline timeouts, permanent failures, and policy
    /// rejections.
    pub fn lost(&self) -> u64 {
        self.shed + self.breaker_sheds + self.timeouts + self.failed + self.rejected
    }

    /// Completed requests per second of makespan — the goodput the chaos
    /// tables plot against offered load (0 when the run is empty).
    pub fn goodput_rps(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Latency summary; `None` when nothing completed.
    pub fn summary(&self) -> Option<Summary> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(Summary::from_nanos(&self.latencies))
        }
    }

    /// Mean latency in ms (0 when nothing completed).
    pub fn mean_ms(&self) -> f64 {
        self.summary().map_or(0.0, |s| s.mean)
    }

    /// Median latency in ms (0 when nothing completed).
    pub fn p50_ms(&self) -> f64 {
        self.summary().map_or(0.0, |s| s.p50)
    }

    /// 99th-percentile latency in ms (0 when nothing completed).
    pub fn p99_ms(&self) -> f64 {
        self.summary().map_or(0.0, |s| s.p99)
    }

    /// The latencies as a shared [`sevf_obs::Histogram`] over
    /// `bucket_ms`-wide buckets (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ms` is not positive.
    pub fn latency_histogram(&self, bucket_ms: f64) -> sevf_obs::Histogram {
        let mut hist = sevf_obs::Histogram::new(bucket_ms);
        for l in &self.latencies {
            hist.record(l.as_millis_f64());
        }
        hist
    }

    /// Latency histogram over `bucket_ms`-wide buckets:
    /// `(upper bound ms, count)` pairs covering every sample.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ms` is not positive.
    pub fn histogram(&self, bucket_ms: f64) -> Vec<(f64, usize)> {
        self.latency_histogram(bucket_ms).upper_edge_rows()
    }

    /// Mean queue depth weighted by the time each depth was held.
    pub fn mean_queue_depth(&self) -> f64 {
        sevf_obs::time_weighted_mean(&self.queue_depth)
    }

    /// Exports the run's counters, gauges, and latency histogram into a
    /// unified [`sevf_obs::Registry`] (for the Prometheus-style dump).
    pub fn registry(&self) -> sevf_obs::Registry {
        let mut reg = sevf_obs::Registry::new();
        reg.inc("fleet_completed_total", self.completed as u64);
        reg.inc("fleet_shed_total", self.shed);
        reg.inc("fleet_breaker_sheds_total", self.breaker_sheds);
        reg.inc("fleet_timeouts_total", self.timeouts);
        reg.inc("fleet_failed_total", self.failed);
        reg.inc("fleet_rejected_total", self.rejected);
        reg.inc("fleet_retries_total", self.retries);
        reg.inc("fleet_faults_total", self.faults.total());
        reg.inc("fleet_degraded_dispatches_total", self.degraded_dispatches);
        reg.inc("fleet_breaker_trips_total", self.breaker_trips);
        reg.inc("fleet_cache_hits_total", self.cache_hits);
        reg.inc("fleet_cache_misses_total", self.cache_misses);
        reg.inc("fleet_warm_hits_total", self.warm_hits);
        reg.inc("fleet_warm_misses_total", self.warm_misses);
        reg.inc("fleet_evicted_total", self.evicted);
        reg.set_gauge("fleet_psp_utilization", self.psp_utilization);
        reg.set_gauge("fleet_cpu_utilization", self.cpu_utilization);
        reg.set_gauge("fleet_mean_queue_depth", self.mean_queue_depth());
        reg.set_gauge("fleet_max_queue_depth", self.max_queue_depth as f64);
        reg.set_gauge("fleet_makespan_ms", self.makespan.as_millis_f64());
        for l in &self.latencies {
            reg.observe("fleet_latency_ms", 10.0, l.as_millis_f64());
        }
        reg
    }

    /// Human-readable one-run report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "completed {}  shed {}  (cache {}h/{}m, warm {}h/{}m, evicted {})\n",
            self.completed,
            self.shed,
            self.cache_hits,
            self.cache_misses,
            self.warm_hits,
            self.warm_misses,
            self.evicted,
        ));
        out.push_str(&format!(
            "latency mean {:.2} ms  p50 {:.2} ms  p99 {:.2} ms\n",
            self.mean_ms(),
            self.p50_ms(),
            self.p99_ms(),
        ));
        out.push_str(&format!(
            "psp {:.0}%  cpu {:.0}%  max queue {}  makespan {}\n",
            self.psp_utilization * 100.0,
            self.cpu_utilization * 100.0,
            self.max_queue_depth,
            self.makespan,
        ));
        if self.faults.total() > 0 || self.lost() > self.shed {
            let f = &self.faults;
            out.push_str(&format!(
                "faults {} (transient {}, reset {}, warm-crash {}, attest {}t/{}e)\n",
                f.total(),
                f.psp_transient,
                f.psp_reset,
                f.warm_crash,
                f.attest_timeout,
                f.attest_error,
            ));
            out.push_str(&format!(
                "retries {}  failed {}  timeouts {}  breaker trips {} (shed {})  \
                 degraded dispatches {}  time degraded {}\n",
                self.retries,
                self.failed,
                self.timeouts,
                self.breaker_trips,
                self.breaker_sheds,
                self.degraded_dispatches,
                self.time_degraded,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_report_zeros_not_panics() {
        let m = FleetMetrics::default();
        assert!(m.summary().is_none());
        assert_eq!(m.p99_ms(), 0.0);
        assert_eq!(m.mean_queue_depth(), 0.0);
        assert!(m.histogram(10.0).is_empty());
        assert!(m.render().contains("completed 0"));
    }

    #[test]
    fn latency_percentiles_flow_through() {
        let mut m = FleetMetrics::default();
        for ms in [10u64, 20, 30, 40] {
            m.record_latency(Nanos::from_millis(ms));
        }
        assert_eq!(m.completed, 4);
        assert!((m.mean_ms() - 25.0).abs() < 1e-9);
        assert!((m.p50_ms() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_covers_all_samples() {
        let mut m = FleetMetrics::default();
        for ms in [1u64, 9, 11, 35] {
            m.record_latency(Nanos::from_millis(ms));
        }
        let hist = m.histogram(10.0);
        assert_eq!(hist.iter().map(|(_, c)| c).sum::<usize>(), 4);
        assert_eq!(hist[0], (10.0, 2));
        assert_eq!(hist.last().unwrap().1, 1);
    }

    #[test]
    fn single_sample_percentiles_all_equal_it() {
        let mut m = FleetMetrics::default();
        m.record_latency(Nanos::from_millis(42));
        assert!((m.mean_ms() - 42.0).abs() < 1e-9);
        assert!((m.p50_ms() - 42.0).abs() < 1e-9);
        assert!((m.p99_ms() - 42.0).abs() < 1e-9);
        assert_eq!(m.histogram(10.0).iter().map(|(_, c)| c).sum::<usize>(), 1);
    }

    #[test]
    fn all_equal_samples_have_flat_percentiles() {
        let mut m = FleetMetrics::default();
        for _ in 0..100 {
            m.record_latency(Nanos::from_millis(7));
        }
        assert!((m.mean_ms() - 7.0).abs() < 1e-9);
        assert!((m.p50_ms() - 7.0).abs() < 1e-9);
        assert!((m.p99_ms() - 7.0).abs() < 1e-9);
        let s = m.summary().unwrap();
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn retry_histogram_grows_per_attempt() {
        let mut m = FleetMetrics::default();
        m.record_retry(1);
        m.record_retry(1);
        m.record_retry(3);
        assert_eq!(m.retries, 3);
        assert_eq!(m.retries_by_attempt, vec![2, 0, 1]);
    }

    #[test]
    fn fault_counters_and_lost_accounting() {
        let mut m = FleetMetrics::default();
        m.faults.record(FaultKind::PspTransient);
        m.faults.record(FaultKind::PspReset);
        m.faults.record(FaultKind::PspReset);
        m.faults.record(FaultKind::AttestError);
        assert_eq!(m.faults.total(), 4);
        assert_eq!(m.faults.psp_reset, 2);

        m.shed = 3;
        m.breaker_sheds = 1;
        m.timeouts = 2;
        m.failed = 4;
        assert_eq!(m.lost(), 10);
        assert!(m.render().contains("faults 4"));
    }

    #[test]
    fn goodput_is_completed_over_makespan() {
        let mut m = FleetMetrics::default();
        assert_eq!(m.goodput_rps(), 0.0, "empty run divides by nothing");
        m.completed = 30;
        m.makespan = Nanos::from_secs(2);
        assert!((m.goodput_rps() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_time_weighting() {
        let mut m = FleetMetrics::default();
        m.sample_queue_depth(Nanos::ZERO, 0);
        m.sample_queue_depth(Nanos::from_millis(10), 2);
        m.sample_queue_depth(Nanos::from_millis(30), 0);
        // Depth 0 for 10 ms, depth 2 for 20 ms → mean 4/3.
        assert!((m.mean_queue_depth() - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.max_queue_depth, 2);
    }
}
