//! The serving experiment: cold vs template vs warm-pool at offered loads.
//!
//! One sweep builds the class catalog once, then serves the same seeded
//! open-loop request stream at each offered load under each serving tier.
//! The cold tier's throughput ceiling is `1 / psp_ms` — the serialized PSP
//! work per launch (Fig. 12's slope, ≈ 36 ms for a 256 MB SNP guest) —
//! so its p99 and shed counts blow up once the offered load crosses it.
//! Template serving (§6.2) cuts the per-request PSP work to the shared-key
//! activation, and warm pools (§7.1) skip the PSP entirely on hits, so both
//! sustain strictly higher load before their tails degrade.

use sevf_sim::Nanos;

use crate::admission::AdmissionConfig;
use crate::blueprint::{Catalog, ClassSpec};
use crate::service::{FleetConfig, FleetService, ServingTier};
use crate::workload::RequestMix;
use crate::FleetError;

const MB: u64 = 1024 * 1024;

/// Knobs of one serving sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seed for catalog machines, arrivals, and class sampling.
    pub seed: u64,
    /// Request classes to serve.
    pub classes: Vec<ClassSpec>,
    /// Mix over those classes; `None` = uniform.
    pub mix: Option<RequestMix>,
    /// Requests per (tier, load) cell.
    pub requests: usize,
    /// Offered loads to sweep (req/s).
    pub loads_rps: Vec<f64>,
    /// Admission-controller knobs.
    pub admission: AdmissionConfig,
    /// Warm-pool target per class.
    pub warm_target: usize,
}

impl SweepConfig {
    /// The headline serving sweep: the paper-mix classes (three kernels
    /// across SEV generations plus stock) with 256 MB guests and 16×
    /// scaled-down images, SNP-heavy mix, loads spanning the cold tier's
    /// PSP-bound capacity.
    pub fn paper_serving() -> Self {
        SweepConfig {
            seed: 0x5EF0,
            classes: ClassSpec::paper_classes(16, 256 * MB),
            // SNP-heavy, as the paper's evaluation is: the two SNP classes
            // carry most of the traffic (and nearly all the PSP work).
            mix: Some(RequestMix::weighted(vec![
                (0, 5), // aws-snp
                (1, 3), // lupine-snp
                (2, 1), // ubuntu-es
                (3, 1), // aws-sev
                (4, 2), // stock
            ])),
            requests: 300,
            loads_rps: vec![2.0, 10.0, 25.0, 40.0, 60.0, 90.0],
            admission: AdmissionConfig::default(),
            warm_target: 24,
        }
    }

    /// A fast sweep over the tiny test classes (unit/integration tests).
    ///
    /// The knobs are chosen so the two loads straddle the cold tier's
    /// PSP ceiling without crossing the template tier's (attestation- and
    /// inflight-bound) capacity: the SNP-heavy mix keeps the ceiling low,
    /// and the stream is long enough for the overloaded queue to actually
    /// fill its bound and shed rather than just absorb the burst.
    pub fn quick() -> Self {
        SweepConfig {
            seed: 0x5EF0,
            classes: ClassSpec::quick_test_classes(),
            mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
            requests: 600,
            loads_rps: vec![20.0, 140.0],
            // Generous inflight: dispatch is completion-gated, so a small
            // slot count would throttle the PSP's feed below its own service
            // rate (a convoy effect) and hide the ceiling being measured.
            admission: AdmissionConfig {
                queue_bound: 128,
                max_inflight: 96,
                ..AdmissionConfig::default()
            },
            warm_target: 64,
        }
    }
}

/// One `(tier, offered load)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Serving tier.
    pub tier: ServingTier,
    /// Offered load (req/s).
    pub offered_rps: f64,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Fraction of the run the PSP was busy.
    pub psp_utilization: f64,
    /// Fraction of `makespan × cores` the CPU pool was busy.
    pub cpu_utilization: f64,
    /// Deepest the admission queue got.
    pub max_queue_depth: usize,
    /// Template-cache hits.
    pub cache_hits: u64,
    /// Warm-pool hits.
    pub warm_hits: u64,
}

/// The sweep's result: the cold PSP cost that caps throughput, plus one row
/// per `(tier, load)` cell.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Mix-weighted serialized PSP work per cold launch (ms) — the Fig. 12
    /// slope for this mix.
    pub cold_psp_ms: f64,
    /// The PSP-bound cold-serving ceiling, `1000 / cold_psp_ms` (req/s).
    pub cold_capacity_rps: f64,
    /// One row per `(tier, offered load)`.
    pub rows: Vec<ServingRow>,
}

/// Mix-weighted mean of the per-class cold PSP work.
fn weighted_cold_psp_ms(catalog: &Catalog, mix: &RequestMix) -> f64 {
    let mut weighted = 0.0;
    let mut total = 0u64;
    for &(class, weight) in mix.entries() {
        weighted += catalog.class(class).cold.psp_work().as_millis_f64() * weight as f64;
        total += weight;
    }
    weighted / total as f64
}

/// Runs the full `(tier × load)` grid over one catalog.
///
/// # Errors
///
/// Propagates catalog-construction failures ([`FleetError`]).
pub fn serving_sweep(cfg: &SweepConfig) -> Result<SweepReport, FleetError> {
    let catalog = Catalog::build(cfg.seed, &cfg.classes)?;
    let mix = cfg
        .mix
        .clone()
        .unwrap_or_else(|| RequestMix::uniform(catalog.len()));
    let cold_psp_ms = weighted_cold_psp_ms(&catalog, &mix);

    let mut rows = Vec::new();
    for tier in [
        ServingTier::Cold,
        ServingTier::Template,
        ServingTier::WarmPool,
    ] {
        for &load in &cfg.loads_rps {
            let config = FleetConfig {
                tier,
                arrival: crate::workload::Arrival::Open { rate_per_sec: load },
                mix: Some(mix.clone()),
                requests: cfg.requests,
                seed: cfg.seed,
                admission: cfg.admission,
                warm_target: cfg.warm_target,
                fault: None,
                recovery: crate::recovery::RecoveryConfig::none(),
                attestation: None,
                verifier_net: None,
                policy: None,
            };
            let report = FleetService::new(catalog.clone(), config).run();
            let m = &report.metrics;
            rows.push(ServingRow {
                tier,
                offered_rps: load,
                completed: m.completed,
                shed: m.shed,
                mean_ms: m.mean_ms(),
                p50_ms: m.p50_ms(),
                p99_ms: m.p99_ms(),
                psp_utilization: m.psp_utilization,
                cpu_utilization: m.cpu_utilization,
                max_queue_depth: m.max_queue_depth,
                cache_hits: m.cache_hits,
                warm_hits: m.warm_hits,
            });
        }
    }
    Ok(SweepReport {
        cold_psp_ms,
        cold_capacity_rps: 1000.0 / cold_psp_ms,
        rows,
    })
}

/// Rows of one tier, in load order (convenience for tests and tables).
pub fn tier_rows(report: &SweepReport, tier: ServingTier) -> Vec<&ServingRow> {
    report.rows.iter().filter(|r| r.tier == tier).collect()
}

/// Milliseconds, for callers that want the ceiling as a duration.
pub fn cold_psp_budget(report: &SweepReport) -> Nanos {
    Nanos::from_nanos((report.cold_psp_ms * 1e6).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_full_grid_and_conserves_requests() {
        let cfg = SweepConfig::quick();
        let report = serving_sweep(&cfg).unwrap();
        assert_eq!(report.rows.len(), 3 * cfg.loads_rps.len());
        for row in &report.rows {
            assert_eq!(
                row.completed + row.shed as usize,
                cfg.requests,
                "{} @ {}",
                row.tier.name(),
                row.offered_rps
            );
        }
        assert!(report.cold_psp_ms > 0.0);
        assert!(report.cold_capacity_rps > 0.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SweepConfig::quick();
        let a = serving_sweep(&cfg).unwrap();
        let b = serving_sweep(&cfg).unwrap();
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.p99_ms, y.p99_ms);
            assert_eq!(x.shed, y.shed);
            assert_eq!(x.completed, y.completed);
        }
        assert_eq!(a.cold_psp_ms, b.cold_psp_ms);
    }

    #[test]
    fn psp_utilization_rises_with_cold_load() {
        let cfg = SweepConfig::quick();
        let report = serving_sweep(&cfg).unwrap();
        let cold = tier_rows(&report, ServingTier::Cold);
        assert!(cold[0].psp_utilization < cold[1].psp_utilization);
    }

    #[test]
    fn budget_round_trips() {
        let report = SweepReport {
            cold_psp_ms: 33.0,
            cold_capacity_rps: 1000.0 / 33.0,
            rows: Vec::new(),
        };
        assert_eq!(cold_psp_budget(&report), Nanos::from_micros(33_000));
    }
}
