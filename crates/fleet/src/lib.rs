//! A serverless fleet control plane for SEV microVM launch traffic.
//!
//! The paper's scaling result (Fig. 12) is that SEV cold boots serialize on
//! the single-core PSP: every `LAUNCH_*` command of every guest passes
//! through one low-power core, so average startup grows linearly with
//! concurrency. §6.2 sketches shared-key template launches and §7.1
//! analyzes keep-alive warm pools as the two mitigations. This crate turns
//! those one-shot experiments into a *service*: a host agent that accepts a
//! stream of launch requests, admits and schedules them onto the host's DES
//! resources, reuses template measurements through a content-addressed
//! launch cache, keeps a warm pool topped up, and reports service-level
//! metrics.
//!
//! * [`workload`] — seeded open-loop (Poisson) and closed-loop arrival
//!   processes over a configurable request mix.
//! * [`blueprint`] — replayable launch blueprints derived from real boots,
//!   and the content-addressed [`blueprint::LaunchCache`] keyed by
//!   [`sevf_psp::TemplateKey`].
//! * [`admission`] — bounded request queue with shed-on-overload and
//!   pluggable scheduling policies (FIFO, shortest-expected-PSP-work-first,
//!   template-affinity).
//! * [`pool`] — the §7.1 warm-pool manager with target-size/evict logic.
//! * [`service`] — the control plane itself, driving
//!   [`sevf_sim::DesEngine::run_dynamic`].
//! * [`metrics`] — latency percentiles/histograms, queue depth over time,
//!   PSP/CPU utilization, shed/hit/miss counters, fault and availability
//!   accounting.
//! * [`recovery`] — retry backoff, per-request deadlines, per-class circuit
//!   breakers driving the degradation ladder, and PSP quiesce across
//!   firmware resets.
//! * [`experiment`] — the serving sweep behind the `figures --table fleet`
//!   output: cold vs template vs warm-pool serving at offered loads.
//! * [`chaos`] — the fault-injection sweep behind `figures --table chaos`:
//!   fault-free vs naive vs resilient fleets under a seeded fault storm.
//!
//! # Example
//!
//! ```
//! use sevf_fleet::prelude::*;
//!
//! let catalog = Catalog::build(7, &ClassSpec::quick_test_classes())?;
//! let mut config = FleetConfig::open_loop(ServingTier::Cold, 40.0, 40);
//! config.seed = 7;
//! let report = FleetService::new(catalog, config).run();
//! assert_eq!(report.metrics.completed + report.metrics.shed as usize, 40);
//! # Ok::<(), sevf_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod blueprint;
pub mod chaos;
pub mod experiment;
pub mod metrics;
pub mod pool;
pub mod recovery;
pub mod service;
pub mod workload;

pub use admission::{AdmissionConfig, BoundedQueue, SchedPolicy};
pub use blueprint::{Blueprint, Catalog, ClassSpec, LaunchCache};
pub use chaos::{chaos_sweep, ChaosConfig, ChaosReport, ChaosRow};
pub use experiment::{serving_sweep, ServingRow, SweepConfig, SweepReport};
pub use metrics::{FaultCounters, FleetMetrics};
pub use pool::WarmPool;
pub use recovery::{BreakerConfig, CircuitBreaker, RecoveryConfig, RetryPolicy};
pub use service::{apply_launch_faults, FleetConfig, FleetReport, FleetService, ServingTier};
pub use workload::{Arrival, RequestMix};

/// Errors from building fleet components.
#[derive(Debug)]
pub enum FleetError {
    /// A blueprint boot failed.
    Boot(sevf_vmm::VmmError),
    /// The catalog was built with no request classes.
    NoClasses,
    /// A fault plan could not be generated from its config.
    FaultPlan(&'static str),
    /// A recovery configuration failed validation.
    Recovery(&'static str),
    /// The attestation control plane rejected its configuration.
    AttPlane(sevf_attplane::AttPlaneError),
    /// The verifier network link rejected its configuration.
    Net(sevf_net::NetError),
    /// The multi-tenant policy engine rejected its configuration.
    Policy(sevf_policy::PolicyError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Boot(e) => write!(f, "blueprint boot failed: {e}"),
            FleetError::NoClasses => write!(f, "catalog needs at least one request class"),
            FleetError::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            FleetError::Recovery(e) => write!(f, "invalid recovery config: {e}"),
            FleetError::AttPlane(e) => write!(f, "attestation plane failed: {e}"),
            FleetError::Net(e) => write!(f, "verifier link failed: {e}"),
            FleetError::Policy(e) => write!(f, "policy engine failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Boot(e) => Some(e),
            FleetError::AttPlane(e) => Some(e),
            FleetError::Net(e) => Some(e),
            FleetError::Policy(e) => Some(e),
            FleetError::NoClasses | FleetError::FaultPlan(_) | FleetError::Recovery(_) => None,
        }
    }
}

impl From<sevf_vmm::VmmError> for FleetError {
    fn from(e: sevf_vmm::VmmError) -> Self {
        FleetError::Boot(e)
    }
}

impl From<sevf_attplane::AttPlaneError> for FleetError {
    fn from(e: sevf_attplane::AttPlaneError) -> Self {
        FleetError::AttPlane(e)
    }
}

impl From<sevf_net::NetError> for FleetError {
    fn from(e: sevf_net::NetError) -> Self {
        FleetError::Net(e)
    }
}

impl From<sevf_policy::PolicyError> for FleetError {
    fn from(e: sevf_policy::PolicyError) -> Self {
        FleetError::Policy(e)
    }
}

/// The common imports for working with the fleet control plane.
pub mod prelude {
    pub use crate::admission::{AdmissionConfig, SchedPolicy};
    pub use crate::blueprint::{Catalog, ClassSpec};
    pub use crate::chaos::{chaos_sweep, ChaosConfig, ChaosReport, ChaosRow};
    pub use crate::recovery::{BreakerConfig, RecoveryConfig, RetryPolicy};
    pub use crate::service::{FleetConfig, FleetReport, FleetService, ServingTier};
    pub use crate::workload::{Arrival, RequestMix};
    pub use crate::FleetError;
    pub use sevf_policy::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn attplane_errors_chain_their_source() {
        let inner = sevf_attplane::AttPlaneError::Config("sig_check must be positive");
        let outer = FleetError::from(inner);
        let source = outer.source().expect("AttPlane must expose its cause");
        assert!(source.to_string().contains("sig_check"));
        assert!(outer.to_string().contains("attestation plane"));
    }

    #[test]
    fn net_errors_chain_their_source() {
        let inner = sevf_net::NetError::from(sevf_net::LeaseError::DurationZero);
        let outer = FleetError::from(inner);
        let source = outer.source().expect("Net must expose its cause");
        assert!(source.to_string().contains("lease"));
        assert!(outer.to_string().contains("verifier link"));
    }

    #[test]
    fn boot_errors_chain_their_source() {
        let inner = sevf_vmm::VmmError::Config("no kernel");
        let outer = FleetError::from(inner);
        let source = outer.source().expect("Boot must expose its cause");
        assert!(source.to_string().contains("no kernel"));
        assert!(outer.to_string().contains("blueprint boot failed"));
    }

    #[test]
    fn leaf_errors_have_no_source_but_display() {
        for (err, needle) in [
            (FleetError::NoClasses, "request class"),
            (FleetError::FaultPlan("bad rate"), "bad rate"),
            (FleetError::Recovery("bad jitter"), "bad jitter"),
        ] {
            assert!(err.source().is_none());
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
