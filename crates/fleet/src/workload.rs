//! Seeded load generation: arrival processes and request mixes.
//!
//! The fleet serves a *stream* of launch requests, so the first thing the
//! control plane needs is a reproducible model of that stream. Two standard
//! shapes are provided:
//!
//! * **Open loop** — requests arrive by a Poisson process at a fixed offered
//!   rate, independent of how the system is doing. This is the shape that
//!   exposes overload: when the offered rate exceeds the PSP-bound service
//!   rate, queues grow without bound and the admission controller must shed.
//! * **Closed loop** — a fixed population of users, each issuing the next
//!   request a think-time after the previous one completes. Offered load
//!   self-throttles, so closed loops show latency inflation instead of
//!   collapse.
//!
//! Both are driven by [`sevf_sim::rng::XorShift64`], so a seed fully
//! determines the trace.

use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

/// The arrival process of the request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Open loop: Poisson arrivals at `rate_per_sec`, regardless of system
    /// state.
    Open {
        /// Offered load in requests per (virtual) second.
        rate_per_sec: f64,
    },
    /// Closed loop: `users` concurrent clients, each waiting `think` after a
    /// completion before issuing its next request.
    Closed {
        /// Number of concurrent clients.
        users: usize,
        /// Think time between a completion and the client's next request.
        think: Nanos,
    },
}

impl Arrival {
    /// The offered rate for open-loop arrivals; `None` for closed loops
    /// (their rate is an outcome, not an input).
    pub fn offered_rps(&self) -> Option<f64> {
        match self {
            Arrival::Open { rate_per_sec } => Some(*rate_per_sec),
            Arrival::Closed { .. } => None,
        }
    }
}

/// Draws one exponential inter-arrival gap for rate `rate_per_sec`.
///
/// # Panics
///
/// Panics if the rate is not positive and finite.
pub fn exponential_gap(rate_per_sec: f64, rng: &mut XorShift64) -> Nanos {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "arrival rate must be positive"
    );
    let u = rng.next_f64();
    let secs = -(1.0 - u).ln() / rate_per_sec;
    Nanos::from_nanos((secs * 1e9).round() as u64)
}

/// Cumulative Poisson arrival instants for `n` open-loop requests.
pub fn open_arrivals(rate_per_sec: f64, n: usize, rng: &mut XorShift64) -> Vec<Nanos> {
    let mut t = Nanos::ZERO;
    (0..n)
        .map(|_| {
            t += exponential_gap(rate_per_sec, rng);
            t
        })
        .collect()
}

/// A weighted mix over the catalog's request classes.
///
/// Entries are `(class index, weight)`; sampling is proportional to weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMix {
    entries: Vec<(usize, u64)>,
    total_weight: u64,
}

impl RequestMix {
    /// A uniform mix over `classes` request classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn uniform(classes: usize) -> Self {
        assert!(classes > 0, "a mix needs at least one class");
        Self::weighted((0..classes).map(|c| (c, 1)).collect())
    }

    /// A weighted mix; weights need not be normalized.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or all weights are zero.
    pub fn weighted(entries: Vec<(usize, u64)>) -> Self {
        let total_weight: u64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total_weight > 0, "mix weights must sum to a positive value");
        RequestMix {
            entries,
            total_weight,
        }
    }

    /// The `(class, weight)` entries of the mix.
    pub fn entries(&self) -> &[(usize, u64)] {
        &self.entries
    }

    /// Largest class index the mix can emit.
    pub fn max_class(&self) -> usize {
        self.entries.iter().map(|(c, _)| *c).max().unwrap_or(0)
    }

    /// Samples one class index, proportionally to weight.
    pub fn sample(&self, rng: &mut XorShift64) -> usize {
        let mut ticket = rng.next_below(self.total_weight);
        for &(class, weight) in &self.entries {
            if ticket < weight {
                return class;
            }
            ticket -= weight;
        }
        unreachable!("ticket drawn below total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_arrivals_are_monotone_and_deterministic() {
        let mut a = XorShift64::new(5);
        let mut b = XorShift64::new(5);
        let xs = open_arrivals(20.0, 50, &mut a);
        let ys = open_arrivals(20.0, 50, &mut b);
        assert_eq!(xs, ys);
        for pair in xs.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn open_arrival_rate_is_near_nominal() {
        let mut rng = XorShift64::new(11);
        let n = 4000;
        let xs = open_arrivals(25.0, n, &mut rng);
        let measured = n as f64 / xs.last().unwrap().as_secs_f64();
        assert!((measured / 25.0 - 1.0).abs() < 0.1, "rate {measured}");
    }

    #[test]
    fn weighted_mix_respects_weights() {
        let mix = RequestMix::weighted(vec![(0, 3), (1, 1)]);
        let mut rng = XorShift64::new(3);
        let n = 8000;
        let zeros = (0..n).filter(|_| mix.sample(&mut rng) == 0).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn uniform_mix_covers_all_classes() {
        let mix = RequestMix::uniform(3);
        let mut rng = XorShift64::new(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[mix.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(mix.max_class(), 2);
    }

    #[test]
    fn offered_rps_only_for_open_loops() {
        assert_eq!(Arrival::Open { rate_per_sec: 7.0 }.offered_rps(), Some(7.0));
        let closed = Arrival::Closed {
            users: 4,
            think: Nanos::from_millis(10),
        };
        assert_eq!(closed.offered_rps(), None);
    }
}
