//! Admission control: bounded queueing, shedding, and scheduling policies.
//!
//! An open-loop stream offered above the PSP-bound service rate grows its
//! queue without bound; an unbounded queue turns overload into unbounded
//! latency for *everyone*. The admission controller caps the damage: at most
//! `max_inflight` launches are dispatched at once, at most `queue_bound`
//! requests wait behind them, and anything beyond that is **shed**
//! immediately — a fast failure the client can retry elsewhere.
//!
//! When a dispatch slot frees, the scheduler picks the next request by
//! [`SchedPolicy`]:
//!
//! * [`SchedPolicy::Fifo`] — arrival order; fair, predictable.
//! * [`SchedPolicy::ShortestPspFirst`] — least expected serialized PSP work
//!   first. Since the PSP is the bottleneck resource, this is SJF on the
//!   bottleneck: it minimizes mean wait at some cost to long-job tail.
//! * [`SchedPolicy::TemplateAffinity`] — prefer requests whose template is
//!   already live in the launch cache (cheap hits drain the queue faster
//!   than fills); falls back to FIFO among equals.

use std::collections::VecDeque;

use sevf_psp::TemplateKey;
use sevf_sim::Nanos;

/// Which queued request runs next when a dispatch slot frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// First come, first served.
    #[default]
    Fifo,
    /// Least expected serialized PSP work first (SJF on the bottleneck).
    ShortestPspFirst,
    /// Prefer requests whose launch template is already live.
    TemplateAffinity,
}

impl SchedPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::ShortestPspFirst => "sjf-psp",
            SchedPolicy::TemplateAffinity => "affinity",
        }
    }
}

/// Admission-controller knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queued (admitted but not yet dispatched) requests; arrivals
    /// beyond this are shed.
    pub queue_bound: usize,
    /// Maximum launches dispatched into the DES at once.
    pub max_inflight: usize,
    /// Scheduling policy for the queue.
    pub policy: SchedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_bound: 64,
            max_inflight: 32,
            policy: SchedPolicy::Fifo,
        }
    }
}

/// One admitted-but-waiting request.
#[derive(Debug, Clone, Copy)]
pub struct Pending {
    /// Request id (index into the service's request table).
    pub request: usize,
    /// Class index in the catalog.
    pub class: usize,
    /// Expected serialized PSP work of the launch this request will replay.
    pub expected_psp: Nanos,
    /// Content-address of the class's launch template.
    pub key: TemplateKey,
}

/// The bounded admission queue.
#[derive(Debug, Clone, Default)]
pub struct BoundedQueue {
    bound: usize,
    items: VecDeque<Pending>,
    shed: u64,
    max_depth: usize,
}

impl BoundedQueue {
    /// An empty queue admitting at most `bound` waiters.
    pub fn new(bound: usize) -> Self {
        BoundedQueue {
            bound,
            ..Default::default()
        }
    }

    /// Offers a request. Returns `false` (and counts a shed) when the queue
    /// is full.
    pub fn offer(&mut self, pending: Pending) -> bool {
        if self.items.len() >= self.bound {
            self.shed += 1;
            return false;
        }
        self.items.push_back(pending);
        self.max_depth = self.max_depth.max(self.items.len());
        true
    }

    /// Picks (and removes) the next request per `policy`. `is_hot` reports
    /// whether a template key is live in the launch cache — only
    /// [`SchedPolicy::TemplateAffinity`] consults it.
    pub fn pick(
        &mut self,
        policy: SchedPolicy,
        is_hot: impl Fn(&TemplateKey) -> bool,
    ) -> Option<Pending> {
        if self.items.is_empty() {
            return None;
        }
        let idx = match policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::ShortestPspFirst => self
                .items
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.expected_psp, *i))
                .map(|(i, _)| i)
                .unwrap_or(0),
            SchedPolicy::TemplateAffinity => {
                self.items.iter().position(|p| is_hot(&p.key)).unwrap_or(0)
            }
        };
        self.items.remove(idx)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Requests shed because the queue was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Deepest the queue ever got.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(request: usize, psp_ms: u64, key_byte: u8) -> Pending {
        Pending {
            request,
            class: 0,
            expected_psp: Nanos::from_millis(psp_ms),
            key: TemplateKey::from_measurement([key_byte; 48]),
        }
    }

    #[test]
    fn bound_sheds_overflow() {
        let mut q = BoundedQueue::new(2);
        assert!(q.offer(pending(0, 1, 0)));
        assert!(q.offer(pending(1, 1, 0)));
        assert!(!q.offer(pending(2, 1, 0)));
        assert_eq!(q.shed(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn fifo_picks_in_arrival_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..3 {
            q.offer(pending(i, 10 - i as u64, 0));
        }
        let first = q.pick(SchedPolicy::Fifo, |_| false).unwrap();
        assert_eq!(first.request, 0);
    }

    #[test]
    fn sjf_picks_least_psp_work_stably() {
        let mut q = BoundedQueue::new(8);
        q.offer(pending(0, 30, 0));
        q.offer(pending(1, 5, 0));
        q.offer(pending(2, 5, 0));
        let first = q.pick(SchedPolicy::ShortestPspFirst, |_| false).unwrap();
        // Ties break by queue position: request 1 before request 2.
        assert_eq!(first.request, 1);
        let second = q.pick(SchedPolicy::ShortestPspFirst, |_| false).unwrap();
        assert_eq!(second.request, 2);
    }

    #[test]
    fn affinity_prefers_hot_templates_else_fifo() {
        let mut q = BoundedQueue::new(8);
        q.offer(pending(0, 1, 1));
        q.offer(pending(1, 1, 2));
        let hot = TemplateKey::from_measurement([2u8; 48]);
        let first = q
            .pick(SchedPolicy::TemplateAffinity, |k| *k == hot)
            .unwrap();
        assert_eq!(first.request, 1);
        // Nothing hot left: fall back to FIFO.
        let second = q
            .pick(SchedPolicy::TemplateAffinity, |k| *k == hot)
            .unwrap();
        assert_eq!(second.request, 0);
    }

    #[test]
    fn bound_zero_sheds_everything() {
        let mut q = BoundedQueue::new(0);
        assert!(!q.offer(pending(0, 1, 0)));
        assert!(!q.offer(pending(1, 1, 0)));
        assert_eq!(q.shed(), 2);
        assert_eq!(q.len(), 0);
        assert_eq!(q.max_depth(), 0);
        assert!(q.pick(SchedPolicy::Fifo, |_| true).is_none());
    }

    #[test]
    fn bound_one_holds_exactly_one_waiter() {
        let mut q = BoundedQueue::new(1);
        assert!(q.offer(pending(0, 1, 0)));
        assert!(!q.offer(pending(1, 1, 0)), "second waiter sheds");
        assert_eq!(q.len(), 1);
        assert_eq!(q.shed(), 1);

        // Draining the single slot re-opens it; every policy agrees on a
        // one-element queue.
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::ShortestPspFirst,
            SchedPolicy::TemplateAffinity,
        ] {
            let picked = q.pick(policy, |_| false).unwrap();
            assert_eq!(picked.request, 0);
            assert!(q.is_empty());
            assert!(q.offer(pending(0, 1, 0)));
        }
        assert_eq!(q.max_depth(), 1);
    }

    #[test]
    fn empty_queue_picks_nothing() {
        let mut q = BoundedQueue::new(4);
        assert!(q.pick(SchedPolicy::Fifo, |_| true).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn policy_names() {
        assert_eq!(SchedPolicy::Fifo.name(), "fifo");
        assert_eq!(SchedPolicy::ShortestPspFirst.name(), "sjf-psp");
        assert_eq!(SchedPolicy::TemplateAffinity.name(), "affinity");
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
    }
}
