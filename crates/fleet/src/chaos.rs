//! The chaos experiment: fleet availability under a seeded fault storm.
//!
//! One sweep serves the same seeded request stream at each offered load
//! three times:
//!
//! * **fault-free** — no fault plan, no recovery: the PR-1 baseline.
//! * **naive** — the fault storm with [`RecoveryConfig::none`]: every fault
//!   is a permanently failed request, dispatches keep feeding the dead PSP
//!   through reset outages, and the template cache's death goes unmanaged.
//! * **resilient** — the same storm (byte-identical [`FaultPlan`]) with
//!   retries, deadlines, circuit-breaker degradation, and PSP quiesce.
//!
//! The table the sweep feeds (`figures --table chaos`) shows the naive
//! fleet's goodput collapsing under PSP-reset storms while the resilient
//! fleet holds it, at a quantified p99 cost. Everything is derived from
//! `(seed, config)` — two sweeps with the same config are identical.

use sevf_sim::fault::{FaultConfig, FaultPlan};
use sevf_sim::Nanos;

use crate::admission::AdmissionConfig;
use crate::blueprint::ClassSpec;
use crate::recovery::RecoveryConfig;
use crate::service::{FleetConfig, FleetService, ServingTier};
use crate::workload::{Arrival, RequestMix};
use crate::FleetError;

const MB: u64 = 1024 * 1024;

/// How a sweep arm reacts to the storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosArm {
    /// No faults injected at all (the PR-1 baseline).
    FaultFree,
    /// Faults injected, no recovery: every fault permanently fails.
    Naive,
    /// Faults injected, full recovery: retry + deadline + breaker + quiesce.
    Resilient,
}

impl ChaosArm {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosArm::FaultFree => "fault-free",
            ChaosArm::Naive => "naive",
            ChaosArm::Resilient => "resilient",
        }
    }
}

/// Knobs of one chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for catalog machines, arrivals, class sampling, fault plans,
    /// and backoff jitter.
    pub seed: u64,
    /// Request classes to serve.
    pub classes: Vec<ClassSpec>,
    /// Mix over those classes; `None` = uniform.
    pub mix: Option<RequestMix>,
    /// Serving tier every arm runs at.
    pub tier: ServingTier,
    /// Requests per `(arm, load)` cell.
    pub requests: usize,
    /// Offered loads to sweep (req/s).
    pub loads_rps: Vec<f64>,
    /// Admission-controller knobs.
    pub admission: AdmissionConfig,
    /// Warm-pool target per class (warm-pool tier only).
    pub warm_target: usize,
    /// The storm to inject into the naive and resilient arms.
    pub fault: FaultConfig,
    /// Recovery policy of the resilient arm.
    pub recovery: RecoveryConfig,
    /// Fault-plan horizon as a multiple of the nominal run length
    /// (`requests / load`); slack keeps the storm alive through the
    /// fault-lengthened tail of the run.
    pub horizon_slack: f64,
}

impl ChaosConfig {
    /// The headline chaos sweep: template serving of the paper mix under
    /// [`FaultConfig::storm`].
    pub fn paper_chaos() -> Self {
        ChaosConfig {
            seed: 0x5EF0,
            classes: ClassSpec::paper_classes(16, 256 * MB),
            mix: Some(RequestMix::weighted(vec![
                (0, 5),
                (1, 3),
                (2, 1),
                (3, 1),
                (4, 2),
            ])),
            tier: ServingTier::Template,
            requests: 300,
            loads_rps: vec![10.0, 25.0, 40.0, 60.0],
            admission: AdmissionConfig::default(),
            warm_target: 24,
            fault: FaultConfig::storm(),
            recovery: RecoveryConfig::resilient(0x5EF0),
            horizon_slack: 2.0,
        }
    }

    /// A fast sweep over the tiny test classes (tests, `--quick` example).
    pub fn quick() -> Self {
        ChaosConfig {
            seed: 0x5EF0,
            classes: ClassSpec::quick_test_classes(),
            mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
            tier: ServingTier::Template,
            requests: 400,
            loads_rps: vec![30.0, 120.0],
            admission: AdmissionConfig {
                queue_bound: 128,
                max_inflight: 96,
                ..AdmissionConfig::default()
            },
            warm_target: 64,
            fault: FaultConfig::storm(),
            recovery: RecoveryConfig::resilient(0x5EF0),
            horizon_slack: 2.0,
        }
    }
}

/// One `(arm, offered load)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Recovery arm.
    pub arm: ChaosArm,
    /// Offered load (req/s).
    pub offered_rps: f64,
    /// Requests served to completion.
    pub completed: usize,
    /// Completed requests per second of makespan.
    pub goodput_rps: f64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests shed past the bottom of the degradation ladder.
    pub breaker_sheds: u64,
    /// Requests shed on deadline.
    pub timeouts: u64,
    /// Requests permanently failed after exhausting retries.
    pub failed: u64,
    /// Retry launches dispatched.
    pub retries: u64,
    /// Injected-fault occurrences of every kind.
    pub faults: u64,
    /// Launches dispatched below the configured tier.
    pub degraded_dispatches: u64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Virtual time spent inside PSP reset outages (ms).
    pub time_degraded_ms: f64,
}

/// The sweep's result: the storm's shape plus one row per `(arm, load)`.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// PSP firmware resets the plan schedules at the *lowest* load's
    /// horizon (the longest-running cell sees the most).
    pub planned_resets: usize,
    /// Warm-guest crashes at the lowest load's horizon.
    pub planned_crashes: usize,
    /// One row per `(arm, offered load)`, loads outermost.
    pub rows: Vec<ChaosRow>,
}

/// Plan horizon for one load: nominal run length times the slack.
fn horizon(requests: usize, load: f64, slack: f64) -> Nanos {
    Nanos::from_nanos((requests as f64 / load * slack * 1e9) as u64)
}

/// Runs the full `(arm × load)` grid over one catalog.
///
/// # Errors
///
/// Returns [`FleetError::FaultPlan`] or [`FleetError::Recovery`] when the
/// storm or recovery knobs are invalid, and propagates catalog-construction
/// failures.
pub fn chaos_sweep(cfg: &ChaosConfig) -> Result<ChaosReport, FleetError> {
    cfg.fault.validate().map_err(FleetError::FaultPlan)?;
    cfg.recovery.validate().map_err(FleetError::Recovery)?;
    let catalog = crate::blueprint::Catalog::build(cfg.seed, &cfg.classes)?;

    let mut rows = Vec::new();
    let mut planned_resets = 0;
    let mut planned_crashes = 0;
    for (li, &load) in cfg.loads_rps.iter().enumerate() {
        let plan = FaultPlan::generate(
            cfg.seed,
            cfg.fault.clone(),
            horizon(cfg.requests, load, cfg.horizon_slack),
        )
        .map_err(FleetError::FaultPlan)?;
        if li == 0 {
            planned_resets = plan.resets().len();
            planned_crashes = plan.warm_crashes().len();
        }
        let arms = [
            (ChaosArm::FaultFree, None, RecoveryConfig::none()),
            (ChaosArm::Naive, Some(plan.clone()), RecoveryConfig::none()),
            (ChaosArm::Resilient, Some(plan), cfg.recovery),
        ];
        for (arm, fault, recovery) in arms {
            let config = FleetConfig {
                tier: cfg.tier,
                arrival: Arrival::Open { rate_per_sec: load },
                mix: cfg.mix.clone(),
                requests: cfg.requests,
                seed: cfg.seed,
                admission: cfg.admission,
                warm_target: cfg.warm_target,
                fault,
                recovery,
                attestation: None,
                verifier_net: None,
                policy: None,
            };
            let report = FleetService::new(catalog.clone(), config).run();
            let m = &report.metrics;
            rows.push(ChaosRow {
                arm,
                offered_rps: load,
                completed: m.completed,
                goodput_rps: m.goodput_rps(),
                shed: m.shed,
                breaker_sheds: m.breaker_sheds,
                timeouts: m.timeouts,
                failed: m.failed,
                retries: m.retries,
                faults: m.faults.total(),
                degraded_dispatches: m.degraded_dispatches,
                p50_ms: m.p50_ms(),
                p99_ms: m.p99_ms(),
                time_degraded_ms: m.time_degraded.as_millis_f64(),
            });
        }
    }
    Ok(ChaosReport {
        planned_resets,
        planned_crashes,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(report: &ChaosReport, arm: ChaosArm, load: f64) -> &ChaosRow {
        report
            .rows
            .iter()
            .find(|r| r.arm == arm && r.offered_rps == load)
            .expect("cell exists")
    }

    #[test]
    fn resilient_goodput_strictly_beats_naive_at_every_load() {
        let cfg = ChaosConfig::quick();
        let report = chaos_sweep(&cfg).unwrap();
        for &load in &cfg.loads_rps {
            let naive = row(&report, ChaosArm::Naive, load);
            let resilient = row(&report, ChaosArm::Resilient, load);
            assert!(naive.failed > 0, "storm must hurt the naive arm at {load}");
            assert!(
                resilient.goodput_rps > naive.goodput_rps,
                "at {load} req/s: resilient {:.1} vs naive {:.1}",
                resilient.goodput_rps,
                naive.goodput_rps
            );
            assert!(
                resilient.completed > naive.completed,
                "at {load} req/s: resilient {} vs naive {}",
                resilient.completed,
                naive.completed
            );
        }
        assert!(report.planned_resets > 0);
    }

    #[test]
    fn fault_free_arm_matches_the_serving_baseline() {
        let cfg = ChaosConfig::quick();
        let report = chaos_sweep(&cfg).unwrap();
        for &load in &cfg.loads_rps {
            let base = row(&report, ChaosArm::FaultFree, load);
            assert_eq!(base.faults, 0);
            assert_eq!(base.failed, 0);
            assert_eq!(base.retries, 0);
            assert_eq!(base.completed as u64 + base.shed, cfg.requests as u64);
        }
    }

    #[test]
    fn sweeps_are_deterministic() {
        let cfg = ChaosConfig::quick();
        let a = chaos_sweep(&cfg).unwrap();
        let b = chaos_sweep(&cfg).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.arm, y.arm);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.failed, y.failed);
            assert_eq!(x.timeouts, y.timeouts);
            assert_eq!(x.retries, y.retries);
            assert_eq!(x.faults, y.faults);
            assert!((x.goodput_rps - y.goodput_rps).abs() < 1e-12);
            assert!((x.p99_ms - y.p99_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_knobs_surface_as_typed_errors() {
        let mut cfg = ChaosConfig::quick();
        cfg.fault.psp_transient_rate = 1.5;
        assert!(matches!(chaos_sweep(&cfg), Err(FleetError::FaultPlan(_))));

        let mut cfg = ChaosConfig::quick();
        cfg.recovery.retry.max_attempts = 0;
        assert!(matches!(chaos_sweep(&cfg), Err(FleetError::Recovery(_))));
    }
}
