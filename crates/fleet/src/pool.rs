//! The §7.1 warm-pool manager: keep-alive guests held ready per class.
//!
//! A warm pool trades memory rent for latency: each slot is a booted,
//! resident guest ([`sevf_vmm::warm::KeepAliveVm`] in the one-shot
//! experiments), so a request that finds a slot skips the entire launch and
//! boot path — one vCPU kick and it is running. The manager tracks, per
//! class, how many slots are ready, how many refills are in flight, and a
//! target size; after a take it asks the control plane to start a refill so
//! the pool converges back to target. Slots returned above target are
//! evicted (the rent is the point: §7.1's warning is that resident SEV
//! guests cannot even be deduplicated).

/// Per-class warm-slot accounting.
#[derive(Debug, Clone, Copy, Default)]
struct ClassSlots {
    ready: usize,
    refilling: usize,
}

/// Warm-pool manager: per-class ready slots with target-size/evict logic.
#[derive(Debug, Clone)]
pub struct WarmPool {
    target_per_class: usize,
    slots: Vec<ClassSlots>,
    resident_bytes_per_slot: Vec<u64>,
    hits: u64,
    misses: u64,
    evicted: u64,
    crashed: u64,
}

impl WarmPool {
    /// A pool over `classes` request classes, pre-warmed to
    /// `target_per_class` ready slots each. `resident_bytes_per_slot[c]` is
    /// the memory rent one resident guest of class `c` charges.
    pub fn prewarmed(
        classes: usize,
        target_per_class: usize,
        resident_bytes_per_slot: Vec<u64>,
    ) -> Self {
        assert_eq!(resident_bytes_per_slot.len(), classes);
        WarmPool {
            target_per_class,
            slots: vec![
                ClassSlots {
                    ready: target_per_class,
                    refilling: 0,
                };
                classes
            ],
            resident_bytes_per_slot,
            hits: 0,
            misses: 0,
            evicted: 0,
            crashed: 0,
        }
    }

    /// Takes a ready slot for `class`. Returns `true` on a warm hit.
    pub fn try_take(&mut self, class: usize) -> bool {
        let slot = &mut self.slots[class];
        if slot.ready > 0 {
            slot.ready -= 1;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Whether `class` is below target counting in-flight refills; call
    /// before starting a refill so concurrent refills do not overshoot.
    pub fn wants_refill(&self, class: usize) -> bool {
        let slot = &self.slots[class];
        slot.ready + slot.refilling < self.target_per_class
    }

    /// Records a refill launch started for `class`.
    pub fn refill_started(&mut self, class: usize) {
        self.slots[class].refilling += 1;
    }

    /// Records a refill completion: the new guest becomes a ready slot, or
    /// is evicted immediately if the class is already at target.
    pub fn refill_done(&mut self, class: usize) {
        let slot = &mut self.slots[class];
        slot.refilling = slot.refilling.saturating_sub(1);
        if slot.ready < self.target_per_class {
            slot.ready += 1;
        } else {
            self.evicted += 1;
        }
    }

    /// Records a refill that failed (e.g. its launch died in a PSP reset):
    /// the in-flight count drops but no slot becomes ready.
    pub fn refill_failed(&mut self, class: usize) {
        let slot = &mut self.slots[class];
        slot.refilling = slot.refilling.saturating_sub(1);
    }

    /// A warm guest of `class` crashes. Returns `true` (and counts it) when
    /// a ready slot actually existed to die; an empty class absorbs nothing.
    pub fn crash(&mut self, class: usize) -> bool {
        let slot = &mut self.slots[class];
        if slot.ready > 0 {
            slot.ready -= 1;
            self.crashed += 1;
            true
        } else {
            false
        }
    }

    /// Warm guests lost to crashes so far.
    pub fn crashed(&self) -> u64 {
        self.crashed
    }

    /// Ready slots for `class`.
    pub fn ready(&self, class: usize) -> usize {
        self.slots[class].ready
    }

    /// The per-class target size.
    pub fn target_per_class(&self) -> usize {
        self.target_per_class
    }

    /// Shrinks (or grows) the per-class target; shrinking evicts surplus
    /// ready slots immediately.
    pub fn set_target(&mut self, target_per_class: usize) {
        self.target_per_class = target_per_class;
        for slot in &mut self.slots {
            while slot.ready > target_per_class {
                slot.ready -= 1;
                self.evicted += 1;
            }
        }
    }

    /// Total memory rent the ready slots charge right now (§7.1).
    pub fn resident_bytes(&self) -> u64 {
        self.slots
            .iter()
            .zip(&self.resident_bytes_per_slot)
            .map(|(slot, &bytes)| slot.ready as u64 * bytes)
            .sum()
    }

    /// Warm hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Warm misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Guests evicted (returned or refilled above target).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WarmPool {
        WarmPool::prewarmed(2, 2, vec![1000, 500])
    }

    #[test]
    fn prewarmed_pool_serves_hits_until_drained() {
        let mut p = pool();
        assert!(p.try_take(0));
        assert!(p.try_take(0));
        assert!(!p.try_take(0));
        assert_eq!(p.hits(), 2);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn refill_cycle_restores_target() {
        let mut p = pool();
        assert!(p.try_take(1));
        assert!(p.wants_refill(1));
        p.refill_started(1);
        assert!(!p.wants_refill(1), "in-flight refill counts toward target");
        p.refill_done(1);
        assert_eq!(p.ready(1), 2);
        assert_eq!(p.evicted(), 0);
    }

    #[test]
    fn refill_above_target_evicts() {
        let mut p = pool();
        p.refill_started(0);
        p.refill_done(0); // class 0 already at target
        assert_eq!(p.ready(0), 2);
        assert_eq!(p.evicted(), 1);
    }

    #[test]
    fn shrinking_target_evicts_surplus() {
        let mut p = pool();
        p.set_target(1);
        assert_eq!(p.ready(0), 1);
        assert_eq!(p.ready(1), 1);
        assert_eq!(p.evicted(), 2);
    }

    #[test]
    fn crash_consumes_a_ready_slot_and_failed_refill_frees_the_lease() {
        let mut p = pool();
        assert!(p.crash(0));
        assert_eq!(p.ready(0), 1);
        assert_eq!(p.crashed(), 1);
        assert!(p.wants_refill(0));

        // A refill that dies must release its in-flight lease, or the class
        // would believe a refill is forever on the way and never converge.
        p.refill_started(0);
        assert!(!p.wants_refill(0));
        p.refill_failed(0);
        assert!(p.wants_refill(0));
        assert_eq!(p.ready(0), 1, "failed refill adds no slot");

        // Draining the class: crashes on an empty class are no-ops.
        assert!(p.crash(0));
        assert!(!p.crash(0));
        assert_eq!(p.crashed(), 2);
    }

    #[test]
    fn resident_bytes_track_ready_slots() {
        let mut p = pool();
        assert_eq!(p.resident_bytes(), 2 * 1000 + 2 * 500);
        p.try_take(0);
        assert_eq!(p.resident_bytes(), 1000 + 2 * 500);
    }
}
