//! The fleet control plane: serving launch traffic over virtual time.
//!
//! [`FleetService`] wires the pieces together on top of
//! [`DesEngine::run_dynamic`]: arrivals are zero-segment marker jobs whose
//! completion hands control to the service at the arrival instant; the
//! service then routes each request — warm pool first (if serving that
//! tier), then admission control — and injects the chosen launch blueprint
//! as a follow-up job on the shared PSP/CPU resources. Everything is seeded
//! and runs on the virtual clock, so a `(catalog, config, fault plan)`
//! triple fully determines the outcome.
//!
//! The three serving tiers mirror the paper's options:
//!
//! * [`ServingTier::Cold`] — every request pays the full launch; throughput
//!   caps at `1 / psp_busy` because the PSP serializes (Fig. 12).
//! * [`ServingTier::Template`] — first request of a class fills the §6.2
//!   shared-key template (cold-priced), the rest are cheap hits.
//! * [`ServingTier::WarmPool`] — requests take §7.1 keep-alive guests from
//!   the pool (no launch at all); the pool refills in the background via
//!   template launches, and misses fall through to the template path.
//!
//! # Fault injection and recovery
//!
//! With a [`FaultPlan`] configured, the substrate misbehaves: PSP firmware
//! resets poison every in-flight PSP-using launch and destroy the template
//! cache (each class must re-measure — the §6.2 trust caveat exercised
//! under failure), launch commands fail transiently partway through their
//! work, warm guests crash out of the pool, and attestation round trips
//! hang or error. The [`RecoveryConfig`] decides what happens next: the
//! naive fleet ([`RecoveryConfig::none`]) turns every fault into a
//! permanently failed request, while the resilient fleet retries with
//! backoff, sheds on deadline, degrades tripped classes down the tier
//! ladder (warm → template → cold → shed), and quiesces PSP-needing
//! dispatches across reset outages. Fault verdicts are drawn statelessly
//! from the plan, so a fault-free run consumes exactly the same random
//! stream as a run of the pre-fault control plane.

use std::collections::BTreeSet;

use sevf_attplane::{AttPlane, AttPlaneConfig, AttPlaneMetrics, Verdict, STEP_RTT};
use sevf_net::VerifierLink;
use sevf_obs::{MarkerKind, Outcome as ReqOutcome, Recorder, TraceLog};
use sevf_policy::{
    IsolationTier, Offer, PolicyConfig, PolicyDecision, PolicyEngine, Scheduler, TenantMetrics,
    TenantRollup, WfqQueue,
};
use sevf_psp::TemplateKey;
use sevf_sim::fault::{AttestFault, FaultKind, FaultPlan};
use sevf_sim::rng::XorShift64;
use sevf_sim::{DesEngine, Job, JobOutcome, Nanos, PhaseKind, ResourceClass, ResourceId, RunTrace};
use sevf_vmm::machine::HOST_CORES;

use crate::admission::{AdmissionConfig, BoundedQueue, Pending};
use crate::blueprint::{Blueprint, Catalog, LaunchCache};
use crate::metrics::FleetMetrics;
use crate::pool::WarmPool;
use crate::recovery::{CircuitBreaker, RecoveryConfig};
use crate::workload::{open_arrivals, Arrival, RequestMix};

/// Which reuse tier the fleet serves requests from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingTier {
    /// Full launch per request.
    Cold,
    /// Content-addressed shared-key template launches (§6.2).
    Template,
    /// Pre-warmed keep-alive guests, template-backed refills (§7.1).
    WarmPool,
}

impl ServingTier {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServingTier::Cold => "cold",
            ServingTier::Template => "template",
            ServingTier::WarmPool => "warm-pool",
        }
    }

    /// Position on the degradation ladder (0 = most cached).
    fn ladder_pos(self) -> usize {
        match self {
            ServingTier::WarmPool => 0,
            ServingTier::Template => 1,
            ServingTier::Cold => 2,
        }
    }

    /// The tier `level` breaker trips below `self`, or `None` once the
    /// ladder (warm → template → cold) is exhausted and the class sheds.
    pub fn degraded(self, level: usize) -> Option<ServingTier> {
        match self.ladder_pos() + level {
            0 => Some(ServingTier::WarmPool),
            1 => Some(ServingTier::Template),
            2 => Some(ServingTier::Cold),
            _ => None,
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Serving tier.
    pub tier: ServingTier,
    /// Arrival process.
    pub arrival: Arrival,
    /// Request mix over catalog classes; `None` = uniform over the catalog.
    pub mix: Option<RequestMix>,
    /// Total requests to serve.
    pub requests: usize,
    /// Seed for arrivals and class sampling.
    pub seed: u64,
    /// Admission-controller knobs.
    pub admission: AdmissionConfig,
    /// Warm-pool target size per class (warm-pool tier only).
    pub warm_target: usize,
    /// Injected faults; `None` = the fault-free control plane.
    pub fault: Option<FaultPlan>,
    /// How the fleet reacts to failures.
    pub recovery: RecoveryConfig,
    /// Attestation control plane; `None` = no verifier in the path (the
    /// pre-attestation control plane, byte-identical to older runs).
    pub attestation: Option<AttPlaneConfig>,
    /// Network link to the remote verifier; `None` = the verifier is
    /// local and always reachable (byte-identical to older runs).
    pub verifier_net: Option<VerifierLink>,
    /// Multi-tenant policy layer; `None` = the pre-policy control plane,
    /// byte-identical to older runs (no tenant sampling, no extra RNG
    /// draws, the plain FIFO bounded queue).
    pub policy: Option<PolicyConfig>,
}

impl FleetConfig {
    /// An open-loop run at `rate_per_sec` offered load.
    pub fn open_loop(tier: ServingTier, rate_per_sec: f64, requests: usize) -> Self {
        FleetConfig {
            tier,
            arrival: Arrival::Open { rate_per_sec },
            mix: None,
            requests,
            seed: 0x5EF0,
            admission: AdmissionConfig::default(),
            warm_target: 8,
            fault: None,
            recovery: RecoveryConfig::none(),
            attestation: None,
            verifier_net: None,
            policy: None,
        }
    }

    /// A closed-loop run with `users` clients and `think` think time.
    pub fn closed_loop(tier: ServingTier, users: usize, think: Nanos, requests: usize) -> Self {
        FleetConfig {
            tier,
            arrival: Arrival::Closed { users, think },
            mix: None,
            requests,
            seed: 0x5EF0,
            admission: AdmissionConfig::default(),
            warm_target: 8,
            fault: None,
            recovery: RecoveryConfig::none(),
            attestation: None,
            verifier_net: None,
            policy: None,
        }
    }

    /// The isolation tier the substrate provides: SEV-SNP once an
    /// attestation plane (SNP reports, VCEK chains) is in the path, plain
    /// SEV otherwise. Policy isolation demands are checked against this.
    pub fn substrate_isolation(&self) -> IsolationTier {
        if self.attestation.is_some() {
            IsolationTier::SevSnp
        } else {
            IsolationTier::Sev
        }
    }

    /// Checks the attestation-plane config, if any, passing the config
    /// through so sweeps can chain construction.
    pub fn validated(self) -> Result<Self, crate::FleetError> {
        if let Some(att) = &self.attestation {
            att.validate().map_err(crate::FleetError::AttPlane)?;
        }
        if let Some(link) = &self.verifier_net {
            link.validate().map_err(crate::FleetError::Net)?;
        }
        if let Some(policy) = &self.policy {
            // The catalog is not known here; class-mix bounds are checked
            // again (strictly) in `FleetService::new`.
            policy
                .validate(usize::MAX)
                .map_err(crate::FleetError::Policy)?;
        }
        Ok(self)
    }
}

/// Outcome of one serving run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Tier that served.
    pub tier: ServingTier,
    /// Offered load (open loops only).
    pub offered_rps: Option<f64>,
    /// Collected metrics.
    pub metrics: FleetMetrics,
    /// Memory rent the warm pool held at the end of the run (§7.1).
    pub pool_resident_bytes: u64,
    /// Attestation-plane counters, when a verifier was configured.
    pub attestation: Option<AttPlaneMetrics>,
    /// Per-tenant terminal accounting, when a policy layer was configured.
    /// The extended conservation invariant holds per row:
    /// `completed+shed+breaker_sheds+timeouts+failed+rejected == issued`.
    pub tenants: Option<Vec<TenantRollup>>,
    /// Resource-occupancy trace of the run (for invariant checks).
    pub trace: RunTrace,
}

/// Verdict decided for a launch when it was dispatched. A PSP reset can
/// still override it at completion (poisoning strikes work already in
/// flight).
#[derive(Debug, Clone, Copy)]
enum LaunchFate {
    Ok,
    Fault(FaultKind),
}

/// What an engine job index means to the control plane.
#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// Arrival marker for a request (zero segments).
    Arrival { request: usize },
    /// The launch (or warm invocation) serving a request. `fill` carries
    /// the template key this launch is filling (invalidated if it fails);
    /// `psp` marks launches holding PSP work (poisoned by resets).
    Launch {
        request: usize,
        class: usize,
        fate: LaunchFate,
        fill: Option<TemplateKey>,
        psp: bool,
    },
    /// Backoff marker: when it completes, the request re-enters routing.
    Retry { request: usize },
    /// Background warm-pool refill for a class.
    Replenish { class: usize, psp: bool },
    /// A PSP firmware reset begins (in-flight state dies here).
    ResetStart,
    /// A PSP firmware reset outage ends (quiesced work may drain).
    ResetEnd,
    /// A warm guest crashes; `idx` indexes the plan's crash schedule.
    WarmCrash { idx: usize },
}

/// The control plane: routes a request stream onto the host's resources.
#[derive(Debug)]
pub struct FleetService {
    catalog: Catalog,
    config: FleetConfig,
}

/// Mutable serving state threaded through the DES completion hook.
struct State<'a> {
    catalog: &'a Catalog,
    config: &'a FleetConfig,
    psp: ResourceId,
    cpu: ResourceId,
    mix: RequestMix,
    rng: XorShift64,
    meta: Vec<JobKind>,
    req_class: Vec<usize>,
    arrived: Vec<Nanos>,
    attempts: Vec<u32>,
    queue: BoundedQueue,
    pool: WarmPool,
    cache: LaunchCache,
    breakers: Option<Vec<CircuitBreaker>>,
    /// Job indices of in-flight work holding PSP segments; a firmware reset
    /// moves them all into `poisoned`.
    psp_inflight: BTreeSet<usize>,
    /// Job indices whose completion is a [`FaultKind::PspReset`] failure.
    poisoned: BTreeSet<usize>,
    /// Deterministic token stream for stateless fault draws: one token per
    /// fault-eligible launch, in dispatch order.
    launch_seq: u64,
    inflight: usize,
    issued: usize,
    metrics: FleetMetrics,
    /// Attestation control plane, when configured: every fault-free
    /// dispatch is verified and carries the verifier's latency.
    plane: Option<AttPlane>,
    /// Multi-tenant policy layer, when configured.
    policy: Option<PolicyState>,
    /// Observability handle. Disabled by default; never touches the RNG,
    /// the metrics, or job injection, so enabling it cannot change a run.
    rec: Recorder,
}

/// Live policy-layer state: the engine (specs + quota buckets), the WFQ
/// queue when the scheduler is [`Scheduler::Wfq`], tenant tags, and
/// per-tenant terminal accounting.
///
/// Tenant tagging draws from its own RNG stream (`seed ^ TENANT_SALT`), so
/// the arrival and class streams the no-policy path consumes are
/// untouched — FIFO and WFQ arms of a sweep serve the *same* request
/// stream, and disabling policy replays older runs byte-identically.
struct PolicyState {
    engine: PolicyEngine,
    wfq: Option<WfqQueue<Pending>>,
    tenant_rng: XorShift64,
    /// Per-tenant class mixes (`None` = the catalog-wide mix).
    mixes: Vec<Option<RequestMix>>,
    /// Tenant tag per request id.
    req_tenant: Vec<usize>,
    /// Per-tenant terminal accounting.
    tenants: Vec<TenantMetrics>,
}

/// Salt for the dedicated tenant-tagging RNG stream.
const TENANT_SALT: u64 = 0x7E4A_917E_5EF0_11AD;

impl FleetService {
    /// Builds a service over a measured catalog.
    ///
    /// # Panics
    ///
    /// Panics if the config's mix references a class outside the catalog,
    /// a closed loop has zero users, or the recovery config is invalid
    /// ([`RecoveryConfig::validate`]).
    pub fn new(catalog: Catalog, config: FleetConfig) -> Self {
        if let Some(mix) = &config.mix {
            assert!(
                mix.max_class() < catalog.len(),
                "mix references class {} but catalog has {}",
                mix.max_class(),
                catalog.len()
            );
        }
        if let Arrival::Closed { users, .. } = config.arrival {
            assert!(users > 0, "closed loop needs at least one user");
        }
        if let Err(e) = config.recovery.validate() {
            panic!("invalid recovery config: {e}");
        }
        if let Some(att) = &config.attestation {
            if let Err(e) = att.validate() {
                panic!("invalid attestation config: {e}");
            }
        }
        if let Some(link) = &config.verifier_net {
            if let Err(e) = link.validate() {
                panic!("invalid verifier link: {e}");
            }
        }
        if let Some(policy) = &config.policy {
            if let Err(e) = policy.validate(catalog.len()) {
                panic!("invalid policy config: {e}");
            }
        }
        FleetService { catalog, config }
    }

    /// Serves the configured request stream to completion.
    pub fn run(self) -> FleetReport {
        self.run_with(Recorder::disabled()).0
    }

    /// Serves the stream with span recording on, returning the report and
    /// the assembled [`TraceLog`]. The report is identical to [`run`]'s
    /// (the recorder only observes).
    ///
    /// [`run`]: FleetService::run
    pub fn run_traced(self) -> (FleetReport, TraceLog) {
        self.run_with(Recorder::enabled())
    }

    fn run_with(self, rec: Recorder) -> (FleetReport, TraceLog) {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let cpu = engine.add_resource("host-cpus", HOST_CORES);

        let mix = self
            .config
            .mix
            .clone()
            .unwrap_or_else(|| RequestMix::uniform(self.catalog.len()));
        let mut state = State {
            catalog: &self.catalog,
            config: &self.config,
            psp,
            cpu,
            mix,
            rng: XorShift64::new(self.config.seed ^ 0x5EF0_F1EE7),
            meta: Vec::new(),
            req_class: Vec::new(),
            arrived: Vec::new(),
            attempts: Vec::new(),
            queue: BoundedQueue::new(self.config.admission.queue_bound),
            pool: WarmPool::prewarmed(
                self.catalog.len(),
                if self.config.tier == ServingTier::WarmPool {
                    self.config.warm_target
                } else {
                    0
                },
                self.catalog
                    .classes()
                    .iter()
                    .map(|c| c.resident_bytes)
                    .collect(),
            ),
            cache: LaunchCache::new(),
            breakers: self
                .config
                .recovery
                .breaker
                .map(|b| vec![CircuitBreaker::new(b); self.catalog.len()]),
            psp_inflight: BTreeSet::new(),
            poisoned: BTreeSet::new(),
            launch_seq: 0,
            inflight: 0,
            issued: 0,
            metrics: FleetMetrics::default(),
            plane: self
                .config
                .attestation
                .map(|cfg| AttPlane::new(cfg, 1).expect("attestation config validated in new()")),
            policy: self.config.policy.as_ref().map(|pcfg| {
                let engine =
                    PolicyEngine::new(pcfg, self.config.substrate_isolation(), self.catalog.len())
                        .expect("policy config validated in new()");
                let wfq = match pcfg.scheduler {
                    Scheduler::Wfq => Some(
                        WfqQueue::new(
                            self.config.admission.queue_bound,
                            &engine.lane_specs(),
                            self.config.seed,
                        )
                        .expect("policy config validated in new()"),
                    ),
                    Scheduler::Fifo => None,
                };
                PolicyState {
                    wfq,
                    tenant_rng: XorShift64::new(self.config.seed ^ TENANT_SALT),
                    mixes: pcfg
                        .tenants
                        .iter()
                        .map(|t| {
                            if t.class_mix.is_empty() {
                                None
                            } else {
                                Some(RequestMix::weighted(t.class_mix.clone()))
                            }
                        })
                        .collect(),
                    req_tenant: Vec::new(),
                    tenants: vec![TenantMetrics::default(); pcfg.tenants.len()],
                    engine,
                }
            }),
            rec,
        };

        // Warm-pool serving starts with every template live: the pool's
        // resident guests were launched from them.
        if self.config.tier == ServingTier::WarmPool {
            for (idx, class) in self.catalog.classes().iter().enumerate() {
                state.cache.prefill(class.key, idx);
            }
        }

        // Seed the arrival stream: open loops pre-draw every arrival, closed
        // loops start one marker per user and chain the rest on completions.
        let mut seed_jobs = Vec::new();
        match self.config.arrival {
            Arrival::Open { rate_per_sec } => {
                let times = open_arrivals(rate_per_sec, self.config.requests, &mut state.rng);
                for at in times {
                    let request = state.new_request(at);
                    seed_jobs.push(Job::released_at(at, vec![]));
                    state.meta.push(JobKind::Arrival { request });
                }
            }
            Arrival::Closed { users, .. } => {
                for i in 0..users.min(self.config.requests) {
                    // Tiny stagger keeps user start order deterministic and
                    // distinct.
                    let at = Nanos::from_micros(i as u64);
                    let request = state.new_request(at);
                    seed_jobs.push(Job::released_at(at, vec![]));
                    state.meta.push(JobKind::Arrival { request });
                }
            }
        }

        // Seed the fault schedule as marker jobs. Without a plan this adds
        // nothing, so the fault-free path is byte-identical to the pre-fault
        // control plane.
        if let Some(plan) = &self.config.fault {
            for window in plan.resets() {
                seed_jobs.push(Job::released_at(window.start, vec![]));
                state.meta.push(JobKind::ResetStart);
                seed_jobs.push(Job::released_at(window.end, vec![]));
                state.meta.push(JobKind::ResetEnd);
            }
            for idx in 0..plan.warm_crashes().len() {
                seed_jobs.push(Job::released_at(plan.warm_crashes()[idx], vec![]));
                state.meta.push(JobKind::WarmCrash { idx });
            }
        }

        let (_, trace) = engine.run_dynamic(seed_jobs, |outcome, inject| {
            state.on_event(outcome, inject);
        });

        // Feed the engine's resource occupancy back so PSP/CPU steps land
        // at their true contended intervals rather than planned durations.
        if state.rec.on() {
            for entry in trace.entries() {
                state.rec.occupy(
                    engine.resource_name(entry.resource),
                    entry.job,
                    entry.start,
                    entry.end,
                );
            }
        }
        let log = state.rec.build();

        let mut metrics = state.metrics;
        metrics.shed = state.queue.shed();
        metrics.max_queue_depth = state.queue.max_depth();
        if let Some(wfq) = state.policy.as_ref().and_then(|p| p.wfq.as_ref()) {
            metrics.shed += wfq.shed();
            metrics.max_queue_depth = metrics.max_queue_depth.max(wfq.max_depth());
        }
        metrics.cache_hits = state.cache.hits();
        metrics.cache_misses = state.cache.misses();
        metrics.warm_hits = state.pool.hits();
        metrics.warm_misses = state.pool.misses();
        metrics.evicted = state.pool.evicted();
        metrics.psp_utilization = trace.utilization(psp, 1);
        metrics.cpu_utilization = trace.utilization(cpu, HOST_CORES);
        metrics.makespan = trace.makespan();
        if let Some(breakers) = &state.breakers {
            metrics.breaker_trips = breakers.iter().map(|b| b.trips()).sum();
        }
        if let Some(plan) = &self.config.fault {
            metrics.time_degraded = plan
                .resets()
                .iter()
                .map(|w| w.end.min(metrics.makespan).saturating_sub(w.start))
                .sum();
        }

        (
            FleetReport {
                tier: self.config.tier,
                offered_rps: self.config.arrival.offered_rps(),
                metrics,
                pool_resident_bytes: state.pool.resident_bytes(),
                attestation: state.plane.as_ref().map(|p| *p.metrics()),
                tenants: state.policy.map(|ps| {
                    let pcfg = self.config.policy.as_ref().expect("state implies config");
                    pcfg.tenants
                        .iter()
                        .zip(ps.tenants)
                        .map(|(t, metrics)| TenantRollup {
                            name: t.name,
                            metrics,
                        })
                        .collect()
                }),
                trace,
            },
            log,
        )
    }
}

impl<'a> State<'a> {
    /// Allocates a request id, sampling its class (and, with a policy
    /// layer, its tenant — from a dedicated RNG stream so tagging never
    /// perturbs the arrival/class streams).
    fn new_request(&mut self, arrival_hint: Nanos) -> usize {
        let request = self.req_class.len();
        let class = if let Some(ps) = self.policy.as_mut() {
            let pcfg = self.config.policy.as_ref().expect("state implies config");
            let tenant = pcfg.sample_tenant(&mut ps.tenant_rng);
            ps.req_tenant.push(tenant);
            ps.tenants[tenant].issued += 1;
            match &ps.mixes[tenant] {
                Some(mix) => mix.sample(&mut self.rng),
                None => self.mix.sample(&mut self.rng),
            }
        } else {
            self.mix.sample(&mut self.rng)
        };
        self.req_class.push(class);
        self.arrived.push(arrival_hint);
        self.attempts.push(0);
        self.issued += 1;
        request
    }

    /// Attributes a terminal to `request`'s tenant (no-op without policy).
    /// Mirrors the global counters so the extended conservation invariant
    /// (`…+rejected == issued`) holds per tenant.
    fn tenant_terminal(&mut self, request: usize, outcome: ReqOutcome, now: Nanos) {
        if let Some(ps) = self.policy.as_mut() {
            let m = &mut ps.tenants[ps.req_tenant[request]];
            match outcome {
                ReqOutcome::Completed => m.complete(now - self.arrived[request]),
                ReqOutcome::Shed => m.shed += 1,
                ReqOutcome::BreakerShed => m.breaker_sheds += 1,
                ReqOutcome::Timeout => m.timeouts += 1,
                ReqOutcome::Failed => m.failed += 1,
                ReqOutcome::Rejected => m.rejected += 1,
            }
        }
    }

    /// The fault plan, if any (`&'a` so probing never borrows `self`).
    fn plan(&self) -> Option<&'a FaultPlan> {
        self.config.fault.as_ref()
    }

    /// Whether the PSP is inside a firmware-reset outage at `now`.
    fn in_outage(&self, now: Nanos) -> bool {
        self.plan().and_then(|p| p.in_outage(now)).is_some()
    }

    /// Whether PSP-needing dispatches are being held (resilient fleets
    /// quiesce across the outage; naive fleets keep dispatching).
    fn quiesce_hold(&self, now: Nanos) -> bool {
        self.config.recovery.quiesce && self.in_outage(now)
    }

    /// Whether `request` has outlived its deadline at `now`.
    fn past_deadline(&self, request: usize, now: Nanos) -> bool {
        match self.config.recovery.deadline {
            Some(d) => now > self.arrived[request] + d,
            None => false,
        }
    }

    /// Current degradation level of `class` at `now` (0 without a breaker).
    /// Applies the breaker's time-based healing first, so a class tripped
    /// off the ladder comes back once the cooldown elapses.
    fn degrade_level(&mut self, class: usize, now: Nanos) -> usize {
        match &mut self.breakers {
            Some(breakers) => {
                breakers[class].heal(now);
                breakers[class].level()
            }
            None => 0,
        }
    }

    fn on_event(&mut self, outcome: &JobOutcome, inject: &mut Vec<Job>) {
        match self.meta[outcome.job] {
            JobKind::Arrival { request } => {
                self.arrived[request] = outcome.finish;
                if self.rec.on() {
                    let class = self.req_class[request];
                    self.rec
                        .arrival(request, &self.catalog.class(class).name, outcome.finish);
                }
                self.route(request, outcome.finish, inject);
            }
            JobKind::Launch {
                request,
                class,
                fate,
                fill,
                psp,
            } => {
                if psp {
                    self.psp_inflight.remove(&outcome.job);
                }
                // A reset that struck while this launch was in flight
                // overrides whatever verdict dispatch drew.
                let fate = if self.poisoned.remove(&outcome.job) {
                    LaunchFate::Fault(FaultKind::PspReset)
                } else {
                    fate
                };
                self.inflight = self.inflight.saturating_sub(1);
                self.rec.attempt_end(outcome.job, outcome.finish);
                match fate {
                    LaunchFate::Ok => {
                        self.metrics
                            .record_latency(outcome.finish - self.arrived[request]);
                        self.rec
                            .terminal(request, ReqOutcome::Completed, outcome.finish);
                        self.tenant_terminal(request, ReqOutcome::Completed, outcome.finish);
                        if let Some(breakers) = &mut self.breakers {
                            breakers[class].on_success(outcome.finish);
                        }
                        self.drain_queue(outcome.finish, inject);
                        self.issue_next_closed(outcome.finish, inject);
                    }
                    LaunchFate::Fault(kind) => {
                        self.metrics.faults.record(kind);
                        self.rec.fault(kind, Some(request), None, outcome.finish);
                        if let Some(key) = fill {
                            // The fill died before finalizing its template:
                            // the key must not look live.
                            self.cache.invalidate(&key);
                        }
                        if let Some(breakers) = &mut self.breakers {
                            if breakers[class].on_failure(outcome.finish) {
                                self.metrics.breaker_trips += 1;
                                self.rec.marker(
                                    MarkerKind::BreakerTrip,
                                    Some(request),
                                    None,
                                    outcome.finish,
                                );
                            }
                        }
                        self.handle_failure(request, outcome.finish, inject);
                        self.drain_queue(outcome.finish, inject);
                    }
                }
            }
            JobKind::Retry { request } => {
                self.route(request, outcome.finish, inject);
            }
            JobKind::Replenish { class, psp } => {
                if psp {
                    self.psp_inflight.remove(&outcome.job);
                }
                self.rec.background_end(outcome.job, outcome.finish);
                if self.poisoned.remove(&outcome.job) {
                    self.metrics.faults.record(FaultKind::PspReset);
                    self.rec
                        .fault(FaultKind::PspReset, None, None, outcome.finish);
                    self.pool.refill_failed(class);
                } else {
                    self.pool.refill_done(class);
                }
            }
            JobKind::ResetStart => {
                self.rec
                    .marker(MarkerKind::OutageStart, None, None, outcome.finish);
                self.on_reset_start();
            }
            JobKind::ResetEnd => {
                self.rec
                    .marker(MarkerKind::OutageEnd, None, None, outcome.finish);
                // The PSP is back (re-initialized): release quiesced work.
                self.drain_queue(outcome.finish, inject);
            }
            JobKind::WarmCrash { idx } => self.on_warm_crash(idx, outcome.finish, inject),
        }
    }

    /// A PSP firmware reset begins: every in-flight PSP-using job is
    /// poisoned (its completion becomes a failure), and the template cache
    /// dies with the firmware — each class re-measures on next use (§6.2).
    fn on_reset_start(&mut self) {
        let doomed: Vec<usize> = self.psp_inflight.iter().copied().collect();
        for job in doomed {
            self.poisoned.insert(job);
        }
        self.psp_inflight.clear();
        self.cache.invalidate_all();
    }

    /// A scheduled warm-guest crash: pick a class deterministically from the
    /// crash index and kill one ready slot if that class has any.
    fn on_warm_crash(&mut self, idx: usize, now: Nanos, inject: &mut Vec<Job>) {
        let classes = self.catalog.len();
        let class = ((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % classes;
        if self.pool.crash(class) {
            self.metrics.faults.record(FaultKind::WarmCrash);
            self.rec.fault(FaultKind::WarmCrash, None, None, now);
            self.start_refill(class, now, inject);
        }
    }

    /// Starts a background refill for `class` if it is below target and the
    /// refill's PSP work is currently serviceable (no refills are launched
    /// into a reset outage — the PSP physically accepts nothing).
    fn start_refill(&mut self, class: usize, now: Nanos, inject: &mut Vec<Job>) {
        if self.config.tier != ServingTier::WarmPool || !self.pool.wants_refill(class) {
            return;
        }
        let refill: &'a Blueprint = &self.catalog.class(class).template_hit;
        let psp = refill.psp_work() > Nanos::ZERO;
        if psp && self.in_outage(now) {
            return;
        }
        self.pool.refill_started(class);
        inject.push(refill.to_job(now, self.cpu, self.psp));
        let job = self.meta.len();
        self.meta.push(JobKind::Replenish { class, psp });
        if self.rec.on() {
            self.rec
                .background(job, &refill.label, None, refill.steps.clone(), now);
        }
        if psp {
            self.psp_inflight.insert(job);
        }
    }

    /// Routes a request (fresh arrival or retry): deadline first, then the
    /// degradation ladder, then warm pool (warm tier), then admission.
    fn route(&mut self, request: usize, now: Nanos, inject: &mut Vec<Job>) {
        let class = self.req_class[request];
        if self.past_deadline(request, now) {
            self.metrics.timeouts += 1;
            self.rec.terminal(request, ReqOutcome::Timeout, now);
            self.tenant_terminal(request, ReqOutcome::Timeout, now);
            self.issue_next_closed(now, inject);
            return;
        }
        // The policy choke point: one decision record per routing pass
        // (fresh arrival or retry), ahead of warm-pool and admission so
        // *every* dispatch flows through it. Quota is charged per attempt.
        if let Some(PolicyDecision::Reject { .. }) = self.policy_evaluate(request, now) {
            self.metrics.rejected += 1;
            self.rec.terminal(request, ReqOutcome::Rejected, now);
            self.tenant_terminal(request, ReqOutcome::Rejected, now);
            self.issue_next_closed(now, inject);
            return;
        }
        let level = self.degrade_level(class, now);
        let Some(tier) = self.config.tier.degraded(level) else {
            self.metrics.breaker_sheds += 1;
            self.rec.terminal(request, ReqOutcome::BreakerShed, now);
            self.tenant_terminal(request, ReqOutcome::BreakerShed, now);
            self.issue_next_closed(now, inject);
            return;
        };
        if tier == ServingTier::WarmPool && self.pool.try_take(class) {
            // Warm hit: no launch, no admission — one vCPU kick. The freed
            // slot is refilled in the background by a template launch.
            let blueprint = self.catalog.class(class).warm_invoke.clone();
            self.inject_launch(request, class, blueprint, None, tier, now, inject);
            self.start_refill(class, now, inject);
            return;
        }
        self.admit(request, class, now, inject);
    }

    /// Runs the policy engine for `request`, recording the decision as an
    /// obs marker and counting degrades. `None` without a policy layer.
    fn policy_evaluate(&mut self, request: usize, now: Nanos) -> Option<PolicyDecision> {
        let ps = self.policy.as_mut()?;
        let tenant = ps.req_tenant[request];
        let decision = ps.engine.evaluate(tenant, now);
        let marker = match decision {
            PolicyDecision::Admit { .. } => MarkerKind::PolicyAdmit,
            PolicyDecision::Degrade { .. } => {
                ps.tenants[tenant].degraded += 1;
                MarkerKind::PolicyDegrade
            }
            PolicyDecision::Reject { .. } => MarkerKind::PolicyReject,
        };
        self.rec.marker(marker, Some(request), None, now);
        Some(decision)
    }

    /// Expected serialized PSP work of the launch `class` would replay at
    /// `tier` right now (peeks at the cache without counting).
    fn expected_psp(&self, class: usize, tier: ServingTier) -> Nanos {
        let cb = self.catalog.class(class);
        match tier {
            ServingTier::Cold => cb.cold.psp_work(),
            ServingTier::Template | ServingTier::WarmPool => {
                if self.cache.contains(&cb.key) {
                    cb.template_hit.psp_work()
                } else {
                    cb.template_fill.psp_work()
                }
            }
        }
    }

    /// Admission control: dispatch if a slot is free (and the PSP is not
    /// quiesced), queue if there is room, shed otherwise.
    fn admit(&mut self, request: usize, class: usize, now: Nanos, inject: &mut Vec<Job>) {
        let level = self.degrade_level(class, now);
        let tier = self.config.tier.degraded(level).unwrap_or(self.config.tier);
        let expected_psp = self.expected_psp(class, tier);
        let quiesced = expected_psp > Nanos::ZERO && self.quiesce_hold(now);
        if !quiesced && self.inflight < self.config.admission.max_inflight {
            self.dispatch(request, class, tier, now, inject);
            return;
        }
        let key = self.catalog.class(class).key;
        let pending = Pending {
            request,
            class,
            expected_psp,
            key,
        };
        if self.policy.as_ref().is_some_and(|p| p.wfq.is_some()) {
            // WFQ: enqueue on the tenant's lane; overflow sheds by policy
            // (batch before latency-sensitive, quota-violators first).
            let offer = {
                let ps = self.policy.as_mut().expect("checked above");
                let tenant = ps.req_tenant[request];
                let over = ps.engine.over_quota(tenant, now);
                let wfq = ps.wfq.as_mut().expect("checked above");
                wfq.set_over_quota(tenant, over);
                wfq.offer(tenant, pending, expected_psp)
            };
            self.metrics.sample_queue_depth(now, self.queue_depth());
            match offer {
                Offer::Queued => self.rec.queued(request),
                Offer::Displaced { item, .. } => {
                    self.rec.queued(request);
                    self.rec.terminal(item.request, ReqOutcome::Shed, now);
                    self.tenant_terminal(item.request, ReqOutcome::Shed, now);
                    self.issue_next_closed(now, inject);
                }
                Offer::Refused(item) => {
                    self.rec.terminal(item.request, ReqOutcome::Shed, now);
                    self.tenant_terminal(item.request, ReqOutcome::Shed, now);
                    self.issue_next_closed(now, inject);
                }
            }
            return;
        }
        let admitted = self.queue.offer(pending);
        self.metrics.sample_queue_depth(now, self.queue.len());
        if admitted {
            self.rec.queued(request);
        } else {
            // Shed: fail fast. A closed-loop client still comes back.
            self.rec.terminal(request, ReqOutcome::Shed, now);
            self.tenant_terminal(request, ReqOutcome::Shed, now);
            self.issue_next_closed(now, inject);
        }
    }

    /// Current admission backlog (whichever queue is active).
    fn queue_depth(&self) -> usize {
        match self.policy.as_ref().and_then(|p| p.wfq.as_ref()) {
            Some(wfq) => wfq.len(),
            None => self.queue.len(),
        }
    }

    /// Picks the launch blueprint for a dispatch at `tier` and injects it.
    fn dispatch(
        &mut self,
        request: usize,
        class: usize,
        tier: ServingTier,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        if tier != self.config.tier {
            self.metrics.degraded_dispatches += 1;
        }
        let cb = self.catalog.class(class);
        let (blueprint, fill) = match tier {
            ServingTier::Cold => (cb.cold.clone(), None),
            ServingTier::Template | ServingTier::WarmPool => {
                if self.cache.lookup_or_fill(cb.key, class) {
                    (cb.template_hit.clone(), None)
                } else {
                    (cb.template_fill.clone(), Some(cb.key))
                }
            }
        };
        self.inject_launch(request, class, blueprint, fill, tier, now, inject);
    }

    /// Applies the fault plan to a launch and injects it. Verdicts are
    /// drawn statelessly per launch token, so the fault-free path consumes
    /// no randomness at all.
    #[allow(clippy::too_many_arguments)]
    fn inject_launch(
        &mut self,
        request: usize,
        class: usize,
        blueprint: Blueprint,
        fill: Option<TemplateKey>,
        tier: ServingTier,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        let _ = tier;
        let mut fate = LaunchFate::Ok;
        let mut blueprint = blueprint;
        if let Some(plan) = self.plan() {
            let token = self.launch_seq;
            self.launch_seq += 1;
            let (faulted, kind) = apply_launch_faults(blueprint, plan, token, now);
            blueprint = faulted;
            if let Some(kind) = kind {
                fate = LaunchFate::Fault(kind);
            }
        }
        // Every fault-free dispatch carries an attestation verdict: the
        // verifier's latency (queue wait → cert fetch/hit → batch window →
        // signature check) rides the launch as pure network delay, and a
        // revoked chip turns the dispatch into an attestation failure.
        if matches!(fate, LaunchFate::Ok) {
            if let Some(plane) = self.plane.as_mut() {
                let link = self.config.verifier_net.as_ref();
                if let Some(link) = link {
                    plane.set_reachable(link.up(now));
                }
                let v = plane
                    .verify_launch(0, now)
                    .expect("fleet plane always holds host 0");
                // The round trip is paid only when the verifier was
                // actually consulted; blackout verdicts are local.
                if let Some(link) = link {
                    if plane.is_reachable() && link.rtt > Nanos::ZERO {
                        blueprint.steps.push(sevf_obs::WorkStep::new(
                            ResourceClass::Network,
                            PhaseKind::Attestation,
                            STEP_RTT,
                            link.rtt,
                        ));
                    }
                }
                blueprint.steps.extend(v.steps);
                match v.verdict {
                    Verdict::Ok => {}
                    Verdict::Revoked => fate = LaunchFate::Fault(FaultKind::AttestError),
                    Verdict::Unavailable => fate = LaunchFate::Fault(FaultKind::AttestTimeout),
                }
            }
        }
        self.inflight += 1;
        let psp = blueprint.psp_work() > Nanos::ZERO;
        inject.push(blueprint.to_job(now, self.cpu, self.psp));
        let job = self.meta.len();
        if self.rec.on() {
            self.rec.attempt_start(
                request,
                job,
                &blueprint.label,
                None,
                blueprint.steps.clone(),
                now,
            );
        }
        self.meta.push(JobKind::Launch {
            request,
            class,
            fate,
            fill,
            psp,
        });
        if psp {
            self.psp_inflight.insert(job);
        }
    }

    /// A launch failed: retry with backoff if the budget and deadline
    /// allow, else count the request permanently failed (or timed out).
    fn handle_failure(&mut self, request: usize, now: Nanos, inject: &mut Vec<Job>) {
        self.attempts[request] += 1;
        let failures = self.attempts[request];
        match self.config.recovery.retry.backoff(failures, request as u64) {
            None => {
                self.metrics.failed += 1;
                self.rec.terminal(request, ReqOutcome::Failed, now);
                self.tenant_terminal(request, ReqOutcome::Failed, now);
                self.issue_next_closed(now, inject);
            }
            Some(delay) => {
                let mut at = now + delay;
                // No point retrying into a known outage: the resilient
                // fleet re-releases at the instant the PSP is back.
                if self.config.recovery.quiesce {
                    if let Some(end) = self.plan().and_then(|p| p.in_outage(at)) {
                        at = end;
                    }
                }
                if self.past_deadline(request, at) {
                    self.metrics.timeouts += 1;
                    self.rec.terminal(request, ReqOutcome::Timeout, now);
                    self.tenant_terminal(request, ReqOutcome::Timeout, now);
                    self.issue_next_closed(now, inject);
                    return;
                }
                self.metrics.record_retry(failures);
                self.rec.retry_wait(request, failures, now, at);
                inject.push(Job::released_at(at, vec![]));
                self.meta.push(JobKind::Retry { request });
            }
        }
    }

    /// Fills freed dispatch slots from the queue per the scheduling policy.
    /// Held entirely while the resilient fleet quiesces an outage.
    fn drain_queue(&mut self, now: Nanos, inject: &mut Vec<Job>) {
        if self.quiesce_hold(now) {
            return;
        }
        while self.inflight < self.config.admission.max_inflight {
            // WFQ pops the globally smallest virtual finish time; the
            // plain bounded queue picks per the admission policy.
            let next = match self.policy.as_mut().and_then(|p| p.wfq.as_mut()) {
                Some(wfq) => wfq.pop().map(|(_, pending)| pending),
                None => {
                    let cache = &self.cache;
                    self.queue
                        .pick(self.config.admission.policy, |key| cache.contains(key))
                }
            };
            let Some(next) = next else {
                break;
            };
            self.metrics.sample_queue_depth(now, self.queue_depth());
            if self.past_deadline(next.request, now) {
                // Expired while waiting: a timeout shed, not a dispatch.
                self.metrics.timeouts += 1;
                self.rec.terminal(next.request, ReqOutcome::Timeout, now);
                self.tenant_terminal(next.request, ReqOutcome::Timeout, now);
                self.issue_next_closed(now, inject);
                continue;
            }
            let level = self.degrade_level(next.class, now);
            let Some(tier) = self.config.tier.degraded(level) else {
                self.metrics.breaker_sheds += 1;
                self.rec
                    .terminal(next.request, ReqOutcome::BreakerShed, now);
                self.tenant_terminal(next.request, ReqOutcome::BreakerShed, now);
                self.issue_next_closed(now, inject);
                continue;
            };
            self.dispatch(next.request, next.class, tier, now, inject);
        }
    }

    /// Closed loops: a completion (or shed) sends the client into think
    /// time, after which it issues the next request — until the budget runs
    /// out.
    fn issue_next_closed(&mut self, now: Nanos, inject: &mut Vec<Job>) {
        let Arrival::Closed { think, .. } = self.config.arrival else {
            return;
        };
        if self.issued >= self.config.requests {
            return;
        }
        let at = now + think;
        let request = self.new_request(at);
        inject.push(Job::released_at(at, vec![]));
        self.meta.push(JobKind::Arrival { request });
    }
}

/// Applies `plan`'s per-launch fault model to a dispatch at `now`, returning
/// the (possibly rewritten) blueprint and the fault that struck, if any.
///
/// This is the single fault-application path shared by [`FleetService`] and
/// the multi-host cluster layered on it (`sevf-cluster`), so both inject
/// byte-identical faulted work for the same `(plan, token, now)`:
///
/// * PSP-needing work dispatched inside a firmware-reset outage hangs on the
///   network until the outage ends, then errors ([`FaultKind::PspReset`]) —
///   no PSP occupancy, the firmware is rebooting.
/// * Otherwise a stateless per-`token` draw may fail the launch transiently
///   partway through its work ([`FaultKind::PspTransient`]).
/// * Launches with an attestation round trip may hang until the client-side
///   timeout or error immediately ([`FaultKind::AttestTimeout`] /
///   [`FaultKind::AttestError`]).
///
/// Verdicts are stateless per token, so a fault-free plan consumes no
/// randomness and leaves the blueprint untouched.
pub fn apply_launch_faults(
    blueprint: Blueprint,
    plan: &FaultPlan,
    token: u64,
    now: Nanos,
) -> (Blueprint, Option<FaultKind>) {
    let psp_work = blueprint.psp_work();
    if psp_work > Nanos::ZERO {
        if let Some(end) = plan.in_outage(now) {
            let dead = Blueprint {
                label: format!("{} (dead psp)", blueprint.label),
                steps: vec![sevf_obs::WorkStep::new(
                    ResourceClass::Network,
                    PhaseKind::PreEncryption,
                    "hang on rebooting PSP mailbox",
                    end.saturating_sub(now),
                )],
            };
            return (dead, Some(FaultKind::PspReset));
        }
        if plan.psp_transient(token) {
            let truncated = blueprint.truncate_frac(plan.transient_progress(token));
            return (truncated, Some(FaultKind::PspTransient));
        }
    }
    if blueprint.has_network() {
        match plan.attest_fault(token) {
            Some(AttestFault::Timeout) => {
                let mut hung = blueprint;
                hung.steps.push(sevf_obs::WorkStep::new(
                    ResourceClass::Network,
                    PhaseKind::Attestation,
                    "attestation round trip times out",
                    plan.config().attest_timeout,
                ));
                return (hung, Some(FaultKind::AttestTimeout));
            }
            Some(AttestFault::Error) => return (blueprint, Some(FaultKind::AttestError)),
            None => {}
        }
    }
    (blueprint, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::SchedPolicy;
    use crate::blueprint::ClassSpec;
    use sevf_sim::fault::FaultConfig;

    fn quick_catalog() -> Catalog {
        Catalog::build(17, &ClassSpec::quick_test_classes()).unwrap()
    }

    fn run(config: FleetConfig) -> FleetReport {
        FleetService::new(quick_catalog(), config).run()
    }

    /// issued == completed + shed + breaker sheds + timeouts + failed.
    fn assert_conserved(report: &FleetReport, issued: usize) {
        let m = &report.metrics;
        assert_eq!(
            m.completed + m.lost() as usize,
            issued,
            "completed {} shed {} breaker {} timeouts {} failed {}",
            m.completed,
            m.shed,
            m.breaker_sheds,
            m.timeouts,
            m.failed
        );
    }

    fn storm_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(seed, FaultConfig::storm(), Nanos::from_secs(10)).unwrap()
    }

    #[test]
    fn verifier_blackout_degrades_by_the_configured_policy() {
        use sevf_sim::fault::ResetWindow;
        // The whole run fits in ~2s at 40 rps; black the verifier out for
        // a stretch in the middle.
        let blackout = ResetWindow {
            start: Nanos::from_millis(400),
            end: Nanos::from_millis(1200),
        };
        let arm = |att: AttPlaneConfig| {
            let mut config = FleetConfig::open_loop(ServingTier::Cold, 40.0, 80);
            config.attestation = Some(att);
            config.verifier_net = Some(VerifierLink {
                rtt: Nanos::from_micros(400),
                blackouts: vec![blackout],
            });
            run(config)
        };
        // Fail-closed: every launch dispatched inside the window dies as
        // an attestation timeout.
        let closed = arm(AttPlaneConfig::cached());
        assert!(closed.metrics.faults.attest_timeout > 0, "blackout missed");
        assert_eq!(
            closed.metrics.faults.attest_timeout,
            closed.attestation.unwrap().unavailable_refusals
        );
        // Fail-open: the chip was verified before the blackout, so stale
        // serves carry the window and strictly more launches survive.
        let mut open = AttPlaneConfig::cached();
        open.degrade = sevf_attplane::FailMode::Open {
            staleness_budget: Nanos::from_secs(120),
        };
        let open = arm(open);
        assert_eq!(open.metrics.faults.attest_timeout, 0);
        let att = open.attestation.unwrap();
        assert!(att.stale_serves > 0);
        assert!(att.reverifies > 0, "heal must trigger re-verification");
        assert!(open.metrics.completed > closed.metrics.completed);
    }

    #[test]
    fn inert_verifier_link_replays_byte_identically() {
        // `Some(VerifierLink::none())` must not perturb a run relative to
        // `None`: no RTT steps, no reachability flips, same byte stream.
        let arm = |link: Option<VerifierLink>| {
            let mut config = FleetConfig::open_loop(ServingTier::Template, 60.0, 80);
            config.attestation = Some(AttPlaneConfig::cached_batched());
            config.verifier_net = link;
            run(config)
        };
        let bare = arm(None);
        let inert = arm(Some(VerifierLink::none()));
        assert!(VerifierLink::none().is_none());
        assert_eq!(
            format!("{:?}", bare.metrics),
            format!("{:?}", inert.metrics)
        );
    }

    #[test]
    fn tagged_policy_replays_byte_identically() {
        use sevf_policy::{PolicySpec, Tenant};
        // A tag-only policy (FIFO scheduler, no quotas, no posture) must not
        // perturb a run relative to `None`: tenant sampling draws from its
        // own salted rng and the bounded queue is untouched.
        let arm = |policy: Option<PolicyConfig>| {
            let mut config = FleetConfig::open_loop(ServingTier::Template, 60.0, 80);
            config.policy = policy;
            run(config)
        };
        let bare = arm(None);
        let tagged = arm(Some(PolicyConfig::tagged(vec![Tenant::new(
            "solo",
            1,
            PolicySpec::permissive(),
        )])));
        assert_eq!(
            format!("{:?}", bare.metrics),
            format!("{:?}", tagged.metrics)
        );
        assert!(bare.tenants.is_none());
        let rollup = tagged.tenants.unwrap();
        assert_eq!(rollup.len(), 1);
        assert_eq!(rollup[0].metrics.issued, 80);
        assert!(rollup[0].metrics.conserved());
    }

    #[test]
    fn wfq_policy_conserves_per_tenant_and_rejects_over_quota() {
        use sevf_policy::{PolicySpec, QuotaSpec, SloClass, Tenant};
        let mut premium_spec = PolicySpec::permissive();
        premium_spec.weight = 8;
        let mut batch_spec = PolicySpec::permissive();
        batch_spec.slo = SloClass::Batch;
        batch_spec.weight = 1;
        batch_spec.quota = Some(QuotaSpec {
            rate_per_sec: 10.0,
            burst: 4.0,
        });
        let mut config = FleetConfig::open_loop(ServingTier::Cold, 120.0, 120);
        config.policy = Some(PolicyConfig::enforced(vec![
            Tenant::new("premium", 1, premium_spec),
            Tenant::new("batch", 3, batch_spec),
        ]));
        let report = run(config);
        let m = &report.metrics;
        assert_eq!(m.completed + m.lost() as usize, 120);
        assert!(m.rejected > 0, "quota flood must produce rejects");
        let rollup = report.tenants.unwrap();
        let issued: usize = rollup.iter().map(|t| t.metrics.issued).sum();
        assert_eq!(issued, 120);
        for t in &rollup {
            assert!(
                t.metrics.conserved(),
                "{} not conserved: {:?}",
                t.name,
                t.metrics
            );
        }
        let batch = rollup.iter().find(|t| t.name == "batch").unwrap();
        assert!(batch.metrics.rejected > 0);
    }

    #[test]
    fn open_loop_conserves_requests() {
        let report = run(FleetConfig::open_loop(ServingTier::Cold, 30.0, 60));
        let m = &report.metrics;
        assert_eq!(m.completed + m.shed as usize, 60);
        assert_eq!(m.latencies.len(), m.completed);
    }

    #[test]
    fn closed_loop_conserves_requests() {
        let config = FleetConfig::closed_loop(ServingTier::Template, 4, Nanos::from_millis(5), 40);
        let report = run(config);
        let m = &report.metrics;
        assert_eq!(m.completed + m.shed as usize, 40);
        assert_eq!(report.offered_rps, None);
    }

    #[test]
    fn runs_are_deterministic_under_a_seed() {
        let a = run(FleetConfig::open_loop(ServingTier::Template, 80.0, 80));
        let b = run(FleetConfig::open_loop(ServingTier::Template, 80.0, 80));
        assert_eq!(a.metrics.latencies, b.metrics.latencies);
        assert_eq!(a.metrics.shed, b.metrics.shed);
        assert_eq!(a.metrics.makespan, b.metrics.makespan);
    }

    #[test]
    fn attested_runs_conserve_and_are_deterministic() {
        use sevf_attplane::AttPlaneConfig;
        let attested = |cfg: AttPlaneConfig| {
            let mut config = FleetConfig::open_loop(ServingTier::Template, 40.0, 60);
            config.attestation = Some(cfg);
            run(config)
        };
        let a = attested(AttPlaneConfig::cached());
        let b = attested(AttPlaneConfig::cached());
        assert_conserved(&a, 60);
        assert_eq!(a.metrics.latencies, b.metrics.latencies);
        assert_eq!(a.attestation, b.attestation);
        let att = a.attestation.expect("plane configured");
        assert!(att.verifications > 0);
        assert!(att.cert_hits > 0, "one chip should mostly hit");

        // The verifier's latency rides the launch: the naive arm pays the
        // full KDS fetch per dispatch and must be slower end-to-end.
        let naive = attested(AttPlaneConfig::naive());
        assert_conserved(&naive, 60);
        let base = run(FleetConfig::open_loop(ServingTier::Template, 40.0, 60));
        assert!(naive.metrics.mean_ms() > base.metrics.mean_ms());
        assert!(naive.attestation.unwrap().cert_fetches >= att.cert_fetches);
    }

    #[test]
    fn invalid_attestation_config_is_a_chained_error() {
        use sevf_attplane::AttPlaneConfig;
        use std::error::Error;
        let mut att = AttPlaneConfig::cached();
        att.cache_ttl = Nanos::ZERO;
        let mut config = FleetConfig::open_loop(ServingTier::Cold, 10.0, 10);
        config.attestation = Some(att);
        let err = config.validated().expect_err("zero TTL must be rejected");
        assert!(matches!(err, crate::FleetError::AttPlane(_)));
        assert!(err.source().unwrap().to_string().contains("cache_ttl"));
    }

    #[test]
    fn template_tier_fills_once_per_class_then_hits() {
        let report = run(FleetConfig::open_loop(ServingTier::Template, 40.0, 50));
        let m = &report.metrics;
        // Two classes → at most two fills; everything else hits.
        assert!(m.cache_misses <= 2, "misses {}", m.cache_misses);
        assert!(m.cache_hits >= 48 - m.shed, "hits {}", m.cache_hits);
    }

    #[test]
    fn warm_tier_serves_hits_and_refills() {
        let mut config = FleetConfig::open_loop(ServingTier::WarmPool, 40.0, 50);
        config.warm_target = 4;
        let report = run(config);
        let m = &report.metrics;
        assert!(m.warm_hits > 0);
        assert_eq!(m.completed + m.shed as usize, 50);
        assert!(report.pool_resident_bytes > 0);
    }

    #[test]
    fn overload_sheds_once_queue_bound_hits() {
        let mut config = FleetConfig::open_loop(ServingTier::Cold, 2000.0, 120);
        config.admission.queue_bound = 8;
        config.admission.max_inflight = 4;
        let report = run(config);
        let m = &report.metrics;
        assert!(m.shed > 0, "expected shedding under overload");
        assert_eq!(m.completed + m.shed as usize, 120);
        assert_eq!(m.max_queue_depth, 8);
    }

    #[test]
    fn scheduling_policies_all_serve_everything() {
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::ShortestPspFirst,
            SchedPolicy::TemplateAffinity,
        ] {
            let mut config = FleetConfig::open_loop(ServingTier::Template, 150.0, 60);
            config.admission.max_inflight = 2;
            config.admission.policy = policy;
            let report = run(config);
            let m = &report.metrics;
            assert_eq!(
                m.completed + m.shed as usize,
                60,
                "policy {}",
                policy.name()
            );
        }
    }

    #[test]
    fn warm_pool_bypasses_the_psp_for_hits() {
        // Pool big enough that every request is a warm hit: PSP only sees
        // the background refills (template hits), so utilization stays low
        // and every latency is the invoke cost.
        let mut config = FleetConfig::open_loop(ServingTier::WarmPool, 10.0, 30);
        config.warm_target = 32;
        let report = run(config);
        let m = &report.metrics;
        assert_eq!(m.warm_misses, 0);
        let invoke_ms = 1.0; // warm invokes are sub-millisecond
        assert!(m.p99_ms() < invoke_ms, "p99 {}", m.p99_ms());
    }

    // ---- fault injection and recovery ----------------------------------

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        // The fault machinery must not perturb the fault-free stream: an
        // empty plan (markers absent, rates zero) reproduces PR-1 exactly.
        let base = run(FleetConfig::open_loop(ServingTier::Template, 60.0, 60));
        let mut config = FleetConfig::open_loop(ServingTier::Template, 60.0, 60);
        config.fault =
            Some(FaultPlan::generate(9, FaultConfig::none(), Nanos::from_secs(30)).unwrap());
        config.recovery = RecoveryConfig::resilient(9);
        let with_plan = run(config);
        assert_eq!(base.metrics.latencies, with_plan.metrics.latencies);
        assert_eq!(base.metrics.makespan, with_plan.metrics.makespan);
        assert_eq!(base.metrics.shed, with_plan.metrics.shed);
        assert_eq!(with_plan.metrics.faults.total(), 0);
    }

    #[test]
    fn chaos_runs_conserve_and_are_deterministic() {
        for recovery in [RecoveryConfig::none(), RecoveryConfig::resilient(5)] {
            let mut config = FleetConfig::open_loop(ServingTier::Template, 60.0, 120);
            config.fault = Some(storm_plan(5));
            config.recovery = recovery;
            let a = run(config.clone());
            let b = run(config);
            assert_conserved(&a, 120);
            assert_eq!(a.metrics.latencies, b.metrics.latencies);
            assert_eq!(a.metrics.failed, b.metrics.failed);
            assert_eq!(a.metrics.timeouts, b.metrics.timeouts);
            assert_eq!(a.metrics.faults, b.metrics.faults);
            assert_eq!(a.metrics.retries_by_attempt, b.metrics.retries_by_attempt);
        }
    }

    #[test]
    fn resilient_fleet_completes_more_than_naive_under_storm() {
        let mut naive = FleetConfig::open_loop(ServingTier::Template, 60.0, 120);
        naive.fault = Some(storm_plan(5));
        naive.recovery = RecoveryConfig::none();
        let naive_report = run(naive);

        let mut resilient = FleetConfig::open_loop(ServingTier::Template, 60.0, 120);
        resilient.fault = Some(storm_plan(5));
        resilient.recovery = RecoveryConfig::resilient(5);
        let resilient_report = run(resilient);

        assert!(
            naive_report.metrics.failed > 0,
            "the storm must actually hurt the naive fleet"
        );
        assert!(
            resilient_report.metrics.completed > naive_report.metrics.completed,
            "resilient {} vs naive {}",
            resilient_report.metrics.completed,
            naive_report.metrics.completed
        );
        assert!(resilient_report.metrics.retries > 0);
    }

    #[test]
    fn reset_forces_template_refills() {
        // Resets only — each one kills the template cache, so the fill
        // count exceeds the class count (re-measurement under failure).
        let mut cfg = FaultConfig::none();
        cfg.psp_reset_period = Some(Nanos::from_millis(300));
        cfg.psp_reset_outage = Nanos::from_millis(50);
        let plan = FaultPlan::generate(11, cfg, Nanos::from_secs(3)).unwrap();
        let resets = plan.resets().len();
        assert!(resets >= 2, "plan too tame: {resets} resets");

        let mut config = FleetConfig::open_loop(ServingTier::Template, 100.0, 200);
        config.fault = Some(plan);
        config.recovery = RecoveryConfig::resilient(11);
        let report = run(config);
        assert!(
            report.metrics.cache_misses > 2,
            "expected re-fills after resets, saw {} misses",
            report.metrics.cache_misses
        );
        assert!(report.metrics.faults.psp_reset > 0);
        assert!(report.metrics.time_degraded > Nanos::ZERO);
        assert_conserved(&report, 200);
    }

    #[test]
    fn deadlines_turn_unserved_requests_into_timeouts() {
        let mut config = FleetConfig::open_loop(ServingTier::Template, 60.0, 80);
        config.fault = Some(storm_plan(7));
        let mut recovery = RecoveryConfig::resilient(7);
        recovery.deadline = Some(Nanos::from_millis(400));
        config.recovery = recovery;
        let report = run(config);
        assert!(report.metrics.timeouts > 0, "tight deadline must fire");
        assert_conserved(&report, 80);
    }

    #[test]
    fn breaker_degrades_warm_tier_under_persistent_faults() {
        let mut cfg = FaultConfig::none();
        cfg.psp_transient_rate = 0.9; // template refills keep dying
        let plan = FaultPlan::generate(13, cfg, Nanos::from_secs(30)).unwrap();
        let mut config = FleetConfig::open_loop(ServingTier::WarmPool, 80.0, 150);
        config.warm_target = 1; // drain the pool fast → launches → failures
        config.fault = Some(plan);
        config.recovery = RecoveryConfig::resilient(13);
        let report = run(config);
        assert!(
            report.metrics.breaker_trips > 0,
            "persistent transients must trip the breaker"
        );
        assert!(
            report.metrics.degraded_dispatches > 0,
            "tripped classes must serve degraded"
        );
        assert_conserved(&report, 150);
    }

    #[test]
    fn warm_crashes_deplete_the_pool_and_count() {
        let mut cfg = FaultConfig::none();
        cfg.warm_crash_period = Some(Nanos::from_millis(20));
        let plan = FaultPlan::generate(19, cfg, Nanos::from_secs(3)).unwrap();
        assert!(!plan.warm_crashes().is_empty());
        let mut config = FleetConfig::open_loop(ServingTier::WarmPool, 40.0, 60);
        config.warm_target = 8;
        config.fault = Some(plan);
        config.recovery = RecoveryConfig::resilient(19);
        let report = run(config);
        assert!(report.metrics.faults.warm_crash > 0);
        assert_conserved(&report, 60);
    }

    #[test]
    fn degradation_ladder_bottoms_out_at_shed() {
        assert_eq!(
            ServingTier::WarmPool.degraded(0),
            Some(ServingTier::WarmPool)
        );
        assert_eq!(
            ServingTier::WarmPool.degraded(1),
            Some(ServingTier::Template)
        );
        assert_eq!(ServingTier::WarmPool.degraded(2), Some(ServingTier::Cold));
        assert_eq!(ServingTier::WarmPool.degraded(3), None);
        assert_eq!(ServingTier::Cold.degraded(0), Some(ServingTier::Cold));
        assert_eq!(ServingTier::Cold.degraded(1), None);
    }
}
