//! The fleet control plane: serving launch traffic over virtual time.
//!
//! [`FleetService`] wires the pieces together on top of
//! [`DesEngine::run_dynamic`]: arrivals are zero-segment marker jobs whose
//! completion hands control to the service at the arrival instant; the
//! service then routes each request — warm pool first (if serving that
//! tier), then admission control — and injects the chosen launch blueprint
//! as a follow-up job on the shared PSP/CPU resources. Everything is seeded
//! and runs on the virtual clock, so a `(catalog, config)` pair fully
//! determines the outcome.
//!
//! The three serving tiers mirror the paper's options:
//!
//! * [`ServingTier::Cold`] — every request pays the full launch; throughput
//!   caps at `1 / psp_busy` because the PSP serializes (Fig. 12).
//! * [`ServingTier::Template`] — first request of a class fills the §6.2
//!   shared-key template (cold-priced), the rest are cheap hits.
//! * [`ServingTier::WarmPool`] — requests take §7.1 keep-alive guests from
//!   the pool (no launch at all); the pool refills in the background via
//!   template launches, and misses fall through to the template path.

use sevf_sim::rng::XorShift64;
use sevf_sim::{DesEngine, Job, JobOutcome, Nanos, ResourceId, RunTrace};
use sevf_vmm::machine::HOST_CORES;

use crate::admission::{AdmissionConfig, BoundedQueue, Pending};
use crate::blueprint::{Blueprint, Catalog, LaunchCache};
use crate::metrics::FleetMetrics;
use crate::pool::WarmPool;
use crate::workload::{open_arrivals, Arrival, RequestMix};

/// Which reuse tier the fleet serves requests from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingTier {
    /// Full launch per request.
    Cold,
    /// Content-addressed shared-key template launches (§6.2).
    Template,
    /// Pre-warmed keep-alive guests, template-backed refills (§7.1).
    WarmPool,
}

impl ServingTier {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServingTier::Cold => "cold",
            ServingTier::Template => "template",
            ServingTier::WarmPool => "warm-pool",
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Serving tier.
    pub tier: ServingTier,
    /// Arrival process.
    pub arrival: Arrival,
    /// Request mix over catalog classes; `None` = uniform over the catalog.
    pub mix: Option<RequestMix>,
    /// Total requests to serve.
    pub requests: usize,
    /// Seed for arrivals and class sampling.
    pub seed: u64,
    /// Admission-controller knobs.
    pub admission: AdmissionConfig,
    /// Warm-pool target size per class (warm-pool tier only).
    pub warm_target: usize,
}

impl FleetConfig {
    /// An open-loop run at `rate_per_sec` offered load.
    pub fn open_loop(tier: ServingTier, rate_per_sec: f64, requests: usize) -> Self {
        FleetConfig {
            tier,
            arrival: Arrival::Open { rate_per_sec },
            mix: None,
            requests,
            seed: 0x5EF0,
            admission: AdmissionConfig::default(),
            warm_target: 8,
        }
    }

    /// A closed-loop run with `users` clients and `think` think time.
    pub fn closed_loop(tier: ServingTier, users: usize, think: Nanos, requests: usize) -> Self {
        FleetConfig {
            tier,
            arrival: Arrival::Closed { users, think },
            mix: None,
            requests,
            seed: 0x5EF0,
            admission: AdmissionConfig::default(),
            warm_target: 8,
        }
    }
}

/// Outcome of one serving run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Tier that served.
    pub tier: ServingTier,
    /// Offered load (open loops only).
    pub offered_rps: Option<f64>,
    /// Collected metrics.
    pub metrics: FleetMetrics,
    /// Memory rent the warm pool held at the end of the run (§7.1).
    pub pool_resident_bytes: u64,
    /// Resource-occupancy trace of the run (for invariant checks).
    pub trace: RunTrace,
}

/// What an engine job index means to the control plane.
#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// Arrival marker for a request (zero segments).
    Arrival { request: usize },
    /// The launch (or warm invocation) serving a request.
    Launch { request: usize },
    /// Background warm-pool refill for a class.
    Replenish { class: usize },
}

/// The control plane: routes a request stream onto the host's resources.
#[derive(Debug)]
pub struct FleetService {
    catalog: Catalog,
    config: FleetConfig,
}

/// Mutable serving state threaded through the DES completion hook.
struct State<'a> {
    catalog: &'a Catalog,
    config: &'a FleetConfig,
    psp: ResourceId,
    cpu: ResourceId,
    mix: RequestMix,
    rng: XorShift64,
    meta: Vec<JobKind>,
    req_class: Vec<usize>,
    arrived: Vec<Nanos>,
    queue: BoundedQueue,
    pool: WarmPool,
    cache: LaunchCache,
    inflight: usize,
    issued: usize,
    metrics: FleetMetrics,
}

impl FleetService {
    /// Builds a service over a measured catalog.
    ///
    /// # Panics
    ///
    /// Panics if the config's mix references a class outside the catalog,
    /// or a closed loop has zero users.
    pub fn new(catalog: Catalog, config: FleetConfig) -> Self {
        if let Some(mix) = &config.mix {
            assert!(
                mix.max_class() < catalog.len(),
                "mix references class {} but catalog has {}",
                mix.max_class(),
                catalog.len()
            );
        }
        if let Arrival::Closed { users, .. } = config.arrival {
            assert!(users > 0, "closed loop needs at least one user");
        }
        FleetService { catalog, config }
    }

    /// Serves the configured request stream to completion.
    pub fn run(self) -> FleetReport {
        let mut engine = DesEngine::new();
        let psp = engine.add_resource("psp", 1);
        let cpu = engine.add_resource("host-cpus", HOST_CORES);

        let mix = self
            .config
            .mix
            .clone()
            .unwrap_or_else(|| RequestMix::uniform(self.catalog.len()));
        let mut state = State {
            catalog: &self.catalog,
            config: &self.config,
            psp,
            cpu,
            mix,
            rng: XorShift64::new(self.config.seed ^ 0x5EF0_F1EE7),
            meta: Vec::new(),
            req_class: Vec::new(),
            arrived: Vec::new(),
            queue: BoundedQueue::new(self.config.admission.queue_bound),
            pool: WarmPool::prewarmed(
                self.catalog.len(),
                if self.config.tier == ServingTier::WarmPool {
                    self.config.warm_target
                } else {
                    0
                },
                self.catalog
                    .classes()
                    .iter()
                    .map(|c| c.resident_bytes)
                    .collect(),
            ),
            cache: LaunchCache::new(),
            inflight: 0,
            issued: 0,
            metrics: FleetMetrics::default(),
        };

        // Warm-pool serving starts with every template live: the pool's
        // resident guests were launched from them.
        if self.config.tier == ServingTier::WarmPool {
            for (idx, class) in self.catalog.classes().iter().enumerate() {
                state.cache.prefill(class.key, idx);
            }
        }

        // Seed the arrival stream: open loops pre-draw every arrival, closed
        // loops start one marker per user and chain the rest on completions.
        let mut seed_jobs = Vec::new();
        match self.config.arrival {
            Arrival::Open { rate_per_sec } => {
                let times = open_arrivals(rate_per_sec, self.config.requests, &mut state.rng);
                for at in times {
                    let request = state.new_request(at);
                    seed_jobs.push(Job::released_at(at, vec![]));
                    state.meta.push(JobKind::Arrival { request });
                }
            }
            Arrival::Closed { users, .. } => {
                for i in 0..users.min(self.config.requests) {
                    // Tiny stagger keeps user start order deterministic and
                    // distinct.
                    let at = Nanos::from_micros(i as u64);
                    let request = state.new_request(at);
                    seed_jobs.push(Job::released_at(at, vec![]));
                    state.meta.push(JobKind::Arrival { request });
                }
            }
        }

        let (_, trace) = engine.run_dynamic(seed_jobs, |outcome, inject| {
            state.on_event(outcome, inject);
        });

        let mut metrics = state.metrics;
        metrics.shed = state.queue.shed();
        metrics.max_queue_depth = state.queue.max_depth();
        metrics.cache_hits = state.cache.hits();
        metrics.cache_misses = state.cache.misses();
        metrics.warm_hits = state.pool.hits();
        metrics.warm_misses = state.pool.misses();
        metrics.evicted = state.pool.evicted();
        metrics.psp_utilization = trace.utilization(psp, 1);
        metrics.cpu_utilization = trace.utilization(cpu, HOST_CORES);
        metrics.makespan = trace.makespan();

        FleetReport {
            tier: self.config.tier,
            offered_rps: self.config.arrival.offered_rps(),
            metrics,
            pool_resident_bytes: state.pool.resident_bytes(),
            trace,
        }
    }
}

impl State<'_> {
    /// Allocates a request id, sampling its class.
    fn new_request(&mut self, arrival_hint: Nanos) -> usize {
        let request = self.req_class.len();
        self.req_class.push(self.mix.sample(&mut self.rng));
        self.arrived.push(arrival_hint);
        self.issued += 1;
        request
    }

    fn on_event(&mut self, outcome: &JobOutcome, inject: &mut Vec<Job>) {
        match self.meta[outcome.job] {
            JobKind::Arrival { request } => {
                self.arrived[request] = outcome.finish;
                self.route(request, outcome.finish, inject);
            }
            JobKind::Launch { request } => {
                self.metrics
                    .record_latency(outcome.finish - self.arrived[request]);
                self.inflight = self.inflight.saturating_sub(1);
                self.drain_queue(outcome.finish, inject);
                self.issue_next_closed(outcome.finish, inject);
            }
            JobKind::Replenish { class } => {
                self.pool.refill_done(class);
            }
        }
    }

    /// Routes a fresh arrival: warm pool first (warm tier), else admission.
    fn route(&mut self, request: usize, now: Nanos, inject: &mut Vec<Job>) {
        let class = self.req_class[request];
        if self.config.tier == ServingTier::WarmPool && self.pool.try_take(class) {
            // Warm hit: no launch, no admission — one vCPU kick. The freed
            // slot is refilled in the background by a template launch.
            let blueprint = self.catalog.class(class).warm_invoke.clone();
            self.inject_launch(request, &blueprint, now, inject);
            if self.pool.wants_refill(class) {
                self.pool.refill_started(class);
                let refill = self.catalog.class(class).template_hit.clone();
                inject.push(refill.to_job(now, self.cpu, self.psp));
                self.meta.push(JobKind::Replenish { class });
            }
            return;
        }
        self.admit(request, class, now, inject);
    }

    /// Admission control: dispatch if a slot is free, queue if there is
    /// room, shed otherwise.
    fn admit(&mut self, request: usize, class: usize, now: Nanos, inject: &mut Vec<Job>) {
        if self.inflight < self.config.admission.max_inflight {
            self.dispatch(request, class, now, inject);
            return;
        }
        let cb = self.catalog.class(class);
        let expected_psp = match self.config.tier {
            ServingTier::Cold => cb.cold.psp_work(),
            ServingTier::Template | ServingTier::WarmPool => {
                if self.cache.contains(&cb.key) {
                    cb.template_hit.psp_work()
                } else {
                    cb.template_fill.psp_work()
                }
            }
        };
        let admitted = self.queue.offer(Pending {
            request,
            class,
            expected_psp,
            key: cb.key,
        });
        self.metrics.sample_queue_depth(now, self.queue.len());
        if !admitted {
            // Shed: fail fast. A closed-loop client still comes back.
            self.issue_next_closed(now, inject);
        }
    }

    /// Picks the launch blueprint for a dispatch and injects it.
    fn dispatch(&mut self, request: usize, class: usize, now: Nanos, inject: &mut Vec<Job>) {
        self.inflight += 1;
        let cb = self.catalog.class(class);
        let blueprint = match self.config.tier {
            ServingTier::Cold => cb.cold.clone(),
            ServingTier::Template | ServingTier::WarmPool => {
                if self.cache.lookup_or_fill(cb.key, class) {
                    cb.template_hit.clone()
                } else {
                    cb.template_fill.clone()
                }
            }
        };
        self.inject_launch(request, &blueprint, now, inject);
    }

    fn inject_launch(
        &mut self,
        request: usize,
        blueprint: &Blueprint,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        inject.push(blueprint.to_job(now, self.cpu, self.psp));
        self.meta.push(JobKind::Launch { request });
    }

    /// Fills freed dispatch slots from the queue per the scheduling policy.
    fn drain_queue(&mut self, now: Nanos, inject: &mut Vec<Job>) {
        while self.inflight < self.config.admission.max_inflight {
            let cache = &self.cache;
            let Some(next) = self
                .queue
                .pick(self.config.admission.policy, |key| cache.contains(key))
            else {
                break;
            };
            self.metrics.sample_queue_depth(now, self.queue.len());
            self.dispatch(next.request, next.class, now, inject);
        }
    }

    /// Closed loops: a completion (or shed) sends the client into think
    /// time, after which it issues the next request — until the budget runs
    /// out.
    fn issue_next_closed(&mut self, now: Nanos, inject: &mut Vec<Job>) {
        let Arrival::Closed { think, .. } = self.config.arrival else {
            return;
        };
        if self.issued >= self.config.requests {
            return;
        }
        let at = now + think;
        let request = self.new_request(at);
        inject.push(Job::released_at(at, vec![]));
        self.meta.push(JobKind::Arrival { request });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::SchedPolicy;
    use crate::blueprint::ClassSpec;

    fn quick_catalog() -> Catalog {
        Catalog::build(17, &ClassSpec::quick_test_classes()).unwrap()
    }

    fn run(config: FleetConfig) -> FleetReport {
        FleetService::new(quick_catalog(), config).run()
    }

    #[test]
    fn open_loop_conserves_requests() {
        let report = run(FleetConfig::open_loop(ServingTier::Cold, 30.0, 60));
        let m = &report.metrics;
        assert_eq!(m.completed + m.shed as usize, 60);
        assert_eq!(m.latencies.len(), m.completed);
    }

    #[test]
    fn closed_loop_conserves_requests() {
        let config = FleetConfig::closed_loop(ServingTier::Template, 4, Nanos::from_millis(5), 40);
        let report = run(config);
        let m = &report.metrics;
        assert_eq!(m.completed + m.shed as usize, 40);
        assert_eq!(report.offered_rps, None);
    }

    #[test]
    fn runs_are_deterministic_under_a_seed() {
        let a = run(FleetConfig::open_loop(ServingTier::Template, 80.0, 80));
        let b = run(FleetConfig::open_loop(ServingTier::Template, 80.0, 80));
        assert_eq!(a.metrics.latencies, b.metrics.latencies);
        assert_eq!(a.metrics.shed, b.metrics.shed);
        assert_eq!(a.metrics.makespan, b.metrics.makespan);
    }

    #[test]
    fn template_tier_fills_once_per_class_then_hits() {
        let report = run(FleetConfig::open_loop(ServingTier::Template, 40.0, 50));
        let m = &report.metrics;
        // Two classes → at most two fills; everything else hits.
        assert!(m.cache_misses <= 2, "misses {}", m.cache_misses);
        assert!(m.cache_hits >= 48 - m.shed, "hits {}", m.cache_hits);
    }

    #[test]
    fn warm_tier_serves_hits_and_refills() {
        let mut config = FleetConfig::open_loop(ServingTier::WarmPool, 40.0, 50);
        config.warm_target = 4;
        let report = run(config);
        let m = &report.metrics;
        assert!(m.warm_hits > 0);
        assert_eq!(m.completed + m.shed as usize, 50);
        assert!(report.pool_resident_bytes > 0);
    }

    #[test]
    fn overload_sheds_once_queue_bound_hits() {
        let mut config = FleetConfig::open_loop(ServingTier::Cold, 2000.0, 120);
        config.admission.queue_bound = 8;
        config.admission.max_inflight = 4;
        let report = run(config);
        let m = &report.metrics;
        assert!(m.shed > 0, "expected shedding under overload");
        assert_eq!(m.completed + m.shed as usize, 120);
        assert_eq!(m.max_queue_depth, 8);
    }

    #[test]
    fn scheduling_policies_all_serve_everything() {
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::ShortestPspFirst,
            SchedPolicy::TemplateAffinity,
        ] {
            let mut config = FleetConfig::open_loop(ServingTier::Template, 150.0, 60);
            config.admission.max_inflight = 2;
            config.admission.policy = policy;
            let report = run(config);
            let m = &report.metrics;
            assert_eq!(
                m.completed + m.shed as usize,
                60,
                "policy {}",
                policy.name()
            );
        }
    }

    #[test]
    fn warm_pool_bypasses_the_psp_for_hits() {
        // Pool big enough that every request is a warm hit: PSP only sees
        // the background refills (template hits), so utilization stays low
        // and every latency is the invoke cost.
        let mut config = FleetConfig::open_loop(ServingTier::WarmPool, 10.0, 30);
        config.warm_target = 32;
        let report = run(config);
        let m = &report.metrics;
        assert_eq!(m.warm_misses, 0);
        let invoke_ms = 1.0; // warm invokes are sub-millisecond
        assert!(m.p99_ms() < invoke_ms, "p99 {}", m.p99_ms());
    }
}
