//! End-to-end serving behavior: the acceptance checks of the fleet
//! experiment, run at test scale (tiny kernels) for speed.

use sevf_fleet::experiment::{serving_sweep, tier_rows, SweepConfig};
use sevf_fleet::service::ServingTier;

fn quick_report() -> sevf_fleet::experiment::SweepReport {
    serving_sweep(&SweepConfig::quick()).expect("sweep")
}

#[test]
fn warm_beats_template_beats_cold_p99_at_high_load() {
    let report = quick_report();
    let high = |tier| {
        tier_rows(&report, tier)
            .last()
            .map(|r| r.p99_ms)
            .expect("rows")
    };
    let cold = high(ServingTier::Cold);
    let template = high(ServingTier::Template);
    let warm = high(ServingTier::WarmPool);
    assert!(
        warm < template && template < cold,
        "p99 ordering violated: warm {warm:.2} ms, template {template:.2} ms, cold {cold:.2} ms"
    );
    // And not marginally: each reuse tier wins by a wide factor.
    assert!(
        template < cold / 2.0,
        "template {template:.2} vs cold {cold:.2}"
    );
    assert!(
        warm < template / 10.0,
        "warm {warm:.2} vs template {template:.2}"
    );
}

#[test]
fn cold_tier_saturates_at_the_psp_ceiling() {
    let report = quick_report();
    let cold = tier_rows(&report, ServingTier::Cold);
    let low = cold.first().expect("low load");
    let high = cold.last().expect("high load");
    assert!(
        high.offered_rps > report.cold_capacity_rps,
        "sweep must cross the ceiling ({:.1} req/s)",
        report.cold_capacity_rps
    );
    // Below the ceiling: healthy. Above: the PSP pins near 100% busy and
    // the tail inflates by an order of magnitude.
    assert!(low.shed == 0, "shed at low load: {}", low.shed);
    assert!(
        high.psp_utilization > 0.9,
        "psp {:.2}",
        high.psp_utilization
    );
    assert!(high.p99_ms > low.p99_ms * 5.0, "no tail blowup");
}

#[test]
fn overload_sheds_only_after_the_queue_bound_fills() {
    let report = quick_report();
    let cold = tier_rows(&report, ServingTier::Cold);
    let high = cold.last().expect("high load");
    let bound = SweepConfig::quick().admission.queue_bound;
    assert!(high.shed > 0, "expected shedding above the ceiling");
    assert_eq!(
        high.max_queue_depth, bound,
        "shedding implies the bound was reached"
    );
    // Reuse tiers absorb the same load without shedding.
    for tier in [ServingTier::Template, ServingTier::WarmPool] {
        let row = *tier_rows(&report, tier).last().unwrap();
        assert_eq!(row.shed, 0, "{} shed {}", row.tier.name(), row.shed);
    }
}

#[test]
fn reuse_tiers_actually_reuse() {
    let report = quick_report();
    let template_high = *tier_rows(&report, ServingTier::Template).last().unwrap();
    let warm_high = *tier_rows(&report, ServingTier::WarmPool).last().unwrap();
    // Template: at most one fill per class, the rest are cache hits.
    assert!(
        template_high.cache_hits as usize >= template_high.completed - 2,
        "cache hits {} of {}",
        template_high.cache_hits,
        template_high.completed
    );
    // Warm pool: most requests are served from resident guests.
    assert!(
        warm_high.warm_hits as usize * 2 > warm_high.completed,
        "warm hits {} of {}",
        warm_high.warm_hits,
        warm_high.completed
    );
}

#[test]
fn whole_sweep_is_deterministic_across_processes_of_the_same_seed() {
    // Two full sweeps in-process; combined with the seeded arrival draws
    // and virtual time only, this pins cross-run determinism.
    let a = quick_report();
    let b = quick_report();
    assert_eq!(a.rows.len(), b.rows.len());
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.completed, y.completed);
        assert_eq!(x.shed, y.shed);
        assert_eq!(x.p50_ms, y.p50_ms);
        assert_eq!(x.p99_ms, y.p99_ms);
        assert_eq!(x.max_queue_depth, y.max_queue_depth);
    }
}
