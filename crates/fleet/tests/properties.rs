//! Property tests for the retry-backoff schedule.
//!
//! No external property-testing crates (the workspace is dependency-free by
//! design): these are seeded exhaustive loops over the policy's own RNG
//! ([`sevf_sim::rng::XorShift64`] driving the knob choices), checking the
//! invariants the recovery design note claims:
//!
//! * the schedule is monotone non-decreasing in the failure count,
//! * no delay ever exceeds the cap (or drops to zero while retries remain),
//! * the attempt budget is exactly enforced, and
//! * identical seeds produce identical schedules; different seeds jitter.

use sevf_fleet::recovery::RetryPolicy;
use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

/// Draws a random-but-valid policy from `rng`.
fn arbitrary_policy(rng: &mut XorShift64) -> RetryPolicy {
    let base_us = 1 + rng.next_u64() % 50_000; // 1 µs ..= 50 ms
    let cap_mult = 1 + rng.next_u64() % 64;
    let policy = RetryPolicy {
        max_attempts: 1 + (rng.next_u64() % 10) as u32,
        base: Nanos::from_micros(base_us),
        cap: Nanos::from_micros(base_us * cap_mult),
        jitter: (rng.next_u64() % 1001) as f64 / 1000.0,
        seed: rng.next_u64(),
    };
    policy.validate().expect("constructed to be valid");
    policy
}

#[test]
fn backoff_is_monotone_and_capped_across_policies_and_tokens() {
    let mut rng = XorShift64::new(0xBAC0_FF5E);
    for _ in 0..200 {
        let policy = arbitrary_policy(&mut rng);
        for _ in 0..5 {
            let token = rng.next_u64();
            let mut prev = Nanos::ZERO;
            for failures in 1..policy.max_attempts {
                let delay = policy
                    .backoff(failures, token)
                    .expect("inside the attempt budget");
                assert!(
                    delay >= prev,
                    "{policy:?} token {token}: delay {delay} after {prev} at failure {failures}"
                );
                assert!(
                    delay <= policy.cap,
                    "{policy:?} token {token}: delay {delay} over cap at failure {failures}"
                );
                assert!(
                    delay > Nanos::ZERO,
                    "{policy:?} token {token}: zero delay at failure {failures}"
                );
                prev = delay;
            }
        }
    }
}

#[test]
fn attempt_budget_is_exactly_enforced() {
    let mut rng = XorShift64::new(0x0B5E55ED);
    for _ in 0..200 {
        let policy = arbitrary_policy(&mut rng);
        let token = rng.next_u64();
        for failures in 1..policy.max_attempts {
            assert!(policy.backoff(failures, token).is_some());
        }
        // At and beyond the budget: never another retry.
        for beyond in 0..3 {
            assert_eq!(policy.backoff(policy.max_attempts + beyond, token), None);
        }
    }
}

#[test]
fn identical_seeds_give_identical_schedules() {
    let mut rng = XorShift64::new(0x5A5A_5A5A);
    for _ in 0..100 {
        let policy = arbitrary_policy(&mut rng);
        let twin = policy; // Copy — byte-identical knobs
        let token = rng.next_u64();
        for failures in 1..policy.max_attempts {
            assert_eq!(
                policy.backoff(failures, token),
                twin.backoff(failures, token)
            );
        }
    }
}

#[test]
fn different_seeds_actually_jitter() {
    // Not a correctness invariant per se, but if every seed produced the
    // same schedule the jitter would be decorative: across many seeds at
    // full jitter amplitude, at least one delay must differ.
    let base = RetryPolicy {
        max_attempts: 4,
        base: Nanos::from_millis(10),
        cap: Nanos::from_secs(2),
        jitter: 1.0,
        seed: 0,
    };
    let reference = base.backoff(1, 42);
    let mut saw_difference = false;
    for seed in 1..50 {
        let policy = RetryPolicy { seed, ..base };
        if policy.backoff(1, 42) != reference {
            saw_difference = true;
            break;
        }
    }
    assert!(saw_difference, "50 seeds all produced the same first delay");
}
