//! Property-based tests: measured direct boot must catch *any* tampering.
//!
//! Seeded XorShift64 case generation keeps the sweep deterministic without
//! an external property-testing dependency.

use sevf_codec::Codec;
use sevf_crypto::sha256;
use sevf_image::kernel::KernelConfig;
use sevf_mem::GuestMemory;
use sevf_sim::cost::SevGeneration;
use sevf_sim::rng::XorShift64;
use sevf_sim::CostModel;
use sevf_verifier::binary::{VerifierBinary, VerifierFeatures};
use sevf_verifier::hashes::{HashPage, KernelHashes};
use sevf_verifier::layout::{GuestLayout, HASH_PAGE_ADDR, VERIFIER_ADDR};
use sevf_verifier::verify::{self, VerifierConfig};
use sevf_verifier::VerifierError;

const MB: u64 = 1024 * 1024;
const CASES: u64 = 24;

struct Staged {
    mem: GuestMemory,
    layout: GuestLayout,
    kernel_len: usize,
    initrd_len: usize,
}

fn stage_honest() -> Staged {
    let image = KernelConfig::test_tiny().build();
    let bz = image.bzimage(Codec::Lz4);
    let initrd = sevf_image::initrd::build_initrd(64 * 1024);
    let mut mem = GuestMemory::new_sev(64 * MB, [3u8; 16], SevGeneration::SevSnp);
    let layout = GuestLayout::plan(64 * MB, bz.len() as u64, initrd.len() as u64).unwrap();
    mem.host_write(layout.kernel_staging, &bz).unwrap();
    mem.host_write(layout.initrd_staging, &initrd).unwrap();
    let hash_page = HashPage {
        kernel: KernelHashes::WholeImage(sha256(&bz)),
        initrd: sha256(&initrd),
    };
    mem.host_write(HASH_PAGE_ADDR, &hash_page.to_page())
        .unwrap();
    let verifier = VerifierBinary::build(VerifierFeatures::severifast());
    mem.host_write(VERIFIER_ADDR, verifier.bytes()).unwrap();
    mem.pre_encrypt(HASH_PAGE_ADDR, 4096).unwrap();
    mem.pre_encrypt(VERIFIER_ADDR, verifier.size()).unwrap();
    for (base, len) in layout.private_ranges() {
        mem.rmp_assign(base, len).unwrap();
    }
    Staged {
        mem,
        layout,
        kernel_len: bz.len(),
        initrd_len: initrd.len(),
    }
}

#[test]
fn any_kernel_byte_flip_is_detected() {
    let mut rng = XorShift64::new(0xE51F_0001);
    for _ in 0..CASES {
        let mut staged = stage_honest();
        let offset = rng.next_below(staged.kernel_len as u64);
        let flip = 1 + (rng.next_u64() % 255) as u8;
        let addr = staged.layout.kernel_staging + offset;
        let mut byte = staged.mem.host_read(addr, 1).unwrap();
        byte[0] ^= flip;
        staged.mem.host_write(addr, &byte).unwrap();
        let err = verify::run(
            &mut staged.mem,
            &staged.layout,
            &CostModel::calibrated(),
            VerifierConfig::severifast(),
        )
        .unwrap_err();
        let detected = matches!(
            err,
            VerifierError::HashMismatch { .. } | VerifierError::Image(_)
        );
        assert!(detected, "flip at {offset} escaped: {err:?}");
    }
}

#[test]
fn any_initrd_byte_flip_is_detected() {
    let mut rng = XorShift64::new(0xE51F_0002);
    for _ in 0..CASES {
        let mut staged = stage_honest();
        let offset = rng.next_below(staged.initrd_len as u64);
        let flip = 1 + (rng.next_u64() % 255) as u8;
        let addr = staged.layout.initrd_staging + offset;
        let mut byte = staged.mem.host_read(addr, 1).unwrap();
        byte[0] ^= flip;
        staged.mem.host_write(addr, &byte).unwrap();
        let err = verify::run(
            &mut staged.mem,
            &staged.layout,
            &CostModel::calibrated(),
            VerifierConfig::severifast(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                VerifierError::HashMismatch {
                    component: "initrd"
                }
            ),
            "flip at {offset} gave {err:?}"
        );
    }
}

#[test]
fn honest_boot_always_succeeds_regardless_of_sweep_granularity() {
    for huge_pages in [false, true] {
        let mut staged = stage_honest();
        let config = VerifierConfig {
            huge_pages,
            ..VerifierConfig::severifast()
        };
        let boot = verify::run(
            &mut staged.mem,
            &staged.layout,
            &CostModel::calibrated(),
            config,
        )
        .unwrap();
        assert!(boot.pvalidated_pages > 0);
    }
}
