//! The boot verifier's main sequence: pvalidate, page tables, measured
//! direct boot.
//!
//! This is the code that runs at the guest's (pre-encrypted, measured)
//! entry point. It refuses to boot if any component's hash disagrees with
//! the pre-encrypted hash page — that is the entire defense against attack
//! 1 of §2.6 (host swapping components after their hashes were registered).

use sevf_mem::{GuestMemory, PAGE_SIZE};
use sevf_sim::cost::{CostModel, PAGE_2M, PAGE_4K};
use sevf_sim::Nanos;

use crate::hashes::{HashPage, KernelHashes};
use crate::layout::{GuestLayout, HASH_PAGE_ADDR, PAGE_TABLE_ADDR};
use crate::loader::{self, Step};
use crate::pagetable;
use crate::VerifierError;

/// Which kernel artifact the verifier is configured to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// A bzImage (the SEVeriFast default).
    Bzimage,
    /// An uncompressed vmlinux via the fw_cfg protocol.
    Vmlinux,
}

/// Verifier runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifierConfig {
    /// Kernel artifact kind.
    pub kind: KernelKind,
    /// Whether the host backs the guest with 2 MiB pages (§6.1: enabling
    /// huge pages takes the pvalidate sweep from >60 ms to <1 ms).
    pub huge_pages: bool,
    /// C-bit position (from the two `cpuid` calls of §5).
    pub c_bit: u32,
    /// Base address of the pre-encrypted firmware blob (the SEVeriFast
    /// verifier, or OVMF for the baseline path).
    pub firmware_base: u64,
    /// Size of that blob: its pages (and the other launch pages) were
    /// validated by firmware and must be *skipped* by the sweep —
    /// re-validating a page the hypervisor remapped would silently accept
    /// the tampered mapping.
    pub firmware_size: u64,
}

impl VerifierConfig {
    /// The paper's configuration: bzImage, huge pages on, C-bit 51.
    pub fn severifast() -> Self {
        VerifierConfig {
            kind: KernelKind::Bzimage,
            huge_pages: true,
            c_bit: sevf_mem::C_BIT_POSITION,
            firmware_base: crate::layout::VERIFIER_ADDR,
            firmware_size: crate::binary::VerifierFeatures::severifast().binary_size(),
        }
    }
}

/// The outcome of a successful verifier run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedBoot {
    /// Where to enter the kernel.
    pub kernel_entry: u64,
    /// Guest-physical address of the (now encrypted) initrd.
    pub initrd_addr: u64,
    /// Initrd length in bytes.
    pub initrd_len: u64,
    /// Costed steps, in execution order, for the caller's timeline.
    pub steps: Vec<Step>,
    /// Number of pages the pvalidate sweep touched.
    pub pvalidated_pages: u64,
}

impl VerifiedBoot {
    /// Total virtual time the verifier spent.
    pub fn total_time(&self) -> Nanos {
        self.steps.iter().map(|s| s.duration).sum()
    }
}

/// Runs the boot verifier against guest memory prepared by the VMM.
///
/// Preconditions (the VMM's half of the contract):
/// * the private range (`layout.private_ranges()`) is RMP-assigned;
/// * the hash page, boot structures, and this verifier are pre-encrypted;
/// * the kernel image and initrd are staged in the shared window.
///
/// # Errors
///
/// * [`VerifierError::HashMismatch`] — tampered component; boot refused.
/// * [`VerifierError::Memory`] — RMP/#VC faults (e.g. the host remapped a
///   page mid-boot).
/// * [`VerifierError::BadHashPage`] / [`VerifierError::Image`] — corrupt
///   root-of-trust contents.
pub fn run(
    mem: &mut GuestMemory,
    layout: &GuestLayout,
    cost: &CostModel,
    config: VerifierConfig,
) -> Result<VerifiedBoot, VerifierError> {
    let mut steps = Vec::new();

    // 1. Discover the C-bit position: two cpuid leaves, each a #VC under
    //    SNP (§5).
    steps.push(Step::new("cpuid C-bit discovery", cost.vc_exit.scale(2)));

    // 2. pvalidate every assigned page the launch firmware did *not*
    //    already validate. The pre-encrypted ranges are skipped by address,
    //    not by RMP state: if the hypervisor remapped one of them, its valid
    //    bit is clear and blindly re-validating would accept the tampered
    //    mapping instead of faulting on it.
    let skip = layout.pre_encrypted_ranges(config.firmware_base, config.firmware_size);
    let skipped = |addr: u64| skip.iter().any(|(b, l)| addr >= *b && addr < b + l);
    let mut pvalidated = 0u64;
    if mem.generation().has_rmp() {
        // `pvalidate` only exists under SEV-SNP (§2.2); SEV/SEV-ES guests
        // have no RMP to populate.
        for (base, len) in layout.private_ranges() {
            let mut page = base;
            while page < base + len {
                if mem.is_assigned(page) && !mem.is_validated(page) && !skipped(page) {
                    mem.pvalidate(page, PAGE_SIZE)?;
                    pvalidated += 1;
                }
                page += PAGE_SIZE;
            }
        }
    }
    let sweep_page_size = if config.huge_pages { PAGE_2M } else { PAGE_4K };
    steps.push(Step::new(
        format!(
            "pvalidate sweep ({} pages at {} granularity)",
            pvalidated,
            if config.huge_pages { "2MiB" } else { "4KiB" }
        ),
        cost.pvalidate_sweep(pvalidated * PAGE_SIZE, sweep_page_size),
    ));

    // 3. Build identity-mapped page tables with the C-bit set (§4.2:
    //    generated in C-bit memory, implicitly encrypting them).
    pagetable::build_identity_map(mem, PAGE_TABLE_ADDR, 1 << 30, config.c_bit, true)?;
    steps.push(Step::new(
        "build identity-mapped page tables (C-bit set)",
        cost.page_table_setup,
    ));

    // 4. Read the pre-encrypted hash page.
    let hash_page_bytes = mem.guest_read(HASH_PAGE_ADDR, PAGE_SIZE, true)?;
    let hash_page = HashPage::from_page(&hash_page_bytes)?;

    // 5. Measured direct boot: kernel.
    let loaded = match config.kind {
        KernelKind::Bzimage => loader::load_bzimage(mem, layout, cost)?,
        KernelKind::Vmlinux => loader::load_vmlinux_fw_cfg(mem, layout, cost)?,
    };
    let expected: Vec<[u8; 32]> = match (&hash_page.kernel, config.kind) {
        (KernelHashes::WholeImage(h), KernelKind::Bzimage) => vec![*h],
        (
            KernelHashes::FwCfg {
                ehdr,
                phdrs,
                segments,
            },
            KernelKind::Vmlinux,
        ) => vec![*ehdr, *phdrs, *segments],
        _ => {
            return Err(VerifierError::BadHashPage(
                "hash mode does not match loader",
            ))
        }
    };
    steps.extend(loaded.steps.iter().cloned());
    if loaded.computed_hashes != expected {
        return Err(VerifierError::HashMismatch {
            component: "kernel",
        });
    }
    steps.push(Step::new("compare kernel hash", Nanos::from_micros(1)));

    // 6. Measured direct boot: initrd (uncompressed per §3.3).
    let staged_initrd = mem.guest_read(layout.initrd_staging, layout.initrd_size, false)?;
    mem.guest_write(layout.initrd_dest, &staged_initrd, true)?;
    let private_initrd = mem.guest_read(layout.initrd_dest, layout.initrd_size, true)?;
    let initrd_digest = sevf_crypto::sha256(&private_initrd);
    steps.push(Step::new(
        format!("copy initrd ({} B) to encrypted memory", layout.initrd_size),
        cost.cpu_copy_to_encrypted(layout.initrd_size),
    ));
    steps.push(Step::new(
        "SHA-256 initrd",
        cost.cpu_sha256(layout.initrd_size),
    ));
    if initrd_digest != hash_page.initrd {
        return Err(VerifierError::HashMismatch {
            component: "initrd",
        });
    }
    steps.push(Step::new("compare initrd hash", Nanos::from_micros(1)));

    Ok(VerifiedBoot {
        kernel_entry: loaded.entry,
        initrd_addr: layout.initrd_dest,
        initrd_len: layout.initrd_size,
        steps,
        pvalidated_pages: pvalidated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{VerifierBinary, VerifierFeatures};
    use crate::layout::VERIFIER_ADDR;
    use sevf_codec::Codec;
    use sevf_image::kernel::KernelConfig;
    use sevf_sim::cost::SevGeneration;

    const MB: u64 = 1024 * 1024;

    /// Sets up a guest the way the VMM would: staged components, assigned
    /// private range, pre-encrypted hash page + verifier.
    fn prepare(
        kernel_bytes: &[u8],
        initrd: &[u8],
        kernel_hashes: KernelHashes,
    ) -> (GuestMemory, GuestLayout) {
        let mut mem = GuestMemory::new_sev(64 * MB, [5u8; 16], SevGeneration::SevSnp);
        let layout =
            GuestLayout::plan(64 * MB, kernel_bytes.len() as u64, initrd.len() as u64).unwrap();
        mem.host_write(layout.kernel_staging, kernel_bytes).unwrap();
        mem.host_write(layout.initrd_staging, initrd).unwrap();
        let hash_page = HashPage {
            kernel: kernel_hashes,
            initrd: sevf_crypto::sha256(initrd),
        };
        mem.host_write(HASH_PAGE_ADDR, &hash_page.to_page())
            .unwrap();
        let verifier = VerifierBinary::build(VerifierFeatures::severifast());
        mem.host_write(VERIFIER_ADDR, verifier.bytes()).unwrap();
        // Pre-encrypt the root of trust, then assign the private range.
        mem.pre_encrypt(HASH_PAGE_ADDR, PAGE_SIZE).unwrap();
        mem.pre_encrypt(VERIFIER_ADDR, verifier.size()).unwrap();
        for (base, len) in layout.private_ranges() {
            mem.rmp_assign(base, len).unwrap();
        }
        (mem, layout)
    }

    fn bz_setup() -> (GuestMemory, GuestLayout) {
        let image = KernelConfig::test_tiny().build();
        let bz = image.bzimage(Codec::Lz4);
        let initrd = sevf_image::initrd::build_initrd(64 * 1024);
        prepare(
            &bz,
            &initrd,
            KernelHashes::WholeImage(sevf_crypto::sha256(&bz)),
        )
    }

    #[test]
    fn honest_boot_succeeds() {
        let (mut mem, layout) = bz_setup();
        let boot = run(
            &mut mem,
            &layout,
            &CostModel::calibrated(),
            VerifierConfig::severifast(),
        )
        .unwrap();
        assert_eq!(boot.kernel_entry, layout.kernel_dest);
        assert!(boot.pvalidated_pages > 0);
        assert!(boot.total_time() > Nanos::ZERO);
        // Initrd really is in encrypted memory now.
        let initrd = sevf_image::initrd::build_initrd(64 * 1024);
        assert_eq!(
            mem.guest_read(boot.initrd_addr, boot.initrd_len, true)
                .unwrap(),
            *initrd
        );
    }

    #[test]
    fn swapped_kernel_detected() {
        // Attack 1 of §2.6: after hashes are registered, the host stages a
        // different kernel.
        let (mut mem, layout) = bz_setup();
        let evil = sevf_image::bzimage::build(&vec![0x66u8; 100_000], Codec::Lz4);
        let evil_sized = if evil.len() as u64 >= layout.kernel_size {
            evil[..layout.kernel_size as usize].to_vec()
        } else {
            let mut padded = evil;
            padded.resize(layout.kernel_size as usize, 0);
            padded
        };
        mem.host_write(layout.kernel_staging, &evil_sized).unwrap();
        let err = run(
            &mut mem,
            &layout,
            &CostModel::calibrated(),
            VerifierConfig::severifast(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            VerifierError::HashMismatch {
                component: "kernel"
            } | VerifierError::Image(_)
        ));
    }

    #[test]
    fn swapped_initrd_detected() {
        let (mut mem, layout) = bz_setup();
        let evil = vec![0xeeu8; layout.initrd_size as usize];
        mem.host_write(layout.initrd_staging, &evil).unwrap();
        let err = run(
            &mut mem,
            &layout,
            &CostModel::calibrated(),
            VerifierConfig::severifast(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            VerifierError::HashMismatch {
                component: "initrd"
            }
        );
    }

    #[test]
    fn single_bit_flip_in_kernel_detected() {
        let (mut mem, layout) = bz_setup();
        let mut staged = mem
            .host_read(layout.kernel_staging, layout.kernel_size)
            .unwrap();
        let mid = staged.len() / 2;
        staged[mid] ^= 0x01;
        mem.host_write(layout.kernel_staging, &staged).unwrap();
        let err = run(
            &mut mem,
            &layout,
            &CostModel::calibrated(),
            VerifierConfig::severifast(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            VerifierError::HashMismatch { .. } | VerifierError::Image(_)
        ));
    }

    #[test]
    fn vmlinux_fw_cfg_boot_succeeds() {
        let image = KernelConfig::test_tiny().build();
        let (ehdr, phdrs, segs) = image.elf().fw_cfg_pieces();
        let mut staged = ehdr.clone();
        staged.extend_from_slice(&phdrs);
        staged.extend_from_slice(&segs);
        let initrd = sevf_image::initrd::build_initrd(64 * 1024);
        let (mut mem, layout) = prepare(
            &staged,
            &initrd,
            KernelHashes::FwCfg {
                ehdr: sevf_crypto::sha256(&ehdr),
                phdrs: sevf_crypto::sha256(&phdrs),
                segments: sevf_crypto::sha256(&segs),
            },
        );
        let config = VerifierConfig {
            kind: KernelKind::Vmlinux,
            ..VerifierConfig::severifast()
        };
        let boot = run(&mut mem, &layout, &CostModel::calibrated(), config).unwrap();
        assert_eq!(boot.kernel_entry, image.elf().entry);
    }

    #[test]
    fn hash_mode_mismatch_rejected() {
        let (mut mem, layout) = bz_setup();
        let config = VerifierConfig {
            kind: KernelKind::Vmlinux,
            ..VerifierConfig::severifast()
        };
        // Whole-image hash page but vmlinux loader: refuse.
        assert!(run(&mut mem, &layout, &CostModel::calibrated(), config).is_err());
    }

    #[test]
    fn huge_pages_shrink_sweep_cost() {
        let cost = CostModel::calibrated();
        let (mut mem_a, layout_a) = bz_setup();
        let boot_huge = run(&mut mem_a, &layout_a, &cost, VerifierConfig::severifast()).unwrap();
        let (mut mem_b, layout_b) = bz_setup();
        let config_4k = VerifierConfig {
            huge_pages: false,
            ..VerifierConfig::severifast()
        };
        let boot_4k = run(&mut mem_b, &layout_b, &cost, config_4k).unwrap();
        let sweep = |b: &VerifiedBoot| {
            b.steps
                .iter()
                .find(|s| s.label.contains("pvalidate"))
                .expect("sweep step")
                .duration
        };
        assert!(sweep(&boot_4k) > sweep(&boot_huge).scale(100));
    }

    #[test]
    fn remapped_page_faults_the_verifier() {
        // The host remaps a private page after assignment; the verifier's
        // accesses must take #VC instead of reading stale data.
        let (mut mem, layout) = bz_setup();
        // Let the verifier pvalidate first — run once, then remap and rerun
        // the kernel copy by hand: simplest is to remap the hash page, which
        // the verifier reads early.
        mem.remap_by_host(HASH_PAGE_ADDR).unwrap();
        let err = run(
            &mut mem,
            &layout,
            &CostModel::calibrated(),
            VerifierConfig::severifast(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifierError::Memory(_)));
        let _ = layout;
    }
}
