//! x86-64 identity-mapped page tables with the C-bit.
//!
//! The boot verifier builds 1 GiB of identity mapping with 2 MiB pages —
//! PML4 → PDPT → PD, 4 KiB of actual table data (Fig. 7) — setting the
//! encryption bit in every entry so that all kernel accesses go through the
//! memory-encryption engine (§2.4). The tables live in *encrypted* guest
//! memory: generating them there encrypts them implicitly (§4.2).

use sevf_mem::{GuestMemory, MemError, PAGE_SIZE};

/// Entry flag: present.
pub const PTE_PRESENT: u64 = 1 << 0;
/// Entry flag: writable.
pub const PTE_WRITABLE: u64 = 1 << 1;
/// Entry flag: page size (2 MiB leaf in a PD entry).
pub const PTE_HUGE: u64 = 1 << 7;

/// Size mapped by one PD entry.
pub const HUGE_PAGE: u64 = 2 * 1024 * 1024;

/// Where each table lands relative to the page-table region base.
const PML4_OFF: u64 = 0;
const PDPT_OFF: u64 = PAGE_SIZE;
const PD_OFF: u64 = 2 * PAGE_SIZE;

/// Summary of a built mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTableStats {
    /// Bytes of table data written.
    pub table_bytes: u64,
    /// Number of 2 MiB leaf entries.
    pub leaf_entries: u64,
    /// Number of guest-physical bytes mapped.
    pub mapped_bytes: u64,
}

/// Builds an identity map of `map_size` bytes (rounded up to 2 MiB) at
/// `region_base`, with the C-bit at `c_bit` set in every entry when
/// `encrypted` is true. Writes go through the guest's private mapping, so
/// the region must already be assigned and validated.
///
/// # Errors
///
/// Propagates guest-memory faults (e.g. unvalidated table region).
///
/// # Panics
///
/// Panics if `map_size` exceeds 512 GiB (PDPT fan-out limit of this
/// single-PML4E builder) or `c_bit < 52` is violated in reverse (c_bit must
/// be ≥ 32 to stay clear of the address bits used here).
pub fn build_identity_map(
    mem: &mut GuestMemory,
    region_base: u64,
    map_size: u64,
    c_bit: u32,
    encrypted: bool,
) -> Result<PageTableStats, MemError> {
    assert!(c_bit >= 32, "C-bit must be above the mapped address bits");
    let leafs = map_size.div_ceil(HUGE_PAGE);
    let pd_tables = leafs.div_ceil(512);
    assert!(
        pd_tables <= 512,
        "mapping larger than 512 GiB not supported"
    );
    let c = if encrypted { 1u64 << c_bit } else { 0 };

    // PML4: one entry pointing at the PDPT.
    let pml4e = (region_base + PDPT_OFF) | PTE_PRESENT | PTE_WRITABLE | c;
    mem.guest_write(region_base + PML4_OFF, &pml4e.to_le_bytes(), encrypted)?;

    // PDPT: one entry per PD table.
    for t in 0..pd_tables {
        let pd_addr = region_base + PD_OFF + t * PAGE_SIZE;
        let pdpte = pd_addr | PTE_PRESENT | PTE_WRITABLE | c;
        mem.guest_write(
            region_base + PDPT_OFF + t * 8,
            &pdpte.to_le_bytes(),
            encrypted,
        )?;
        // PD: 2 MiB leaf entries.
        let mut entries = Vec::with_capacity(512 * 8);
        for i in 0..512u64 {
            let leaf_index = t * 512 + i;
            if leaf_index >= leafs {
                break;
            }
            let pde = (leaf_index * HUGE_PAGE) | PTE_PRESENT | PTE_WRITABLE | PTE_HUGE | c;
            entries.extend_from_slice(&pde.to_le_bytes());
        }
        mem.guest_write(pd_addr, &entries, encrypted)?;
    }

    Ok(PageTableStats {
        table_bytes: PAGE_SIZE + PAGE_SIZE + pd_tables * PAGE_SIZE,
        leaf_entries: leafs,
        mapped_bytes: leafs * HUGE_PAGE,
    })
}

/// Result of a simulated page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical address the virtual address maps to.
    pub phys: u64,
    /// Whether the walk saw the C-bit set at the leaf.
    pub encrypted: bool,
}

/// Walks the tables at `region_base` for virtual address `vaddr` (reads
/// through the same mapping they were written with).
///
/// # Errors
///
/// Returns `Ok(None)` for unmapped addresses and `Err` for memory faults.
pub fn walk(
    mem: &GuestMemory,
    region_base: u64,
    vaddr: u64,
    c_bit: u32,
    encrypted: bool,
) -> Result<Option<Translation>, MemError> {
    let c_mask = 1u64 << c_bit;
    let addr_mask = ((1u64 << 52) - 1) & !0xfff & !c_mask;
    let read_entry = |addr: u64| -> Result<u64, MemError> {
        let bytes = mem.guest_read(addr, 8, encrypted)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    };
    let pml4e = read_entry(region_base + PML4_OFF + ((vaddr >> 39) & 0x1ff) * 8)?;
    if pml4e & PTE_PRESENT == 0 {
        return Ok(None);
    }
    let pdpt = pml4e & addr_mask;
    let pdpte = read_entry(pdpt + ((vaddr >> 30) & 0x1ff) * 8)?;
    if pdpte & PTE_PRESENT == 0 {
        return Ok(None);
    }
    let pd = pdpte & addr_mask;
    let pde = read_entry(pd + ((vaddr >> 21) & 0x1ff) * 8)?;
    if pde & PTE_PRESENT == 0 {
        return Ok(None);
    }
    debug_assert!(pde & PTE_HUGE != 0, "only 2 MiB leaves are built");
    let base = pde & addr_mask & !(HUGE_PAGE - 1);
    Ok(Some(Translation {
        phys: base + (vaddr & (HUGE_PAGE - 1)),
        encrypted: pde & c_mask != 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_mem::C_BIT_POSITION;
    use sevf_sim::cost::SevGeneration;

    const MB: u64 = 1024 * 1024;

    fn prepared_mem() -> GuestMemory {
        let mut mem = GuestMemory::new_sev(64 * MB, [3u8; 16], SevGeneration::SevSnp);
        mem.rmp_assign(MB, MB).unwrap();
        mem.pvalidate(MB, MB).unwrap();
        mem
    }

    #[test]
    fn one_gig_map_uses_4k_of_pd() {
        let mut mem = prepared_mem();
        let stats = build_identity_map(&mut mem, MB, 1024 * MB, C_BIT_POSITION, true).unwrap();
        assert_eq!(stats.leaf_entries, 512);
        assert_eq!(stats.mapped_bytes, 1024 * MB);
        // Fig. 7: "4KB" of page tables — the PD with 512 leaf entries (the
        // PML4/PDPT roots ride along in the same region).
        assert_eq!(stats.table_bytes, 3 * PAGE_SIZE);
    }

    #[test]
    fn identity_translation_with_c_bit() {
        let mut mem = prepared_mem();
        build_identity_map(&mut mem, MB, 1024 * MB, C_BIT_POSITION, true).unwrap();
        for vaddr in [0u64, 0x1234, 2 * MB + 5, 100 * MB, 1024 * MB - 1] {
            let t = walk(&mem, MB, vaddr, C_BIT_POSITION, true)
                .unwrap()
                .unwrap();
            assert_eq!(t.phys, vaddr, "identity map");
            assert!(t.encrypted, "C-bit must be set at {vaddr:#x}");
        }
    }

    #[test]
    fn unmapped_address_walks_to_none() {
        let mut mem = prepared_mem();
        build_identity_map(&mut mem, MB, 16 * MB, C_BIT_POSITION, true).unwrap();
        assert_eq!(walk(&mem, MB, 32 * MB, C_BIT_POSITION, true).unwrap(), None);
        // A different PML4 slot entirely.
        assert_eq!(
            walk(&mem, MB, 1u64 << 40, C_BIT_POSITION, true).unwrap(),
            None
        );
    }

    #[test]
    fn plain_guest_builds_unencrypted_tables() {
        let mut mem = GuestMemory::new_plain(64 * MB);
        build_identity_map(&mut mem, MB, 64 * MB, C_BIT_POSITION, false).unwrap();
        let t = walk(&mem, MB, 12345, C_BIT_POSITION, false)
            .unwrap()
            .unwrap();
        assert_eq!(t.phys, 12345);
        assert!(!t.encrypted);
    }

    #[test]
    fn tables_in_unvalidated_region_fault() {
        let mut mem = GuestMemory::new_sev(64 * MB, [3u8; 16], SevGeneration::SevSnp);
        // No assign/pvalidate: the encrypted write must raise #VC.
        assert!(build_identity_map(&mut mem, MB, 64 * MB, C_BIT_POSITION, true).is_err());
    }

    #[test]
    fn partial_size_rounds_up_to_huge_pages() {
        let mut mem = prepared_mem();
        let stats = build_identity_map(&mut mem, MB, 3 * MB, C_BIT_POSITION, true).unwrap();
        assert_eq!(stats.leaf_entries, 2);
        assert_eq!(stats.mapped_bytes, 4 * MB);
    }

    #[test]
    fn host_sees_tables_as_ciphertext() {
        let mut mem = prepared_mem();
        build_identity_map(&mut mem, MB, 64 * MB, C_BIT_POSITION, true).unwrap();
        let host_view = mem.host_read(MB, 8).unwrap();
        let guest_view = mem.guest_read(MB, 8, true).unwrap();
        assert_ne!(
            host_view, guest_view,
            "tables are implicitly encrypted (§4.2)"
        );
    }
}
