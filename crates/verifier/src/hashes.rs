//! The pre-encrypted hash page.
//!
//! Measured direct boot pre-encrypts *hashes* of the boot components instead
//! of the components themselves (§2.5/§2.6). SEVeriFast additionally takes
//! the hashing itself off the critical path (§4.3): the VMM is handed a
//! pre-computed hash file and simply pre-encrypts this page, which the
//! launch measurement then covers.

use sevf_crypto::Digest256;

use crate::VerifierError;

/// Magic prefix of a serialized hash page.
pub const HASH_PAGE_MAGIC: &[u8; 4] = b"SVHP";

/// How the kernel image is hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelHashes {
    /// One hash over the whole image file (bzImage boot).
    WholeImage(Digest256),
    /// Three hashes for the fw_cfg vmlinux protocol of §5: ELF header,
    /// program headers, and concatenated loadable segments.
    FwCfg {
        /// Hash of the 64-byte ELF header.
        ehdr: Digest256,
        /// Hash of the program header table.
        phdrs: Digest256,
        /// Hash of the loadable segment bytes, in order.
        segments: Digest256,
    },
}

/// The contents of the pre-encrypted hash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPage {
    /// Kernel hash(es).
    pub kernel: KernelHashes,
    /// Hash of the initrd archive.
    pub initrd: Digest256,
}

impl HashPage {
    /// Serializes to exactly one 4 KiB page (zero padded).
    pub fn to_page(&self) -> [u8; 4096] {
        let mut page = [0u8; 4096];
        page[..4].copy_from_slice(HASH_PAGE_MAGIC);
        match &self.kernel {
            KernelHashes::WholeImage(k) => {
                page[4] = 1;
                page[8..40].copy_from_slice(k);
            }
            KernelHashes::FwCfg {
                ehdr,
                phdrs,
                segments,
            } => {
                page[4] = 2;
                page[8..40].copy_from_slice(ehdr);
                page[40..72].copy_from_slice(phdrs);
                page[72..104].copy_from_slice(segments);
            }
        }
        page[104..136].copy_from_slice(&self.initrd);
        page
    }

    /// Parses a hash page read back from pre-encrypted guest memory.
    ///
    /// # Errors
    ///
    /// Returns [`VerifierError::BadHashPage`] on bad magic or mode.
    pub fn from_page(page: &[u8]) -> Result<Self, VerifierError> {
        if page.len() < 136 {
            return Err(VerifierError::BadHashPage("too short"));
        }
        if &page[..4] != HASH_PAGE_MAGIC {
            return Err(VerifierError::BadHashPage("bad magic"));
        }
        let take32 = |at: usize| -> Digest256 { page[at..at + 32].try_into().expect("32") };
        let kernel = match page[4] {
            1 => KernelHashes::WholeImage(take32(8)),
            2 => KernelHashes::FwCfg {
                ehdr: take32(8),
                phdrs: take32(40),
                segments: take32(72),
            },
            _ => return Err(VerifierError::BadHashPage("unknown kernel hash mode")),
        };
        Ok(HashPage {
            kernel,
            initrd: take32(104),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_image_roundtrip() {
        let hp = HashPage {
            kernel: KernelHashes::WholeImage([7u8; 32]),
            initrd: [9u8; 32],
        };
        assert_eq!(HashPage::from_page(&hp.to_page()).unwrap(), hp);
    }

    #[test]
    fn fw_cfg_roundtrip() {
        let hp = HashPage {
            kernel: KernelHashes::FwCfg {
                ehdr: [1u8; 32],
                phdrs: [2u8; 32],
                segments: [3u8; 32],
            },
            initrd: [4u8; 32],
        };
        assert_eq!(HashPage::from_page(&hp.to_page()).unwrap(), hp);
    }

    #[test]
    fn garbage_rejected() {
        assert!(HashPage::from_page(&[0u8; 4096]).is_err());
        assert!(HashPage::from_page(b"SVHP").is_err());
        let mut page = HashPage {
            kernel: KernelHashes::WholeImage([0u8; 32]),
            initrd: [0u8; 32],
        }
        .to_page();
        page[4] = 9;
        assert!(HashPage::from_page(&page).is_err());
    }
}
