//! The boot-verifier binary and its code-size ledger.
//!
//! §4.1/§5 of the paper: starting from rust-hypervisor-firmware, everything
//! not needed for a secure measured direct boot was stripped (virtio, FAT,
//! PCI, EFI, PVH), leaving a ~13 KB binary. Pre-encryption cost is linear in
//! binary size (Fig. 4), so every feature's footprint matters; Fig. 7 makes
//! the pre-encrypt-vs-generate decision by comparing a structure's size
//! against the size of the code that could generate it. This module is that
//! ledger: [`VerifierFeatures`] selects functionality, [`VerifierBinary`]
//! accounts the bytes and emits the blob that joins the root of trust.

use sevf_image::content::{generate, ContentProfile};

/// Code-size contributions in bytes (the ledger behind Fig. 7 and the
/// "about 13 KB" total of §4.1).
pub mod code_size {
    /// Entry stub, GHCB MSR protocol, #VC plumbing, panic handler.
    pub const BASE_RUNTIME: u64 = 3_200;
    /// SHA-256 (sha2 crate with x86 SHA intrinsics).
    pub const SHA256: u64 = 2_500;
    /// Measured-direct-boot driver (copy, hash, compare, refuse).
    pub const MEASURED_BOOT: u64 = 1_800;
    /// pvalidate sweep over guest memory.
    pub const PVALIDATE: u64 = 800;
    /// Identity-mapped page-table construction with the C-bit (Fig. 7:
    /// "2.4KB" — generated because the code is smaller than pre-encrypting
    /// tables built by the VMM).
    pub const PAGE_TABLES: u64 = 2_400;
    /// bzImage setup-header parsing and placement (§4.4: small).
    pub const BZIMAGE_LOADER: u64 = 2_100;
    /// ELF parsing + fw_cfg three-piece load protocol (§5, optional).
    pub const VMLINUX_LOADER: u64 = 2_600;
    /// mptable generation (Fig. 7: ≈ 4 KB — larger than the 304 B table, so
    /// the paper pre-encrypts the table instead).
    pub const MPTABLE_GEN: u64 = 4_096;
    /// boot_params generation (Fig. 7: ≈ 5 KB vs a 4 KB structure — also
    /// pre-encrypted instead).
    pub const BOOT_PARAMS_GEN: u64 = 5_120;
}

/// Which functionality is compiled into the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifierFeatures {
    /// Load a bzImage (the SEVeriFast default).
    pub bzimage_loader: bool,
    /// Load an uncompressed vmlinux via fw_cfg (§5's comparison build).
    pub vmlinux_loader: bool,
    /// Generate the mptable in the guest instead of pre-encrypting it.
    pub generate_mptable: bool,
    /// Generate boot_params in the guest instead of pre-encrypting them.
    pub generate_boot_params: bool,
}

impl VerifierFeatures {
    /// The SEVeriFast configuration from the paper: bzImage loader only;
    /// mptable and boot_params are pre-encrypted, page tables generated.
    pub fn severifast() -> Self {
        VerifierFeatures {
            bzimage_loader: true,
            vmlinux_loader: false,
            generate_mptable: false,
            generate_boot_params: false,
        }
    }

    /// The §5 comparison build with the optimized uncompressed-vmlinux
    /// loader.
    pub fn severifast_vmlinux() -> Self {
        VerifierFeatures {
            bzimage_loader: false,
            vmlinux_loader: true,
            generate_mptable: false,
            generate_boot_params: false,
        }
    }

    /// A maximal build (used by ablation benches to show why generating
    /// everything in the guest loses: the binary grows past 24 KB).
    pub fn kitchen_sink() -> Self {
        VerifierFeatures {
            bzimage_loader: true,
            vmlinux_loader: true,
            generate_mptable: true,
            generate_boot_params: true,
        }
    }

    /// Binary size under this feature set.
    pub fn binary_size(&self) -> u64 {
        use code_size::*;
        let mut size = BASE_RUNTIME + SHA256 + MEASURED_BOOT + PVALIDATE + PAGE_TABLES;
        if self.bzimage_loader {
            size += BZIMAGE_LOADER;
        }
        if self.vmlinux_loader {
            size += VMLINUX_LOADER;
        }
        if self.generate_mptable {
            size += MPTABLE_GEN;
        }
        if self.generate_boot_params {
            size += BOOT_PARAMS_GEN;
        }
        size
    }
}

/// Magic prefix of a verifier binary blob.
pub const VERIFIER_MAGIC: &[u8; 4] = b"SVBV";

/// The built verifier binary: a deterministic blob of exactly
/// [`VerifierFeatures::binary_size`] bytes whose first bytes encode the
/// feature set (so the launch measurement pins *which verifier* ran —
/// attack 3 of §2.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifierBinary {
    features: VerifierFeatures,
    blob: Vec<u8>,
}

impl VerifierBinary {
    /// Builds the binary for a feature set.
    pub fn build(features: VerifierFeatures) -> Self {
        let size = features.binary_size() as usize;
        let mut blob = Vec::with_capacity(size);
        blob.extend_from_slice(VERIFIER_MAGIC);
        blob.push(1); // version
        blob.push(Self::encode_features(features));
        let body_seed = format!("sevf-verifier-{:02x}", Self::encode_features(features));
        blob.extend(generate(
            ContentProfile::aws(),
            size - blob.len(),
            body_seed.as_bytes(),
        ));
        VerifierBinary { features, blob }
    }

    fn encode_features(f: VerifierFeatures) -> u8 {
        (f.bzimage_loader as u8)
            | (f.vmlinux_loader as u8) << 1
            | (f.generate_mptable as u8) << 2
            | (f.generate_boot_params as u8) << 3
    }

    /// The feature set compiled in.
    pub fn features(&self) -> VerifierFeatures {
        self.features
    }

    /// The binary image to pre-encrypt.
    pub fn bytes(&self) -> &[u8] {
        &self.blob
    }

    /// Binary size in bytes.
    pub fn size(&self) -> u64 {
        self.blob.len() as u64
    }

    /// Decodes the feature byte from a blob in guest memory; `None` if the
    /// blob is not a verifier binary.
    pub fn sniff_features(blob: &[u8]) -> Option<VerifierFeatures> {
        if blob.len() < 6 || &blob[..4] != VERIFIER_MAGIC || blob[4] != 1 {
            return None;
        }
        let f = blob[5];
        Some(VerifierFeatures {
            bzimage_loader: f & 1 != 0,
            vmlinux_loader: f & 2 != 0,
            generate_mptable: f & 4 != 0,
            generate_boot_params: f & 8 != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severifast_build_is_about_13kb() {
        let size = VerifierFeatures::severifast().binary_size();
        assert!(
            (12_000..14_000).contains(&size),
            "§4.1 says about 13 KB, got {size}"
        );
    }

    #[test]
    fn vmlinux_build_is_slightly_larger() {
        let bz = VerifierFeatures::severifast().binary_size();
        let vm = VerifierFeatures::severifast_vmlinux().binary_size();
        assert!(vm > bz, "ELF loading needs more code than bzImage (§4.4)");
    }

    #[test]
    fn kitchen_sink_shows_why_generation_loses() {
        // Fig. 7's decision rule: generating mptable + boot_params would add
        // ~9 KB of code to save ~4.3 KB of structures.
        let sink = VerifierFeatures::kitchen_sink().binary_size();
        let lean = VerifierFeatures::severifast().binary_size();
        assert!(sink > lean + 9_000);
    }

    #[test]
    fn blob_size_matches_ledger_and_is_deterministic() {
        let a = VerifierBinary::build(VerifierFeatures::severifast());
        let b = VerifierBinary::build(VerifierFeatures::severifast());
        assert_eq!(a, b);
        assert_eq!(a.size(), VerifierFeatures::severifast().binary_size());
    }

    #[test]
    fn different_features_different_blob() {
        let a = VerifierBinary::build(VerifierFeatures::severifast());
        let b = VerifierBinary::build(VerifierFeatures::severifast_vmlinux());
        assert_ne!(a.bytes()[..64], b.bytes()[..64]);
    }

    #[test]
    fn sniff_roundtrips() {
        for features in [
            VerifierFeatures::severifast(),
            VerifierFeatures::severifast_vmlinux(),
            VerifierFeatures::kitchen_sink(),
        ] {
            let binary = VerifierBinary::build(features);
            assert_eq!(
                VerifierBinary::sniff_features(binary.bytes()),
                Some(features)
            );
        }
        assert_eq!(VerifierBinary::sniff_features(b"junk"), None);
    }
}
