//! Kernel loaders used by the boot verifier.
//!
//! Two protocols (§4.4 / §5 of the paper):
//!
//! * **bzImage**: the verifier copies the whole image to its private
//!   destination and checks the setup header; the bzImage's own bootstrap
//!   loader later decompresses the vmlinux (the "Bootstrap Loader" phase of
//!   Fig. 11).
//! * **fw_cfg vmlinux**: the ELF header, program headers, and loadable
//!   segments are staged as three pieces; each is copied into encrypted
//!   memory and hashed separately, with segments going *directly* to their
//!   load addresses — avoiding the extra whole-file copy the naive approach
//!   would pay (§5).

use sevf_crypto::sha256;
use sevf_image::elf::{EHDR_SIZE, PHDR_SIZE};
use sevf_mem::GuestMemory;
use sevf_sim::{CostModel, Nanos};

use crate::layout::GuestLayout;
use crate::VerifierError;

/// A costed step of loader work, for the caller's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// What the step did.
    pub label: String,
    /// Virtual time it took.
    pub duration: Nanos,
}

impl Step {
    /// Creates a costed step.
    pub fn new(label: impl Into<String>, duration: Nanos) -> Self {
        Step {
            label: label.into(),
            duration,
        }
    }
}

/// Outcome of loading a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedKernel {
    /// Guest-physical entry point.
    pub entry: u64,
    /// Hash(es) the loader computed, in hash-page order.
    pub computed_hashes: Vec<[u8; 32]>,
    /// Costed steps performed.
    pub steps: Vec<Step>,
}

/// Copies the staged bzImage into encrypted memory, hashing it on the way,
/// and sanity-checks the setup header at the destination.
///
/// # Errors
///
/// Memory faults and malformed images surface as [`VerifierError`]s.
pub fn load_bzimage(
    mem: &mut GuestMemory,
    layout: &GuestLayout,
    cost: &CostModel,
) -> Result<LoadedKernel, VerifierError> {
    let mut steps = Vec::new();
    let size = layout.kernel_size;
    // Copy from the shared staging window to the private destination.
    let staged = mem.guest_read(layout.kernel_staging, size, false)?;
    mem.guest_write(layout.kernel_dest, &staged, true)?;
    steps.push(Step::new(
        format!("copy bzImage ({size} B) to encrypted memory"),
        cost.cpu_copy_to_encrypted(size),
    ));
    // Re-hash the *private* copy (§2.5 step 5: hashing the shared copy
    // would let the host race the check).
    let private = mem.guest_read(layout.kernel_dest, size, true)?;
    let digest = sha256(&private);
    steps.push(Step::new("SHA-256 bzImage", cost.cpu_sha256(size)));
    // Validate the container before handing off.
    sevf_image::bzimage::parse(&private)?;
    steps.push(Step::new("parse setup header", Nanos::from_micros(3)));
    Ok(LoadedKernel {
        entry: layout.kernel_dest,
        computed_hashes: vec![digest],
        steps,
    })
}

/// The fw_cfg staged piece offsets: `[ehdr][phdrs][segments]` back to back
/// at `kernel_staging`.
fn fw_cfg_offsets(staged_ehdr: &[u8]) -> Result<(usize, usize), VerifierError> {
    if staged_ehdr.len() < EHDR_SIZE {
        return Err(VerifierError::Image(sevf_image::ImageError::BadElf(
            "staged header too short",
        )));
    }
    let phnum = u16::from_le_bytes(staged_ehdr[56..58].try_into().expect("2")) as usize;
    Ok((EHDR_SIZE, phnum))
}

/// Loads an uncompressed vmlinux via the three-piece fw_cfg protocol.
///
/// # Errors
///
/// Memory faults and malformed ELFs surface as [`VerifierError`]s.
pub fn load_vmlinux_fw_cfg(
    mem: &mut GuestMemory,
    layout: &GuestLayout,
    cost: &CostModel,
) -> Result<LoadedKernel, VerifierError> {
    let mut steps = Vec::new();

    // Piece 1: ELF header → encrypted scratch (reuse the destination base).
    let ehdr = mem.guest_read(layout.kernel_staging, EHDR_SIZE as u64, false)?;
    mem.guest_write(layout.kernel_dest, &ehdr, true)?;
    let ehdr_hash = sha256(&mem.guest_read(layout.kernel_dest, EHDR_SIZE as u64, true)?);
    steps.push(Step::new(
        "copy + hash ELF header",
        cost.cpu_copy_to_encrypted(EHDR_SIZE as u64)
            + cost.cpu_sha256(EHDR_SIZE as u64)
            + cost.elf_segment_overhead,
    ));
    let (_, phnum) = fw_cfg_offsets(&ehdr)?;
    if phnum == 0 || phnum > 64 {
        return Err(VerifierError::Image(sevf_image::ImageError::BadElf(
            "implausible program header count",
        )));
    }
    let entry = u64::from_le_bytes(ehdr[24..32].try_into().expect("8"));

    // Piece 2: program headers.
    let phdrs_len = (phnum * PHDR_SIZE) as u64;
    let phdrs = mem.guest_read(layout.kernel_staging + EHDR_SIZE as u64, phdrs_len, false)?;
    mem.guest_write(layout.kernel_dest + EHDR_SIZE as u64, &phdrs, true)?;
    let phdrs_hash =
        sha256(&mem.guest_read(layout.kernel_dest + EHDR_SIZE as u64, phdrs_len, true)?);
    steps.push(Step::new(
        "copy + hash program headers",
        cost.cpu_copy_to_encrypted(phdrs_len) + cost.cpu_sha256(phdrs_len),
    ));

    // Piece 3: loadable segments, staged back to back, copied straight to
    // their run addresses (no intermediate whole-file copy — §5).
    let mut seg_hasher = sevf_crypto::Sha256::new();
    let mut staged_cursor = layout.kernel_staging + EHDR_SIZE as u64 + phdrs_len;
    let mut copied_total = 0u64;
    for i in 0..phnum {
        let ph = &phdrs[i * PHDR_SIZE..(i + 1) * PHDR_SIZE];
        let p_type = u32::from_le_bytes(ph[0..4].try_into().expect("4"));
        if p_type != 1 {
            continue;
        }
        let vaddr = u64::from_le_bytes(ph[16..24].try_into().expect("8"));
        let filesz = u64::from_le_bytes(ph[32..40].try_into().expect("8"));
        let memsz = u64::from_le_bytes(ph[40..48].try_into().expect("8"));
        let data = mem.guest_read(staged_cursor, filesz, false)?;
        mem.guest_write(vaddr, &data, true)?;
        let private = mem.guest_read(vaddr, filesz, true)?;
        seg_hasher.update(&private);
        // Zero the bss tail the segment declares.
        if memsz > filesz {
            mem.guest_write(vaddr + filesz, &vec![0u8; (memsz - filesz) as usize], true)?;
        }
        staged_cursor += filesz;
        copied_total += memsz;
    }
    steps.push(Step::new(
        format!("copy + hash {phnum} loadable segments"),
        cost.cpu_copy_to_encrypted(copied_total)
            + cost.cpu_sha256(copied_total)
            + cost.elf_segment_overhead.scale(phnum as u64),
    ));

    Ok(LoadedKernel {
        entry,
        computed_hashes: vec![ehdr_hash, phdrs_hash, seg_hasher.finalize()],
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_codec::Codec;
    use sevf_image::kernel::KernelConfig;
    use sevf_sim::cost::SevGeneration;

    const MB: u64 = 1024 * 1024;

    fn staged_guest(image_bytes: &[u8], initrd: &[u8]) -> (GuestMemory, GuestLayout) {
        let mut mem = GuestMemory::new_sev(64 * MB, [5u8; 16], SevGeneration::SevSnp);
        let layout =
            GuestLayout::plan(64 * MB, image_bytes.len() as u64, initrd.len() as u64).unwrap();
        // The hypervisor assigns the private range and (for this test) the
        // verifier has already validated it.
        mem.rmp_assign(0, layout.staging_base).unwrap();
        mem.pvalidate(0, layout.staging_base).unwrap();
        mem.host_write(layout.kernel_staging, image_bytes).unwrap();
        mem.host_write(layout.initrd_staging, initrd).unwrap();
        (mem, layout)
    }

    #[test]
    fn bzimage_load_places_and_hashes() {
        let image = KernelConfig::test_tiny().build();
        let bz = image.bzimage(Codec::Lz4);
        let (mut mem, layout) = staged_guest(&bz, b"initrd");
        let loaded = load_bzimage(&mut mem, &layout, &CostModel::calibrated()).unwrap();
        assert_eq!(loaded.entry, layout.kernel_dest);
        assert_eq!(loaded.computed_hashes, vec![sevf_crypto::sha256(&bz)]);
        // The private copy equals the staged image.
        let private = mem
            .guest_read(layout.kernel_dest, bz.len() as u64, true)
            .unwrap();
        assert_eq!(private, *bz);
    }

    #[test]
    fn bzimage_rejects_garbage() {
        let junk = vec![0u8; 100_000];
        let (mut mem, layout) = staged_guest(&junk, b"initrd");
        assert!(matches!(
            load_bzimage(&mut mem, &layout, &CostModel::calibrated()),
            Err(VerifierError::Image(_))
        ));
    }

    #[test]
    fn fw_cfg_load_reassembles_segments() {
        let image = KernelConfig::test_tiny().build();
        let (ehdr, phdrs, segs) = image.elf().fw_cfg_pieces();
        let mut staged = ehdr.clone();
        staged.extend_from_slice(&phdrs);
        staged.extend_from_slice(&segs);
        let (mut mem, layout) = staged_guest(&staged, b"initrd");
        let loaded = load_vmlinux_fw_cfg(&mut mem, &layout, &CostModel::calibrated()).unwrap();
        assert_eq!(loaded.entry, image.elf().entry);
        assert_eq!(
            loaded.computed_hashes,
            vec![
                sevf_crypto::sha256(&ehdr),
                sevf_crypto::sha256(&phdrs),
                sevf_crypto::sha256(&segs)
            ]
        );
        // First segment is loaded at its vaddr with the descriptor intact.
        let seg0 = &image.elf().segments[0];
        let loaded_bytes = mem
            .guest_read(seg0.vaddr, seg0.data.len() as u64, true)
            .unwrap();
        assert_eq!(loaded_bytes, seg0.data);
    }

    #[test]
    fn fw_cfg_rejects_bad_header() {
        let staged = vec![0u8; 1000];
        let (mut mem, layout) = staged_guest(&staged, b"initrd");
        assert!(load_vmlinux_fw_cfg(&mut mem, &layout, &CostModel::calibrated()).is_err());
    }

    #[test]
    fn loading_into_unvalidated_memory_faults() {
        let image = KernelConfig::test_tiny().build();
        let bz = image.bzimage(Codec::Lz4);
        let mut mem = GuestMemory::new_sev(64 * MB, [5u8; 16], SevGeneration::SevSnp);
        let layout = GuestLayout::plan(64 * MB, bz.len() as u64, 6).unwrap();
        mem.host_write(layout.kernel_staging, &bz).unwrap();
        // No assign/pvalidate of the destination: #VC.
        assert!(matches!(
            load_bzimage(&mut mem, &layout, &CostModel::calibrated()),
            Err(VerifierError::Memory(_))
        ));
    }
}
