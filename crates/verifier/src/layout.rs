//! The guest physical memory layout shared by the VMM and the boot verifier.
//!
//! The VMM stages plain-text boot components in a **shared** window at the
//! top of guest memory and pre-encrypts the small root-of-trust items at
//! fixed low addresses; the boot verifier copies components into **private**
//! destinations and loads the kernel at its linked base. All parties agree
//! on this map, like the x86 boot protocol's conventions.

use sevf_mem::PAGE_SIZE;

/// Fixed address of the pre-encrypted hash page.
pub const HASH_PAGE_ADDR: u64 = 0x7000;
/// Fixed address of the pre-encrypted `boot_params` page.
pub const BOOT_PARAMS_ADDR: u64 = 0x8000;
/// Fixed address of the pre-encrypted mptable.
pub const MPTABLE_ADDR: u64 = 0x9000;
/// Fixed address of the pre-encrypted kernel command line.
pub const CMDLINE_ADDR: u64 = 0xA000;
/// Fixed address the boot verifier binary is pre-encrypted at.
pub const VERIFIER_ADDR: u64 = 0x10000;
/// Fixed base of the page-table region the verifier builds.
pub const PAGE_TABLE_ADDR: u64 = 0x10_0000;
/// Kernel load base (matches `sevf_image::kernel::KERNEL_BASE`).
pub const KERNEL_DEST: u64 = 0x100_0000;

/// The complete per-boot address map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestLayout {
    /// Total guest memory size.
    pub mem_size: u64,
    /// Shared staging window base (top quarter of guest memory).
    pub staging_base: u64,
    /// Where the kernel image (bzImage or vmlinux) is staged, shared.
    pub kernel_staging: u64,
    /// Where the initrd is staged, shared.
    pub initrd_staging: u64,
    /// Private destination for the kernel image.
    pub kernel_dest: u64,
    /// Private destination for the initrd.
    pub initrd_dest: u64,
    /// Size of the staged kernel image.
    pub kernel_size: u64,
    /// Size of the staged initrd.
    pub initrd_size: u64,
}

fn page_align_up(v: u64) -> u64 {
    v.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

impl GuestLayout {
    /// Computes the layout for a guest of `mem_size` bytes booting a kernel
    /// image of `kernel_size` bytes with an initrd of `initrd_size` bytes.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first constraint violated when
    /// the components cannot fit without overlapping.
    pub fn plan(mem_size: u64, kernel_size: u64, initrd_size: u64) -> Result<Self, &'static str> {
        Self::plan_with_expansion(mem_size, kernel_size, initrd_size, true)
    }

    /// Like [`GuestLayout::plan`], but with explicit control over whether
    /// the staged kernel expands when loaded (`true` for a compressed
    /// bzImage, `false` for an uncompressed vmlinux, which only adds bss).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GuestLayout::plan`].
    pub fn plan_with_expansion(
        mem_size: u64,
        kernel_size: u64,
        initrd_size: u64,
        expands: bool,
    ) -> Result<Self, &'static str> {
        // The staging window is sized to what must be staged (top of guest
        // memory), leaving as much room as possible for private regions.
        let staged_total = kernel_size + initrd_size + 2 * 1024 * 1024;
        if staged_total > mem_size / 2 {
            return Err("staging window too small for kernel + initrd");
        }
        let staging_base = (mem_size - staged_total) / PAGE_SIZE * PAGE_SIZE;
        let kernel_staging = staging_base;
        let initrd_staging = page_align_up(kernel_staging + kernel_size);
        if initrd_staging + initrd_size > mem_size {
            return Err("staging window too small for kernel + initrd");
        }
        let kernel_dest = KERNEL_DEST;
        let initrd_dest = page_align_up(mem_size / 2);
        // The loaded kernel may expand: a bzImage decompresses (up to ~4×
        // here, capped at +64 MiB), while an uncompressed image only adds
        // bss and alignment slack.
        let headroom = if expands {
            (kernel_size * 4).min(kernel_size + 64 * 1024 * 1024)
        } else {
            kernel_size + 4 * 1024 * 1024
        }
        .max(16 * 1024 * 1024);
        if kernel_dest + headroom > initrd_dest {
            return Err("kernel destination would collide with initrd destination");
        }
        if initrd_dest + initrd_size > staging_base {
            return Err("initrd destination would collide with the staging window");
        }
        Ok(GuestLayout {
            mem_size,
            staging_base,
            kernel_staging,
            initrd_staging,
            kernel_dest,
            initrd_dest,
            kernel_size,
            initrd_size,
        })
    }

    /// Page-aligned ranges the hypervisor assigns as private before launch:
    /// everything below the staging window.
    pub fn private_ranges(&self) -> Vec<(u64, u64)> {
        vec![(0, self.staging_base)]
    }

    /// The ranges pre-encrypted by `LAUNCH_UPDATE_DATA` (already validated
    /// by firmware, so the verifier's pvalidate sweep must skip them).
    /// `fw_base`/`fw_size` locate the initial firmware blob — the ~13 KB
    /// SEVeriFast verifier at [`VERIFIER_ADDR`] or the 1 MB OVMF image.
    pub fn pre_encrypted_ranges(&self, fw_base: u64, fw_size: u64) -> Vec<(u64, u64)> {
        vec![
            (HASH_PAGE_ADDR, PAGE_SIZE),
            (BOOT_PARAMS_ADDR, PAGE_SIZE),
            (MPTABLE_ADDR, PAGE_SIZE),
            (CMDLINE_ADDR, PAGE_SIZE),
            (fw_base, page_align_up(fw_size)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn paper_vm_fits() {
        // 256 MB guest, Ubuntu bzImage 15 MB, initrd 14 MB (the largest
        // configuration in the evaluation).
        let layout = GuestLayout::plan(256 * MB, 15 * MB, 14 * MB).unwrap();
        assert!(layout.staging_base >= 192 * MB);
        assert!(layout.initrd_staging + layout.initrd_size <= 256 * MB);
        assert!(layout.initrd_dest >= 128 * MB);
    }

    #[test]
    fn uncompressed_ubuntu_fits() {
        // 61 MB vmlinux staged whole (vmlinux boot policy): needs
        // staged + 64 MiB of headroom below the initrd destination.
        let layout = GuestLayout::plan(512 * MB, 61 * MB, 14 * MB).unwrap();
        assert!(layout.kernel_dest + 61 * MB + 64 * MB <= layout.initrd_dest);
    }

    #[test]
    fn tiny_test_vm_fits() {
        let layout = GuestLayout::plan(64 * MB, 512 * 1024, 128 * 1024).unwrap();
        assert_eq!(layout.kernel_dest, KERNEL_DEST);
        assert!(layout.staging_base > layout.initrd_dest);
    }

    #[test]
    fn oversized_components_rejected() {
        assert!(GuestLayout::plan(64 * MB, 40 * MB, 14 * MB).is_err());
        assert!(GuestLayout::plan(32 * MB, MB, MB).is_err());
    }

    #[test]
    fn regions_are_page_aligned() {
        let layout = GuestLayout::plan(256 * MB, 7 * MB + 123, 14 * MB + 9).unwrap();
        assert_eq!(layout.staging_base % PAGE_SIZE, 0);
        assert_eq!(layout.initrd_staging % PAGE_SIZE, 0);
        assert_eq!(layout.initrd_dest % PAGE_SIZE, 0);
    }

    #[test]
    fn pre_encrypted_ranges_are_disjoint_and_low() {
        let layout = GuestLayout::plan(256 * MB, 7 * MB, 14 * MB).unwrap();
        let ranges = layout.pre_encrypted_ranges(VERIFIER_ADDR, 13 * 1024);
        for (addr, len) in &ranges {
            assert!(addr + len <= PAGE_TABLE_ADDR);
        }
        let mut sorted = ranges.clone();
        sorted.sort();
        for pair in sorted.windows(2) {
            assert!(pair[0].0 + pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }
}
