//! The SEVeriFast boot verifier.
//!
//! The paper's core artifact (§4.1, §5): a ~13 KB standalone binary that
//! replaces both the guest firmware and the kernel as the initial,
//! pre-encrypted code of an SEV microVM. Its only jobs are:
//!
//! 1. discover the C-bit position (two `cpuid` calls, §5);
//! 2. `pvalidate` guest memory ([`verify::run`], <1 ms with
//!    2 MiB pages, §6.1);
//! 3. build identity-mapped page tables with the C-bit set in every entry
//!    ([`pagetable`], generated in the guest because the code is smaller
//!    than the structure — Fig. 7);
//! 4. perform **measured direct boot** ([`verify`]): copy each boot
//!    component from shared to encrypted memory, re-hash it with SHA-256,
//!    and compare against the pre-encrypted hash page ([`hashes`]);
//! 5. load the kernel — a bzImage by default (§4.4: less loader code than
//!    parsing an ELF), or an uncompressed vmlinux via the optimized fw_cfg
//!    protocol of §5 ([`loader`]).
//!
//! The [`binary`] module is the code-size ledger: it accounts for each
//! feature's contribution to the binary (Fig. 7's "code size" column) and
//! emits the blob that `LAUNCH_UPDATE_DATA` measures into the root of trust.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod hashes;
pub mod layout;
pub mod loader;
pub mod pagetable;
pub mod verify;

use std::fmt;

use sevf_mem::MemError;

use sevf_image::ImageError;

/// Errors raised while the boot verifier runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// A component's hash did not match its pre-encrypted hash — the host
    /// supplied tampered boot components (§2.6, attack 1). Boot is refused.
    HashMismatch {
        /// Which component failed ("kernel", "initrd", "cmdline", ...).
        component: &'static str,
    },
    /// Guest memory fault (RMP violation, #VC, out of range).
    Memory(MemError),
    /// The kernel image was malformed.
    Image(ImageError),
    /// The guest layout is invalid (overlapping or out-of-bounds regions).
    BadLayout(&'static str),
    /// The hash page in pre-encrypted memory is corrupt.
    BadHashPage(&'static str),
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::HashMismatch { component } => {
                write!(
                    f,
                    "measured direct boot: {component} hash mismatch — refusing to boot"
                )
            }
            VerifierError::Memory(e) => write!(f, "memory fault: {e}"),
            VerifierError::Image(e) => write!(f, "bad kernel image: {e}"),
            VerifierError::BadLayout(w) => write!(f, "invalid guest layout: {w}"),
            VerifierError::BadHashPage(w) => write!(f, "corrupt hash page: {w}"),
        }
    }
}

impl std::error::Error for VerifierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifierError::Memory(e) => Some(e),
            VerifierError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for VerifierError {
    fn from(e: MemError) -> Self {
        VerifierError::Memory(e)
    }
}

impl From<ImageError> for VerifierError {
    fn from(e: ImageError) -> Self {
        VerifierError::Image(e)
    }
}
