//! The guest physical memory model.

use std::collections::BTreeMap;

use sevf_crypto::XexCipher;
use sevf_sim::cost::SevGeneration;

use crate::error::{MemError, VcReason};
use crate::rmp::Rmp;

/// Page size used by the RMP, `pvalidate`, and `LAUNCH_UPDATE_DATA`.
pub const PAGE_SIZE: u64 = 4096;

/// A captured image of a guest's resident pages plus RMP state, used by
/// warm-start snapshots (§7.1). The content is the internal plaintext
/// representation; an image is only meaningful back inside the launch
/// context (key) it came from.
#[derive(Debug, Clone)]
pub struct MemoryImage {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    rmp: Rmp,
}

impl MemoryImage {
    /// Bytes of captured page content.
    pub fn byte_len(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }
}

/// Simulated guest physical memory with SEV semantics.
///
/// Pages are materialized lazily: untouched memory reads as zeros, so VMs
/// with hundreds of megabytes of (mostly untouched) RAM stay cheap.
///
/// See the crate-level docs for the enforcement rules and the plaintext
/// representation note.
pub struct GuestMemory {
    size: u64,
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    rmp: Rmp,
    engine: Option<XexCipher>,
    generation: SevGeneration,
}

impl std::fmt::Debug for GuestMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestMemory")
            .field("size", &self.size)
            .field("generation", &self.generation.name())
            .field("resident_pages", &self.pages.len())
            .field("assigned_pages", &self.rmp.assigned_count())
            .finish()
    }
}

/// Who is performing an access (used internally to pick enforcement rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Actor {
    Host,
    Guest,
}

impl GuestMemory {
    /// Creates unencrypted guest memory (a stock microVM).
    pub fn new_plain(size: u64) -> Self {
        GuestMemory {
            size,
            pages: BTreeMap::new(),
            rmp: Rmp::new(),
            engine: None,
            generation: SevGeneration::None,
        }
    }

    /// Creates SEV guest memory with the given memory-encryption key.
    ///
    /// # Panics
    ///
    /// Panics if `generation` is [`SevGeneration::None`] (use
    /// [`GuestMemory::new_plain`]).
    pub fn new_sev(size: u64, key: [u8; 16], generation: SevGeneration) -> Self {
        assert!(generation.is_sev(), "use new_plain for non-SEV guests");
        GuestMemory {
            size,
            pages: BTreeMap::new(),
            rmp: Rmp::new(),
            engine: Some(XexCipher::new(&key)),
            generation,
        }
    }

    /// Guest memory size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The SEV generation this memory was created with.
    pub fn generation(&self) -> SevGeneration {
        self.generation
    }

    /// Read-only view of the RMP (reports, assertions in tests).
    pub fn rmp(&self) -> &Rmp {
        &self.rmp
    }

    /// Number of pages that have been materialized (touched).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Guest-physical addresses of the materialized pages, in order
    /// (untouched pages have no backing and read as zeros).
    pub fn resident_page_addrs(&self) -> Vec<u64> {
        self.pages.keys().map(|p| p * PAGE_SIZE).collect()
    }

    fn check_range(&self, addr: u64, len: u64) -> Result<(), MemError> {
        if addr.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(MemError::OutOfRange {
                addr,
                len,
                size: self.size,
            });
        }
        Ok(())
    }

    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    fn page_plain(&self, page: u64) -> [u8; PAGE_SIZE as usize] {
        self.pages
            .get(&page)
            .map(|p| **p)
            .unwrap_or([0u8; PAGE_SIZE as usize])
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// True if the page is private (guest-owned / encrypted).
    fn is_private(&self, page: u64) -> bool {
        self.rmp.state(page).assigned
    }

    /// True if the page containing `addr` is already validated (used by the
    /// boot verifier's sweep to skip pages the launch firmware validated).
    pub fn is_validated(&self, addr: u64) -> bool {
        self.rmp.state(Self::page_of(addr)).validated
    }

    /// True if the page containing `addr` is assigned to the guest.
    pub fn is_assigned(&self, addr: u64) -> bool {
        self.rmp.state(Self::page_of(addr)).assigned
    }

    // ---- Host-side operations ------------------------------------------------

    /// Host (VMM) write to guest memory.
    ///
    /// # Errors
    ///
    /// * [`MemError::OutOfRange`] outside guest memory.
    /// * [`MemError::HostWriteDenied`] when a touched page is guest-owned
    ///   under SEV-SNP (the RMP check).
    ///
    /// Under SEV/SEV-ES the write *succeeds* on private pages and corrupts
    /// the guest's plaintext (the written bytes land as ciphertext).
    pub fn host_write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        self.check_range(addr, data.len() as u64)?;
        // SNP: deny if any touched page is guest-owned.
        if self.generation.has_rmp() {
            let first = Self::page_of(addr);
            let last = Self::page_of(addr + data.len().max(1) as u64 - 1);
            for page in first..=last {
                if self.is_private(page) {
                    return Err(MemError::HostWriteDenied {
                        page_addr: page * PAGE_SIZE,
                    });
                }
            }
        }
        let mut offset = 0usize;
        while offset < data.len() {
            let cur = addr + offset as u64;
            let page = Self::page_of(cur);
            let in_page = (cur % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(data.len() - offset);
            if self.is_private(page) && self.engine.is_some() {
                // SEV without RMP: the host's bytes become ciphertext; the
                // guest will observe their decryption. Compute the new
                // plaintext so every later observer sees consistent bytes.
                let engine = self.engine.as_ref().expect("checked").clone();
                let page_addr = page * PAGE_SIZE;
                let plain = self.page_plain(page);
                let mut cipher_view = engine.encrypt(page_addr, &plain);
                cipher_view[in_page..in_page + take].copy_from_slice(&data[offset..offset + take]);
                let new_plain = engine.decrypt(page_addr, &cipher_view);
                self.page_mut(page).copy_from_slice(&new_plain);
            } else {
                self.page_mut(page)[in_page..in_page + take]
                    .copy_from_slice(&data[offset..offset + take]);
            }
            offset += take;
        }
        Ok(())
    }

    /// Host (VMM) read of guest memory: private pages come back as
    /// ciphertext, shared pages as stored.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] outside guest memory.
    pub fn host_read(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemError> {
        self.check_range(addr, len)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let page = Self::page_of(cur);
            let in_page = (cur % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min((end - cur) as usize);
            let plain = self.page_plain(page);
            if self.is_private(page) {
                let engine = self.engine.as_ref().expect("private page implies SEV");
                let cipher = engine.encrypt(page * PAGE_SIZE, &plain);
                out.extend_from_slice(&cipher[in_page..in_page + take]);
            } else {
                out.extend_from_slice(&plain[in_page..in_page + take]);
            }
            cur += take as u64;
        }
        Ok(out)
    }

    // ---- Hypervisor RMP operations --------------------------------------------

    /// Hypervisor `RMPUPDATE`: assigns `[addr, addr+len)` (page aligned) to
    /// the guest as private memory.
    ///
    /// # Errors
    ///
    /// [`MemError::Unaligned`] / [`MemError::OutOfRange`] on bad ranges.
    pub fn rmp_assign(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        if !addr.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned { addr });
        }
        self.check_range(addr, len)?;
        for page in Self::page_of(addr)..Self::page_of(addr + len) {
            self.rmp.assign(page);
        }
        Ok(())
    }

    /// Hypervisor changes the mapping of a validated private page (the
    /// attack/remap scenario): hardware clears the valid bit.
    ///
    /// # Errors
    ///
    /// [`MemError::Unaligned`] / [`MemError::OutOfRange`] on bad addresses.
    pub fn remap_by_host(&mut self, addr: u64) -> Result<(), MemError> {
        if !addr.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned { addr });
        }
        self.check_range(addr, PAGE_SIZE)?;
        self.rmp.remap_by_host(Self::page_of(addr));
        Ok(())
    }

    // ---- Guest-side operations --------------------------------------------------

    /// Guest `pvalidate` over `[addr, addr+len)` (page aligned). Returns the
    /// number of pages validated.
    ///
    /// # Errors
    ///
    /// * [`MemError::PvalidateUnsupported`] unless the guest is SEV-SNP.
    /// * [`MemError::NotAssigned`] if the hypervisor has not assigned a page.
    /// * [`MemError::AlreadyValidated`] on double validation.
    pub fn pvalidate(&mut self, addr: u64, len: u64) -> Result<u64, MemError> {
        if !self.generation.has_rmp() {
            return Err(MemError::PvalidateUnsupported);
        }
        if !addr.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned { addr });
        }
        self.check_range(addr, len)?;
        let mut count = 0;
        for page in Self::page_of(addr)..Self::page_of(addr + len) {
            if !self.rmp.state(page).assigned {
                return Err(MemError::NotAssigned {
                    page_addr: page * PAGE_SIZE,
                });
            }
            if self.rmp.validate(page) {
                return Err(MemError::AlreadyValidated {
                    page_addr: page * PAGE_SIZE,
                });
            }
            count += 1;
        }
        Ok(count)
    }

    fn guest_check(&self, addr: u64, len: u64, encrypted: bool) -> Result<(), MemError> {
        self.check_range(addr, len)?;
        if !encrypted {
            return Ok(());
        }
        if self.engine.is_none() {
            return Err(MemError::EncryptionUnavailable);
        }
        if self.generation.has_rmp() {
            let first = Self::page_of(addr);
            let last = Self::page_of(addr + len.max(1) - 1);
            for page in first..=last {
                let state = self.rmp.state(page);
                if !state.validated {
                    return Err(MemError::VcException {
                        page_addr: page * PAGE_SIZE,
                        reason: if state.remapped {
                            VcReason::RemappedByHost
                        } else {
                            VcReason::NotValidated
                        },
                    });
                }
            }
        }
        Ok(())
    }

    /// Guest write; `encrypted` selects a C-bit (private) mapping.
    ///
    /// # Errors
    ///
    /// * [`MemError::OutOfRange`] outside guest memory.
    /// * [`MemError::EncryptionUnavailable`] for an encrypted access on a
    ///   non-SEV guest.
    /// * [`MemError::VcException`] for a private access to an unvalidated or
    ///   remapped page under SNP.
    pub fn guest_write(&mut self, addr: u64, data: &[u8], encrypted: bool) -> Result<(), MemError> {
        self.guest_check(addr, data.len() as u64, encrypted)?;
        self.raw_write(
            addr,
            data,
            if encrypted { Actor::Guest } else { Actor::Host },
        );
        Ok(())
    }

    /// Guest read; `encrypted` selects a C-bit (private) mapping.
    ///
    /// Reading a *private* page through a *shared* mapping (`encrypted =
    /// false`) yields ciphertext, exactly as on hardware.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GuestMemory::guest_write`].
    pub fn guest_read(&self, addr: u64, len: u64, encrypted: bool) -> Result<Vec<u8>, MemError> {
        self.guest_check(addr, len, encrypted)?;
        if encrypted {
            // Private mapping: plaintext view.
            let mut out = Vec::with_capacity(len as usize);
            let mut cur = addr;
            let end = addr + len;
            while cur < end {
                let page = Self::page_of(cur);
                let in_page = (cur % PAGE_SIZE) as usize;
                let take = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min((end - cur) as usize);
                let plain = self.page_plain(page);
                out.extend_from_slice(&plain[in_page..in_page + take]);
                cur += take as u64;
            }
            Ok(out)
        } else {
            // Shared mapping behaves like the host view (ciphertext for
            // private pages).
            self.host_read(addr, len)
        }
    }

    /// Raw write used by guest paths; `actor` Guest = plaintext into the
    /// private view, Host = raw bytes into the shared view.
    fn raw_write(&mut self, addr: u64, data: &[u8], actor: Actor) {
        let _ = actor; // both store into the plaintext representation
        let mut offset = 0usize;
        while offset < data.len() {
            let cur = addr + offset as u64;
            let page = Self::page_of(cur);
            let in_page = (cur % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(data.len() - offset);
            self.page_mut(page)[in_page..in_page + take]
                .copy_from_slice(&data[offset..offset + take]);
            offset += take;
        }
    }

    // ---- Snapshot support (warm-start exploration, paper §7.1) -------------------

    /// Captures the resident pages and RMP state as a [`MemoryImage`].
    pub fn clone_pages(&self) -> MemoryImage {
        MemoryImage {
            pages: self.pages.clone(),
            rmp: self.rmp.clone(),
        }
    }

    /// Replaces this guest's pages and RMP state with a captured image
    /// (valid only under the same memory-encryption key — i.e. within the
    /// same PSP launch context). Returns the number of bytes installed.
    pub fn restore_pages(&mut self, image: &MemoryImage) -> u64 {
        self.pages = image.pages.clone();
        self.rmp = image.rmp.clone();
        image.byte_len()
    }

    // ---- PSP-side operation -----------------------------------------------------

    /// The memory half of `LAUNCH_UPDATE_DATA`: returns the plaintext of the
    /// (page-aligned) region for the PSP to measure, marks the pages
    /// private, and (as SNP firmware does for launch pages) pre-validates
    /// them.
    ///
    /// # Errors
    ///
    /// [`MemError::Unaligned`] / [`MemError::OutOfRange`] on bad ranges, and
    /// [`MemError::EncryptionUnavailable`] for non-SEV guests.
    pub fn pre_encrypt(&mut self, addr: u64, len: u64) -> Result<Vec<u8>, MemError> {
        if self.engine.is_none() {
            return Err(MemError::EncryptionUnavailable);
        }
        if !addr.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned { addr });
        }
        let padded = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.check_range(addr, padded)?;
        let plaintext = {
            let mut out = Vec::with_capacity(padded as usize);
            for page in Self::page_of(addr)..Self::page_of(addr + padded) {
                out.extend_from_slice(&self.page_plain(page));
            }
            out
        };
        for page in Self::page_of(addr)..Self::page_of(addr + padded) {
            self.rmp.assign(page);
            self.rmp.validate(page);
        }
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn snp_mem() -> GuestMemory {
        GuestMemory::new_sev(4 * MB, [9u8; 16], SevGeneration::SevSnp)
    }

    #[test]
    fn plain_memory_roundtrips() {
        let mut mem = GuestMemory::new_plain(MB);
        mem.host_write(100, b"hello").unwrap();
        assert_eq!(mem.host_read(100, 5).unwrap(), b"hello");
        assert_eq!(mem.guest_read(100, 5, false).unwrap(), b"hello");
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = GuestMemory::new_plain(MB);
        assert_eq!(mem.host_read(4000, 200).unwrap(), vec![0u8; 200]);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mem = GuestMemory::new_plain(MB);
        assert!(matches!(
            mem.host_read(MB - 1, 2),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn snp_blocks_host_writes_to_private_pages() {
        let mut mem = snp_mem();
        mem.rmp_assign(0, PAGE_SIZE).unwrap();
        assert!(matches!(
            mem.host_write(10, b"evil"),
            Err(MemError::HostWriteDenied { .. })
        ));
        // Shared pages still writable.
        mem.host_write(PAGE_SIZE, b"fine").unwrap();
    }

    #[test]
    fn guest_private_access_requires_pvalidate() {
        let mut mem = snp_mem();
        mem.rmp_assign(0, PAGE_SIZE).unwrap();
        assert!(matches!(
            mem.guest_write(0, b"x", true),
            Err(MemError::VcException { .. })
        ));
        mem.pvalidate(0, PAGE_SIZE).unwrap();
        mem.guest_write(0, b"x", true).unwrap();
        assert_eq!(mem.guest_read(0, 1, true).unwrap(), b"x");
    }

    #[test]
    fn host_sees_ciphertext_of_private_pages() {
        let mut mem = snp_mem();
        mem.rmp_assign(0, PAGE_SIZE).unwrap();
        mem.pvalidate(0, PAGE_SIZE).unwrap();
        mem.guest_write(0, b"confidential kernel", true).unwrap();
        let host_view = mem.host_read(0, 19).unwrap();
        assert_ne!(host_view, b"confidential kernel");
        // Shared-mapping guest read sees the same ciphertext.
        assert_eq!(mem.guest_read(0, 19, false).unwrap(), host_view);
    }

    #[test]
    fn identical_plaintext_differs_across_pages() {
        let mut mem = snp_mem();
        mem.rmp_assign(0, 2 * PAGE_SIZE).unwrap();
        mem.pvalidate(0, 2 * PAGE_SIZE).unwrap();
        mem.guest_write(0, &[0x41; 64], true).unwrap();
        mem.guest_write(PAGE_SIZE, &[0x41; 64], true).unwrap();
        let a = mem.host_read(0, 64).unwrap();
        let b = mem.host_read(PAGE_SIZE, 64).unwrap();
        assert_ne!(a, b, "XEX address tweak must separate pages");
    }

    #[test]
    fn remap_raises_vc_on_next_access() {
        let mut mem = snp_mem();
        mem.rmp_assign(0, PAGE_SIZE).unwrap();
        mem.pvalidate(0, PAGE_SIZE).unwrap();
        mem.guest_write(0, b"data", true).unwrap();
        mem.remap_by_host(0).unwrap();
        match mem.guest_read(0, 4, true) {
            Err(MemError::VcException { reason, .. }) => {
                assert_eq!(reason, VcReason::RemappedByHost);
            }
            other => panic!("expected #VC, got {other:?}"),
        }
    }

    #[test]
    fn double_pvalidate_detected() {
        let mut mem = snp_mem();
        mem.rmp_assign(0, PAGE_SIZE).unwrap();
        mem.pvalidate(0, PAGE_SIZE).unwrap();
        assert!(matches!(
            mem.pvalidate(0, PAGE_SIZE),
            Err(MemError::AlreadyValidated { .. })
        ));
    }

    #[test]
    fn pvalidate_requires_assignment_and_snp() {
        let mut mem = snp_mem();
        assert!(matches!(
            mem.pvalidate(0, PAGE_SIZE),
            Err(MemError::NotAssigned { .. })
        ));
        let mut sev = GuestMemory::new_sev(MB, [1u8; 16], SevGeneration::Sev);
        assert_eq!(
            sev.pvalidate(0, PAGE_SIZE),
            Err(MemError::PvalidateUnsupported)
        );
    }

    #[test]
    fn plain_sev_lets_host_corrupt_private_memory() {
        // The integrity gap SNP closes: under base SEV the host CAN write.
        let mut mem = GuestMemory::new_sev(MB, [1u8; 16], SevGeneration::Sev);
        mem.pre_encrypt(0, PAGE_SIZE).unwrap();
        mem.guest_write(0, b"guest data", true).unwrap();
        mem.host_write(0, b"overwrite!").unwrap();
        let seen = mem.guest_read(0, 10, true).unwrap();
        assert_ne!(seen, b"guest data", "write must land");
        assert_ne!(seen, b"overwrite!", "but be scrambled by decryption");
    }

    #[test]
    fn pre_encrypt_returns_plaintext_and_privatizes() {
        let mut mem = snp_mem();
        mem.host_write(0, b"initial boot code").unwrap();
        let measured = mem.pre_encrypt(0, PAGE_SIZE).unwrap();
        assert_eq!(&measured[..17], b"initial boot code");
        assert_eq!(measured.len(), PAGE_SIZE as usize);
        // Now private: host read is ciphertext, guest private read works.
        assert_ne!(&mem.host_read(0, 17).unwrap(), b"initial boot code");
        assert_eq!(mem.guest_read(0, 17, true).unwrap(), b"initial boot code");
    }

    #[test]
    fn encrypted_access_without_sev_fails() {
        let mut mem = GuestMemory::new_plain(MB);
        assert_eq!(
            mem.guest_write(0, b"x", true),
            Err(MemError::EncryptionUnavailable)
        );
    }

    #[test]
    fn cross_page_writes_and_reads() {
        let mut mem = snp_mem();
        mem.rmp_assign(0, 3 * PAGE_SIZE).unwrap();
        mem.pvalidate(0, 3 * PAGE_SIZE).unwrap();
        let data: Vec<u8> = (0..(2 * PAGE_SIZE + 100) as usize)
            .map(|i| (i % 251) as u8)
            .collect();
        mem.guest_write(PAGE_SIZE / 2, &data, true).unwrap();
        assert_eq!(
            mem.guest_read(PAGE_SIZE / 2, data.len() as u64, true)
                .unwrap(),
            data
        );
    }

    #[test]
    fn unaligned_rmp_ops_rejected() {
        let mut mem = snp_mem();
        assert!(matches!(
            mem.rmp_assign(10, PAGE_SIZE),
            Err(MemError::Unaligned { .. })
        ));
        assert!(matches!(
            mem.remap_by_host(10),
            Err(MemError::Unaligned { .. })
        ));
        assert!(matches!(
            mem.pvalidate(10, PAGE_SIZE),
            Err(MemError::PvalidateUnsupported | MemError::Unaligned { .. })
        ));
    }
}
