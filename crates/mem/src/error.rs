//! Memory access errors and fault conditions.

use std::fmt;

/// Faults raised by the simulated memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access beyond the end of guest memory.
    OutOfRange {
        /// Requested guest-physical address.
        addr: u64,
        /// Requested length.
        len: u64,
        /// Size of guest memory.
        size: u64,
    },
    /// The host attempted to write a guest-owned page under SEV-SNP
    /// (RMP check failed).
    HostWriteDenied {
        /// Guest-physical address of the offending page.
        page_addr: u64,
    },
    /// A guest private access touched a page whose RMP entry is not valid —
    /// the VMM Communication Exception (#VC) of §2.2.
    VcException {
        /// Guest-physical address of the faulting page.
        page_addr: u64,
        /// Why the access faulted.
        reason: VcReason,
    },
    /// `pvalidate` on a page that is already validated (double validation).
    AlreadyValidated {
        /// Guest-physical address of the page.
        page_addr: u64,
    },
    /// `pvalidate` on a page the hypervisor has not assigned to this guest.
    NotAssigned {
        /// Guest-physical address of the page.
        page_addr: u64,
    },
    /// An encrypted access was requested but the guest has no memory
    /// encryption key (non-SEV guest).
    EncryptionUnavailable,
    /// `pvalidate` executed on a non-SNP guest (the instruction does not
    /// exist there).
    PvalidateUnsupported,
    /// Misaligned page-granularity operation.
    Unaligned {
        /// The misaligned address.
        addr: u64,
    },
}

/// Why a #VC was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcReason {
    /// The page was never validated with `pvalidate`.
    NotValidated,
    /// The hypervisor changed the page's mapping after validation.
    RemappedByHost,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len, size } => write!(
                f,
                "access [{addr:#x}, {:#x}) outside guest memory of {size:#x} bytes",
                addr + len
            ),
            MemError::HostWriteDenied { page_addr } => {
                write!(
                    f,
                    "RMP denied host write to guest-owned page {page_addr:#x}"
                )
            }
            MemError::VcException { page_addr, reason } => write!(
                f,
                "#VC at page {page_addr:#x}: {}",
                match reason {
                    VcReason::NotValidated => "page not validated",
                    VcReason::RemappedByHost => "mapping changed by hypervisor",
                }
            ),
            MemError::AlreadyValidated { page_addr } => {
                write!(f, "pvalidate: page {page_addr:#x} already validated")
            }
            MemError::NotAssigned { page_addr } => {
                write!(f, "pvalidate: page {page_addr:#x} not assigned to guest")
            }
            MemError::EncryptionUnavailable => {
                write!(f, "encrypted access on a guest without SEV")
            }
            MemError::PvalidateUnsupported => {
                write!(f, "pvalidate is only available to SEV-SNP guests")
            }
            MemError::Unaligned { addr } => write!(f, "address {addr:#x} not page aligned"),
        }
    }
}

impl std::error::Error for MemError {}
