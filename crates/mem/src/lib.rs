//! Simulated SEV-SNP guest physical memory.
//!
//! This crate is the stand-in for the hardware half of SEV (§2.2 of the
//! paper): the AES engine in the memory controller and the Reverse Map
//! Table (RMP) introduced by SEV-SNP. It enforces, in software, the rules
//! the paper's trust model depends on:
//!
//! * the **host** cannot write to guest-owned (private) pages under SNP —
//!   [`GuestMemory::host_write`] fails with [`MemError::HostWriteDenied`];
//! * the host reading private pages sees **ciphertext** (AES-128-XEX with a
//!   physical-address tweak), so identical plaintext at different addresses
//!   has different ciphertext — the property behind KVM's page pinning
//!   (§6.2) and the dedup problem (§7.1);
//! * the **guest** must `pvalidate` a page before using it as private
//!   memory, and a host-initiated remap clears the valid bit so the next
//!   guest access takes a #VC ([`MemError::VcException`]);
//! * under plain SEV/SEV-ES there is no RMP: host writes to private memory
//!   *succeed* and silently corrupt guest data — exactly the integrity gap
//!   SNP closes.
//!
//! ## Representation note
//!
//! DRAM content for private pages is stored as *plaintext* internally; the
//! ciphertext view is produced on demand whenever the host touches a private
//! page (and host writes under SEV store the *decryption* of the written
//! bytes). This is observationally equivalent to storing ciphertext — every
//! actor sees exactly the bytes it would see on hardware — but keeps the
//! guest's own hot path (copy/hash during measured direct boot) at memcpy
//! speed so large experiments stay fast.
//!
//! # Example
//!
//! ```
//! use sevf_mem::{GuestMemory, MemError};
//! use sevf_sim::cost::SevGeneration;
//!
//! let mut mem = GuestMemory::new_sev(1 << 20, [7u8; 16], SevGeneration::SevSnp);
//! mem.rmp_assign(0, 4096)?;
//! mem.pvalidate(0, 4096)?;
//! mem.guest_write(0, b"secret", true)?;
//! // The host is denied, and sees only ciphertext.
//! assert!(matches!(mem.host_write(0, b"evil"), Err(MemError::HostWriteDenied { .. })));
//! assert_ne!(&mem.host_read(0, 6)?, b"secret");
//! # Ok::<(), MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod memory;
mod rmp;

pub use error::MemError;
pub use memory::{GuestMemory, MemoryImage, PAGE_SIZE};
pub use rmp::{PageState, Rmp};

/// The canonical C-bit position reported by CPUID leaf 0x8000001F on the
/// simulated platform (bit 51, as on real EPYC parts).
pub const C_BIT_POSITION: u32 = 51;
