//! The Reverse Map Table (RMP).
//!
//! SEV-SNP's system-wide structure tracking, for every physical page, whether
//! it is assigned to a guest and whether the guest has validated it with
//! `pvalidate` (§2.2). We keep one table per guest (cross-VM aliasing attacks
//! are out of the paper's scope) and store entries sparsely.

use std::collections::BTreeMap;

/// The SNP-relevant state of one 4 KiB page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageState {
    /// Page is assigned to the guest (private / guest-owned).
    pub assigned: bool,
    /// Guest has executed `pvalidate` on the page.
    pub validated: bool,
    /// The hypervisor changed the mapping after validation (next guest
    /// access must raise #VC).
    pub remapped: bool,
}

/// A sparse per-guest RMP: untracked pages are shared and unvalidated.
#[derive(Debug, Clone, Default)]
pub struct Rmp {
    entries: BTreeMap<u64, PageState>,
}

impl Rmp {
    /// Creates an empty table (all pages shared).
    pub fn new() -> Self {
        Self::default()
    }

    /// State of the page with index `page` (sparse default: shared).
    pub fn state(&self, page: u64) -> PageState {
        self.entries.get(&page).copied().unwrap_or_default()
    }

    /// Marks a page assigned to the guest (hypervisor `RMPUPDATE`).
    pub fn assign(&mut self, page: u64) {
        let entry = self.entries.entry(page).or_default();
        entry.assigned = true;
    }

    /// Returns a page to shared state, clearing validation.
    pub fn unassign(&mut self, page: u64) {
        let entry = self.entries.entry(page).or_default();
        *entry = PageState::default();
    }

    /// Sets the validated bit (guest `pvalidate`). Returns the previous
    /// validated state so callers can detect double validation.
    pub fn validate(&mut self, page: u64) -> bool {
        let entry = self.entries.entry(page).or_default();
        let was = entry.validated;
        entry.validated = true;
        entry.remapped = false;
        was
    }

    /// Simulates the hypervisor changing a validated page's mapping: the
    /// hardware clears the valid bit, and the next guest access takes #VC.
    pub fn remap_by_host(&mut self, page: u64) {
        let entry = self.entries.entry(page).or_default();
        if entry.validated {
            entry.validated = false;
            entry.remapped = true;
        }
    }

    /// Number of pages currently assigned.
    pub fn assigned_count(&self) -> usize {
        self.entries.values().filter(|e| e.assigned).count()
    }

    /// Number of pages currently validated.
    pub fn validated_count(&self) -> usize {
        self.entries.values().filter(|e| e.validated).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_shared() {
        let rmp = Rmp::new();
        let s = rmp.state(42);
        assert!(!s.assigned && !s.validated && !s.remapped);
    }

    #[test]
    fn assign_validate_flow() {
        let mut rmp = Rmp::new();
        rmp.assign(1);
        assert!(rmp.state(1).assigned);
        assert!(!rmp.validate(1), "first validation returns false");
        assert!(rmp.validate(1), "second validation returns true");
        assert_eq!(rmp.validated_count(), 1);
    }

    #[test]
    fn remap_clears_valid_bit() {
        let mut rmp = Rmp::new();
        rmp.assign(5);
        rmp.validate(5);
        rmp.remap_by_host(5);
        let s = rmp.state(5);
        assert!(!s.validated && s.remapped && s.assigned);
    }

    #[test]
    fn remap_of_unvalidated_page_is_noop() {
        let mut rmp = Rmp::new();
        rmp.assign(5);
        rmp.remap_by_host(5);
        assert!(!rmp.state(5).remapped);
    }

    #[test]
    fn unassign_resets_everything() {
        let mut rmp = Rmp::new();
        rmp.assign(9);
        rmp.validate(9);
        rmp.unassign(9);
        assert_eq!(rmp.state(9), PageState::default());
        assert_eq!(rmp.assigned_count(), 0);
    }

    #[test]
    fn revalidation_after_remap_clears_flag() {
        let mut rmp = Rmp::new();
        rmp.assign(2);
        rmp.validate(2);
        rmp.remap_by_host(2);
        rmp.validate(2);
        let s = rmp.state(2);
        assert!(s.validated && !s.remapped);
    }
}
