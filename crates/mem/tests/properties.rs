//! Property-based tests for the guest-memory model's invariants.

use proptest::prelude::*;
use sevf_mem::{GuestMemory, MemError, PAGE_SIZE};
use sevf_sim::cost::SevGeneration;

const MEM: u64 = 4 * 1024 * 1024;

fn snp() -> GuestMemory {
    GuestMemory::new_sev(MEM, [9u8; 16], SevGeneration::SevSnp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_memory_write_read_roundtrip(
        addr in 0u64..(MEM - 10_000),
        data in proptest::collection::vec(any::<u8>(), 1..10_000),
    ) {
        let mut mem = GuestMemory::new_plain(MEM);
        mem.host_write(addr, &data).unwrap();
        prop_assert_eq!(mem.host_read(addr, data.len() as u64).unwrap(), data.clone());
        prop_assert_eq!(mem.guest_read(addr, data.len() as u64, false).unwrap(), data);
    }

    #[test]
    fn private_data_never_plaintext_to_host(
        page in 0u64..(MEM / PAGE_SIZE - 2),
        data in proptest::collection::vec(any::<u8>(), 16..4096),
    ) {
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.rmp_assign(addr, 2 * PAGE_SIZE).unwrap();
        mem.pvalidate(addr, 2 * PAGE_SIZE).unwrap();
        mem.guest_write(addr, &data, true).unwrap();
        let host_view = mem.host_read(addr, data.len() as u64).unwrap();
        prop_assert_ne!(&host_view, &data, "host saw plaintext");
        // The guest always reads back exactly what it wrote.
        prop_assert_eq!(mem.guest_read(addr, data.len() as u64, true).unwrap(), data);
    }

    #[test]
    fn host_writes_to_private_pages_always_denied(
        page in 0u64..(MEM / PAGE_SIZE - 1),
        data in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.rmp_assign(addr, PAGE_SIZE).unwrap();
        let denied = matches!(
            mem.host_write(addr, &data),
            Err(MemError::HostWriteDenied { .. })
        );
        prop_assert!(denied);
    }

    #[test]
    fn unvalidated_private_access_always_faults(
        page in 0u64..(MEM / PAGE_SIZE - 1),
    ) {
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.rmp_assign(addr, PAGE_SIZE).unwrap();
        let write_faults = matches!(
            mem.guest_write(addr, b"x", true),
            Err(MemError::VcException { .. })
        );
        prop_assert!(write_faults);
        let read_faults = matches!(
            mem.guest_read(addr, 1, true),
            Err(MemError::VcException { .. })
        );
        prop_assert!(read_faults);
    }

    #[test]
    fn out_of_range_never_panics(
        addr in any::<u64>(),
        len in 0u64..100_000,
    ) {
        let mem = GuestMemory::new_plain(MEM);
        let _ = mem.host_read(addr, len);
        let _ = mem.guest_read(addr, len, false);
    }

    #[test]
    fn rmp_counts_match_operations(
        pages in proptest::collection::btree_set(0u64..64, 1..32),
    ) {
        let mut mem = snp();
        for &p in &pages {
            mem.rmp_assign(p * PAGE_SIZE, PAGE_SIZE).unwrap();
        }
        prop_assert_eq!(mem.rmp().assigned_count(), pages.len());
        for &p in &pages {
            mem.pvalidate(p * PAGE_SIZE, PAGE_SIZE).unwrap();
        }
        prop_assert_eq!(mem.rmp().validated_count(), pages.len());
        // Double validation is always detected.
        for &p in &pages {
            let double = matches!(
                mem.pvalidate(p * PAGE_SIZE, PAGE_SIZE),
                Err(MemError::AlreadyValidated { .. })
            );
            prop_assert!(double);
        }
    }

    #[test]
    fn pre_encrypt_returns_exactly_what_host_staged(
        page in 1u64..(MEM / PAGE_SIZE - 2),
        data in proptest::collection::vec(any::<u8>(), 1..4096),
    ) {
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.host_write(addr, &data).unwrap();
        let measured = mem.pre_encrypt(addr, data.len() as u64).unwrap();
        prop_assert_eq!(&measured[..data.len()], &data[..]);
        // Padding is zeros.
        prop_assert!(measured[data.len()..].iter().all(|&b| b == 0));
        // And the region is now private + validated.
        prop_assert!(mem.is_assigned(addr));
        prop_assert!(mem.is_validated(addr));
    }

    #[test]
    fn sev_host_corruption_scrambles_but_lands(
        data in proptest::collection::vec(any::<u8>(), 32..256),
        overwrite in proptest::collection::vec(any::<u8>(), 32..64),
    ) {
        // Base SEV: host writes succeed and corrupt (integrity gap).
        let mut mem = GuestMemory::new_sev(MEM, [1u8; 16], SevGeneration::Sev);
        mem.pre_encrypt(0, PAGE_SIZE).unwrap();
        mem.guest_write(0, &data, true).unwrap();
        mem.host_write(0, &overwrite).unwrap();
        let seen = mem.guest_read(0, overwrite.len() as u64, true).unwrap();
        prop_assert_ne!(&seen, &overwrite, "host bytes must be scrambled by decryption");
    }
}
