//! Property-based tests for the guest-memory model's invariants.
//!
//! Seeded XorShift64 case generation keeps the sweep deterministic without
//! an external property-testing dependency.

use sevf_mem::{GuestMemory, MemError, PAGE_SIZE};
use sevf_sim::cost::SevGeneration;
use sevf_sim::rng::XorShift64;

const MEM: u64 = 4 * 1024 * 1024;
const CASES: u64 = 64;

fn snp() -> GuestMemory {
    GuestMemory::new_sev(MEM, [9u8; 16], SevGeneration::SevSnp)
}

fn bytes(rng: &mut XorShift64, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len as u64 + rng.next_below((max_len - min_len) as u64 + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn plain_memory_write_read_roundtrip() {
    let mut rng = XorShift64::new(0x3E3_0001);
    for _ in 0..CASES {
        let addr = rng.next_below(MEM - 10_000);
        let data = bytes(&mut rng, 1, 9_999);
        let mut mem = GuestMemory::new_plain(MEM);
        mem.host_write(addr, &data).unwrap();
        assert_eq!(mem.host_read(addr, data.len() as u64).unwrap(), data);
        assert_eq!(
            mem.guest_read(addr, data.len() as u64, false).unwrap(),
            data
        );
    }
}

#[test]
fn private_data_never_plaintext_to_host() {
    let mut rng = XorShift64::new(0x3E3_0002);
    for _ in 0..CASES {
        let page = rng.next_below(MEM / PAGE_SIZE - 2);
        let data = bytes(&mut rng, 16, 4095);
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.rmp_assign(addr, 2 * PAGE_SIZE).unwrap();
        mem.pvalidate(addr, 2 * PAGE_SIZE).unwrap();
        mem.guest_write(addr, &data, true).unwrap();
        let host_view = mem.host_read(addr, data.len() as u64).unwrap();
        assert_ne!(&host_view, &data, "host saw plaintext");
        // The guest always reads back exactly what it wrote.
        assert_eq!(mem.guest_read(addr, data.len() as u64, true).unwrap(), data);
    }
}

#[test]
fn host_writes_to_private_pages_always_denied() {
    let mut rng = XorShift64::new(0x3E3_0003);
    for _ in 0..CASES {
        let page = rng.next_below(MEM / PAGE_SIZE - 1);
        let data = bytes(&mut rng, 1, 255);
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.rmp_assign(addr, PAGE_SIZE).unwrap();
        let denied = matches!(
            mem.host_write(addr, &data),
            Err(MemError::HostWriteDenied { .. })
        );
        assert!(denied);
    }
}

#[test]
fn unvalidated_private_access_always_faults() {
    let mut rng = XorShift64::new(0x3E3_0004);
    for _ in 0..CASES {
        let page = rng.next_below(MEM / PAGE_SIZE - 1);
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.rmp_assign(addr, PAGE_SIZE).unwrap();
        let write_faults = matches!(
            mem.guest_write(addr, b"x", true),
            Err(MemError::VcException { .. })
        );
        assert!(write_faults);
        let read_faults = matches!(
            mem.guest_read(addr, 1, true),
            Err(MemError::VcException { .. })
        );
        assert!(read_faults);
    }
}

#[test]
fn out_of_range_never_panics() {
    let mut rng = XorShift64::new(0x3E3_0005);
    for _ in 0..CASES {
        let addr = rng.next_u64();
        let len = rng.next_below(100_000);
        let mem = GuestMemory::new_plain(MEM);
        let _ = mem.host_read(addr, len);
        let _ = mem.guest_read(addr, len, false);
    }
}

#[test]
fn rmp_counts_match_operations() {
    let mut rng = XorShift64::new(0x3E3_0006);
    for _ in 0..CASES {
        let pages: std::collections::BTreeSet<u64> = (0..1 + rng.next_below(31))
            .map(|_| rng.next_below(64))
            .collect();
        let mut mem = snp();
        for &p in &pages {
            mem.rmp_assign(p * PAGE_SIZE, PAGE_SIZE).unwrap();
        }
        assert_eq!(mem.rmp().assigned_count(), pages.len());
        for &p in &pages {
            mem.pvalidate(p * PAGE_SIZE, PAGE_SIZE).unwrap();
        }
        assert_eq!(mem.rmp().validated_count(), pages.len());
        // Double validation is always detected.
        for &p in &pages {
            let double = matches!(
                mem.pvalidate(p * PAGE_SIZE, PAGE_SIZE),
                Err(MemError::AlreadyValidated { .. })
            );
            assert!(double);
        }
    }
}

#[test]
fn pre_encrypt_returns_exactly_what_host_staged() {
    let mut rng = XorShift64::new(0x3E3_0007);
    for _ in 0..CASES {
        let page = 1 + rng.next_below(MEM / PAGE_SIZE - 3);
        let data = bytes(&mut rng, 1, 4095);
        let mut mem = snp();
        let addr = page * PAGE_SIZE;
        mem.host_write(addr, &data).unwrap();
        let measured = mem.pre_encrypt(addr, data.len() as u64).unwrap();
        assert_eq!(&measured[..data.len()], &data[..]);
        // Padding is zeros.
        assert!(measured[data.len()..].iter().all(|&b| b == 0));
        // And the region is now private + validated.
        assert!(mem.is_assigned(addr));
        assert!(mem.is_validated(addr));
    }
}

#[test]
fn sev_host_corruption_scrambles_but_lands() {
    let mut rng = XorShift64::new(0x3E3_0008);
    for _ in 0..CASES {
        // Base SEV: host writes succeed and corrupt (integrity gap).
        let data = bytes(&mut rng, 32, 255);
        let overwrite = bytes(&mut rng, 32, 63);
        let mut mem = GuestMemory::new_sev(MEM, [1u8; 16], SevGeneration::Sev);
        mem.pre_encrypt(0, PAGE_SIZE).unwrap();
        mem.guest_write(0, &data, true).unwrap();
        mem.host_write(0, &overwrite).unwrap();
        let seen = mem.guest_read(0, overwrite.len() as u64, true).unwrap();
        assert_ne!(
            &seen, &overwrite,
            "host bytes must be scrambled by decryption"
        );
    }
}
