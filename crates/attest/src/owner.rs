//! The guest owner's attestation service and the guest-side client.
//!
//! Models the nginx validation server of §6.1 and the attestation logic the
//! initrd runs: the guest generates an ephemeral key pair **in encrypted
//! memory** (§2.6: keys are never present in the plain-text initrd), embeds
//! its public key and a nonce in `report_data`, and the owner — after
//! validating the signature and launch digest — wraps secrets to that key.

use std::collections::HashSet;

use sevf_crypto::{DhKeyPair, DhPublicKey};
use sevf_psp::{AmdRootRegistry, AttestationReport};
use sevf_sim::cost::SevGeneration;

use crate::wire::WrappedSecret;

/// Why the guest owner rejected a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// Signature invalid or chip unknown to the AMD root.
    BadSignature,
    /// The launch digest is not one the owner expects — tampered verifier
    /// or tampered pre-encrypted contents (§2.6, attacks 2 and 3).
    UnexpectedMeasurement {
        /// The digest the report carried.
        got: [u8; 48],
    },
    /// Policy violation (wrong SEV generation or debug allowed).
    PolicyViolation(&'static str),
    /// The wrapped secret failed authentication on the guest side.
    ChannelTampered,
}

impl std::fmt::Display for AttestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestError::BadSignature => write!(f, "report signature invalid or chip unknown"),
            AttestError::UnexpectedMeasurement { .. } => {
                write!(f, "launch measurement does not match any expected digest")
            }
            AttestError::PolicyViolation(w) => write!(f, "policy violation: {w}"),
            AttestError::ChannelTampered => write!(f, "wrapped secret failed authentication"),
        }
    }
}

impl std::error::Error for AttestError {}

/// The guest owner: validates reports and provisions secrets.
#[derive(Debug)]
pub struct GuestOwner {
    registry: AmdRootRegistry,
    expected: HashSet<[u8; 48]>,
    keypair: DhKeyPair,
    secret: Vec<u8>,
    nonce_counter: u32,
    required_generation: SevGeneration,
}

impl GuestOwner {
    /// Creates an owner trusting the given AMD root view, expecting the
    /// given launch digests, and provisioning `secret` on success.
    pub fn new(registry: AmdRootRegistry, secret: Vec<u8>, owner_seed: &[u8]) -> Self {
        GuestOwner {
            registry,
            expected: HashSet::new(),
            keypair: DhKeyPair::from_seed(owner_seed),
            secret,
            nonce_counter: 0,
            required_generation: SevGeneration::SevSnp,
        }
    }

    /// Relaxes/changes the SEV generation the owner demands (the paper's
    /// threat model wants SNP; ablations compare older generations).
    pub fn set_required_generation(&mut self, generation: SevGeneration) {
        self.required_generation = generation;
    }

    /// Registers an acceptable launch digest (output of the
    /// expected-measurement tool).
    pub fn expect_measurement(&mut self, digest: [u8; 48]) {
        self.expected.insert(digest);
    }

    /// Validates a report and, on success, wraps the secret to the guest
    /// key embedded in `report_data`.
    ///
    /// # Errors
    ///
    /// [`AttestError::BadSignature`], [`AttestError::UnexpectedMeasurement`],
    /// or [`AttestError::PolicyViolation`].
    pub fn handle_report(
        &mut self,
        report: &AttestationReport,
    ) -> Result<WrappedSecret, AttestError> {
        if !self.registry.verify(report) {
            return Err(AttestError::BadSignature);
        }
        if report.policy.debug_allowed {
            return Err(AttestError::PolicyViolation(
                "debug access must be disabled",
            ));
        }
        if report.policy.generation != self.required_generation {
            return Err(AttestError::PolicyViolation(
                "report's SEV generation does not meet the owner's policy",
            ));
        }
        if !self.expected.contains(&report.measurement) {
            return Err(AttestError::UnexpectedMeasurement {
                got: report.measurement,
            });
        }
        // report_data = guest DH public key (32) ‖ nonce (32).
        let guest_public = DhPublicKey(
            report.report_data[..32]
                .try_into()
                .expect("report_data holds 64 bytes"),
        );
        let shared = self.keypair.shared_secret(&guest_public);
        self.nonce_counter += 1;
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&self.nonce_counter.to_le_bytes());
        nonce[4..8].copy_from_slice(&report.report_data[32..36]);
        Ok(WrappedSecret::seal(
            &shared,
            self.keypair.public_key(),
            nonce,
            &self.secret,
        ))
    }
}

/// The guest-side attestation client (the logic `/init` runs from the
/// initrd).
#[derive(Debug)]
pub struct GuestAttestClient {
    keypair: DhKeyPair,
    nonce: [u8; 32],
}

impl GuestAttestClient {
    /// Generates the ephemeral key pair — conceptually inside encrypted
    /// guest memory, at attestation time (§2.6).
    pub fn new(entropy: &[u8]) -> Self {
        let mut seed = b"guest-attest".to_vec();
        seed.extend_from_slice(entropy);
        let nonce = sevf_crypto::sha256(&seed);
        GuestAttestClient {
            keypair: DhKeyPair::from_seed(&seed),
            nonce,
        }
    }

    /// The 64 bytes to pass as `report_data` in `SNP_GUEST_REQUEST`.
    pub fn report_data(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.keypair.public_key().0);
        out[32..].copy_from_slice(&self.nonce);
        out
    }

    /// Unwraps the provisioned secret.
    ///
    /// # Errors
    ///
    /// [`AttestError::ChannelTampered`] if authentication fails.
    pub fn unwrap_secret(&self, wrapped: &WrappedSecret) -> Result<Vec<u8>, AttestError> {
        let shared = self.keypair.shared_secret(&wrapped.owner_public);
        wrapped.open(&shared).ok_or(AttestError::ChannelTampered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_mem::GuestMemory;
    use sevf_psp::Psp;
    use sevf_sim::CostModel;

    fn launched_guest() -> (Psp, sevf_psp::GuestHandle, [u8; 48]) {
        let mut psp = Psp::new(CostModel::calibrated(), 42);
        let start = psp.launch_start(SevGeneration::SevSnp).unwrap();
        let mut mem = GuestMemory::new_sev(1 << 22, start.memory_key, SevGeneration::SevSnp);
        mem.host_write(0x1000, b"the boot verifier binary").unwrap();
        psp.launch_update_data(start.guest, &mut mem, 0x1000, 4096)
            .unwrap();
        psp.launch_update_vmsa(start.guest, 1, &[0u8; 4096])
            .unwrap();
        let finish = psp.launch_finish(start.guest).unwrap();
        (psp, start.guest, finish.measurement)
    }

    fn owner_for(psp: &Psp, measurement: [u8; 48]) -> GuestOwner {
        let mut registry = AmdRootRegistry::new();
        registry.register(psp.chip().clone());
        let mut owner = GuestOwner::new(registry, b"disk encryption key".to_vec(), b"owner");
        owner.expect_measurement(measurement);
        owner
    }

    #[test]
    fn end_to_end_attestation_provisions_secret() {
        let (mut psp, guest, measurement) = launched_guest();
        let mut owner = owner_for(&psp, measurement);
        let client = GuestAttestClient::new(b"boot entropy");
        let (report, _) = psp.guest_report(guest, client.report_data()).unwrap();
        let wrapped = owner.handle_report(&report).unwrap();
        assert_eq!(
            client.unwrap_secret(&wrapped).unwrap(),
            b"disk encryption key"
        );
    }

    #[test]
    fn revoked_chip_reports_rejected() {
        // Key-compromise drill: the chip signed a perfectly valid report,
        // but its key has been distrusted at the root. The owner must
        // refuse the report (and by §6.2, every template derived under
        // that key dies with it).
        let (mut psp, guest, measurement) = launched_guest();
        let mut registry = AmdRootRegistry::new();
        registry.register(psp.chip().clone());
        registry.revoke(&psp.chip().chip_id);
        let mut owner = GuestOwner::new(registry, b"disk encryption key".to_vec(), b"owner");
        owner.expect_measurement(measurement);
        let client = GuestAttestClient::new(b"boot entropy");
        let (report, _) = psp.guest_report(guest, client.report_data()).unwrap();
        match owner.handle_report(&report) {
            Err(AttestError::BadSignature) => {}
            other => panic!("expected BadSignature for revoked chip, got {other:?}"),
        }
    }

    #[test]
    fn unexpected_measurement_rejected() {
        // Attack 2/3 of §2.6: the launch digest is valid and signed, but
        // does not match what the owner computed out of band.
        let (mut psp, guest, measurement) = launched_guest();
        let mut owner = owner_for(&psp, [0xAA; 48]); // expects something else
        let client = GuestAttestClient::new(b"boot entropy");
        let (report, _) = psp.guest_report(guest, client.report_data()).unwrap();
        match owner.handle_report(&report) {
            Err(AttestError::UnexpectedMeasurement { got }) => {
                assert_eq!(got, measurement);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn forged_report_rejected() {
        let (mut psp, guest, measurement) = launched_guest();
        let mut owner = owner_for(&psp, measurement);
        let client = GuestAttestClient::new(b"boot entropy");
        let (mut report, _) = psp.guest_report(guest, client.report_data()).unwrap();
        // Host edits the measurement to the expected one... but can't re-sign.
        report.measurement = measurement;
        report.report_data[0] ^= 1;
        assert_eq!(owner.handle_report(&report), Err(AttestError::BadSignature));
    }

    #[test]
    fn unknown_chip_rejected() {
        let (mut psp, guest, measurement) = launched_guest();
        let registry = AmdRootRegistry::new(); // empty: chip not registered
        let mut owner = GuestOwner::new(registry, b"s".to_vec(), b"owner");
        owner.expect_measurement(measurement);
        let client = GuestAttestClient::new(b"e");
        let (report, _) = psp.guest_report(guest, client.report_data()).unwrap();
        assert_eq!(owner.handle_report(&report), Err(AttestError::BadSignature));
    }

    #[test]
    fn tampered_channel_detected_by_guest() {
        let (mut psp, guest, measurement) = launched_guest();
        let mut owner = owner_for(&psp, measurement);
        let client = GuestAttestClient::new(b"boot entropy");
        let (report, _) = psp.guest_report(guest, client.report_data()).unwrap();
        let mut wrapped = owner.handle_report(&report).unwrap();
        wrapped.ciphertext[0] ^= 0xff;
        assert_eq!(
            client.unwrap_secret(&wrapped),
            Err(AttestError::ChannelTampered)
        );
    }

    #[test]
    fn nonces_differ_across_requests() {
        let (mut psp, guest, measurement) = launched_guest();
        let mut owner = owner_for(&psp, measurement);
        let client = GuestAttestClient::new(b"boot entropy");
        let (report, _) = psp.guest_report(guest, client.report_data()).unwrap();
        let a = owner.handle_report(&report).unwrap();
        let b = owner.handle_report(&report).unwrap();
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.ciphertext, b.ciphertext);
    }
}
