//! Remote attestation: the guest owner, the guest client, and the secret
//! channel.
//!
//! §2.4 of the paper, steps 5–8: after boot, the guest requests a signed
//! attestation report from the PSP, sends it to the guest owner, and — if
//! the launch digest matches what the owner expected — receives wrapped
//! secrets over the channel established by the report's embedded key.
//!
//! The three host attacks of §2.6 all terminate here or earlier:
//!
//! 1. swapped components → caught by the boot verifier (hash mismatch);
//! 2. host pre-encrypts hashes of malicious components → the launch digest
//!    covers the hash page, so [`GuestOwner::handle_report`] rejects it;
//! 3. host loads a verifier that skips checks → the verifier binary is in
//!    the launch digest, so the owner rejects that too.
//!
//! The [`expected`] module is the out-of-band tool of §4.2 that recomputes
//! the launch digest from the verifier binary, the generated boot
//! structures, and the kernel/initrd hashes — with pre-encryption split
//! across several components, the tool is what keeps the expected digest
//! computable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expected;
pub mod owner;
pub mod wire;

pub use expected::{expected_measurement, MeasuredItem};
pub use owner::{AttestError, GuestAttestClient, GuestOwner};
pub use wire::WrappedSecret;
