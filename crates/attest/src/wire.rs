//! Wire formats for the attestation channel.

use sevf_crypto::hmac::verify_tag;
use sevf_crypto::{hmac_sha256, AesCtr, DhPublicKey, DhSharedSecret};

/// A secret wrapped for the guest: AES-CTR ciphertext authenticated with
/// HMAC-SHA-256 (encrypt-then-MAC), plus the owner's DH public key so the
/// guest can derive the same session keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedSecret {
    /// The guest owner's ephemeral DH public key.
    pub owner_public: DhPublicKey,
    /// CTR nonce.
    pub nonce: [u8; 12],
    /// Encrypted secret.
    pub ciphertext: Vec<u8>,
    /// HMAC over nonce ‖ ciphertext under the MAC half of the session key.
    pub tag: [u8; 32],
}

impl WrappedSecret {
    /// Wraps `secret` under the session derived from `shared`.
    pub fn seal(
        shared: &DhSharedSecret,
        owner_public: DhPublicKey,
        nonce: [u8; 12],
        secret: &[u8],
    ) -> Self {
        let (enc_key, mac_key) = shared.derive_keys();
        let ciphertext = AesCtr::new(&enc_key, &nonce).apply(secret);
        let mut mac_input = nonce.to_vec();
        mac_input.extend_from_slice(&ciphertext);
        let tag = hmac_sha256(&mac_key, &mac_input);
        WrappedSecret {
            owner_public,
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Verifies the tag and unwraps the secret. Returns `None` if the tag
    /// does not authenticate (tampered channel).
    pub fn open(&self, shared: &DhSharedSecret) -> Option<Vec<u8>> {
        let (enc_key, mac_key) = shared.derive_keys();
        let mut mac_input = self.nonce.to_vec();
        mac_input.extend_from_slice(&self.ciphertext);
        let expected = hmac_sha256(&mac_key, &mac_input);
        if !verify_tag(&expected, &self.tag) {
            return None;
        }
        Some(AesCtr::new(&enc_key, &self.nonce).apply(&self.ciphertext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_crypto::DhKeyPair;

    fn session() -> (DhSharedSecret, DhPublicKey) {
        let owner = DhKeyPair::from_seed(b"owner");
        let guest = DhKeyPair::from_seed(b"guest");
        (owner.shared_secret(&guest.public_key()), owner.public_key())
    }

    #[test]
    fn seal_open_roundtrip() {
        let (shared, owner_pub) = session();
        let wrapped = WrappedSecret::seal(&shared, owner_pub, [1u8; 12], b"disk key");
        assert_eq!(wrapped.open(&shared).unwrap(), b"disk key");
    }

    #[test]
    fn ciphertext_hides_secret() {
        let (shared, owner_pub) = session();
        let wrapped = WrappedSecret::seal(&shared, owner_pub, [1u8; 12], b"disk key");
        assert_ne!(wrapped.ciphertext, b"disk key");
    }

    #[test]
    fn tamper_detected() {
        let (shared, owner_pub) = session();
        let mut wrapped = WrappedSecret::seal(&shared, owner_pub, [1u8; 12], b"disk key");
        wrapped.ciphertext[0] ^= 1;
        assert_eq!(wrapped.open(&shared), None);
    }

    #[test]
    fn wrong_session_fails() {
        let (shared, owner_pub) = session();
        let wrapped = WrappedSecret::seal(&shared, owner_pub, [1u8; 12], b"disk key");
        let other =
            DhKeyPair::from_seed(b"eve").shared_secret(&DhKeyPair::from_seed(b"x").public_key());
        assert_eq!(wrapped.open(&other), None);
    }
}
