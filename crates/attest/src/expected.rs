//! The expected-measurement tool (§4.2).
//!
//! "Pre-encrypting more than just a single binary blob adds complexity to
//! computing the expected launch measurement, but we remedy that by
//! including a tool with SEVeriFast to generate a digest of each
//! pre-encrypted component." Given the ordered list of regions the VMM will
//! pre-encrypt (verifier binary, mptable, boot_params, cmdline, hash page)
//! and the vCPU count, this recomputes exactly the digest the PSP will
//! chain, using the same [`sevf_psp::MeasurementChain`].

use sevf_psp::MeasurementChain;

/// One region the VMM pre-encrypts, in command order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredItem {
    /// Guest-physical address of the region (page aligned).
    pub gpa: u64,
    /// Region contents (zero-padded to whole pages by the chain, as
    /// `LAUNCH_UPDATE_DATA` does).
    pub data: Vec<u8>,
    /// Label for diagnostics ("boot verifier", "mptable", ...).
    pub label: &'static str,
}

/// Recomputes the launch digest for the given pre-encryption plan.
///
/// `vcpus > 0` adds the VMSA updates that SEV-ES/SNP launches include; pass
/// 0 for plain SEV.
///
/// # Example
///
/// ```
/// use sevf_attest::{expected_measurement, MeasuredItem};
///
/// let items = vec![MeasuredItem {
///     gpa: 0x10000,
///     data: vec![0xAB; 4096],
///     label: "boot verifier",
/// }];
/// let a = expected_measurement(&items, 1);
/// let b = expected_measurement(&items, 1);
/// assert_eq!(a, b);
/// ```
pub fn expected_measurement(items: &[MeasuredItem], vcpus: u64) -> [u8; 48] {
    let mut chain = MeasurementChain::new();
    for item in items {
        sevf_psp::measure_region(&mut chain, item.gpa, &item.data);
    }
    for vcpu in 0..vcpus {
        chain.add_vmsa(vcpu, &[0u8; 4096]);
    }
    chain.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(gpa: u64, fill: u8, len: usize) -> MeasuredItem {
        MeasuredItem {
            gpa,
            data: vec![fill; len],
            label: "test",
        }
    }

    #[test]
    fn order_and_content_sensitive() {
        let a = expected_measurement(&[item(0x1000, 1, 4096), item(0x2000, 2, 4096)], 1);
        let b = expected_measurement(&[item(0x2000, 2, 4096), item(0x1000, 1, 4096)], 1);
        assert_ne!(a, b);
        let c = expected_measurement(&[item(0x1000, 1, 4096), item(0x2000, 3, 4096)], 1);
        assert_ne!(a, c);
    }

    #[test]
    fn vcpu_count_included() {
        let items = [item(0x1000, 1, 4096)];
        assert_ne!(
            expected_measurement(&items, 1),
            expected_measurement(&items, 2)
        );
        assert_ne!(
            expected_measurement(&items, 1),
            expected_measurement(&items, 0)
        );
    }

    #[test]
    fn partial_pages_match_padded_pages() {
        // LAUNCH_UPDATE_DATA zero-pads partial pages; the tool must agree.
        let short = expected_measurement(&[item(0x1000, 7, 100)], 0);
        let mut padded_data = vec![7u8; 100];
        padded_data.resize(4096, 0);
        let padded = expected_measurement(
            &[MeasuredItem {
                gpa: 0x1000,
                data: padded_data,
                label: "padded",
            }],
            0,
        );
        assert_eq!(short, padded);
    }
}
