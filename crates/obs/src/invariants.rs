//! Structural invariants of an assembled [`TraceLog`].
//!
//! These are the checks the cross-layer test suite runs against real fleet
//! and cluster runs: every completed request has exactly one span tree
//! rooted at admission, children nest inside (in fact exactly tile) their
//! parents, spans on any capacity-1 resource never overlap (Fig. 12's
//! serialization claim, checked structurally), and per-request span
//! durations sum to the latency the metrics layer reports.
//!
//! Checks return `Err(String)` describing the first violation instead of
//! panicking, so test assertions print the story.

use sevf_sim::Nanos;

use crate::trace::{SpanKind, TraceLog};

/// `request` has exactly one root span, of kind [`SpanKind::Request`].
pub fn single_request_root(log: &TraceLog, request: usize) -> Result<(), String> {
    let roots: Vec<_> = log
        .spans
        .iter()
        .filter(|s| s.parent.is_none() && s.request == Some(request))
        .collect();
    match roots.as_slice() {
        [root] if root.kind == SpanKind::Request => Ok(()),
        [root] => Err(format!(
            "request {request}: root span {} has kind {:?}, not Request",
            root.id, root.kind
        )),
        [] => Err(format!("request {request}: no root span")),
        many => Err(format!("request {request}: {} root spans", many.len())),
    }
}

/// Every child span's interval nests inside its parent's.
pub fn spans_nest(log: &TraceLog) -> Result<(), String> {
    for span in &log.spans {
        if let Some(parent) = span.parent {
            let p = &log.spans[parent];
            if span.start < p.start || span.end > p.end {
                return Err(format!(
                    "span {} [{}, {}] escapes parent {} [{}, {}]",
                    span.id,
                    span.start.as_nanos(),
                    span.end.as_nanos(),
                    p.id,
                    p.start.as_nanos(),
                    p.end.as_nanos()
                ));
            }
        }
    }
    Ok(())
}

/// The children of every composite span exactly tile its interval: sorted
/// by start, the first child starts at the parent's start, each child
/// begins where the previous ended, and the last ends at the parent's end.
/// (This is strictly stronger than [`spans_nest`]; it is what makes leaf
/// durations sum to the root duration.)
pub fn children_tile(log: &TraceLog) -> Result<(), String> {
    let index = log.child_index();
    for (parent, children) in index.iter().enumerate() {
        if children.is_empty() {
            continue;
        }
        let p = &log.spans[parent];
        let mut kids: Vec<_> = children.iter().map(|&c| &log.spans[c]).collect();
        kids.sort_by_key(|s| (s.start, s.id));
        let mut cursor = p.start;
        for kid in &kids {
            if kid.start != cursor {
                return Err(format!(
                    "span {}: child {} starts at {} but previous sibling ended at {}",
                    parent,
                    kid.id,
                    kid.start.as_nanos(),
                    cursor.as_nanos()
                ));
            }
            cursor = kid.end;
        }
        if cursor != p.end {
            return Err(format!(
                "span {parent}: children end at {} but parent ends at {}",
                cursor.as_nanos(),
                p.end.as_nanos()
            ));
        }
    }
    Ok(())
}

/// No two [`SpanKind::Step`] spans on any resource whose name starts with
/// `prefix` overlap — the structural form of the paper's Fig. 12 claim
/// when `prefix` is `"psp"`: every launch command of every guest
/// serializes through the single PSP core.
pub fn capacity1_serialized(log: &TraceLog, prefix: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut by_resource: BTreeMap<&str, Vec<(Nanos, Nanos, usize)>> = BTreeMap::new();
    for span in &log.spans {
        if span.kind != SpanKind::Step {
            continue;
        }
        if let Some(resource) = span.resource.as_deref() {
            if resource.starts_with(prefix) {
                by_resource
                    .entry(resource)
                    .or_default()
                    .push((span.start, span.end, span.id));
            }
        }
    }
    for (resource, mut intervals) in by_resource {
        intervals.sort();
        for pair in intervals.windows(2) {
            let (_, prev_end, prev_id) = pair[0];
            let (next_start, _, next_id) = pair[1];
            if next_start < prev_end {
                return Err(format!(
                    "{resource}: span {next_id} starts at {} before span {prev_id} ends at {}",
                    next_start.as_nanos(),
                    prev_end.as_nanos()
                ));
            }
        }
    }
    Ok(())
}

/// Sum of `request`'s leaf span durations. Because children tile their
/// parents, this equals the root span's duration — which must equal the
/// latency the metrics layer recorded for a completed request.
pub fn leaf_duration_sum(log: &TraceLog, request: usize) -> Nanos {
    log.leaves(request).iter().map(|s| s.duration()).sum()
}

/// Runs the whole battery for a set of completed requests with their
/// metrics-reported latencies: one root each, global nesting and tiling,
/// PSP serialization, and leaf-duration == reported latency per request.
pub fn check_completed(log: &TraceLog, completed: &[(usize, Nanos)]) -> Result<(), String> {
    spans_nest(log)?;
    children_tile(log)?;
    capacity1_serialized(log, "psp")?;
    for &(request, latency) in completed {
        single_request_root(log, request)?;
        let root = log
            .request_root(request)
            .ok_or_else(|| format!("request {request}: no root"))?;
        if root.duration() != latency {
            return Err(format!(
                "request {request}: root duration {} != reported latency {}",
                root.duration().as_nanos(),
                latency.as_nanos()
            ));
        }
        let leaf_sum = leaf_duration_sum(log, request);
        if leaf_sum != latency {
            return Err(format!(
                "request {request}: leaf durations sum to {} != latency {}",
                leaf_sum.as_nanos(),
                latency.as_nanos()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Outcome, Recorder, WorkStep};
    use sevf_sim::{PhaseKind, ResourceClass};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn demo_log() -> TraceLog {
        let mut rec = Recorder::enabled();
        rec.arrival(0, "tiny", ms(0));
        let steps = vec![WorkStep::new(
            ResourceClass::Psp,
            PhaseKind::PreEncryption,
            "LAUNCH",
            ms(5),
        )];
        rec.attempt_start(0, 0, "tiny cold", None, steps, ms(0));
        rec.attempt_end(0, ms(5));
        rec.terminal(0, Outcome::Completed, ms(5));
        rec.occupy("psp", 0, ms(0), ms(5));
        rec.build()
    }

    #[test]
    fn clean_tree_passes_everything() {
        let log = demo_log();
        assert_eq!(single_request_root(&log, 0), Ok(()));
        assert_eq!(spans_nest(&log), Ok(()));
        assert_eq!(children_tile(&log), Ok(()));
        assert_eq!(capacity1_serialized(&log, "psp"), Ok(()));
        assert_eq!(leaf_duration_sum(&log, 0), ms(5));
        assert_eq!(check_completed(&log, &[(0, ms(5))]), Ok(()));
    }

    #[test]
    fn missing_request_fails_single_root() {
        let log = demo_log();
        assert!(single_request_root(&log, 99).is_err());
    }

    #[test]
    fn wrong_latency_is_reported() {
        let log = demo_log();
        let err = check_completed(&log, &[(0, ms(6))]).unwrap_err();
        assert!(err.contains("root duration"), "{err}");
    }

    #[test]
    fn overlapping_psp_spans_are_caught() {
        let mut rec = Recorder::enabled();
        for r in 0..2 {
            rec.arrival(r, "tiny", ms(0));
            let steps = vec![WorkStep::new(
                ResourceClass::Psp,
                PhaseKind::PreEncryption,
                "LAUNCH",
                ms(5),
            )];
            rec.attempt_start(r, r, "tiny cold", None, steps, ms(0));
            rec.attempt_end(r, ms(5));
            rec.terminal(r, Outcome::Completed, ms(5));
            // Both jobs claim the psp over the same interval: impossible on
            // a capacity-1 resource.
            rec.occupy("psp", r, ms(0), ms(5));
        }
        let log = rec.build();
        assert!(capacity1_serialized(&log, "psp").is_err());
        assert_eq!(capacity1_serialized(&log, "cpus"), Ok(()));
    }
}
