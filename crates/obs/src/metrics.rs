//! The unified metrics layer: exactly-mergeable fixed-bucket histograms, a
//! string-keyed registry (counters / gauges / histograms), and the shared
//! accumulator helpers the fleet and cluster metric types delegate to.
//!
//! Merging two [`Histogram`]s of the same bucket width is element-wise
//! integer addition — associative, commutative, and lossless — so per-host
//! (or per-shard) histograms roll up into exactly the histogram a single
//! global observer would have recorded. Percentiles are estimated from
//! bucket midpoints with the same interpolation rule as
//! [`sevf_sim::stats::percentile`], which bounds the estimate within one
//! bucket width of the exact value.

use std::collections::BTreeMap;

use sevf_sim::Nanos;

/// A fixed-bucket-width latency histogram.
///
/// Bucket `i` counts samples in `[i·width, (i+1)·width)`. Buckets grow on
/// demand; negative samples clamp to bucket 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    pub fn new(width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "bucket width must be positive and finite"
        );
        Histogram {
            width,
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
        }
    }

    /// The bucket width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample; 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket counts, from bucket 0 through the highest touched bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite sample.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram samples must be finite");
        let clamped = value.max(0.0);
        let idx = (clamped / self.width).floor() as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += clamped;
    }

    /// The exact (lossless) merge of `self` and `other`: element-wise
    /// bucket addition. Associative and commutative.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ — merging histograms with
    /// different bucket geometry cannot be exact.
    pub fn merged(&self, other: &Histogram) -> Histogram {
        assert!(
            self.width == other.width,
            "cannot exactly merge histograms with widths {} and {}",
            self.width,
            other.width
        );
        let len = self.counts.len().max(other.counts.len());
        let mut counts = vec![0u64; len];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts.get(i).copied().unwrap_or(0)
                + other.counts.get(i).copied().unwrap_or(0);
        }
        Histogram {
            width: self.width,
            counts,
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }

    /// The midpoint of the bucket holding the `index`-th sample (0-based,
    /// in sorted order). `index` must be `< count`.
    fn value_at(&self, index: u64) -> f64 {
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > index {
                return (i as f64 + 0.5) * self.width;
            }
        }
        (self.counts.len().saturating_sub(1) as f64 + 0.5) * self.width
    }

    /// Percentile estimate (0–100) using the same linear interpolation rule
    /// as [`sevf_sim::stats::percentile`], over bucket midpoints. The
    /// estimate is within one bucket width of the exact sample percentile;
    /// 0 with no samples.
    pub fn percentile(&self, pct: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count == 1 {
            return self.value_at(0);
        }
        let rank = pct.clamp(0.0, 100.0) / 100.0 * (self.count - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let frac = rank - lo as f64;
        let vl = self.value_at(lo);
        let vh = self.value_at(hi);
        vl + (vh - vl) * frac
    }

    /// Dense `(bucket upper edge, count)` rows from bucket 0 through the
    /// highest touched bucket — the fleet's historical histogram table
    /// shape. Empty with no samples.
    pub fn upper_edge_rows(&self) -> Vec<(f64, usize)> {
        if self.count == 0 {
            return Vec::new();
        }
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        self.counts[..=last]
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i + 1) as f64 * self.width, c as usize))
            .collect()
    }
}

/// A string-keyed metrics registry: monotone counters, point-in-time
/// gauges, and fixed-bucket histograms. `BTreeMap`-backed, so iteration
/// (and every exporter built on it) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets counter `name` to an absolute value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name`, creating it with bucket
    /// `width` on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with a different bucket width.
    pub fn observe(&mut self, name: &str, width: f64, value: f64) {
        let hist = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(width));
        assert!(
            hist.width() == width,
            "histogram {name} already registered with width {}",
            hist.width()
        );
        hist.record(value);
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` in: counters add, gauges take `other`'s value, and
    /// histograms merge exactly.
    ///
    /// # Panics
    ///
    /// Panics if a shared histogram name has mismatched bucket widths.
    pub fn absorb(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => *mine = mine.merged(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
    }
}

/// Percentile (0–100) of an unsorted sample set, 0 when empty — the
/// empty-guarded wrapper every serving-layer percentile goes through
/// (there is exactly one underlying implementation:
/// [`sevf_sim::stats::percentile`]).
pub fn percentile_or_zero(values: &[f64], pct: f64) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        sevf_sim::stats::percentile(values, pct)
    }
}

/// Mean of a step series weighted by how long each value was held:
/// `samples` are `(instant, value)` points, each value holding until the
/// next instant. 0 with fewer than two points or a zero-length window.
pub fn time_weighted_mean(samples: &[(Nanos, usize)]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mut weighted = 0.0;
    let mut span = 0.0;
    for pair in samples.windows(2) {
        let dt = (pair[1].0 - pair[0].0).as_nanos() as f64;
        weighted += pair[0].1 as f64 * dt;
        span += dt;
    }
    if span == 0.0 {
        0.0
    } else {
        weighted / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_sim::rng::XorShift64;
    use sevf_sim::stats::percentile;

    #[test]
    fn histogram_records_and_buckets() {
        let mut h = Histogram::new(10.0);
        for v in [1.0, 9.0, 11.0, 35.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.counts(), &[2, 1, 0, 1]);
        assert_eq!(
            h.upper_edge_rows(),
            vec![(10.0, 2), (20.0, 1), (30.0, 0), (40.0, 1)]
        );
        assert!((h.mean() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let h = Histogram::new(5.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert!(h.upper_edge_rows().is_empty());
        let mut one = Histogram::new(5.0);
        one.record(12.0);
        // Single sample: every percentile is its bucket midpoint.
        assert_eq!(one.percentile(0.0), 12.5);
        assert_eq!(one.percentile(99.0), 12.5);
    }

    #[test]
    fn merge_is_exact_assoc_and_comm() {
        let mut rng = XorShift64::new(0xB00B5);
        let mut parts = Vec::new();
        for _ in 0..3 {
            let mut h = Histogram::new(2.0);
            for _ in 0..50 {
                h.record(rng.next_f64() * 100.0);
            }
            parts.push(h);
        }
        let ab_c = parts[0].merged(&parts[1]).merged(&parts[2]);
        let a_bc = parts[0].merged(&parts[1].merged(&parts[2]));
        let cba = parts[2].merged(&parts[1]).merged(&parts[0]);
        // Bucket counts (what percentiles read) merge exactly in any
        // order; only the float running sum is subject to rounding.
        for other in [&a_bc, &cba] {
            assert_eq!(ab_c.counts(), other.counts());
            assert_eq!(ab_c.count(), other.count());
            assert!((ab_c.sum() - other.sum()).abs() < 1e-9 * ab_c.sum().abs());
        }
        assert_eq!(ab_c.count(), 150);
    }

    #[test]
    #[should_panic(expected = "cannot exactly merge")]
    fn merge_rejects_mismatched_widths() {
        let _ = Histogram::new(1.0).merged(&Histogram::new(2.0));
    }

    #[test]
    fn bucket_counts_are_monotone_under_insertion() {
        let mut rng = XorShift64::new(42);
        let mut h = Histogram::new(3.0);
        let mut prev: Vec<u64> = Vec::new();
        for _ in 0..200 {
            h.record(rng.next_f64() * 60.0);
            let now = h.counts().to_vec();
            for (i, &p) in prev.iter().enumerate() {
                assert!(now.get(i).copied().unwrap_or(0) >= p, "bucket {i} shrank");
            }
            prev = now;
        }
    }

    #[test]
    fn histogram_percentiles_track_exact_within_one_bucket() {
        for seed in [1u64, 7, 0x5EF0, 99] {
            let mut rng = XorShift64::new(seed);
            let width = 2.5;
            let mut h = Histogram::new(width);
            let mut samples = Vec::new();
            for _ in 0..500 {
                let v = rng.next_f64() * 300.0;
                h.record(v);
                samples.push(v);
            }
            for pct in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
                let exact = percentile(&samples, pct);
                let est = h.percentile(pct);
                assert!(
                    (est - exact).abs() <= width,
                    "seed {seed} p{pct}: est {est} exact {exact}"
                );
            }
        }
    }

    #[test]
    fn registry_round_trips_and_absorbs() {
        let mut a = Registry::new();
        a.inc("requests", 3);
        a.set_gauge("util", 0.5);
        a.observe("lat", 10.0, 25.0);
        let mut b = Registry::new();
        b.inc("requests", 2);
        b.set_gauge("util", 0.75);
        b.observe("lat", 10.0, 5.0);
        a.absorb(&b);
        assert_eq!(a.counter("requests"), 5);
        assert_eq!(a.gauge("util"), Some(0.75));
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.counter("absent"), 0);
        assert_eq!(a.gauge("absent"), None);
    }

    #[test]
    fn percentile_or_zero_edge_cases() {
        assert_eq!(percentile_or_zero(&[], 50.0), 0.0);
        assert_eq!(percentile_or_zero(&[7.0], 99.0), 7.0);
        let flat = [4.0, 4.0, 4.0, 4.0];
        assert_eq!(percentile_or_zero(&flat, 50.0), 4.0);
        assert_eq!(percentile_or_zero(&flat, 99.0), 4.0);
    }

    #[test]
    fn time_weighted_mean_edge_cases() {
        assert_eq!(time_weighted_mean(&[]), 0.0);
        assert_eq!(time_weighted_mean(&[(Nanos::from_millis(1), 5)]), 0.0);
        // Depth 2 held for 3 ms, depth 4 held for 1 ms → (2·3 + 4·1)/4.
        let series = [
            (Nanos::from_millis(0), 2),
            (Nanos::from_millis(3), 4),
            (Nanos::from_millis(4), 0),
        ];
        assert!((time_weighted_mean(&series) - 2.5).abs() < 1e-12);
        // Zero-length window: all samples at one instant.
        let degenerate = [(Nanos::from_millis(1), 3), (Nanos::from_millis(1), 9)];
        assert_eq!(time_weighted_mean(&degenerate), 0.0);
    }
}
