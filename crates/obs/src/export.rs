//! Deterministic exporters over [`TraceLog`] and [`Registry`].
//!
//! Three formats, all pure functions of their input (no clocks, no
//! randomness, `BTreeMap` iteration underneath) so a seeded run exports
//! byte-identically every time:
//!
//! - [`chrome_trace_json`]: Chrome `trace_event` complete-event (`"ph":
//!   "X"`) JSON, loadable in `chrome://tracing` / Perfetto for
//!   flamegraph-style inspection. Virtual nanoseconds map to trace
//!   microseconds with three decimal places, so the virtual clock reads
//!   directly off the ruler.
//! - [`prometheus_text`]: Prometheus text exposition of a [`Registry`] —
//!   counters, gauges, and cumulative `_bucket`/`_sum`/`_count` rows per
//!   histogram.
//! - [`critical_path`] / [`phase_breakdown`]: per-request summaries. The
//!   leaves of a request's span tree partition its latency exactly, so the
//!   slices (and the per-phase rollup) sum to the reported latency to the
//!   nanosecond.

use std::fmt::Write as _;

use sevf_sim::Nanos;

use crate::metrics::Registry;
use crate::trace::{SpanKind, SpanRec, TraceLog};

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Virtual nanoseconds as trace-event microseconds with fixed precision
/// ("1234.567"), so ordering survives the decimal rendering exactly.
fn micros(ns: Nanos) -> String {
    let n = ns.as_nanos();
    format!("{}.{:03}", n / 1_000, n % 1_000)
}

fn chrome_event(span: &SpanRec, out: &mut String) {
    // One virtual thread per request keeps each tree on its own track;
    // background refills share a "bg" track per host.
    let tid = match span.request {
        Some(r) => r as i64,
        None => -1 - span.host.unwrap_or(0) as i64,
    };
    let pid = span.host.map(|h| h as i64).unwrap_or(0);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
        json_escape(&span.name),
        span.kind.name(),
        micros(span.start),
        micros(span.duration()),
        pid,
        tid
    );
    let mut args = Vec::new();
    args.push(format!("\"span\":{}", span.id));
    if let Some(parent) = span.parent {
        args.push(format!("\"parent\":{parent}"));
    }
    if let Some(phase) = span.phase {
        args.push(format!("\"phase\":\"{}\"", json_escape(phase.label())));
    }
    if let Some(resource) = &span.resource {
        args.push(format!("\"resource\":\"{}\"", json_escape(resource)));
    }
    let _ = write!(out, ",\"args\":{{{}}}}}", args.join(","));
}

/// Renders the whole log as a Chrome `trace_event` JSON array (complete
/// events in span-id order, then instant events for the markers).
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for span in &log.spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        chrome_event(span, &mut out);
    }
    for marker in &log.markers {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        let tid = match marker.request {
            Some(r) => r as i64,
            None => -1 - marker.host.unwrap_or(0) as i64,
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"marker\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\"}}",
            json_escape(&marker.kind.name()),
            micros(marker.at),
            marker.host.map(|h| h as i64).unwrap_or(0),
            tid
        );
    }
    out.push_str("\n]\n");
    out
}

/// Prometheus text exposition of every counter, gauge, and histogram in
/// `registry`. Histograms emit cumulative `_bucket{le="..."}` rows (one
/// per non-empty prefix plus `+Inf`), `_sum`, and `_count`.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauges() {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in registry.histograms() {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, count) in hist.counts().iter().enumerate() {
            cumulative += count;
            let edge = (i + 1) as f64 * hist.width();
            let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{name}_sum {}", hist.sum());
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }
    out
}

/// One leaf of a request's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSlice {
    /// Phase bucket the slice rolls up under ("Pre-encryption", "queue
    /// wait", "backoff", ...).
    pub phase: String,
    /// The leaf span's own name (PSP command, wait reason, ...).
    pub name: String,
    /// When the slice started, on the virtual clock.
    pub start: Nanos,
    /// How long it took.
    pub duration: Nanos,
}

/// Phase bucket a leaf span rolls up under.
fn slice_phase(span: &SpanRec) -> String {
    match span.kind {
        SpanKind::Step => span
            .phase
            .map(|p| p.label().to_string())
            .unwrap_or_else(|| span.name.clone()),
        SpanKind::Backoff => "backoff".to_string(),
        SpanKind::Wait => {
            if span.name == "queue wait" {
                "queue wait".to_string()
            } else {
                "resource wait".to_string()
            }
        }
        _ => span.name.clone(),
    }
}

/// The request's critical path: its leaf spans in start order. Because
/// children tile their parents, the slice durations sum to the request's
/// latency exactly.
pub fn critical_path(log: &TraceLog, request: usize) -> Vec<PathSlice> {
    log.leaves(request)
        .iter()
        .map(|span| PathSlice {
            phase: slice_phase(span),
            name: span.name.clone(),
            start: span.start,
            duration: span.duration(),
        })
        .collect()
}

/// Rolls [`critical_path`] up by phase bucket, preserving first-seen
/// order along the path. The durations still sum to the latency exactly.
pub fn phase_breakdown(log: &TraceLog, request: usize) -> Vec<(String, Nanos)> {
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::BTreeMap<String, Nanos> = std::collections::BTreeMap::new();
    for slice in critical_path(log, request) {
        if !totals.contains_key(&slice.phase) {
            order.push(slice.phase.clone());
        }
        *totals.entry(slice.phase).or_insert(Nanos::ZERO) += slice.duration;
    }
    order
        .into_iter()
        .map(|phase| {
            let total = totals[&phase];
            (phase, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::{Outcome, Recorder, WorkStep};
    use sevf_sim::{PhaseKind, ResourceClass};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn demo_log() -> TraceLog {
        let mut rec = Recorder::enabled();
        rec.arrival(0, "tiny", ms(0));
        let steps = vec![
            WorkStep::new(
                ResourceClass::Psp,
                PhaseKind::PreEncryption,
                "LAUNCH_START",
                ms(2),
            ),
            WorkStep::new(ResourceClass::HostCpu, PhaseKind::LinuxBoot, "boot", ms(3)),
        ];
        rec.attempt_start(0, 0, "tiny cold", None, steps, ms(1));
        rec.attempt_end(0, ms(6));
        rec.terminal(0, Outcome::Completed, ms(6));
        rec.occupy("psp", 0, ms(1), ms(3));
        rec.occupy("host-cpus", 0, ms(3), ms(6));
        rec.build()
    }

    #[test]
    fn chrome_export_is_deterministic_and_balanced() {
        let log = demo_log();
        let a = chrome_trace_json(&log);
        let b = chrome_trace_json(&log);
        assert_eq!(a, b);
        assert!(a.starts_with('['));
        assert!(a.trim_end().ends_with(']'));
        assert_eq!(
            a.matches("\"ph\":\"X\"").count(),
            log.spans.len(),
            "one complete event per span"
        );
        assert!(a.contains("\"name\":\"LAUNCH_START\""));
    }

    #[test]
    fn micros_renders_nanosecond_precision() {
        assert_eq!(micros(Nanos::from_nanos(1_234_567)), "1234.567");
        assert_eq!(micros(Nanos::from_nanos(7)), "0.007");
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn critical_path_sums_to_latency() {
        let log = demo_log();
        let path = critical_path(&log, 0);
        let total: Nanos = path.iter().map(|s| s.duration).sum();
        assert_eq!(total, ms(6), "slices partition the request latency");
        // wait before attempt + two steps (psp step starts at occupancy).
        assert!(path.iter().any(|s| s.phase == "Pre-encryption"));
        let breakdown = phase_breakdown(&log, 0);
        let rolled: Nanos = breakdown.iter().map(|(_, d)| *d).sum();
        assert_eq!(rolled, ms(6));
    }

    #[test]
    fn prometheus_text_emits_cumulative_buckets() {
        let mut reg = Registry::new();
        reg.inc("launches_total", 3);
        reg.set_gauge("queue_depth", 2.0);
        reg.observe("latency_ms", 10.0, 5.0);
        reg.observe("latency_ms", 10.0, 25.0);
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE launches_total counter"));
        assert!(text.contains("launches_total 3"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("latency_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("latency_ms_bucket{le=\"30\"} 2"));
        assert!(text.contains("latency_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("latency_ms_count 2"));
        assert_eq!(text, prometheus_text(&reg), "byte-stable");
    }
}
