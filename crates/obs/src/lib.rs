//! # sevf-obs — virtual-time observability for the SEVeriFast reproduction
//!
//! Every headline result in the paper is a *phase breakdown* (Fig. 3's
//! OVMF phases, Figs. 10/11's pre-encryption vs boot-verification splits,
//! Fig. 12's PSP serialization), yet the serving layers above the
//! simulator only reported terminal rollups. This crate makes the
//! simulation self-explaining:
//!
//! - [`trace`]: a [`Recorder`] of semantic launch events keyed to the
//!   shared DES clock. After a run it assembles, per request, one causal
//!   span tree — `admission → queue wait → dispatch → PSP commands →
//!   retries/backoff → attestation` — in which children exactly tile
//!   their parents, so leaf durations sum to the reported latency to the
//!   nanosecond. Disabled recorders are a no-op handle: the fault-free
//!   path replays byte-identically with observability off.
//! - [`metrics`]: a unified [`Registry`] of counters, gauges, and
//!   fixed-bucket [`Histogram`]s whose merge is exact (associative and
//!   commutative), plus the shared percentile/queue-depth helpers the
//!   fleet and cluster layers previously duplicated.
//! - [`export`]: deterministic exporters — Chrome `trace_event` JSON,
//!   Prometheus text, and per-request critical-path / phase breakdowns.
//! - [`invariants`]: structural checks (single root per request, span
//!   nesting/tiling, capacity-1 non-overlap, duration-sum == latency)
//!   used by the cross-layer test suite.
//!
//! The crate depends only on `sevf-sim`, below the fleet/cluster layers
//! it observes: `sim → obs → {psp, fleet} → cluster → bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod invariants;
pub mod metrics;
pub mod trace;

pub use export::{
    chrome_trace_json, critical_path, json_escape, phase_breakdown, prometheus_text, PathSlice,
};
pub use metrics::{percentile_or_zero, time_weighted_mean, Histogram, Registry};
pub use trace::{
    MarkerKind, MarkerRec, OccEntry, Outcome, Recorder, SpanKind, SpanRec, TraceLog, WorkStep,
};
