//! Span recording over the shared virtual clock, and causal trace assembly.
//!
//! The serving layers (`sevf-fleet`, `sevf-cluster`) narrate a run into a
//! [`Recorder`] as it executes: request arrivals, queueing, launch-attempt
//! dispatches with their planned [`WorkStep`]s, retry backoffs, terminal
//! outcomes, and point markers (faults, failovers, placement decisions).
//! After the DES run finishes, the caller feeds the engine's resource
//! occupancy back in ([`Recorder::occupy`]) and calls [`Recorder::build`],
//! which assembles one causal span tree per request:
//!
//! ```text
//! request ── queue wait ── attempt ──┬── wait psp
//!                                    ├── SNP_LAUNCH_START   (psp)
//!                                    ├── LAUNCH_UPDATE_DATA (psp)
//!                                    └── attestation rtt    (network)
//!         ── backoff #1 ── attempt ── ...
//! ```
//!
//! The children of every composite span tile its interval exactly — waits
//! are materialized, nothing overlaps — so per-request span durations sum
//! to precisely the latency the metrics layer reports. The structural
//! invariants this buys are checked by [`crate::invariants`].
//!
//! A disabled recorder ([`Recorder::disabled`]) is a `None`: every method
//! returns immediately, no allocation, no clock reads — the fault-free
//! serving path replays byte-identically with recording off.

use std::collections::{BTreeMap, VecDeque};

use sevf_sim::fault::FaultKind;
use sevf_sim::{Nanos, PhaseKind, ResourceClass};

/// One planned unit of work inside a launch attempt: which resource class
/// it occupies, which boot phase it belongs to, and for how long.
///
/// `sevf-fleet` blueprints are sequences of these; the recorder matches
/// resource-bound steps against the engine's occupancy entries to place
/// them on the clock (network steps are pure delays and self-place).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkStep {
    /// Host resource class the step occupies.
    pub class: ResourceClass,
    /// Boot phase the step belongs to (drives per-phase breakdowns).
    pub phase: PhaseKind,
    /// Human-readable description (PSP command, boot stage, ...).
    pub label: String,
    /// Planned duration of the step.
    pub duration: Nanos,
}

impl WorkStep {
    /// Builds a step.
    pub fn new(
        class: ResourceClass,
        phase: PhaseKind,
        label: impl Into<String>,
        duration: Nanos,
    ) -> Self {
        WorkStep {
            class,
            phase,
            label: label.into(),
            duration,
        }
    }
}

/// Terminal state of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served to completion.
    Completed,
    /// Shed by admission (queue full or unroutable).
    Shed,
    /// Shed past the bottom of the degradation ladder.
    BreakerShed,
    /// Shed on deadline.
    Timeout,
    /// Permanently failed after exhausting retries.
    Failed,
    /// Turned away by the policy engine (quota / isolation / posture)
    /// before consuming any PSP work.
    Rejected,
}

impl Outcome {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Shed => "shed",
            Outcome::BreakerShed => "breaker-shed",
            Outcome::Timeout => "timeout",
            Outcome::Failed => "failed",
            Outcome::Rejected => "rejected",
        }
    }
}

/// A point event on the clock, outside the span hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// An injected fault struck.
    Fault(FaultKind),
    /// A request was displaced off a dead or departing host and re-routed.
    Failover,
    /// The cluster router placed a request on a host.
    Placement {
        /// The chosen host.
        host: usize,
    },
    /// A circuit breaker tripped a class down the degradation ladder.
    BreakerTrip,
    /// A warm-pool rebalance pass ran after a membership change.
    Rebalance,
    /// A PSP firmware-reset outage window opened.
    OutageStart,
    /// A PSP firmware-reset outage window closed.
    OutageEnd,
    /// A TCB/firmware rollout re-measured a host (re-attestation storm).
    TcbRollout,
    /// A chip key was distrusted mid-stream (key-compromise drill).
    Revocation,
    /// The router's failure detector started suspecting a host.
    Suspected,
    /// A heartbeat got through and cleared a standing suspicion.
    SuspicionCleared,
    /// A host's dispatch lease lapsed and it parked itself.
    LeaseExpired,
    /// The policy engine admitted a request at its asked-for tier.
    PolicyAdmit,
    /// The policy engine admitted a request at a degraded isolation tier.
    PolicyDegrade,
    /// The policy engine turned a request away.
    PolicyReject,
    /// The autoscaler joined spare hosts via the graceful-join path.
    ScaleOut,
    /// The autoscaler drained hosts via the graceful-leave path.
    ScaleIn,
    /// The autoscaler re-prescribed per-host warm-pool targets.
    PreWarm,
}

impl MarkerKind {
    /// Stable label used in exporter output.
    pub fn name(&self) -> String {
        match self {
            MarkerKind::Fault(kind) => format!("fault: {}", kind.name()),
            MarkerKind::Failover => "failover".to_string(),
            MarkerKind::Placement { host } => format!("placement: host {host}"),
            MarkerKind::BreakerTrip => "breaker-trip".to_string(),
            MarkerKind::Rebalance => "rebalance".to_string(),
            MarkerKind::OutageStart => "outage-start".to_string(),
            MarkerKind::OutageEnd => "outage-end".to_string(),
            MarkerKind::TcbRollout => "tcb-rollout".to_string(),
            MarkerKind::Revocation => "revocation".to_string(),
            MarkerKind::Suspected => "suspected".to_string(),
            MarkerKind::SuspicionCleared => "suspicion-cleared".to_string(),
            MarkerKind::LeaseExpired => "lease-expired".to_string(),
            MarkerKind::PolicyAdmit => "policy-admit".to_string(),
            MarkerKind::PolicyDegrade => "policy-degrade".to_string(),
            MarkerKind::PolicyReject => "policy-reject".to_string(),
            MarkerKind::ScaleOut => "scale-out".to_string(),
            MarkerKind::ScaleIn => "scale-in".to_string(),
            MarkerKind::PreWarm => "pre-warm".to_string(),
        }
    }
}

/// One recorded marker.
#[derive(Debug, Clone)]
pub struct MarkerRec {
    /// What happened.
    pub kind: MarkerKind,
    /// The request it concerns, if any.
    pub request: Option<usize>,
    /// The host it concerns, if any (cluster runs).
    pub host: Option<usize>,
    /// When it happened on the virtual clock.
    pub at: Nanos,
}

/// One resource occupancy fed back from the DES engine after the run.
#[derive(Debug, Clone)]
pub struct OccEntry {
    /// Concrete resource name ("psp", "psp3", "host-cpus", ...).
    pub resource: String,
    /// Engine job index the occupancy belongs to.
    pub job: usize,
    /// Instant the segment started executing.
    pub start: Nanos,
    /// Instant the segment finished.
    pub end: Nanos,
}

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Root of one request's tree: admission to terminal state.
    Request,
    /// Root of a background job's tree (warm-pool refill).
    Background,
    /// One launch attempt (dispatch to job completion).
    Attempt,
    /// One executed work step (resource occupancy or network delay).
    Step,
    /// Time spent waiting: in the admission queue, or for a resource slot.
    Wait,
    /// Retry backoff between attempts.
    Backoff,
}

impl SpanKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Background => "background",
            SpanKind::Attempt => "attempt",
            SpanKind::Step => "step",
            SpanKind::Wait => "wait",
            SpanKind::Backoff => "backoff",
        }
    }
}

/// One assembled span.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Index into [`TraceLog::spans`].
    pub id: usize,
    /// Causal parent (`None` for roots).
    pub parent: Option<usize>,
    /// The request this span serves (`None` for background trees).
    pub request: Option<usize>,
    /// The host it ran on, if the caller is a cluster (`None` on one host).
    pub host: Option<usize>,
    /// What the span represents.
    pub kind: SpanKind,
    /// Display name (class, blueprint label, step label, ...).
    pub name: String,
    /// Boot phase, for [`SpanKind::Step`] spans.
    pub phase: Option<PhaseKind>,
    /// Concrete resource occupied, for steps and resource waits.
    pub resource: Option<String>,
    /// Start instant on the shared virtual clock.
    pub start: Nanos,
    /// End instant.
    pub end: Nanos,
}

impl SpanRec {
    /// Span duration.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }
}

/// Events the recorder buffers during a run (assembled by [`Recorder::build`]).
#[derive(Debug, Clone)]
enum Ev {
    Arrival {
        request: usize,
        class: String,
        at: Nanos,
    },
    Queued {
        request: usize,
    },
    AttemptStart {
        request: usize,
        job: usize,
        label: String,
        host: Option<usize>,
        steps: Vec<WorkStep>,
        at: Nanos,
    },
    AttemptEnd {
        job: usize,
        at: Nanos,
    },
    RetryWait {
        request: usize,
        attempt: u32,
        from: Nanos,
        until: Nanos,
    },
    Terminal {
        request: usize,
        outcome: Outcome,
        at: Nanos,
    },
    Background {
        job: usize,
        label: String,
        host: Option<usize>,
        steps: Vec<WorkStep>,
        at: Nanos,
    },
    BackgroundEnd {
        job: usize,
        at: Nanos,
    },
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Ev>,
    markers: Vec<MarkerRec>,
    occupancy: Vec<OccEntry>,
}

/// The recording handle the serving layers thread through a run.
///
/// Disabled, it is a `None` behind one pointer-sized check: every method
/// no-ops, and [`Recorder::build`] returns an empty [`TraceLog`]. The
/// recorder never touches the caller's RNG, metrics, or job injection, so
/// enabling it cannot change a run's results — only observe them.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl Recorder {
    /// A recorder that records nothing (the default serving path).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Box::default()),
        }
    }

    /// Whether recording is on. Callers use this to skip building event
    /// arguments (step vectors, labels) on the disabled path.
    pub fn on(&self) -> bool {
        self.inner.is_some()
    }

    /// A request arrived (roots its span tree).
    pub fn arrival(&mut self, request: usize, class: &str, at: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::Arrival {
                request,
                class: class.to_string(),
                at,
            });
        }
    }

    /// A request entered the admission queue (names its next wait span).
    pub fn queued(&mut self, request: usize) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::Queued { request });
        }
    }

    /// A launch attempt for `request` was injected as engine job `job`.
    pub fn attempt_start(
        &mut self,
        request: usize,
        job: usize,
        label: &str,
        host: Option<usize>,
        steps: Vec<WorkStep>,
        at: Nanos,
    ) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::AttemptStart {
                request,
                job,
                label: label.to_string(),
                host,
                steps,
                at,
            });
        }
    }

    /// Engine job `job` (a launch attempt) completed.
    pub fn attempt_end(&mut self, job: usize, at: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::AttemptEnd { job, at });
        }
    }

    /// A retry for `request` (failure number `attempt`) was scheduled:
    /// backoff occupies `[from, until]`.
    pub fn retry_wait(&mut self, request: usize, attempt: u32, from: Nanos, until: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::RetryWait {
                request,
                attempt,
                from,
                until,
            });
        }
    }

    /// A request reached a terminal state.
    pub fn terminal(&mut self, request: usize, outcome: Outcome, at: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::Terminal {
                request,
                outcome,
                at,
            });
        }
    }

    /// A background job (warm-pool refill) was injected as engine job `job`.
    pub fn background(
        &mut self,
        job: usize,
        label: &str,
        host: Option<usize>,
        steps: Vec<WorkStep>,
        at: Nanos,
    ) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::Background {
                job,
                label: label.to_string(),
                host,
                steps,
                at,
            });
        }
    }

    /// Engine job `job` (a background job) completed.
    pub fn background_end(&mut self, job: usize, at: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.events.push(Ev::BackgroundEnd { job, at });
        }
    }

    /// Records a point marker.
    pub fn marker(
        &mut self,
        kind: MarkerKind,
        request: Option<usize>,
        host: Option<usize>,
        at: Nanos,
    ) {
        if let Some(inner) = &mut self.inner {
            inner.markers.push(MarkerRec {
                kind,
                request,
                host,
                at,
            });
        }
    }

    /// An injected fault struck (`request` if it hit an attempt).
    pub fn fault(
        &mut self,
        kind: FaultKind,
        request: Option<usize>,
        host: Option<usize>,
        at: Nanos,
    ) {
        self.marker(MarkerKind::Fault(kind), request, host, at);
    }

    /// Feeds one engine occupancy entry back in after the run.
    pub fn occupy(&mut self, resource: &str, job: usize, start: Nanos, end: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.occupancy.push(OccEntry {
                resource: resource.to_string(),
                job,
                start,
                end,
            });
        }
    }

    /// Assembles the recorded events into span trees. Returns an empty log
    /// for a disabled recorder.
    pub fn build(self) -> TraceLog {
        let inner = match self.inner {
            Some(inner) => *inner,
            None => return TraceLog::default(),
        };
        Assembler::assemble(inner)
    }
}

/// The assembled trace of one run: span trees, markers, raw occupancy, and
/// per-request terminal outcomes.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// All spans; a span's `id` is its index here, parents precede children.
    pub spans: Vec<SpanRec>,
    /// Point markers in recording order.
    pub markers: Vec<MarkerRec>,
    /// Raw engine occupancy fed in after the run.
    pub occupancy: Vec<OccEntry>,
    /// `(request, outcome, at)` terminal states in recording order.
    pub outcomes: Vec<(usize, Outcome, Nanos)>,
}

impl TraceLog {
    /// Root spans (requests and background jobs).
    pub fn roots(&self) -> impl Iterator<Item = &SpanRec> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// The root span of `request`'s tree, if it arrived.
    pub fn request_root(&self, request: usize) -> Option<&SpanRec> {
        self.spans
            .iter()
            .find(|s| s.parent.is_none() && s.request == Some(request))
    }

    /// Direct children of span `id`, in start order.
    pub fn children(&self, id: usize) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// `children[i]` = direct child ids of span `i` (single pass).
    pub fn child_index(&self) -> Vec<Vec<usize>> {
        let mut index = vec![Vec::new(); self.spans.len()];
        for span in &self.spans {
            if let Some(parent) = span.parent {
                index[parent].push(span.id);
            }
        }
        index
    }

    /// Leaf spans of `request`'s tree in start order — its critical path
    /// (children tile their parents, so the leaves partition the root).
    pub fn leaves(&self, request: usize) -> Vec<&SpanRec> {
        let has_child: std::collections::BTreeSet<usize> =
            self.spans.iter().filter_map(|s| s.parent).collect();
        let mut leaves: Vec<&SpanRec> = self
            .spans
            .iter()
            .filter(|s| s.request == Some(request) && !has_child.contains(&s.id))
            .collect();
        leaves.sort_by_key(|s| (s.start, s.id));
        leaves
    }

    /// Requests whose terminal outcome is `outcome`.
    pub fn requests_with_outcome(&self, outcome: Outcome) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|(_, o, _)| *o == outcome)
            .map(|(r, _, _)| *r)
            .collect()
    }

    /// How many requests terminated with `outcome`.
    pub fn count_outcome(&self, outcome: Outcome) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o, _)| *o == outcome)
            .count()
    }

    /// How many fault markers of `kind` were recorded.
    pub fn count_fault(&self, kind: FaultKind) -> usize {
        self.markers
            .iter()
            .filter(|m| m.kind == MarkerKind::Fault(kind))
            .count()
    }

    /// Total fault markers of any kind.
    pub fn total_faults(&self) -> usize {
        self.markers
            .iter()
            .filter(|m| matches!(m.kind, MarkerKind::Fault(_)))
            .count()
    }

    /// How many markers match `kind` exactly.
    pub fn count_marker(&self, kind: MarkerKind) -> usize {
        self.markers.iter().filter(|m| m.kind == kind).count()
    }

    /// Failover-hop markers recorded.
    pub fn failovers(&self) -> usize {
        self.count_marker(MarkerKind::Failover)
    }

    /// Retry backoff spans recorded (= retry launches dispatched later).
    pub fn retry_waits(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Backoff)
            .count()
    }

    /// Step spans with an exact name, e.g. the attestation-plane steps
    /// (`att-verify`, `att-cert-fetch`, …). Lets consistency tests pin
    /// span counts against plane metrics counters.
    pub fn count_step_label(&self, label: &str) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Step && s.name == label)
            .count()
    }
}

/// Turns the flat event list into span trees.
struct Assembler {
    occupancy: Vec<OccEntry>,
    occ_by_job: BTreeMap<usize, VecDeque<usize>>,
    attempt_ends: BTreeMap<usize, Nanos>,
    background_ends: BTreeMap<usize, Nanos>,
    spans: Vec<SpanRec>,
}

impl Assembler {
    fn assemble(inner: Inner) -> TraceLog {
        let mut occ_by_job: BTreeMap<usize, VecDeque<usize>> = BTreeMap::new();
        for (i, entry) in inner.occupancy.iter().enumerate() {
            occ_by_job.entry(entry.job).or_default().push_back(i);
        }
        let mut attempt_ends = BTreeMap::new();
        let mut background_ends = BTreeMap::new();
        let mut outcomes = Vec::new();
        let mut per_request: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut backgrounds: Vec<usize> = Vec::new();
        for (i, ev) in inner.events.iter().enumerate() {
            match ev {
                Ev::Arrival { request, .. }
                | Ev::Queued { request }
                | Ev::AttemptStart { request, .. }
                | Ev::RetryWait { request, .. } => per_request.entry(*request).or_default().push(i),
                Ev::AttemptEnd { job, at } => {
                    attempt_ends.insert(*job, *at);
                }
                Ev::Terminal {
                    request,
                    outcome,
                    at,
                } => {
                    outcomes.push((*request, *outcome, *at));
                    per_request.entry(*request).or_default().push(i);
                }
                Ev::Background { .. } => backgrounds.push(i),
                Ev::BackgroundEnd { job, at } => {
                    background_ends.insert(*job, *at);
                }
            }
        }

        let mut asm = Assembler {
            occupancy: inner.occupancy,
            occ_by_job,
            attempt_ends,
            background_ends,
            spans: Vec::new(),
        };
        for (request, idxs) in &per_request {
            asm.request_tree(*request, idxs, &inner.events);
        }
        for idx in backgrounds {
            if let Ev::Background {
                job,
                label,
                host,
                steps,
                at,
            } = &inner.events[idx]
            {
                asm.background_tree(*job, label, *host, steps, *at);
            }
        }
        TraceLog {
            spans: asm.spans,
            markers: inner.markers,
            occupancy: asm.occupancy,
            outcomes,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_span(
        &mut self,
        parent: Option<usize>,
        request: Option<usize>,
        host: Option<usize>,
        kind: SpanKind,
        name: String,
        phase: Option<PhaseKind>,
        resource: Option<String>,
        start: Nanos,
        end: Nanos,
    ) -> usize {
        let id = self.spans.len();
        self.spans.push(SpanRec {
            id,
            parent,
            request,
            host,
            kind,
            name,
            phase,
            resource,
            start,
            end,
        });
        id
    }

    /// Builds one request's tree from its event indices (recording order =
    /// clock order within a request).
    fn request_tree(&mut self, request: usize, idxs: &[usize], events: &[Ev]) {
        let Some((arrived, class)) = idxs.iter().find_map(|&i| match &events[i] {
            Ev::Arrival { at, class, .. } => Some((*at, class.clone())),
            _ => None,
        }) else {
            return;
        };
        let root = self.push_span(
            None,
            Some(request),
            None,
            SpanKind::Request,
            class,
            None,
            None,
            arrived,
            arrived,
        );
        let mut cursor = arrived;
        let mut queued = false;
        for &idx in idxs {
            match events[idx].clone() {
                Ev::Arrival { .. } | Ev::AttemptEnd { .. } | Ev::BackgroundEnd { .. } => {}
                Ev::Background { .. } => {}
                Ev::Queued { .. } => queued = true,
                Ev::RetryWait {
                    attempt,
                    from,
                    until,
                    ..
                } => {
                    self.gap(root, request, cursor, from, queued);
                    self.push_span(
                        Some(root),
                        Some(request),
                        None,
                        SpanKind::Backoff,
                        format!("backoff #{attempt}"),
                        None,
                        None,
                        from,
                        until,
                    );
                    cursor = until;
                    queued = false;
                }
                Ev::AttemptStart {
                    job,
                    label,
                    host,
                    steps,
                    at,
                    ..
                } => {
                    self.gap(root, request, cursor, at, queued);
                    cursor = self.attempt(root, request, host, job, &label, &steps, at);
                    queued = false;
                }
                Ev::Terminal { at, .. } => {
                    self.gap(root, request, cursor, at, queued);
                    cursor = at;
                }
            }
        }
        self.spans[root].end = cursor;
    }

    /// Materializes the wait between `cursor` and `until` (if any) as a
    /// child span, so siblings tile their parent exactly.
    fn gap(&mut self, parent: usize, request: usize, cursor: Nanos, until: Nanos, queued: bool) {
        if until > cursor {
            let name = if queued { "queue wait" } else { "wait" };
            self.push_span(
                Some(parent),
                Some(request),
                None,
                SpanKind::Wait,
                name.to_string(),
                None,
                None,
                cursor,
                until,
            );
        }
    }

    /// Builds one attempt span with its step/wait children; returns its end.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &mut self,
        parent: usize,
        request: usize,
        host: Option<usize>,
        job: usize,
        label: &str,
        steps: &[WorkStep],
        at: Nanos,
    ) -> Nanos {
        let attempt = self.push_span(
            Some(parent),
            Some(request),
            host,
            SpanKind::Attempt,
            label.to_string(),
            None,
            None,
            at,
            at,
        );
        let cur = self.steps(attempt, Some(request), host, job, steps, at);
        let end = self.attempt_ends.get(&job).copied().unwrap_or(cur);
        self.spans[attempt].end = end;
        end
    }

    /// Lays `steps` under `parent`, matching resource-bound steps against
    /// the job's occupancy entries in order; gaps before an occupancy start
    /// become resource-wait children. Returns the clock after the last step.
    fn steps(
        &mut self,
        parent: usize,
        request: Option<usize>,
        host: Option<usize>,
        job: usize,
        steps: &[WorkStep],
        at: Nanos,
    ) -> Nanos {
        let mut cur = at;
        for step in steps {
            if step.class == ResourceClass::Network {
                self.push_span(
                    Some(parent),
                    request,
                    host,
                    SpanKind::Step,
                    step.label.clone(),
                    Some(step.phase),
                    Some("network".to_string()),
                    cur,
                    cur + step.duration,
                );
                cur += step.duration;
                continue;
            }
            let entry = self
                .occ_by_job
                .get_mut(&job)
                .and_then(|queue| queue.pop_front())
                .map(|i| self.occupancy[i].clone());
            match entry {
                Some(entry) => {
                    if entry.start > cur {
                        self.push_span(
                            Some(parent),
                            request,
                            host,
                            SpanKind::Wait,
                            format!("wait {}", entry.resource),
                            None,
                            Some(entry.resource.clone()),
                            cur,
                            entry.start,
                        );
                    }
                    self.push_span(
                        Some(parent),
                        request,
                        host,
                        SpanKind::Step,
                        step.label.clone(),
                        Some(step.phase),
                        Some(entry.resource.clone()),
                        entry.start,
                        entry.end,
                    );
                    cur = entry.end;
                }
                None => {
                    // No occupancy fed back (caller skipped `occupy`): fall
                    // back to the planned duration so the tree still tiles.
                    self.push_span(
                        Some(parent),
                        request,
                        host,
                        SpanKind::Step,
                        step.label.clone(),
                        Some(step.phase),
                        None,
                        cur,
                        cur + step.duration,
                    );
                    cur += step.duration;
                }
            }
        }
        cur
    }

    /// Builds one background job's tree (no request identity).
    fn background_tree(
        &mut self,
        job: usize,
        label: &str,
        host: Option<usize>,
        steps: &[WorkStep],
        at: Nanos,
    ) {
        let root = self.push_span(
            None,
            None,
            host,
            SpanKind::Background,
            label.to_string(),
            None,
            None,
            at,
            at,
        );
        let cur = self.steps(root, None, host, job, steps, at);
        let end = self.background_ends.get(&job).copied().unwrap_or(cur);
        self.spans[root].end = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn psp_step(label: &str, dur: Nanos) -> WorkStep {
        WorkStep::new(ResourceClass::Psp, PhaseKind::PreEncryption, label, dur)
    }

    #[test]
    fn disabled_recorder_builds_an_empty_log() {
        let mut rec = Recorder::disabled();
        assert!(!rec.on());
        rec.arrival(0, "c", ms(0));
        rec.terminal(0, Outcome::Completed, ms(5));
        let log = rec.build();
        assert!(log.spans.is_empty());
        assert!(log.outcomes.is_empty());
    }

    #[test]
    fn one_request_tree_tiles_queue_wait_and_steps() {
        let mut rec = Recorder::enabled();
        rec.arrival(0, "tiny", ms(0));
        rec.queued(0);
        let steps = vec![psp_step("LAUNCH", ms(4))];
        rec.attempt_start(0, 7, "tiny cold", None, steps, ms(2));
        rec.attempt_end(7, ms(8));
        rec.terminal(0, Outcome::Completed, ms(8));
        // The psp slot only freed at t=3: one extra wait inside the attempt.
        rec.occupy("psp", 7, ms(3), ms(7));
        // Padding the job with trailing cpu-free time up to t=8 is the
        // attempt-end's business; the step ends at 7, attempt end is 8.
        let log = rec.build();

        let root = log.request_root(0).expect("root");
        assert_eq!(root.kind, SpanKind::Request);
        assert_eq!(root.start, ms(0));
        assert_eq!(root.end, ms(8));
        let children = log.children(root.id);
        assert_eq!(children.len(), 2, "queue wait + attempt");
        assert_eq!(children[0].kind, SpanKind::Wait);
        assert_eq!(children[0].name, "queue wait");
        assert_eq!((children[0].start, children[0].end), (ms(0), ms(2)));
        let attempt = children[1];
        assert_eq!(attempt.kind, SpanKind::Attempt);
        assert_eq!((attempt.start, attempt.end), (ms(2), ms(8)));
        let inner = log.children(attempt.id);
        assert_eq!(inner.len(), 2, "resource wait + step");
        assert_eq!(inner[0].name, "wait psp");
        assert_eq!(inner[1].resource.as_deref(), Some("psp"));
        assert_eq!((inner[1].start, inner[1].end), (ms(3), ms(7)));
    }

    #[test]
    fn retry_backoff_appears_between_attempts() {
        let mut rec = Recorder::enabled();
        rec.arrival(3, "tiny", ms(0));
        rec.attempt_start(3, 0, "try 1", None, vec![psp_step("L", ms(2))], ms(0));
        rec.attempt_end(0, ms(2));
        rec.retry_wait(3, 1, ms(2), ms(5));
        rec.attempt_start(3, 1, "try 2", None, vec![psp_step("L", ms(2))], ms(5));
        rec.attempt_end(1, ms(7));
        rec.terminal(3, Outcome::Completed, ms(7));
        rec.occupy("psp", 0, ms(0), ms(2));
        rec.occupy("psp", 1, ms(5), ms(7));
        let log = rec.build();
        let root = log.request_root(3).unwrap();
        let kinds: Vec<SpanKind> = log.children(root.id).iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Attempt, SpanKind::Backoff, SpanKind::Attempt]
        );
        assert_eq!(log.retry_waits(), 1);
        let total: Nanos = log.leaves(3).iter().map(|s| s.duration()).sum();
        assert_eq!(total, root.duration(), "leaves partition the root");
    }

    #[test]
    fn shed_request_is_a_zero_length_tree() {
        let mut rec = Recorder::enabled();
        rec.arrival(1, "tiny", ms(4));
        rec.terminal(1, Outcome::Shed, ms(4));
        let log = rec.build();
        let root = log.request_root(1).unwrap();
        assert_eq!(root.duration(), Nanos::ZERO);
        assert_eq!(log.count_outcome(Outcome::Shed), 1);
        assert!(log.children(root.id).is_empty());
    }

    #[test]
    fn background_trees_carry_no_request() {
        let mut rec = Recorder::enabled();
        rec.background(9, "refill tiny", None, vec![psp_step("L", ms(3))], ms(1));
        rec.background_end(9, ms(4));
        rec.occupy("psp", 9, ms(1), ms(4));
        let log = rec.build();
        let root = log.roots().next().unwrap();
        assert_eq!(root.kind, SpanKind::Background);
        assert_eq!(root.request, None);
        assert_eq!(root.duration(), ms(3));
    }

    #[test]
    fn markers_count_by_kind() {
        let mut rec = Recorder::enabled();
        rec.fault(FaultKind::PspReset, Some(0), None, ms(1));
        rec.fault(FaultKind::PspReset, None, Some(2), ms(2));
        rec.marker(MarkerKind::Failover, Some(0), Some(1), ms(2));
        rec.marker(MarkerKind::Placement { host: 1 }, Some(0), Some(1), ms(0));
        let log = rec.build();
        assert_eq!(log.count_fault(FaultKind::PspReset), 2);
        assert_eq!(log.total_faults(), 2);
        assert_eq!(log.failovers(), 1);
        assert_eq!(log.count_marker(MarkerKind::Placement { host: 1 }), 1);
    }
}
