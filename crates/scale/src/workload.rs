//! Trace-driven workload curves: deterministic arrival-rate shapes.
//!
//! The fixed-rate open-loop generator the fleet ships
//! (`sevf_fleet::workload::open_arrivals`) models steady offered load; the
//! "millions of users" scenarios the autoscaler exists for do not look like
//! that. This module provides the planet-scale shapes as *rate curves* —
//! pure functions of `(config, t)` — behind one [`WorkloadCurve`] trait:
//!
//! * [`FixedRate`] — the old generator, verbatim ([`Workload::none`]).
//! * [`Diurnal`] — a sinusoidal day/night swing around a base rate.
//! * [`FlashCrowd`] — a fast ramp to a peak at `at`, decaying
//!   exponentially back toward base (the launch-day / breaking-news
//!   shape).
//! * [`RegionalFailover`] — a dead region's traffic folds onto the
//!   survivors: a linear ramp of `surge` extra req/s that *stays*.
//!
//! Arrival instants are drawn by the inverse time-change of a
//! non-homogeneous Poisson process: unit-rate exponential targets mapped
//! through the inverse cumulative rate [`Workload::cumulative`]. One RNG
//! draw per arrival, so every curve consumes the seed stream identically —
//! and the [`FixedRate`] path reproduces the fleet generator's per-gap
//! rounding exactly, byte for byte.
//!
//! [`ZipfTenants`] covers the *who* instead of the *when*: a tenant-skew
//! sampler whose top-tenant share is monotone in the exponent.

use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

use crate::{CurveError, ScaleError};

/// A deterministic arrival-rate curve: offered req/s as a pure function of
/// virtual time.
pub trait WorkloadCurve {
    /// Offered rate (req/s) at instant `t`.
    fn rate_at(&self, t: Nanos) -> f64;

    /// Expected arrivals in `[0, t]` — the analytic integral of
    /// [`WorkloadCurve::rate_at`]. Must be continuous and strictly
    /// increasing (rates are validated positive).
    fn cumulative(&self, t: Nanos) -> f64;

    /// The curve's maximum instantaneous rate (envelope of the shape).
    fn peak_rate(&self) -> f64;

    /// Stable display name.
    fn name(&self) -> &'static str;

    /// The constant rate when the curve is flat, else `None`. Flat curves
    /// take the fleet generator's exact per-gap path so `none()` replays
    /// the pre-curve arrivals byte for byte.
    fn fixed_rate(&self) -> Option<f64> {
        None
    }
}

/// The old fixed-rate open-loop generator as a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedRate {
    /// Offered load in req/s.
    pub rate_per_sec: f64,
}

impl WorkloadCurve for FixedRate {
    fn rate_at(&self, _t: Nanos) -> f64 {
        self.rate_per_sec
    }

    fn cumulative(&self, t: Nanos) -> f64 {
        self.rate_per_sec * t.as_secs_f64()
    }

    fn peak_rate(&self) -> f64 {
        self.rate_per_sec
    }

    fn name(&self) -> &'static str {
        "fixed"
    }

    fn fixed_rate(&self) -> Option<f64> {
        Some(self.rate_per_sec)
    }
}

/// A day/night sinusoid: `base + amplitude * sin(2π t / period)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Mean offered load (req/s).
    pub base: f64,
    /// Swing around the base; must satisfy `0 <= amplitude <= base` so the
    /// rate never goes negative.
    pub amplitude: f64,
    /// One full day on the virtual clock.
    pub period: Nanos,
}

impl WorkloadCurve for Diurnal {
    fn rate_at(&self, t: Nanos) -> f64 {
        let w = std::f64::consts::TAU / self.period.as_secs_f64();
        self.base + self.amplitude * (w * t.as_secs_f64()).sin()
    }

    fn cumulative(&self, t: Nanos) -> f64 {
        let w = std::f64::consts::TAU / self.period.as_secs_f64();
        let secs = t.as_secs_f64();
        self.base * secs + self.amplitude / w * (1.0 - (w * secs).cos())
    }

    fn peak_rate(&self) -> f64 {
        self.base + self.amplitude
    }

    fn name(&self) -> &'static str {
        "diurnal"
    }
}

/// A flash crowd: base rate until `at`, a linear ramp from base to `peak`
/// over `ramp` (crowds spike fast but not in zero time — the rise is what a
/// forecaster can see), then the excess decays exponentially back toward
/// base with time constant `decay`. `ramp == 0` degenerates to an
/// instantaneous step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Quiet-period offered load (req/s).
    pub base: f64,
    /// Rate at the top of the ramp; bounds the curve.
    pub peak: f64,
    /// When the crowd starts building.
    pub at: Nanos,
    /// Rise time from base to peak (0 = instantaneous step).
    pub ramp: Nanos,
    /// Exponential decay time constant of the excess after the peak.
    pub decay: Nanos,
}

impl WorkloadCurve for FlashCrowd {
    fn rate_at(&self, t: Nanos) -> f64 {
        if t < self.at {
            return self.base;
        }
        let excess = self.peak - self.base;
        if t < self.at + self.ramp {
            let frac = (t - self.at).as_secs_f64() / self.ramp.as_secs_f64();
            return self.base + excess * frac;
        }
        let dt = (t - self.at - self.ramp).as_secs_f64();
        self.base + excess * (-dt / self.decay.as_secs_f64()).exp()
    }

    fn cumulative(&self, t: Nanos) -> f64 {
        let base_part = self.base * t.as_secs_f64();
        if t < self.at {
            return base_part;
        }
        let excess = self.peak - self.base;
        let ramp = self.ramp.as_secs_f64();
        if t < self.at + self.ramp {
            let dt = (t - self.at).as_secs_f64();
            return base_part + excess * dt * dt / (2.0 * ramp);
        }
        let dt = (t - self.at - self.ramp).as_secs_f64();
        let tau = self.decay.as_secs_f64();
        base_part + excess * (ramp / 2.0 + tau * (1.0 - (-dt / tau).exp()))
    }

    fn peak_rate(&self) -> f64 {
        self.peak
    }

    fn name(&self) -> &'static str {
        "flash-crowd"
    }
}

/// A regional failover: at `at` a dead region's `surge` req/s folds onto
/// the survivors, ramping in linearly over `ramp` and then staying for the
/// rest of the run (the region does not come back within the horizon).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionalFailover {
    /// The surviving region's own offered load (req/s).
    pub base: f64,
    /// The dead region's folded-over load once fully ramped (req/s).
    pub surge: f64,
    /// When the region dies.
    pub at: Nanos,
    /// DNS/anycast convergence time: the fold-in ramp duration.
    pub ramp: Nanos,
}

impl WorkloadCurve for RegionalFailover {
    fn rate_at(&self, t: Nanos) -> f64 {
        if t < self.at {
            return self.base;
        }
        let frac = ((t - self.at).as_secs_f64() / self.ramp.as_secs_f64()).min(1.0);
        self.base + self.surge * frac
    }

    fn cumulative(&self, t: Nanos) -> f64 {
        let base_part = self.base * t.as_secs_f64();
        if t < self.at {
            return base_part;
        }
        let dt = (t - self.at).as_secs_f64();
        let ramp = self.ramp.as_secs_f64();
        if dt < ramp {
            base_part + self.surge * dt * dt / (2.0 * ramp)
        } else {
            base_part + self.surge * (ramp / 2.0 + (dt - ramp))
        }
    }

    fn peak_rate(&self) -> f64 {
        self.base + self.surge
    }

    fn name(&self) -> &'static str {
        "regional-failover"
    }
}

/// The config-friendly sum of every curve shape (Clone + compare, so it
/// can sit in a `ClusterConfig` field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Constant rate — the old generator ([`Workload::none`]).
    Fixed(FixedRate),
    /// Day/night sinusoid.
    Diurnal(Diurnal),
    /// Step + exponential decay.
    FlashCrowd(FlashCrowd),
    /// Dead-region fold-over surge.
    RegionalFailover(RegionalFailover),
}

impl Workload {
    /// No curve shaping: a flat rate identical to the fleet's fixed-rate
    /// generator (same draws, same per-gap rounding, same bytes).
    pub fn none(rate_per_sec: f64) -> Self {
        Workload::Fixed(FixedRate { rate_per_sec })
    }

    /// Checks the shape's knobs.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ScaleError::Workload`].
    pub fn validate(&self) -> Result<(), ScaleError> {
        let bad = |e| Err(ScaleError::Workload(e));
        match self {
            Workload::Fixed(c) => {
                if !(c.rate_per_sec.is_finite() && c.rate_per_sec > 0.0) {
                    return bad(CurveError::RateNotPositive);
                }
            }
            Workload::Diurnal(c) => {
                if !(c.base.is_finite() && c.base > 0.0) {
                    return bad(CurveError::RateNotPositive);
                }
                if !(c.amplitude.is_finite() && c.amplitude >= 0.0) || c.amplitude > c.base {
                    return bad(CurveError::AmplitudeExceedsBase);
                }
                if c.period == Nanos::ZERO {
                    return bad(CurveError::PeriodZero);
                }
            }
            Workload::FlashCrowd(c) => {
                if !(c.base.is_finite() && c.base > 0.0) {
                    return bad(CurveError::RateNotPositive);
                }
                if !(c.peak.is_finite()) || c.peak < c.base {
                    return bad(CurveError::PeakBelowBase);
                }
                if c.decay == Nanos::ZERO {
                    return bad(CurveError::PeriodZero);
                }
            }
            Workload::RegionalFailover(c) => {
                if !(c.base.is_finite() && c.base > 0.0) {
                    return bad(CurveError::RateNotPositive);
                }
                if !(c.surge.is_finite() && c.surge >= 0.0) {
                    return bad(CurveError::RateNotPositive);
                }
                if c.ramp == Nanos::ZERO {
                    return bad(CurveError::PeriodZero);
                }
            }
        }
        Ok(())
    }
}

impl WorkloadCurve for Workload {
    fn rate_at(&self, t: Nanos) -> f64 {
        match self {
            Workload::Fixed(c) => c.rate_at(t),
            Workload::Diurnal(c) => c.rate_at(t),
            Workload::FlashCrowd(c) => c.rate_at(t),
            Workload::RegionalFailover(c) => c.rate_at(t),
        }
    }

    fn cumulative(&self, t: Nanos) -> f64 {
        match self {
            Workload::Fixed(c) => c.cumulative(t),
            Workload::Diurnal(c) => c.cumulative(t),
            Workload::FlashCrowd(c) => c.cumulative(t),
            Workload::RegionalFailover(c) => c.cumulative(t),
        }
    }

    fn peak_rate(&self) -> f64 {
        match self {
            Workload::Fixed(c) => c.peak_rate(),
            Workload::Diurnal(c) => c.peak_rate(),
            Workload::FlashCrowd(c) => c.peak_rate(),
            Workload::RegionalFailover(c) => c.peak_rate(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Workload::Fixed(c) => c.name(),
            Workload::Diurnal(c) => c.name(),
            Workload::FlashCrowd(c) => c.name(),
            Workload::RegionalFailover(c) => c.name(),
        }
    }

    fn fixed_rate(&self) -> Option<f64> {
        match self {
            Workload::Fixed(c) => c.fixed_rate(),
            _ => None,
        }
    }
}

/// Inverts `curve.cumulative(t) == target` by bisection. The cumulative is
/// strictly increasing (validated rates are positive), so the root is
/// unique; 64 halvings of a nanosecond-granular bracket converge exactly.
fn invert_cumulative(curve: &impl WorkloadCurve, target: f64) -> Nanos {
    let mut hi = Nanos::from_secs(1);
    while curve.cumulative(hi) < target {
        hi = hi.scale(2);
    }
    let mut lo = 0u64;
    let mut hi = hi.as_nanos();
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if curve.cumulative(Nanos::from_nanos(mid)) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Nanos::from_nanos(hi)
}

/// Cumulative arrival instants for `n` requests offered along `curve`.
///
/// Non-homogeneous Poisson sampling by inverse time-change: each arrival
/// draws one unit-rate exponential (`-(1 - u).ln()`), accumulates it into a
/// cumulative target, and maps the target through the inverse of
/// [`WorkloadCurve::cumulative`]. Exactly one `next_f64` per arrival for
/// every shape — curves never perturb downstream seed streams relative to
/// each other — and a flat curve short-circuits to the fleet generator's
/// per-gap formula, reproducing its rounding byte for byte.
pub fn curve_arrivals(curve: &Workload, n: usize, rng: &mut XorShift64) -> Vec<Nanos> {
    if let Some(rate) = curve.fixed_rate() {
        // The fleet's `open_arrivals` contract: round each gap to nanos,
        // then sum. Kept gap-exact so `Workload::none` replays the old
        // generator's arrivals without a single differing byte.
        let mut t = Nanos::ZERO;
        return (0..n)
            .map(|_| {
                let u = rng.next_f64();
                let secs = -(1.0 - u).ln() / rate;
                t += Nanos::from_nanos((secs * 1e9).round() as u64);
                t
            })
            .collect();
    }
    let mut acc = 0.0;
    let mut last = Nanos::ZERO;
    (0..n)
        .map(|_| {
            let u = rng.next_f64();
            acc += -(1.0 - u).ln();
            let t = invert_cumulative(curve, acc);
            // Monotonicity under f64 rounding: arrivals never go backwards.
            last = last.max(t.max(last + Nanos::from_nanos(1)));
            last
        })
        .collect()
}

/// A Zipf-skewed tenant sampler: tenant `k` (0-based) carries weight
/// `1 / (k + 1)^exponent`. Exponent 0 is uniform; larger exponents
/// concentrate the stream on the head tenants — the share of tenant 0 is
/// strictly monotone in the exponent (property-tested).
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfTenants {
    weights: Vec<f64>,
    total: f64,
}

impl ZipfTenants {
    /// Builds the sampler over `tenants` tenants at `exponent` skew.
    ///
    /// # Errors
    ///
    /// [`ScaleError::Workload`] when there are no tenants or the exponent
    /// is not a finite non-negative number.
    pub fn new(tenants: usize, exponent: f64) -> Result<Self, ScaleError> {
        if tenants == 0 {
            return Err(ScaleError::Workload(CurveError::NoTenants));
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(ScaleError::Workload(CurveError::BadExponent));
        }
        let weights: Vec<f64> = (0..tenants)
            .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
            .collect();
        let total = weights.iter().sum();
        Ok(ZipfTenants { weights, total })
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.weights.len()
    }

    /// Tenant `k`'s share of the stream, in `[0, 1]`.
    pub fn share(&self, tenant: usize) -> f64 {
        self.weights[tenant] / self.total
    }

    /// Splits a total offered rate into per-tenant rates by share.
    pub fn rates(&self, total_rate: f64) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| total_rate * w / self.total)
            .collect()
    }

    /// Samples one tenant index, proportionally to Zipf weight. One draw.
    pub fn sample(&self, rng: &mut XorShift64) -> usize {
        let ticket = rng.next_f64() * self.total;
        let mut acc = 0.0;
        for (tenant, w) in self.weights.iter().enumerate() {
            acc += w;
            if ticket < acc {
                return tenant;
            }
        }
        self.weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash() -> Workload {
        Workload::FlashCrowd(FlashCrowd {
            base: 40.0,
            peak: 400.0,
            at: Nanos::from_secs(1),
            ramp: Nanos::from_millis(600),
            decay: Nanos::from_millis(1500),
        })
    }

    #[test]
    fn cumulative_matches_numeric_integral_of_rate() {
        let curves = [
            Workload::none(80.0),
            Workload::Diurnal(Diurnal {
                base: 100.0,
                amplitude: 60.0,
                period: Nanos::from_secs(4),
            }),
            flash(),
            // The ramp-zero degenerate: an instantaneous step.
            Workload::FlashCrowd(FlashCrowd {
                base: 40.0,
                peak: 400.0,
                at: Nanos::from_secs(1),
                ramp: Nanos::ZERO,
                decay: Nanos::from_millis(1500),
            }),
            Workload::RegionalFailover(RegionalFailover {
                base: 50.0,
                surge: 120.0,
                at: Nanos::from_secs(1),
                ramp: Nanos::from_millis(500),
            }),
        ];
        for curve in &curves {
            curve.validate().unwrap();
            let horizon = Nanos::from_secs(5);
            let steps = 50_000;
            let dt = horizon.as_secs_f64() / steps as f64;
            let mut sum = 0.0;
            for i in 0..steps {
                let mid = Nanos::from_nanos((((i as f64) + 0.5) * dt * 1e9) as u64);
                sum += curve.rate_at(mid) * dt;
            }
            let analytic = curve.cumulative(horizon);
            assert!(
                (sum - analytic).abs() < 1e-2 * analytic.max(1.0),
                "{}: numeric {sum} vs analytic {analytic}",
                curve.name()
            );
        }
    }

    #[test]
    fn inversion_round_trips_the_cumulative() {
        let curve = flash();
        for target in [1.0, 37.5, 120.0, 512.0] {
            let t = invert_cumulative(&curve, target);
            let back = curve.cumulative(t);
            assert!(
                (back - target).abs() < 1e-3,
                "target {target} inverted to {t} whose cumulative is {back}"
            );
        }
    }

    #[test]
    fn one_draw_per_arrival_for_every_shape() {
        // Curves must consume the seed stream identically so swapping the
        // shape never perturbs draws made after arrival generation.
        let shapes = [Workload::none(50.0), flash()];
        let mut after = Vec::new();
        for shape in &shapes {
            let mut rng = XorShift64::new(99);
            let _ = curve_arrivals(shape, 64, &mut rng);
            after.push(rng.next_f64());
        }
        assert_eq!(after[0], after[1]);
    }

    #[test]
    fn validation_rejects_each_bad_knob() {
        assert!(Workload::none(0.0).validate().is_err());
        assert!(Workload::Diurnal(Diurnal {
            base: 10.0,
            amplitude: 11.0,
            period: Nanos::from_secs(1),
        })
        .validate()
        .is_err());
        assert!(Workload::FlashCrowd(FlashCrowd {
            base: 10.0,
            peak: 5.0,
            at: Nanos::ZERO,
            ramp: Nanos::ZERO,
            decay: Nanos::from_secs(1),
        })
        .validate()
        .is_err());
        assert!(Workload::RegionalFailover(RegionalFailover {
            base: 10.0,
            surge: 5.0,
            at: Nanos::ZERO,
            ramp: Nanos::ZERO,
        })
        .validate()
        .is_err());
        assert!(ZipfTenants::new(0, 1.0).is_err());
        assert!(ZipfTenants::new(3, f64::NAN).is_err());
    }

    #[test]
    fn zipf_shares_sum_to_one_and_rates_split_the_total() {
        let z = ZipfTenants::new(5, 1.2).unwrap();
        let total: f64 = (0..5).map(|k| z.share(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let rates = z.rates(200.0);
        assert!((rates.iter().sum::<f64>() - 200.0).abs() < 1e-9);
        assert!(rates[0] > rates[4]);
    }
}
