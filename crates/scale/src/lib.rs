//! sevf-scale: trace-driven workload curves and the cluster autoscaler.
//!
//! ROADMAP item 1 ("millions of users"): the cluster's membership and
//! warm-pool targets were static inputs, so no amount of per-request
//! fast-start machinery could absorb a flash crowd — pre-provisioning,
//! not per-request speed, is what holds tail latency through a ramp.
//! This crate supplies both halves:
//!
//! * [`workload`] — deterministic arrival-rate curves (diurnal sinusoid,
//!   flash crowd, regional-failover surge, Zipf tenant skew) as pure
//!   functions of `(config, t)` behind the [`WorkloadCurve`] trait, with
//!   non-homogeneous Poisson arrival sampling that consumes exactly one
//!   RNG draw per arrival for every shape. [`Workload::none`] reproduces
//!   the old fixed-rate generator byte for byte.
//! * [`autoscaler`] — a pure, RNG-free decision engine with a reactive
//!   (backlog thresholds + cooldown hysteresis) and a predictive
//!   (windowed rate forecast + pool pre-warming) policy. The cluster
//!   layer applies its [`Decision`]s through the existing graceful
//!   join/leave paths.
//!
//! Deliberately dependency-light: sevf-sim only, for time and RNG —
//! obs markers (ScaleOut/ScaleIn/PreWarm) are emitted by the cluster
//! layer when it applies decisions, so this crate sits under
//! `sevf-cluster` without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod autoscaler;
pub mod workload;

pub use autoscaler::{
    Autoscaler, AutoscalerConfig, Decision, Observation, ScaleAction, ScaleCounters, ScalePolicy,
};
pub use workload::{
    curve_arrivals, Diurnal, FixedRate, FlashCrowd, RegionalFailover, Workload, WorkloadCurve,
    ZipfTenants,
};

/// Why a workload curve's shape knobs are unusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveError {
    /// A rate knob is zero, negative, or non-finite.
    RateNotPositive,
    /// A diurnal amplitude exceeds its base (the rate would go negative).
    AmplitudeExceedsBase,
    /// A period, decay, or ramp duration is zero.
    PeriodZero,
    /// A flash-crowd peak sits below its base rate.
    PeakBelowBase,
    /// A Zipf sampler over zero tenants.
    NoTenants,
    /// A Zipf exponent that is negative or non-finite.
    BadExponent,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            CurveError::RateNotPositive => "rate must be positive and finite",
            CurveError::AmplitudeExceedsBase => "amplitude must be within [0, base]",
            CurveError::PeriodZero => "period, decay, and ramp durations must be positive",
            CurveError::PeakBelowBase => "peak rate must be at least the base rate",
            CurveError::NoTenants => "at least one tenant is required",
            CurveError::BadExponent => "zipf exponent must be finite and non-negative",
        };
        write!(f, "{what}")
    }
}

impl Error for CurveError {}

/// Everything that can go wrong configuring the scaling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleError {
    /// An autoscaler knob violated a constraint.
    Config(&'static str),
    /// A workload curve's shape knobs are unusable.
    Workload(CurveError),
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleError::Config(what) => write!(f, "invalid autoscaler config: {what}"),
            ScaleError::Workload(e) => write!(f, "invalid workload curve: {e}"),
        }
    }
}

impl Error for ScaleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScaleError::Config(_) => None,
            ScaleError::Workload(e) => Some(e),
        }
    }
}

impl From<CurveError> for ScaleError {
    fn from(e: CurveError) -> Self {
        ScaleError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let leaf = CurveError::PeakBelowBase;
        let wrapped = ScaleError::from(leaf);
        assert!(wrapped.to_string().contains("invalid workload curve"));
        assert_eq!(
            wrapped.source().unwrap().to_string(),
            leaf.to_string(),
            "the wrapper must expose the leaf as its source"
        );
        assert!(ScaleError::Config("x").source().is_none());
    }
}
