//! The autoscaler: reactive and predictive scaling decisions from load.
//!
//! The scaler owns no cluster state — it is a pure decision engine. Each
//! control tick the host layer hands it an [`Observation`] (live hosts,
//! arrivals since the last tick, committed PSP backlog, queued requests)
//! and gets back a [`Decision`]: hold, scale out by `n`, or scale in by
//! `n`, optionally with a per-host warm-pool prescription to apply first.
//!
//! Two policies:
//!
//! * **Reactive** scales out when per-host PSP backlog crosses
//!   `backlog_out` (the queue is already hurting) and scales in when it
//!   drops under `backlog_in` *and* fewer hosts would still carry the
//!   observed rate. Classic threshold control with cooldown hysteresis.
//! * **Predictive** keeps a sliding window of observed rates, extrapolates
//!   the ramp `lead` ahead, and provisions for the forecast — pre-warming
//!   pools on the hosts it is about to need, because a warm boot is ~free
//!   while a cold SEV launch is pinned at the measured per-host ceiling.
//!
//! Decisions are deterministic (no RNG anywhere in this module) and every
//! emitted non-hold decision increments exactly one counter, so obs marker
//! counts can be checked against the counters exactly.

use sevf_sim::Nanos;

use crate::ScaleError;

/// Which control law drives the scaler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePolicy {
    /// Threshold control on observed PSP backlog with cooldown hysteresis.
    Reactive,
    /// Windowed rate forecast; pre-provisions hosts and pre-warms pools
    /// `lead` ahead of the ramp.
    Predictive {
        /// Sliding-window length, in ticks, of the rate history.
        window: usize,
        /// How far ahead of "now" to provision for.
        lead: Nanos,
    },
}

impl ScalePolicy {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            ScalePolicy::Reactive => "reactive",
            ScalePolicy::Predictive { .. } => "predictive",
        }
    }
}

/// Autoscaler knobs. Build with [`AutoscalerConfig::reactive`] or
/// [`AutoscalerConfig::predictive`] and adjust fields as needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Floor on live hosts; scale-in never drains below this.
    pub min_hosts: usize,
    /// Ceiling on live hosts; scale-out never exceeds this.
    pub max_hosts: usize,
    /// The control law.
    pub policy: ScalePolicy,
    /// Control-loop period: one [`Observation`] per tick.
    pub tick: Nanos,
    /// Minimum spacing between consecutive non-hold decisions.
    pub cooldown: Nanos,
    /// Sustainable serving rate of one host (req/s) — the paper's cold
    /// SEV ceiling (~34 req/s/host) unless pools keep boots warm.
    pub host_rps: f64,
    /// Per-host committed PSP backlog (queued launch work) above which the
    /// reactive law scales out.
    pub backlog_out: f64,
    /// Per-host backlog below which the reactive law considers scale-in.
    pub backlog_in: f64,
    /// Total warm-slot budget the scaler spreads across live hosts via
    /// pre-warm prescriptions.
    pub warm_budget: usize,
}

impl AutoscalerConfig {
    /// A reactive scaler over `[min_hosts, max_hosts]`.
    pub fn reactive(min_hosts: usize, max_hosts: usize) -> Self {
        AutoscalerConfig {
            min_hosts,
            max_hosts,
            policy: ScalePolicy::Reactive,
            tick: Nanos::from_millis(200),
            cooldown: Nanos::from_millis(400),
            host_rps: 34.0,
            backlog_out: 3.0,
            backlog_in: 0.5,
            warm_budget: 8 * max_hosts,
        }
    }

    /// A predictive scaler over `[min_hosts, max_hosts]`.
    pub fn predictive(min_hosts: usize, max_hosts: usize) -> Self {
        AutoscalerConfig {
            policy: ScalePolicy::Predictive {
                window: 5,
                lead: Nanos::from_millis(600),
            },
            ..AutoscalerConfig::reactive(min_hosts, max_hosts)
        }
    }

    /// Checks the knobs.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ScaleError::Config`].
    pub fn validate(&self) -> Result<(), ScaleError> {
        if self.min_hosts == 0 {
            return Err(ScaleError::Config("min_hosts must be at least 1"));
        }
        if self.max_hosts < self.min_hosts {
            return Err(ScaleError::Config("max_hosts must be >= min_hosts"));
        }
        if self.tick == Nanos::ZERO {
            return Err(ScaleError::Config("tick must be positive"));
        }
        if !(self.host_rps.is_finite() && self.host_rps > 0.0) {
            return Err(ScaleError::Config("host_rps must be positive"));
        }
        if !(self.backlog_out.is_finite() && self.backlog_out > 0.0) {
            return Err(ScaleError::Config("backlog_out must be positive"));
        }
        if !self.backlog_in.is_finite()
            || self.backlog_in < 0.0
            || self.backlog_in >= self.backlog_out
        {
            return Err(ScaleError::Config("backlog_in must be in [0, backlog_out)"));
        }
        if let ScalePolicy::Predictive { window, lead } = self.policy {
            if window == 0 {
                return Err(ScaleError::Config("forecast window must be at least 1"));
            }
            if lead == Nanos::ZERO {
                return Err(ScaleError::Config("forecast lead must be positive"));
            }
        }
        Ok(())
    }
}

/// One control-tick snapshot of cluster load, fed to [`Autoscaler::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Virtual time of the tick.
    pub now: Nanos,
    /// Hosts currently serving (available, not draining).
    pub live_hosts: usize,
    /// Requests that arrived since the previous tick.
    pub arrivals: usize,
    /// Total committed PSP launch work queued across live hosts.
    pub backlog: usize,
    /// Requests sitting in host dispatch queues.
    pub queued: usize,
}

/// The membership component of a [`Decision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// No membership change this tick.
    Hold,
    /// Join `add` spare hosts via the graceful-join path.
    ScaleOut {
        /// How many hosts to add.
        add: usize,
    },
    /// Drain `remove` hosts via the graceful-leave path.
    ScaleIn {
        /// How many hosts to drain.
        remove: usize,
    },
}

/// What the scaler wants done this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Membership change, if any.
    pub action: ScaleAction,
    /// New per-host warm-pool target to apply to live hosts before the
    /// membership change, when the prescription moved.
    pub prewarm: Option<usize>,
}

impl Decision {
    /// A no-op decision.
    pub const HOLD: Decision = Decision {
        action: ScaleAction::Hold,
        prewarm: None,
    };
}

/// Monotone counters of emitted decisions; obs markers must match these
/// exactly (checked by `tests/observability.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScaleCounters {
    /// Control ticks processed.
    pub ticks: u64,
    /// Scale-out decisions emitted.
    pub scale_outs: u64,
    /// Scale-in decisions emitted.
    pub scale_ins: u64,
    /// Pre-warm prescriptions emitted.
    pub prewarms: u64,
}

/// The decision engine. Deterministic, RNG-free; all cluster state arrives
/// through [`Observation`]s.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    /// Observed rate per tick, most recent last, bounded by the forecast
    /// window (reactive keeps one entry for the scale-in sufficiency check).
    rates: Vec<f64>,
    /// Time of the last non-hold decision; cooldown gates against it.
    last_change: Option<Nanos>,
    /// Last per-host warm prescription emitted, to avoid re-prescribing.
    last_prewarm: Option<usize>,
    counters: ScaleCounters,
}

impl Autoscaler {
    /// Builds the engine after validating `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`AutoscalerConfig::validate`].
    pub fn new(config: AutoscalerConfig) -> Result<Self, ScaleError> {
        config.validate()?;
        Ok(Autoscaler {
            config,
            rates: Vec::new(),
            last_change: None,
            last_prewarm: None,
            counters: ScaleCounters::default(),
        })
    }

    /// The validated knobs.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Decision counters so far.
    pub fn counters(&self) -> ScaleCounters {
        self.counters
    }

    /// The most recent warm prescription, for budget rebalancing after
    /// membership churn the scaler itself caused.
    pub fn last_prewarm(&self) -> Option<usize> {
        self.last_prewarm
    }

    /// Observed rate in req/s over the window (reactive: the last tick).
    fn observed_rate(&self) -> f64 {
        if self.rates.is_empty() {
            return 0.0;
        }
        self.rates.iter().sum::<f64>() / self.rates.len() as f64
    }

    /// Linear-trend forecast `lead` ahead of now, floored at the current
    /// windowed rate so a falling edge never under-provisions mid-ramp.
    fn forecast(&self, window: usize, lead: Nanos) -> f64 {
        let mean = self.observed_rate();
        if self.rates.len() < 2 {
            return mean;
        }
        let n = self.rates.len() as f64;
        // Least-squares slope over tick indices 0..n.
        let mean_x = (n - 1.0) / 2.0;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, r) in self.rates.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (r - mean);
            den += dx * dx;
        }
        let slope_per_tick = if den > 0.0 { num / den } else { 0.0 };
        let lead_ticks = lead.as_secs_f64() / self.config.tick.as_secs_f64();
        let _ = window;
        (mean + slope_per_tick * ((n - 1.0) / 2.0 + lead_ticks)).max(mean)
    }

    /// Hosts needed to carry `rate` at the configured per-host ceiling,
    /// clamped to `[min_hosts, max_hosts]`.
    fn hosts_for(&self, rate: f64) -> usize {
        let need = (rate / self.config.host_rps).ceil() as usize;
        need.clamp(self.config.min_hosts, self.config.max_hosts)
    }

    /// Processes one control tick. Exactly one counter increments per
    /// emitted non-hold action and per emitted prescription.
    pub fn tick(&mut self, obs: &Observation) -> Decision {
        self.counters.ticks += 1;
        let tick_secs = self.config.tick.as_secs_f64();
        let rate = obs.arrivals as f64 / tick_secs;
        let window = match self.config.policy {
            ScalePolicy::Predictive { window, .. } => window,
            ScalePolicy::Reactive => 1,
        };
        self.rates.push(rate);
        if self.rates.len() > window {
            self.rates.remove(0);
        }

        let live = obs.live_hosts.max(1);
        let desired = match self.config.policy {
            ScalePolicy::Reactive => {
                let per_host_backlog = (obs.backlog + obs.queued) as f64 / live as f64;
                if per_host_backlog > self.config.backlog_out {
                    // The queue is already hurting: provision for the
                    // observed rate, but always at least one host more.
                    self.hosts_for(self.observed_rate()).max(obs.live_hosts + 1)
                } else if per_host_backlog < self.config.backlog_in
                    && self.hosts_for(self.observed_rate()) < obs.live_hosts
                {
                    obs.live_hosts - 1
                } else {
                    obs.live_hosts
                }
            }
            ScalePolicy::Predictive { window, lead } => self.hosts_for(self.forecast(window, lead)),
        };
        let desired = desired.clamp(self.config.min_hosts, self.config.max_hosts);

        let mut action = if desired > obs.live_hosts {
            ScaleAction::ScaleOut {
                add: desired - obs.live_hosts,
            }
        } else if desired < obs.live_hosts {
            ScaleAction::ScaleIn {
                remove: obs.live_hosts - desired,
            }
        } else {
            ScaleAction::Hold
        };

        // Cooldown hysteresis: demote to Hold when the last membership
        // change is too recent. Pre-warm is exempt — warming slots ahead
        // of the ramp is exactly what the predictive law is for.
        if action != ScaleAction::Hold {
            if let Some(last) = self.last_change {
                if obs.now.saturating_sub(last) < self.config.cooldown {
                    action = ScaleAction::Hold;
                }
            }
        }

        let prewarm = {
            // Prescribe warm slots for the host count this tick will leave
            // behind, spreading the fixed budget evenly.
            let target_hosts = match action {
                ScaleAction::ScaleOut { add } => obs.live_hosts + add,
                ScaleAction::ScaleIn { remove } => obs.live_hosts - remove,
                ScaleAction::Hold => obs.live_hosts,
            }
            .max(1);
            let per_host = self.config.warm_budget.div_ceil(target_hosts);
            if self.last_prewarm != Some(per_host) {
                self.last_prewarm = Some(per_host);
                Some(per_host)
            } else {
                None
            }
        };

        match action {
            ScaleAction::ScaleOut { .. } => {
                self.counters.scale_outs += 1;
                self.last_change = Some(obs.now);
            }
            ScaleAction::ScaleIn { .. } => {
                self.counters.scale_ins += 1;
                self.last_change = Some(obs.now);
            }
            ScaleAction::Hold => {}
        }
        if prewarm.is_some() {
            self.counters.prewarms += 1;
        }

        Decision { action, prewarm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_ms: u64, live: usize, arrivals: usize, backlog: usize) -> Observation {
        Observation {
            now: Nanos::from_millis(now_ms),
            live_hosts: live,
            arrivals,
            backlog,
            queued: 0,
        }
    }

    #[test]
    fn reactive_scales_out_on_backlog_and_in_when_quiet() {
        let mut auto = Autoscaler::new(AutoscalerConfig::reactive(2, 8)).unwrap();
        // Heavy backlog: 10 launches queued across 2 hosts > backlog_out 3.
        let d = auto.tick(&obs(0, 2, 40, 10));
        assert!(matches!(d.action, ScaleAction::ScaleOut { add } if add >= 1));
        // Cooldown: an immediate follow-up is demoted to Hold.
        let d = auto.tick(&obs(200, 3, 40, 10));
        assert_eq!(d.action, ScaleAction::Hold);
        // After cooldown with an empty backlog and a trickle rate, one
        // host drains at a time, never below min_hosts.
        let d = auto.tick(&obs(1000, 6, 1, 0));
        assert_eq!(d.action, ScaleAction::ScaleIn { remove: 1 });
        let mut live = 5;
        let mut at = 2000;
        while live > 2 {
            let d = auto.tick(&obs(at, live, 1, 0));
            if let ScaleAction::ScaleIn { remove } = d.action {
                live -= remove;
            }
            at += 500;
        }
        let d = auto.tick(&obs(at, 2, 1, 0));
        assert_eq!(d.action, ScaleAction::Hold, "never drains below min_hosts");
    }

    #[test]
    fn predictive_provisions_ahead_of_a_ramp() {
        let mut auto = Autoscaler::new(AutoscalerConfig::predictive(2, 10)).unwrap();
        // Rate doubling every tick (200 ms): 8, 16, 32, 64 arrivals.
        let mut live = 2;
        let mut outs = 0;
        for (i, arrivals) in [8usize, 16, 32, 64].iter().enumerate() {
            let d = auto.tick(&obs(i as u64 * 200 + 1000, live, *arrivals, 0));
            if let ScaleAction::ScaleOut { add } = d.action {
                live += add;
                outs += 1;
            }
        }
        assert!(outs >= 1, "a doubling ramp must trigger scale-out");
        // The forecast provisions beyond the currently observed need.
        let observed_need = (64.0 / 0.2 / 34.0_f64).ceil() as usize;
        assert!(
            live >= observed_need.min(10),
            "live {live} must cover the extrapolated rate"
        );
    }

    #[test]
    fn counters_match_emitted_decisions_exactly() {
        let mut auto = Autoscaler::new(AutoscalerConfig::reactive(1, 6)).unwrap();
        let mut outs = 0u64;
        let mut ins = 0u64;
        let mut warms = 0u64;
        let mut live = 2;
        for i in 0..40u64 {
            let arrivals = if i < 20 { 60 } else { 1 };
            let backlog = if i < 20 { 12 } else { 0 };
            let d = auto.tick(&obs(i * 500, live, arrivals, backlog));
            match d.action {
                ScaleAction::ScaleOut { add } => {
                    outs += 1;
                    live = (live + add).min(6);
                }
                ScaleAction::ScaleIn { remove } => {
                    ins += 1;
                    live -= remove;
                }
                ScaleAction::Hold => {}
            }
            if d.prewarm.is_some() {
                warms += 1;
            }
        }
        let c = auto.counters();
        assert_eq!(c.ticks, 40);
        assert_eq!(c.scale_outs, outs);
        assert_eq!(c.scale_ins, ins);
        assert_eq!(c.prewarms, warms);
        assert!(outs > 0 && ins > 0 && warms > 0);
    }

    #[test]
    fn cooldown_spacing_is_respected() {
        let cfg = AutoscalerConfig {
            cooldown: Nanos::from_millis(900),
            ..AutoscalerConfig::reactive(1, 8)
        };
        let mut auto = Autoscaler::new(cfg).unwrap();
        let mut changes = Vec::new();
        let mut live = 1;
        for i in 0..30u64 {
            let now = i * 200;
            let d = auto.tick(&obs(now, live, 30, 8));
            match d.action {
                ScaleAction::ScaleOut { add } => {
                    changes.push(now);
                    live = (live + add).min(8);
                }
                ScaleAction::ScaleIn { remove } => {
                    changes.push(now);
                    live -= remove;
                }
                ScaleAction::Hold => {}
            }
        }
        for pair in changes.windows(2) {
            assert!(
                pair[1] - pair[0] >= 900,
                "changes at {} and {} violate the 900 ms cooldown",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn validation_rejects_each_bad_knob() {
        let ok = AutoscalerConfig::reactive(2, 8);
        assert!(ok.validate().is_ok());
        let cases = [
            AutoscalerConfig { min_hosts: 0, ..ok },
            AutoscalerConfig { max_hosts: 1, ..ok },
            AutoscalerConfig {
                tick: Nanos::ZERO,
                ..ok
            },
            AutoscalerConfig {
                host_rps: 0.0,
                ..ok
            },
            AutoscalerConfig {
                backlog_out: 0.0,
                ..ok
            },
            AutoscalerConfig {
                backlog_in: 5.0,
                ..ok
            },
            AutoscalerConfig {
                policy: ScalePolicy::Predictive {
                    window: 0,
                    lead: Nanos::from_millis(100),
                },
                ..ok
            },
            AutoscalerConfig {
                policy: ScalePolicy::Predictive {
                    window: 4,
                    lead: Nanos::ZERO,
                },
                ..ok
            },
        ];
        for bad in cases {
            assert!(bad.validate().is_err(), "{bad:?} should fail validation");
        }
    }
}
