//! Seeded property battery over the workload curves and the tenant
//! sampler.
//!
//! Each property runs over a spread of fixed seeds (no ambient
//! randomness): determinism of the arrival generator, agreement between
//! issued arrival counts and the analytic rate integral, Zipf skew
//! monotone in the exponent, and the flash-crowd envelope bounding the
//! empirical arrival rate.

use sevf_scale::{
    curve_arrivals, Diurnal, FixedRate, FlashCrowd, RegionalFailover, Workload, WorkloadCurve,
    ZipfTenants,
};
use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

const SEEDS: [u64; 5] = [1, 0x5CA1E, 0xDEADBEEF, 42, 7_777_777];

fn shapes() -> Vec<Workload> {
    vec![
        Workload::Fixed(FixedRate {
            rate_per_sec: 120.0,
        }),
        Workload::Diurnal(Diurnal {
            base: 150.0,
            amplitude: 90.0,
            period: Nanos::from_secs(6),
        }),
        Workload::FlashCrowd(FlashCrowd {
            base: 60.0,
            peak: 600.0,
            at: Nanos::from_secs(2),
            ramp: Nanos::from_millis(800),
            decay: Nanos::from_secs(2),
        }),
        Workload::FlashCrowd(FlashCrowd {
            base: 60.0,
            peak: 600.0,
            at: Nanos::from_secs(2),
            ramp: Nanos::ZERO,
            decay: Nanos::from_secs(2),
        }),
        Workload::RegionalFailover(RegionalFailover {
            base: 80.0,
            surge: 240.0,
            at: Nanos::from_secs(1),
            ramp: Nanos::from_millis(700),
        }),
    ]
}

#[test]
fn arrivals_are_deterministic_per_seed_for_every_shape() {
    for shape in shapes() {
        shape.validate().unwrap();
        for seed in SEEDS {
            let a = curve_arrivals(&shape, 400, &mut XorShift64::new(seed));
            let b = curve_arrivals(&shape, 400, &mut XorShift64::new(seed));
            assert_eq!(a, b, "{} replayed differently at seed {seed}", shape.name());
            // A different seed must actually produce a different trace —
            // the generator is seeded, not constant.
            let c = curve_arrivals(&shape, 400, &mut XorShift64::new(seed ^ 0xA5A5));
            assert_ne!(a, c, "{} ignored its seed", shape.name());
        }
    }
}

#[test]
fn arrivals_are_strictly_increasing() {
    for shape in shapes() {
        for seed in SEEDS {
            let arrivals = curve_arrivals(&shape, 600, &mut XorShift64::new(seed));
            for w in arrivals.windows(2) {
                assert!(
                    w[0] <= w[1],
                    "{} emitted a time-travelling arrival at seed {seed}",
                    shape.name()
                );
            }
        }
    }
}

/// The inverse time-change construction means the cumulative rate
/// evaluated at the n-th arrival is a unit-rate Poisson sum of n
/// exponentials: mean n, standard deviation sqrt(n). Five standard
/// deviations over five seeds keeps the flake probability negligible
/// while still catching any systematic integral drift.
#[test]
fn issued_count_tracks_the_rate_integral() {
    let n = 1500usize;
    for shape in shapes() {
        for seed in SEEDS {
            let arrivals = curve_arrivals(&shape, n, &mut XorShift64::new(seed));
            let last = *arrivals.last().unwrap();
            let expected = shape.cumulative(last);
            let slack = 5.0 * (n as f64).sqrt();
            assert!(
                (expected - n as f64).abs() < slack,
                "{} at seed {seed}: integral {expected:.1} vs {n} issued (slack {slack:.1})",
                shape.name()
            );
        }
    }
}

/// Over any window, arrivals cannot outpace the curve's analytic
/// cumulative by more than sampling noise: the flash-crowd envelope is a
/// real bound, not a label.
#[test]
fn flash_crowd_windowed_rate_respects_the_envelope() {
    let crowd = Workload::FlashCrowd(FlashCrowd {
        base: 60.0,
        peak: 600.0,
        at: Nanos::from_secs(2),
        ramp: Nanos::from_millis(800),
        decay: Nanos::from_secs(2),
    });
    let window = Nanos::from_millis(250);
    for seed in SEEDS {
        let arrivals = curve_arrivals(&crowd, 1500, &mut XorShift64::new(seed));
        let horizon = *arrivals.last().unwrap();
        let mut start = Nanos::ZERO;
        while start < horizon {
            let end = start + window;
            let count = arrivals.iter().filter(|&&t| start <= t && t < end).count() as f64;
            let expected = crowd.cumulative(end) - crowd.cumulative(start);
            // Poisson tail: mean + 5 sigma (plus a floor for tiny means).
            let bound = expected + 5.0 * expected.sqrt() + 8.0;
            assert!(
                count <= bound,
                "seed {seed}: {count} arrivals in [{start:?}, {end:?}) vs bound {bound:.1}"
            );
            start = end;
        }
        // And the peak really shows up: the busiest window must carry
        // several times the quiet-period load.
        let quiet = crowd.cumulative(window);
        let mut busiest = 0usize;
        let mut s = Nanos::ZERO;
        while s < horizon {
            let e = s + window;
            busiest = busiest.max(arrivals.iter().filter(|&&t| s <= t && t < e).count());
            s = e;
        }
        assert!(
            busiest as f64 > 3.0 * quiet,
            "seed {seed}: busiest window {busiest} never left the base rate ({quiet:.1})"
        );
    }
}

#[test]
fn zipf_top_share_is_monotone_in_the_exponent() {
    let exponents = [0.0, 0.4, 0.8, 1.2, 1.6, 2.0];
    // Analytically: tenant 0's share strictly grows with skew.
    let mut last = 0.0;
    for &e in &exponents {
        let z = ZipfTenants::new(20, e).unwrap();
        let share = z.share(0);
        assert!(
            share > last || (e == 0.0 && share > 0.0),
            "share {share} did not grow at exponent {e}"
        );
        last = share;
    }
    // Empirically: sampled head counts grow with skew too, at every seed.
    for seed in SEEDS {
        let mut counts = Vec::new();
        for &e in &exponents {
            let z = ZipfTenants::new(20, e).unwrap();
            let mut rng = XorShift64::new(seed);
            let hits = (0..4000).filter(|_| z.sample(&mut rng) == 0).count();
            counts.push(hits);
        }
        for pair in counts.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "seed {seed}: head-tenant hits fell from {} to {} as skew rose",
                pair[0],
                pair[1]
            );
        }
        // Uniform really is uniform-ish, strong skew really concentrates.
        assert!(
            counts[0] < 400,
            "uniform head share too large: {}",
            counts[0]
        );
        assert!(
            *counts.last().unwrap() > 1500,
            "strong skew concentrated too little: {}",
            counts.last().unwrap()
        );
    }
}

/// The fixed-rate short circuit reproduces the documented per-gap
/// rounding formula exactly — this is the contract that makes
/// `Workload::none` byte-compatible with the fleet's generator.
#[test]
fn fixed_rate_matches_the_per_gap_formula() {
    for seed in SEEDS {
        let rate = 85.0;
        let arrivals = curve_arrivals(&Workload::none(rate), 300, &mut XorShift64::new(seed));
        let mut rng = XorShift64::new(seed);
        let mut t = Nanos::ZERO;
        for (i, &got) in arrivals.iter().enumerate() {
            let u = rng.next_f64();
            let secs = -(1.0 - u).ln() / rate;
            t += Nanos::from_nanos((secs * 1e9).round() as u64);
            assert_eq!(
                got, t,
                "seed {seed}: arrival {i} diverged from the gap formula"
            );
        }
    }
}
