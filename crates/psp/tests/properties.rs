//! Property-based tests for the PSP's measurement and report machinery.

use proptest::prelude::*;
use sevf_psp::{
    measure_region, AmdRootRegistry, AttestationReport, ChipIdentity, GuestPolicy,
    MeasurementChain,
};

fn arb_page() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 4096..=4096)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chain_is_deterministic(pages in proptest::collection::vec(arb_page(), 1..5)) {
        let mut a = MeasurementChain::new();
        let mut b = MeasurementChain::new();
        for (i, p) in pages.iter().enumerate() {
            a.add_page(i as u64 * 4096, p);
            b.add_page(i as u64 * 4096, p);
        }
        prop_assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn any_byte_change_changes_digest(
        mut page in arb_page(),
        index in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut a = MeasurementChain::new();
        a.add_page(0, &page);
        page[index] ^= flip;
        let mut b = MeasurementChain::new();
        b.add_page(0, &page);
        prop_assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn swapping_two_pages_changes_digest(p1 in arb_page(), p2 in arb_page()) {
        prop_assume!(p1 != p2);
        let mut a = MeasurementChain::new();
        a.add_page(0, &p1);
        a.add_page(4096, &p2);
        let mut b = MeasurementChain::new();
        b.add_page(0, &p2);
        b.add_page(4096, &p1);
        prop_assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn region_measurement_equals_manual_pages(
        data in proptest::collection::vec(any::<u8>(), 1..12_000),
        base_page in 0u64..1000,
    ) {
        let base = base_page * 4096;
        let mut via_region = MeasurementChain::new();
        measure_region(&mut via_region, base, &data);
        let mut manual = MeasurementChain::new();
        for (i, chunk) in data.chunks(4096).enumerate() {
            let mut page = [0u8; 4096];
            page[..chunk.len()].copy_from_slice(chunk);
            manual.add_page(base + i as u64 * 4096, &page);
        }
        prop_assert_eq!(via_region.finalize(), manual.finalize());
        prop_assert_eq!(via_region.page_count(), data.len().div_ceil(4096) as u64);
    }

    #[test]
    fn report_wire_roundtrip(
        measurement in any::<[u8; 48]>(),
        report_data in any::<[u8; 64]>(),
        seed in any::<u64>(),
    ) {
        let chip = ChipIdentity::from_seed(&seed.to_le_bytes());
        let mut report = AttestationReport {
            version: 2,
            policy: GuestPolicy::snp(),
            measurement,
            report_data,
            chip_id: chip.chip_id,
            signature: [0u8; 48],
        };
        let mut registry = AmdRootRegistry::new();
        registry.register(chip.clone());
        // An unsigned/garbage-signed report never verifies.
        prop_assert!(!registry.verify(&report));
        report.signature = {
            // Sign through the only public path: produce a report via a real
            // PSP? The registry check suffices: wire-roundtrip the fields.
            report.signature
        };
        let parsed = AttestationReport::from_bytes(&report.to_bytes()).unwrap();
        prop_assert_eq!(parsed, report);
    }

    #[test]
    fn tampering_any_report_field_breaks_verification(
        flip_at in 0usize..150,
        flip in 1u8..=255,
    ) {
        use sevf_mem::GuestMemory;
        use sevf_sim::cost::SevGeneration;
        use sevf_sim::CostModel;
        let mut psp = sevf_psp::Psp::new(CostModel::calibrated(), 77);
        let start = psp.launch_start(SevGeneration::SevSnp).unwrap();
        let mut mem = GuestMemory::new_sev(1 << 20, start.memory_key, SevGeneration::SevSnp);
        mem.host_write(0, b"verifier").unwrap();
        psp.launch_update_data(start.guest, &mut mem, 0, 4096).unwrap();
        psp.launch_finish(start.guest).unwrap();
        let (report, _) = psp.guest_report(start.guest, [7u8; 64]).unwrap();
        let mut registry = AmdRootRegistry::new();
        registry.register(psp.chip().clone());
        prop_assert!(registry.verify(&report));

        let mut bytes = report.to_bytes();
        bytes[flip_at] ^= flip;
        if let Some(tampered) = AttestationReport::from_bytes(&bytes) {
            prop_assert!(!registry.verify(&tampered), "tampered byte {flip_at} accepted");
        }
    }
}
